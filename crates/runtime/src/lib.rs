//! # slp-runtime — a concurrent transaction runtime over the policy API
//!
//! The paper's safety theorems are statements about *executions*: any
//! legal, proper schedule a safe policy admits is serializable. The
//! discrete-event simulator (`slp-sim`) produces such executions one
//! deterministic interleaving at a time; this crate produces them the way
//! a database would — N worker threads submitting [`slp_sim::Job`]s
//! against one shared [`slp_policies::PolicyEngine`], with real blocking,
//! real wakeups, and real races — and captures a lossless total order of
//! every granted step so each run can be re-verified offline against the
//! formal model.
//!
//! * [`Runtime`] — build a service for any [`slp_policies::PolicyKind`]
//!   (or custom engine + planner factory) and [`Runtime::run`] a job
//!   queue;
//! * [`RuntimeConfig`] — worker count (`SLP_RUNTIME_THREADS` override via
//!   [`RuntimeConfig::workers_from_env`]), grant batching, parking and
//!   backoff tuning (`SLP_RUNTIME_PARK_TIMEOUT_US` /
//!   `SLP_RUNTIME_BACKOFF_CAP_US` overrides via
//!   [`RuntimeConfig::with_env_overrides`]), wall-clock guard;
//! * **durability** — [`Runtime::run_durable`] mirrors every granted step
//!   and commit into a `slp-durability` write-ahead log (group-committed,
//!   checkpointed); after a crash, [`fn@recover`] replays the surviving
//!   prefix into a certified execution. Key log types are re-exported
//!   here so durable runs need no direct `slp-durability` dependency;
//! * [`RuntimeReport`] — the simulator's accounting shape (committed /
//!   policy aborts / deadlock aborts / rejected; attempts always balance)
//!   plus wall-clock throughput, commit-latency percentiles, and the
//!   merged [`slp_core::Schedule`] trace with its initial structural
//!   state, ready for legality / properness / serializability replay;
//! * **online certification** — [`RuntimeConfig::certify_online`] feeds
//!   every stamped step batch to an incremental serialization-graph
//!   certifier ([`slp_core::IncrementalCertifier`]) as the run executes:
//!   cycles are detected at the closing edge and surfaced in
//!   [`RuntimeReport::certification`] ([`CertifyMode::Monitor`]) or
//!   broken by aborting the transaction that closed them
//!   ([`CertifyMode::Strict`], counted in
//!   [`RuntimeReport::certification_aborts`]), with committed-prefix
//!   truncation keeping graph memory bounded on million-job runs;
//! * **MVCC snapshot reads** — [`RuntimeConfig::snapshot_reads`] serves
//!   read-only jobs from an `slp-mvcc` versioned store: writers install
//!   versions at grant time and flip visibility atomically at commit (in
//!   lock order, strictly after the WAL commit record), readers capture a
//!   [`slp_mvcc::Snapshot`] and never touch the lock service. Snapshot
//!   reads enter the trace as stamped [`slp_core::ScheduledStep`]s so
//!   both the online certifier and offline replay cover them;
//! * **batch scheduling** — [`RuntimeConfig::scheduler`] puts an
//!   admission-stage conflict-DAG scheduler in front of the worker pool
//!   ([`SchedMode::Waves`]): the job queue is layered into
//!   conflict-free waves from the declared access intents (structural
//!   jobs fence a wave boundary) so declared conflicts are ordered up
//!   front instead of discovered at grant time, with parking kept as
//!   the safety net. [`SchedMode::Deterministic`] additionally pins
//!   transaction ids and the merged trace to admission order — a
//!   replayable block-execution mode whose outcome fingerprint and
//!   schedule are byte-identical across worker counts (see the
//!   `scheduler` module docs);
//! * [`Metrics`] — a lock-free registry (atomic counters + fixed-bucket
//!   latency histograms) every run folds into, rendered as a text
//!   snapshot by [`Metrics::render`] (see `examples/load_service.rs`);
//! * [`probes`] — plan shapes that exercise the DDAG mutants' ablated
//!   rules (the trace-replay conformance suite's negative controls).
//!
//! ## Architecture
//!
//! The engine is the serialization point for grants that read global
//! policy state; everything around it is sharded: planning runs under the
//! engine's *read* lock, conflicting transactions park on entity-striped
//! condvars and are woken only by releases hashing to their stripe, trace
//! recording is per-worker with one atomic sequence stamp taken inside
//! the grant, and deadlocks are caught by a waits-for walk at conflict
//! time (requester-victim rule, as in the simulator) — over a graph
//! sharded by waiter — with a park-timeout backstop. For per-entity
//! policies ([`slp_policies::GrantScope::PerEntity`], e.g. 2PL) the
//! common case bypasses the engine entirely: eligible plans are granted
//! by a CAS on the entity's own atomic lock word
//! ([`RuntimeConfig::grant_fast_path`], on by default), with the engine
//! kept as the authority for everything outside the plain lock/access
//! shape. The lost-wakeup and stamp-ordering arguments live in the
//! `service` and `fastpath` module docs (source).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fastpath;
mod service;

pub mod metrics;
pub mod probes;
pub mod report;
pub mod runner;
pub mod scheduler;

pub use metrics::{Counter, Histogram, Metrics};
pub use probes::{CrawlProbePlanner, ShoulderProbePlanner};
pub use report::{Certification, LatencySummary, RuntimeReport};
pub use runner::{CertifyMode, PlannerFactory, Runtime, RuntimeConfig};
pub use scheduler::SchedMode;

// The certifier types a certification verdict exposes.
pub use slp_core::{CertStats, CertViolation, IncrementalCertifier};

// The MVCC surface a snapshot-read run touches (the store internals stay
// in `slp_mvcc`).
pub use slp_mvcc::{Snapshot, TxStatus, VisibilityRule};

// The durability surface a durable run touches: create a log, run against
// it, recover after a crash. (The fault-injection stores and frame-level
// API stay in `slp_durability`.)
pub use slp_durability::{
    recover, DirStore, MemStore, Recovered, RecoveryMode, SharedMemStore, Store, Wal, WalConfig,
    WalError, WalSummary,
};
