//! The runtime proper: worker threads draining a job queue through the
//! sharded lock service (`service.rs`).
//!
//! Each worker claims jobs off one atomic cursor, plans them with its own
//! (thread-local) [`ActionPlanner`], and drives the plan action-by-action
//! through the service. Conflicts park on the contended entity's stripe;
//! waits-for cycles abort the requester that closed the cycle (the
//! simulator's victim rule) and restart the job as a fresh transaction
//! after a growing backoff; policy violations abort and are classified by
//! the shared [`Disposition`] rule — fatal violations drop the job,
//! transient ones restart it. A wall-clock guard bounds mutant livelocks.

use crate::fastpath::LockWords;
use crate::metrics::Metrics;
use crate::report::{Certification, LatencySummary, RuntimeReport};
use crate::scheduler::{SchedMode, WaveDispatch, WavePlan};
use crate::service::{BatchOutcome, FastLockOutcome, LockService, MvccState};
use slp_core::{EntityId, Schedule, ScheduledStep, StructuralState, TxId};
use slp_durability::{Store, Wal, WalConfig, WalError};
use slp_mvcc::VisibilityRule;
use slp_policies::{
    GrantScope, PolicyAction, PolicyConfig, PolicyEngine, PolicyKind, PolicyRegistry,
    PolicyViolation, RegistryError,
};
use slp_sim::{planner_for, ActionPlanner, Disposition, Job};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds one worker's planner. Workers construct their planner inside
/// their own thread, so the planner itself need not be `Send`; the factory
/// is shared and must be. The worker index parameter lets probe planners
/// decorrelate their choices across workers (see [`crate::probes`]).
pub type PlannerFactory = Arc<dyn Fn(usize) -> Box<dyn ActionPlanner> + Send + Sync>;

/// Online serializability certification mode
/// ([`RuntimeConfig::certify_online`]).
///
/// The certifier maintains the serialization graph `D(S)` incrementally
/// as grants stream in (edge insert + cycle check, committed-prefix
/// truncation for bounded memory) — the live counterpart of replaying
/// [`RuntimeReport::schedule`] through [`slp_core::is_serializable`]
/// after the run. The verdict lands in [`RuntimeReport::certification`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CertifyMode {
    /// No certifier: zero overhead (the default).
    #[default]
    Off,
    /// Certify and report: a detected cycle is latched into the report
    /// but the run completes normally.
    Monitor,
    /// Certify and recover: every commit (and snapshot read) is certified
    /// *before* it takes effect; one that would close a
    /// serialization-graph cycle is aborted instead — its node retracted,
    /// its commit record withheld — and the run continues. Aborts are
    /// counted in [`RuntimeReport::certification_aborts`] and the first
    /// caught cycle is preserved in the report's
    /// [`Certification::violation`].
    Strict,
}

/// Tuning knobs for a run.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Parking stripes (clamped to 1..=64 by the service).
    pub stripes: usize,
    /// Max actions granted per engine-lock acquisition. `1` maximizes
    /// interleaving (conformance suites); larger values amortize the
    /// serialization point (throughput benches).
    pub grant_batch: usize,
    /// Park timeout: the backstop against stale waits-for edges — a parked
    /// worker re-requests (and re-runs deadlock detection) at least this
    /// often even if no wakeup arrives. Default **1 ms**; overridable via
    /// `SLP_RUNTIME_PARK_TIMEOUT_US`
    /// ([`env_park_timeout`](RuntimeConfig::env_park_timeout)). Timeout
    /// firings are counted in [`RuntimeReport::park_timeouts`].
    pub park_timeout: Duration,
    /// Base backoff after an abort; attempt `n` waits `min(base · 2ⁿ,
    /// cap)` (growing backoff breaks symmetric restart livelocks, as in
    /// the simulator). Default **50 µs**.
    pub backoff_base: Duration,
    /// Backoff ceiling (caps the exponential growth after deadlock and
    /// policy aborts). Default **2 ms**; overridable via
    /// `SLP_RUNTIME_BACKOFF_CAP_US`
    /// ([`env_backoff_cap`](RuntimeConfig::env_backoff_cap)).
    pub backoff_cap: Duration,
    /// Wall-clock guard: past this deadline workers abandon their jobs and
    /// drain (guards against livelock in mutant policies, the threaded
    /// analogue of the simulator's `max_ticks`).
    pub max_wall: Duration,
    /// Yield the OS scheduler after each granted batch. Costs throughput,
    /// buys interleaving diversity — on by default because the runtime's
    /// first duty here is producing adversarial traces to verify.
    pub step_yield: bool,
    /// Online serializability certification ([`CertifyMode::Off`] by
    /// default; overridable via `SLP_RUNTIME_CERTIFY`
    /// ([`env_certify`](RuntimeConfig::env_certify))).
    pub certify_online: CertifyMode,
    /// Serve read-only jobs from MVCC snapshots: writers install
    /// versions at grant time and flip visibility at commit, readers
    /// capture a snapshot and never touch the lock service. Off by
    /// default; overridable via `SLP_RUNTIME_SNAPSHOT_READS`
    /// ([`env_snapshot_reads`](RuntimeConfig::env_snapshot_reads)).
    pub snapshot_reads: bool,
    /// The sharded grant fast path: for engines whose grants are purely
    /// per-entity ([`slp_policies::GrantScope::PerEntity`], e.g. 2PL),
    /// plain lock/access plans are granted by a CAS on the entity's own
    /// atomic lock word instead of the engine write lock; conflicts park
    /// exactly as on the engine path, and anything outside that shape
    /// (donations, locked points, structural ops, uncovered entities)
    /// falls back to the engine ([`RuntimeReport::fast_path_fallbacks`]).
    /// On by default — for [`GrantScope::Global`] engines it changes
    /// nothing. Off is bit-compatible with the engine-only service.
    /// Overridable via `SLP_RUNTIME_FAST_PATH`
    /// ([`env_fast_path`](RuntimeConfig::env_fast_path)).
    pub grant_fast_path: bool,
    /// The admission-stage batch scheduler ([`SchedMode::Off`] by
    /// default): [`SchedMode::Waves`] layers the job queue into
    /// conflict-free waves from the declared access intents (structural
    /// jobs fence a wave boundary) and dispatches wave by wave, keeping
    /// parking as the safety net; [`SchedMode::Deterministic`]
    /// additionally pins transaction ids and the merged trace to
    /// admission order so the run is byte-identical across worker
    /// counts (and ignores [`snapshot_reads`](RuntimeConfig::snapshot_reads)
    /// — snapshot contents are timing-dependent by design). Overridable
    /// via `SLP_RUNTIME_SCHED`
    /// ([`env_sched`](RuntimeConfig::env_sched)).
    pub scheduler: SchedMode,
    /// **Scripted negative control**: apply the deliberately broken
    /// visibility rule (snapshots dirty-read in-progress writers) so the
    /// online certifier's detection path can be exercised end to end.
    /// Never set outside mutant tests.
    pub broken_visibility: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            stripes: 16,
            grant_batch: 1,
            park_timeout: Duration::from_millis(1),
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(2),
            max_wall: Duration::from_secs(30),
            step_yield: true,
            certify_online: CertifyMode::Off,
            snapshot_reads: false,
            grant_fast_path: true,
            scheduler: SchedMode::Off,
            broken_visibility: false,
        }
    }
}

impl RuntimeConfig {
    /// A default config with `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        RuntimeConfig {
            workers,
            ..Default::default()
        }
    }

    /// The worker count the environment requests, if any:
    /// `SLP_RUNTIME_THREADS` (the CI matrix convention, mirroring
    /// `SLP_VERIFIER_THREADS`). `None` when unset; panics on a value that
    /// is not a positive integer — a typo'd override must not silently
    /// fall back. This is the single definition of the override's
    /// parse/validate rule (the stress matrix keys off set-vs-unset).
    pub fn env_workers() -> Option<usize> {
        std::env::var("SLP_RUNTIME_THREADS").ok().map(|v| {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .expect("SLP_RUNTIME_THREADS must be a positive integer")
        })
    }

    /// [`env_workers`](RuntimeConfig::env_workers) with a fallback.
    pub fn workers_from_env(default: usize) -> usize {
        Self::env_workers().unwrap_or(default)
    }

    /// The park timeout the environment requests, if any:
    /// `SLP_RUNTIME_PARK_TIMEOUT_US`, in microseconds. Same contract as
    /// [`env_workers`](RuntimeConfig::env_workers): `None` when unset,
    /// panic on a value that is not a positive integer.
    pub fn env_park_timeout() -> Option<Duration> {
        Self::env_micros("SLP_RUNTIME_PARK_TIMEOUT_US")
    }

    /// The backoff ceiling the environment requests, if any:
    /// `SLP_RUNTIME_BACKOFF_CAP_US`, in microseconds. Same contract as
    /// [`env_workers`](RuntimeConfig::env_workers).
    pub fn env_backoff_cap() -> Option<Duration> {
        Self::env_micros("SLP_RUNTIME_BACKOFF_CAP_US")
    }

    /// The certification mode the environment requests, if any:
    /// `SLP_RUNTIME_CERTIFY` ∈ {`off`, `monitor`, `strict`}. Same
    /// contract as [`env_workers`](RuntimeConfig::env_workers): `None`
    /// when unset, panic on anything else — a typo'd override must not
    /// silently fall back.
    pub fn env_certify() -> Option<CertifyMode> {
        std::env::var("SLP_RUNTIME_CERTIFY")
            .ok()
            .map(|v| match v.as_str() {
                "off" => CertifyMode::Off,
                "monitor" => CertifyMode::Monitor,
                "strict" => CertifyMode::Strict,
                other => panic!("SLP_RUNTIME_CERTIFY must be off|monitor|strict, got {other:?}"),
            })
    }

    /// Whether the environment requests MVCC snapshot reads, if set:
    /// `SLP_RUNTIME_SNAPSHOT_READS` ∈ {`on`, `off`}. Same contract as
    /// [`env_workers`](RuntimeConfig::env_workers): `None` when unset,
    /// panic on anything else — a typo'd override must not silently fall
    /// back.
    pub fn env_snapshot_reads() -> Option<bool> {
        std::env::var("SLP_RUNTIME_SNAPSHOT_READS")
            .ok()
            .map(|v| match v.as_str() {
                "on" => true,
                "off" => false,
                other => panic!("SLP_RUNTIME_SNAPSHOT_READS must be on|off, got {other:?}"),
            })
    }

    /// Whether the environment requests the grant fast path, if set:
    /// `SLP_RUNTIME_FAST_PATH` ∈ {`on`, `1`, `off`, `0`} (the CI matrix
    /// sets `1`). Same contract as
    /// [`env_workers`](RuntimeConfig::env_workers): `None` when unset,
    /// panic on anything else — a typo'd override must not silently fall
    /// back.
    pub fn env_fast_path() -> Option<bool> {
        std::env::var("SLP_RUNTIME_FAST_PATH")
            .ok()
            .map(|v| match v.as_str() {
                "on" | "1" => true,
                "off" | "0" => false,
                other => panic!("SLP_RUNTIME_FAST_PATH must be on|1|off|0, got {other:?}"),
            })
    }

    /// The batch-scheduler mode the environment requests, if any:
    /// `SLP_RUNTIME_SCHED` ∈ {`off`, `waves`, `deterministic`}. Same
    /// contract as [`env_workers`](RuntimeConfig::env_workers): `None`
    /// when unset, panic on anything else — a typo'd override must not
    /// silently fall back.
    pub fn env_sched() -> Option<SchedMode> {
        std::env::var("SLP_RUNTIME_SCHED")
            .ok()
            .map(|v| match v.as_str() {
                "off" => SchedMode::Off,
                "waves" => SchedMode::Waves,
                "deterministic" => SchedMode::Deterministic,
                other => {
                    panic!("SLP_RUNTIME_SCHED must be off|waves|deterministic, got {other:?}")
                }
            })
    }

    fn env_micros(var: &str) -> Option<Duration> {
        std::env::var(var).ok().map(|v| {
            let us = v
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| panic!("{var} must be a positive integer (microseconds)"));
            Duration::from_micros(us)
        })
    }

    /// This config with every environment override applied
    /// (`SLP_RUNTIME_THREADS`, `SLP_RUNTIME_PARK_TIMEOUT_US`,
    /// `SLP_RUNTIME_BACKOFF_CAP_US`, `SLP_RUNTIME_CERTIFY`,
    /// `SLP_RUNTIME_SNAPSHOT_READS`, `SLP_RUNTIME_FAST_PATH`,
    /// `SLP_RUNTIME_SCHED`). The
    /// examples and stress suites run their configs through this so a CI
    /// matrix can retune the runtime without touching code.
    pub fn with_env_overrides(mut self) -> Self {
        if let Some(workers) = Self::env_workers() {
            self.workers = workers;
        }
        if let Some(park) = Self::env_park_timeout() {
            self.park_timeout = park;
        }
        if let Some(cap) = Self::env_backoff_cap() {
            self.backoff_cap = cap;
        }
        if let Some(certify) = Self::env_certify() {
            self.certify_online = certify;
        }
        if let Some(snapshot) = Self::env_snapshot_reads() {
            self.snapshot_reads = snapshot;
        }
        if let Some(fast) = Self::env_fast_path() {
            self.grant_fast_path = fast;
        }
        if let Some(sched) = Self::env_sched() {
            self.scheduler = sched;
        }
        self
    }
}

/// A concurrent transaction service over one policy engine.
///
/// ```
/// use slp_core::EntityId;
/// use slp_policies::{PolicyConfig, PolicyKind};
/// use slp_runtime::{Runtime, RuntimeConfig};
/// use slp_sim::uniform_jobs;
///
/// let pool: Vec<EntityId> = (0..8).map(EntityId).collect();
/// let jobs = uniform_jobs(&pool, 12, 2, 7);
/// let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool)).unwrap();
/// let report = rt.run(&jobs, &RuntimeConfig::with_workers(2));
/// assert_eq!(report.committed, 12);
/// assert!(report.schedule.is_legal());
/// assert!(slp_core::is_serializable(&report.schedule));
/// ```
pub struct Runtime {
    engine: Option<Box<dyn PolicyEngine>>,
    name: &'static str,
    pool: Vec<slp_core::EntityId>,
    planner_factory: PlannerFactory,
    metrics: Metrics,
}

impl Runtime {
    /// A runtime for `kind`, with the engine from the default registry and
    /// the policy's standard planner.
    pub fn new(kind: PolicyKind, config: &PolicyConfig) -> Result<Runtime, RegistryError> {
        Self::with_registry(&PolicyRegistry::new(), kind, config)
    }

    /// A runtime for `kind` built through `registry`.
    pub fn with_registry(
        registry: &PolicyRegistry,
        kind: PolicyKind,
        config: &PolicyConfig,
    ) -> Result<Runtime, RegistryError> {
        let engine = registry.build(kind, config)?;
        Ok(Self::from_engine(
            engine,
            Arc::new(move |_worker| planner_for(kind)),
            config.pool.clone(),
        ))
    }

    /// A runtime over an arbitrary engine and planner factory. `pool` is
    /// the initially existing entities for policies that do not track
    /// existence themselves (mirrors [`slp_sim::EngineAdapter::new`]).
    pub fn from_engine(
        engine: Box<dyn PolicyEngine>,
        planner_factory: PlannerFactory,
        pool: Vec<slp_core::EntityId>,
    ) -> Runtime {
        let name = engine.name();
        Runtime {
            engine: Some(engine),
            name,
            pool,
            planner_factory,
            metrics: Metrics::new(),
        }
    }

    /// The metrics registry, accumulated across every run this runtime
    /// has executed ([`Metrics::render`] for the text snapshot).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Replaces the planner factory (probe planners for the mutant
    /// negative controls).
    pub fn set_planner_factory(&mut self, factory: PlannerFactory) {
        self.planner_factory = factory;
    }

    /// The wrapped engine (between runs).
    pub fn engine(&self) -> &dyn PolicyEngine {
        self.engine.as_deref().expect("engine present between runs")
    }

    /// Interns a fresh entity name through the engine (DDAG insert
    /// workloads); `None` if the policy has no growing universe.
    pub fn intern(&mut self, name: &str) -> Option<slp_core::EntityId> {
        self.engine
            .as_mut()
            .expect("engine present between runs")
            .intern_entity(name)
    }

    /// The initial structural state for properness replay: the engine's
    /// own existence tracking when present, else the flat pool. Captured
    /// automatically at the start of every [`run`](Runtime::run).
    pub fn initial_state(&self) -> StructuralState {
        match self.engine().structural_entities() {
            Some(entities) => StructuralState::from_entities(entities),
            None => StructuralState::from_entities(self.pool.iter().copied()),
        }
    }

    /// Runs `jobs` to completion on `config.workers` threads and returns
    /// the report with the merged, totally ordered trace.
    pub fn run(&mut self, jobs: &[Job], config: &RuntimeConfig) -> RuntimeReport {
        self.run_inner(jobs, config, None)
    }

    /// A write-ahead log over `store` seeded with this runtime's current
    /// initial state: the base checkpoint recovery replays from is exactly
    /// the state [`run_durable`](Runtime::run_durable) will start in. The
    /// store must be empty — one log records one run.
    pub fn create_wal(&self, store: Box<dyn Store>, config: WalConfig) -> Result<Wal, WalError> {
        Wal::create(store, config, &self.initial_state())
    }

    /// [`run`](Runtime::run), with every granted step and commit mirrored
    /// into `wal` (created by [`create_wal`](Runtime::create_wal) on the
    /// same runtime). Appends ride behind the engine lock and are group
    /// committed, checkpoints are automatic, and the log is flushed when
    /// the workers drain; [`RuntimeReport::wal`] carries the counters.
    /// After a crash, rebuild the durable prefix with
    /// [`fn@slp_durability::recover`] — the crash-recovery suites and
    /// `examples/crash_recovery.rs` walk the full cycle.
    ///
    /// A log failure mid-run does not stop the run: logging is abandoned,
    /// the in-memory result is complete, and the summary reports
    /// [`failed`](slp_durability::WalSummary::failed).
    pub fn run_durable(
        &mut self,
        jobs: &[Job],
        config: &RuntimeConfig,
        wal: Arc<Wal>,
    ) -> RuntimeReport {
        self.run_inner(jobs, config, Some(wal))
    }

    fn run_inner(
        &mut self,
        jobs: &[Job],
        config: &RuntimeConfig,
        wal: Option<Arc<Wal>>,
    ) -> RuntimeReport {
        let initial = self.initial_state();
        let engine = self.engine.take().expect("engine present between runs");
        let scope = engine.grant_scope();
        // Deterministic mode pins the trace to admission order; snapshot
        // contents are timing-dependent by design (a reader observes
        // whatever committed first), so the read path stays locked there.
        let snapshot_reads = config.snapshot_reads && config.scheduler != SchedMode::Deterministic;
        let mvcc = snapshot_reads.then(|| {
            MvccState::new(if config.broken_visibility {
                VisibilityRule::Broken
            } else {
                VisibilityRule::Correct
            })
        });
        // The fast path activates only when the knob is on AND the engine
        // promises per-entity grants; the word table directly indexes the
        // flat pool (per-entity engines have a fixed universe).
        let fast = (config.grant_fast_path && scope == GrantScope::PerEntity)
            .then(|| {
                let capacity = self
                    .pool
                    .iter()
                    .map(|e| e.0 as usize + 1)
                    .max()
                    .unwrap_or(0);
                LockWords::new(capacity)
            })
            .filter(|words| words.capacity() > 0);
        let service = LockService::new(
            engine,
            config.stripes,
            wal.clone(),
            config.certify_online,
            mvcc,
            fast,
        );
        // The batch scheduler: layer the whole admission batch into
        // conflict-free waves from the intents worker 0's planner
        // declares. In deterministic mode, global-scope engines (whose
        // lock footprint may exceed the declared intent) execute each
        // wave serially in admission order; per-entity engines run waves
        // concurrently — their plain plans cover exactly the declared
        // set, so waves are genuinely conflict-free.
        let wave_plan = (config.scheduler != SchedMode::Off)
            .then(|| WavePlan::build(jobs, (self.planner_factory)(0).as_ref()));
        let dispatch = wave_plan.as_ref().map(|plan| {
            let serial =
                config.scheduler == SchedMode::Deterministic && scope == GrantScope::Global;
            WaveDispatch::new(plan.waves.clone(), serial)
        });
        // Deterministic mode derives transaction ids from the admission
        // index instead of the racing shared counter: attempt `a` of job
        // `i` is `1 + i + a·|jobs|`, unique and worker-count-independent.
        let det_jobs = (config.scheduler == SchedMode::Deterministic).then_some(jobs.len() as u32);
        let next_job = AtomicUsize::new(0);
        let next_tx = AtomicU32::new(1);
        let start = Instant::now();
        let deadline = start + config.max_wall;
        let workers = config.workers.max(1);

        let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let service = &service;
                    let source = JobSource {
                        cursor: &next_job,
                        waves: dispatch.as_ref(),
                        total: jobs.len(),
                    };
                    let txs = TxSource {
                        shared: &next_tx,
                        det_jobs,
                    };
                    let factory = Arc::clone(&self.planner_factory);
                    scope.spawn(move || {
                        worker_loop(w, service, jobs, source, txs, config, deadline, factory)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let elapsed = start.elapsed();
        // Every exit path of an attempt releases the words it held
        // (commit, abort, deadline, certification abort) — a word still
        // held after the workers joined is a leaked lock.
        assert!(
            service.fast_quiescent(),
            "lock words must all be free once the workers drain"
        );

        // End-of-run barrier: push the final (partial) group to disk and
        // capture the log's counters. A store that died mid-run reports
        // `failed` here; the in-memory result below is still complete.
        let wal_summary = wal.map(|wal| {
            let _ = wal.flush();
            wal.summary()
        });

        let mut entries: Vec<(u64, ScheduledStep)> = Vec::new();
        let mut latencies: Vec<u64> = Vec::new();
        let mut aborted: Vec<TxId> = Vec::new();
        for out in outputs {
            entries.extend(out.trace);
            latencies.extend(out.latencies_us);
            aborted.extend(out.aborted);
        }
        if let Some(n) = det_jobs.filter(|&n| n > 0) {
            // Deterministic renumbering: regroup the trace per job in
            // admission order (the deterministic tx ids encode the job
            // index) and restamp densely. Conflicting transactions are
            // wave-ordered — waves are completion barriers, so their
            // steps never trade places here; only non-conflicting steps
            // are reordered, and the result is conflict-equivalent to
            // the executed interleaving but byte-identical across
            // worker counts.
            entries.sort_unstable_by_key(|&(stamp, s)| ((s.tx.0 - 1) % n, stamp));
            for (i, entry) in entries.iter_mut().enumerate() {
                entry.0 = i as u64;
            }
        }
        let schedule = if entries.is_empty() {
            // No step was ever granted (e.g. an already-expired deadline):
            // `from_sequenced` treats empty input as an error, but here it
            // just means an empty trace.
            Schedule::empty()
        } else {
            Schedule::from_sequenced(entries)
                .expect("worker stamps are dense and unique by construction")
        };
        self.metrics.observe_latencies(&latencies);
        let c = &service.counters;
        let mut report = RuntimeReport {
            policy: self.name,
            workers,
            committed: c.committed.load(Ordering::Relaxed),
            policy_aborts: c.policy_aborts.load(Ordering::Relaxed),
            deadlock_aborts: c.deadlock_aborts.load(Ordering::Relaxed),
            certification_aborts: c.certification_aborts.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            abandoned: c.abandoned.load(Ordering::Relaxed),
            attempts: c.attempts.load(Ordering::Relaxed),
            lock_waits: c.lock_waits.load(Ordering::Relaxed),
            grants: c.grants.load(Ordering::Relaxed),
            fast_path_grants: c.fast_path_grants.load(Ordering::Relaxed),
            slow_path_grants: c.slow_path_grants.load(Ordering::Relaxed),
            fast_path_fallbacks: c.fast_path_fallbacks.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
            park_timeouts: c.park_timeouts.load(Ordering::Relaxed),
            snapshot_reads: c.snapshot_reads.load(Ordering::Relaxed),
            waves: wave_plan.as_ref().map_or(0, |p| p.waves.len()),
            wave_widths: wave_plan.as_ref().map_or_else(Vec::new, |p| {
                p.waves.iter().map(|w| w.len() as u32).collect()
            }),
            sched_parks_avoided: wave_plan.as_ref().map_or(0, |p| p.conflict_edges),
            elapsed,
            timed_out: c.timed_out.load(Ordering::Relaxed),
            schedule,
            initial,
            aborted,
            latency: LatencySummary::from_micros(latencies),
            wal: wal_summary,
            certification: None,
        };
        let recovered = service.recovered_violation();
        let (engine, certifier) = service.into_parts();
        self.engine = Some(engine);
        report.certification = certifier.map(|cert| Certification {
            strict: config.certify_online == CertifyMode::Strict,
            // A strict run that recovered cleared the certifier's own
            // latch; the service kept the first caught cycle for the
            // report.
            violation: cert.violation().cloned().or(recovered),
            stats: cert.stats(),
        });
        self.metrics.record_run(&report);
        report
    }
}

/// What one worker brings home: its slice of the sequence-stamped trace,
/// the latencies of the jobs it committed, and the transactions it
/// aborted (the report's input to
/// [`slp_core::is_serializable_with_aborts`]).
struct WorkerOutput {
    trace: Vec<(u64, ScheduledStep)>,
    latencies_us: Vec<u64>,
    aborted: Vec<TxId>,
}

/// How one attempt ended (the worker decides what happens to the job).
enum AttemptEnd {
    Committed,
    Retry,
    Dropped,
    Abandoned,
}

/// Where a worker claims its next job: the shared atomic cursor (the
/// unscheduled default) or the wave dispatcher, which blocks claimers at
/// wave fences.
#[derive(Clone, Copy)]
struct JobSource<'a> {
    cursor: &'a AtomicUsize,
    waves: Option<&'a WaveDispatch>,
    total: usize,
}

impl JobSource<'_> {
    fn claim(&self) -> Option<usize> {
        match self.waves {
            Some(dispatch) => dispatch.claim(),
            None => {
                let ji = self.cursor.fetch_add(1, Ordering::Relaxed);
                (ji < self.total).then_some(ji)
            }
        }
    }

    fn complete(&self) {
        if let Some(dispatch) = self.waves {
            dispatch.complete();
        }
    }
}

/// How a worker mints transaction ids: the racing shared counter, or —
/// in deterministic mode — a pure function of the admission index, so
/// ids (and thus the renumbered trace) are worker-count-independent.
#[derive(Clone, Copy)]
struct TxSource<'a> {
    shared: &'a AtomicU32,
    /// `Some(|jobs|)` in deterministic mode.
    det_jobs: Option<u32>,
}

impl TxSource<'_> {
    /// The id for attempt `attempt` (1-based) of job `ji`.
    fn mint(&self, ji: usize, attempt: u32) -> TxId {
        match self.det_jobs {
            // Unique across (job, attempt) pairs; collision with the
            // shared counter is impossible because deterministic runs
            // never touch it.
            Some(n) => TxId(1 + ji as u32 + (attempt - 1).wrapping_mul(n)),
            None => TxId(self.shared.fetch_add(1, Ordering::Relaxed)),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: usize,
    service: &LockService,
    jobs: &[Job],
    source: JobSource<'_>,
    txs: TxSource<'_>,
    config: &RuntimeConfig,
    deadline: Instant,
    factory: PlannerFactory,
) -> WorkerOutput {
    let mut planner = factory(worker);
    let mut out = WorkerOutput {
        trace: Vec::new(),
        latencies_us: Vec::new(),
        aborted: Vec::new(),
    };
    while let Some(ji) = source.claim() {
        let job = &jobs[ji];
        let dispatched = Instant::now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let tx = txs.mint(ji, attempt);
            let end = run_attempt(
                service,
                planner.as_mut(),
                job,
                tx,
                config,
                deadline,
                &mut out,
            );
            match end {
                AttemptEnd::Committed => {
                    out.latencies_us
                        .push(dispatched.elapsed().as_micros() as u64);
                    break;
                }
                AttemptEnd::Dropped => break,
                AttemptEnd::Abandoned => {
                    // An attempt abandons on the wall-clock guard or a
                    // strict-mode certification halt; only the former is
                    // a timeout.
                    if Instant::now() > deadline {
                        service.counters.timed_out.store(true, Ordering::Relaxed);
                    }
                    service.counters.abandoned.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                AttemptEnd::Retry => backoff(attempt, config),
            }
        }
        // Whatever the outcome, the wave fence counts this job done.
        source.complete();
    }
    out
}

/// One fresh-transaction attempt at `job`. Exactly one accounting counter
/// is bumped per call (the invariant behind
/// [`RuntimeReport::accounting_balances`]); `Abandoned` is the exception —
/// its counter is bumped by the caller, which also flags the timeout.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    service: &LockService,
    planner: &mut dyn ActionPlanner,
    job: &Job,
    tx: TxId,
    config: &RuntimeConfig,
    deadline: Instant,
    out: &mut WorkerOutput,
) -> AttemptEnd {
    let WorkerOutput { trace, aborted, .. } = out;
    let c = &service.counters;
    // Count the attempt before anything can cut it short, so every exit
    // path (commit, abort, reject, abandon) balances against it.
    c.attempts.fetch_add(1, Ordering::Relaxed);
    let halted = || c.halted.load(Ordering::Relaxed);
    if Instant::now() > deadline || halted() {
        return AttemptEnd::Abandoned;
    }
    if job.read_only && service.snapshot_reads_enabled() {
        // The MVCC read path: capture a snapshot and read versions — no
        // lock service, no engine lock, no waits-for edges. The only way
        // this fails is a strict-mode certification abort.
        return if service.snapshot_read(tx, &job.targets, trace) {
            c.committed.fetch_add(1, Ordering::Relaxed);
            AttemptEnd::Committed
        } else {
            c.certification_aborts.fetch_add(1, Ordering::Relaxed);
            aborted.push(tx);
            AttemptEnd::Retry
        };
    }
    // Everything this attempt records lands at or after this index; the
    // whole range feeds the online certifier in one batch at finish/abort.
    let cert_from = trace.len();

    // Plan under the read lock; a malformed job must not touch the engine.
    let planned = match service.plan(planner, job) {
        Ok(p) => p,
        Err(v) => return classify(c, &v),
    };
    if service.fast_active() {
        // Plain lock/access plans over covered entities bypass the engine
        // entirely; anything else (no plan, donations, locked points,
        // structural ops, uncovered entities) is a counted fallback to
        // the engine path below.
        if let Some(shared) = planned
            .as_deref()
            .and_then(|plan| fast_plan_mode(service, plan, job))
        {
            let plan = planned.expect("mode derived from this plan");
            return run_fast_attempt(service, tx, &plan, shared, config, deadline, trace, aborted);
        }
        c.fast_path_fallbacks.fetch_add(1, Ordering::Relaxed);
    }
    let intent = planner.intent(job);
    let plan: Vec<PolicyAction> = match service.begin(tx, &intent) {
        Ok(engine_plan) => match planned.or(engine_plan) {
            Some(plan) => plan,
            None => {
                // Misconfigured pairing: retire the just-begun transaction
                // so the engine holds no planless state (adapter rule).
                service.abort(tx, trace, cert_from);
                aborted.push(tx);
                return classify(c, &PolicyViolation::NoPlan(tx));
            }
        },
        Err(v) => return classify(c, &v),
    };

    let mut cursor = 0usize;
    while cursor < plan.len() {
        if Instant::now() > deadline || halted() {
            service.clear_wait(tx);
            service.abort(tx, trace, cert_from);
            aborted.push(tx);
            return AttemptEnd::Abandoned;
        }
        match service.request_batch(tx, &plan[cursor..], config.grant_batch, trace) {
            BatchOutcome::Granted { granted } => {
                cursor += granted;
                if config.step_yield {
                    std::thread::yield_now();
                }
            }
            BatchOutcome::Violation { violation } => {
                service.abort(tx, trace, cert_from);
                aborted.push(tx);
                return classify(c, &violation);
            }
            BatchOutcome::Conflict {
                granted,
                mut entity,
                mut holder,
                mut gen,
            } => {
                cursor += granted;
                // One iteration per conflict observation: publish the
                // waits-for edge, park on the contended entity's stripe,
                // retract the edge, re-request. `gen` was read inside the
                // engine section that observed the conflict, so any
                // release that could have invalidated it bumps the
                // generation after that read and the park falls through —
                // this holds equally when a re-request moves the
                // contention to a *new* entity, which used to re-request
                // immediately without parking and degenerated to spinning
                // on a hot plan tail.
                loop {
                    // Waits-for edge discipline: publish the edge (and
                    // walk for a cycle) at every conflict *observation*,
                    // retract it before every re-request. The edge is
                    // live exactly while this worker may be parked — a
                    // published edge through a transaction that is awake
                    // (its request was granted, or it is mid-abort with
                    // its locks already released) manufactures phantom
                    // cycles for every other walker, and each needless
                    // victim feeds the churn that creates the next one.
                    // Publishing before every park with the *current*
                    // holder keeps detection complete: insert and walk
                    // are atomic, so whichever transaction inserts the
                    // edge that closes a real cycle sees it.
                    c.lock_waits.fetch_add(1, Ordering::Relaxed);
                    if service.note_wait(tx, holder) {
                        // This request closed a waits-for cycle: the
                        // requester is the victim (simulator rule).
                        service.clear_wait(tx);
                        service.abort(tx, trace, cert_from);
                        aborted.push(tx);
                        c.deadlock_aborts.fetch_add(1, Ordering::Relaxed);
                        return AttemptEnd::Retry;
                    }
                    if Instant::now() > deadline || halted() {
                        service.clear_wait(tx);
                        service.abort(tx, trace, cert_from);
                        aborted.push(tx);
                        return AttemptEnd::Abandoned;
                    }
                    service.park(entity, gen, config.park_timeout);
                    service.clear_wait(tx);
                    match service.request_batch(tx, &plan[cursor..], 1, trace) {
                        BatchOutcome::Granted { granted } => {
                            cursor += granted;
                            break;
                        }
                        BatchOutcome::Violation { violation } => {
                            service.abort(tx, trace, cert_from);
                            aborted.push(tx);
                            return classify(c, &violation);
                        }
                        BatchOutcome::Conflict {
                            granted,
                            entity: e2,
                            holder: h2,
                            gen: g2,
                        } => {
                            cursor += granted;
                            entity = e2;
                            holder = h2;
                            gen = g2;
                        }
                    }
                }
            }
        }
    }
    match service.finish(tx, trace, cert_from) {
        Ok(true) => {
            c.committed.fetch_add(1, Ordering::Relaxed);
            AttemptEnd::Committed
        }
        Ok(false) => {
            // Strict certification aborted the commit: the engine released
            // the locks, the service kept the commit record out of the log
            // and marked the transaction aborted in the status table. The
            // job restarts as a fresh transaction.
            c.certification_aborts.fetch_add(1, Ordering::Relaxed);
            aborted.push(tx);
            AttemptEnd::Retry
        }
        Err(v) => {
            service.abort(tx, trace, cert_from);
            aborted.push(tx);
            classify(c, &v)
        }
    }
}

/// Whether `plan` qualifies for the grant fast path, and in which mode:
/// `Some(shared)` when every action is a plain [`PolicyAction::Lock`] /
/// [`PolicyAction::Access`] over word-covered entities, each entity is
/// locked at most once, and every access follows its lock — the shape
/// [`slp_policies::GrantScope::PerEntity`] promises the engine decides
/// from per-entity state alone. `shared` (read-only job, single lock)
/// takes the word in shared mode and emits read-only steps; everything
/// else is exclusive. `None` routes the attempt to the engine.
fn fast_plan_mode(service: &LockService, plan: &[PolicyAction], job: &Job) -> Option<bool> {
    if plan.is_empty() {
        return None;
    }
    let mut locked: Vec<EntityId> = Vec::with_capacity(plan.len() / 2 + 1);
    for action in plan {
        match *action {
            PolicyAction::Lock(e) => {
                if !service.fast_covers(e) || locked.contains(&e) {
                    return None;
                }
                locked.push(e);
            }
            PolicyAction::Access(e) => {
                if !locked.contains(&e) {
                    return None;
                }
            }
            _ => return None,
        }
    }
    Some(job.read_only && locked.len() == 1)
}

/// One fast-path attempt: every grant is a CAS on the entity's lock word
/// — the engine is never touched (not even `begin`; the words are the
/// authority for everything the transaction holds). Conflicts run the
/// exact engine-path discipline: publish the waits-for edge (victim rule
/// on a closed cycle), park on the entity's stripe against the
/// generation read at the conflict, retract, retry. The worker tracks
/// its held locks locally and commits through
/// [`LockService::fast_finish`], which records the same unlock steps the
/// engine would emit.
#[allow(clippy::too_many_arguments)]
fn run_fast_attempt(
    service: &LockService,
    tx: TxId,
    plan: &[PolicyAction],
    shared: bool,
    config: &RuntimeConfig,
    deadline: Instant,
    trace: &mut Vec<(u64, ScheduledStep)>,
    aborted: &mut Vec<TxId>,
) -> AttemptEnd {
    let c = &service.counters;
    let halted = || c.halted.load(Ordering::Relaxed);
    let cert_from = trace.len();
    service.fast_begin(tx);
    let mut held: BTreeMap<EntityId, bool> = BTreeMap::new();
    for action in plan {
        match *action {
            PolicyAction::Lock(e) => loop {
                match service.fast_lock(tx, e, shared, trace) {
                    FastLockOutcome::Granted => {
                        held.insert(e, shared);
                        if config.step_yield {
                            std::thread::yield_now();
                        }
                        break;
                    }
                    FastLockOutcome::Conflict { holder, gen } => {
                        // Same waits-for edge discipline as the engine
                        // path: publish + walk at every conflict
                        // observation, retract before every retry.
                        c.lock_waits.fetch_add(1, Ordering::Relaxed);
                        if service.note_wait(tx, holder) {
                            service.clear_wait(tx);
                            service.fast_abort(tx, &held, trace, cert_from);
                            aborted.push(tx);
                            c.deadlock_aborts.fetch_add(1, Ordering::Relaxed);
                            return AttemptEnd::Retry;
                        }
                        if Instant::now() > deadline || halted() {
                            service.clear_wait(tx);
                            service.fast_abort(tx, &held, trace, cert_from);
                            aborted.push(tx);
                            return AttemptEnd::Abandoned;
                        }
                        service.park(e, gen, config.park_timeout);
                        service.clear_wait(tx);
                    }
                }
            },
            PolicyAction::Access(e) => {
                service.fast_data(tx, e, shared, trace);
                if config.step_yield {
                    std::thread::yield_now();
                }
            }
            // `fast_plan_mode` admits only Lock/Access.
            _ => unreachable!("ineligible action on the fast path"),
        }
    }
    if service.fast_finish(tx, &held, trace, cert_from) {
        c.committed.fetch_add(1, Ordering::Relaxed);
        AttemptEnd::Committed
    } else {
        c.certification_aborts.fetch_add(1, Ordering::Relaxed);
        aborted.push(tx);
        AttemptEnd::Retry
    }
}

/// Applies the shared fatal/transient rule and bumps the matching counter.
fn classify(c: &crate::service::Counters, v: &PolicyViolation) -> AttemptEnd {
    match Disposition::of(v) {
        Disposition::Reject => {
            c.rejected.fetch_add(1, Ordering::Relaxed);
            AttemptEnd::Dropped
        }
        Disposition::Retry => {
            c.policy_aborts.fetch_add(1, Ordering::Relaxed);
            AttemptEnd::Retry
        }
    }
}

/// Exponential backoff with a ceiling: attempt `n` sleeps
/// `min(base · 2ⁿ⁻¹, cap)` (yields instead of sleeping when base is zero).
fn backoff(attempt: u32, config: &RuntimeConfig) {
    if config.backoff_base.is_zero() {
        std::thread::yield_now();
        return;
    }
    let exp = attempt.saturating_sub(1).min(16);
    let wait = config
        .backoff_base
        .saturating_mul(1u32 << exp)
        .min(config.backoff_cap);
    std::thread::sleep(wait);
}
