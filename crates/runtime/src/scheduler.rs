//! The admission-stage conflict-DAG batch scheduler.
//!
//! The paper's policies resolve conflicts *reactively*: a worker
//! discovers a held lock at grant time and parks on the entity's stripe.
//! But the declared [`AccessIntent`](slp_policies::AccessIntent) handed
//! to `begin` already contains
//! everything needed to order conflicting transactions *before* they
//! run. This module builds that ordering up front, the way block
//! executors do: take the whole admission batch, build a conflict DAG
//! over it from the declared access sets, and dispatch
//! anti-dependency-free *waves* onto the worker pool.
//!
//! # DAG construction
//!
//! Vertices are jobs in admission order. Two jobs get an edge iff they
//! declare operations on a common entity and the operations are not both
//! read-class ([`DataOp::conflicts_with`] — the data-op projection of
//! the paper's benign set `{R, LS, US}`); the edge always points from
//! the lower admission index to the higher, so the DAG is acyclic by
//! construction. A job's *wave* is its longest-path depth: wave 0 is the
//! conflict-free frontier, wave `n + 1` everything whose newest
//! conflicting predecessor sits in wave `n`. Jobs inside one wave are
//! pairwise conflict-free **by declared intent** and run concurrently.
//!
//! Structural jobs (inserts/deletes — anything that changes what exists)
//! *fence* the batch: the fence runs in a wave of its own, strictly
//! after every job admitted before it and strictly before every job
//! admitted after. Traversals planned against the engine's live graph
//! therefore never race a concurrent structural change in the same
//! wave.
//!
//! # What the DAG is, and is not
//!
//! The DAG is an *optimization*, never a correctness claim. Declared
//! intents may under-approximate the locks a policy actually takes (a
//! DDAG traversal locks its whole dominator region, not just its
//! targets), so the policy engine remains the sole grant authority and
//! intra-wave conflicts still park exactly as without the scheduler —
//! [`SchedMode::Waves`] just makes them rare. The conflict edges the DAG
//! *did* order up front are counted
//! (`WavePlan::conflict_edges` → `sched_parks_avoided` in the report):
//! each one is a conflict that would otherwise have been discovered at
//! grant time.
//!
//! # Deterministic mode
//!
//! [`SchedMode::Deterministic`] pins the whole run to admission order —
//! a replayable "block execution" mode:
//!
//! * transaction ids are derived from the job's admission index (not a
//!   shared racing counter),
//! * per-entity engines run waves concurrently (their plain lock/access
//!   plans cover exactly the declared set, so waves are genuinely
//!   conflict-free); global-scope engines — whose lock footprint may
//!   exceed the declared intent — execute each wave's jobs one at a
//!   time, in admission order,
//! * and the merged trace is *renumbered* after the run: steps are
//!   regrouped per job in admission order and restamped densely. Only
//!   steps of non-conflicting transactions ever trade places (a
//!   conflicting pair is wave-ordered, and waves are barriers), so the
//!   renumbered schedule is conflict-equivalent to the executed one and
//!   byte-identical across worker counts and repeats.
//!
//! The wave barrier itself lives here (one mutex + condvar), not in the
//! lock service: a worker that drains the current wave blocks until the
//! in-flight jobs complete, then the whole pool advances through the
//! fence together.

use rustc_hash::FxHashMap;
use slp_core::{DataOp, EntityId};
use slp_sim::{ActionPlanner, Job};
use std::sync::{Condvar, Mutex};

/// Batch-scheduler mode ([`crate::RuntimeConfig::scheduler`], env
/// override `SLP_RUNTIME_SCHED` via
/// [`crate::RuntimeConfig::env_sched`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedMode {
    /// No scheduler: workers claim jobs off the shared cursor (the
    /// default — bit-compatible with the pre-scheduler runtime).
    #[default]
    Off,
    /// Conflict-DAG waves: jobs are dispatched wave by wave, so declared
    /// conflicts never meet inside a wave; parking remains the safety
    /// net for anything the intents under-declared.
    Waves,
    /// Waves plus a replayable commit order: admission-indexed
    /// transaction ids, admission-ordered trace renumbering, and serial
    /// wave execution for global-scope engines. The outcome fingerprint
    /// and the merged schedule are byte-identical across worker counts.
    Deterministic,
}

/// The conflict-DAG layering of one admission batch: which jobs run in
/// which wave, and how many conflict edges the DAG ordered up front.
pub(crate) struct WavePlan {
    /// Job indices per wave, admission-ordered within each wave.
    pub waves: Vec<Vec<usize>>,
    /// Conflict edges resolved by wave ordering instead of parking: one
    /// per immediate predecessor relation (latest mutator → next
    /// accessor, readers-since → next mutator) on each shared entity,
    /// plus the admission-order edges a structural fence pins.
    pub conflict_edges: u64,
}

/// Per-entity layering state while the batch is scanned in admission
/// order.
#[derive(Default)]
struct EntityTrack {
    /// Wave of the latest mutate-class job touching the entity.
    last_mut_wave: Option<usize>,
    /// Highest wave among read-class jobs since that mutator.
    max_read_wave: Option<usize>,
    /// How many read-class jobs accessed the entity since the last
    /// mutator (each is an edge source for the next mutator).
    readers_since: u64,
}

impl WavePlan {
    /// Layers `jobs` into conflict-free waves from the access classes
    /// `planner` declares (falling back to the job's own shape when the
    /// planner declares nothing — on-demand policies like 2PL).
    pub fn build(jobs: &[Job], planner: &dyn ActionPlanner) -> WavePlan {
        let mut waves: Vec<Vec<usize>> = Vec::new();
        let mut tracks: FxHashMap<EntityId, EntityTrack> = FxHashMap::default();
        let mut conflict_edges = 0u64;
        // Jobs admitted after a structural fence start at `floor`; the
        // fence itself occupies `max_wave + 1` alone.
        let mut floor = 0usize;
        for (ji, job) in jobs.iter().enumerate() {
            let (accesses, structural) = job_access_classes(planner, job);
            let mut wave = floor;
            for &(e, mutates) in &accesses {
                let t = tracks.entry(e).or_default();
                if let Some(w) = t.last_mut_wave {
                    wave = wave.max(w + 1);
                    conflict_edges += 1;
                }
                if mutates {
                    if let Some(w) = t.max_read_wave {
                        wave = wave.max(w + 1);
                    }
                    conflict_edges += t.readers_since;
                }
            }
            if structural {
                // The fence runs alone, strictly after everything
                // admitted so far; admission-order edges to the jobs it
                // fences off are pinned by construction, not counted.
                wave = wave.max(waves.len());
                floor = wave + 1;
            }
            for &(e, mutates) in &accesses {
                let t = tracks.entry(e).or_default();
                if mutates {
                    t.last_mut_wave = Some(t.last_mut_wave.map_or(wave, |w| w.max(wave)));
                    t.max_read_wave = None;
                    t.readers_since = 0;
                } else {
                    t.max_read_wave = Some(t.max_read_wave.map_or(wave, |w| w.max(wave)));
                    t.readers_since += 1;
                }
            }
            if wave >= waves.len() {
                waves.resize_with(wave + 1, Vec::new);
            }
            waves[wave].push(ji);
        }
        WavePlan {
            waves,
            conflict_edges,
        }
    }
}

/// The access classes one job declares: `(entity, mutate-class)` pairs
/// plus whether the job is structural (fences the batch).
///
/// The planner's [`AccessIntent`](slp_policies::AccessIntent) is the
/// source of truth when non-empty. On-demand planners declare nothing,
/// so the classes fall back to the job's own shape — with one deliberate
/// asymmetry: a read-only job is read-class only when single-target,
/// because that is the only shape the runtime guarantees a *shared*
/// lock for (the fast path's shared mode); a multi-target read job may
/// be locked exclusively and must be scheduled as a mutator.
fn job_access_classes(planner: &dyn ActionPlanner, job: &Job) -> (Vec<(EntityId, bool)>, bool) {
    let intent = planner.intent(job);
    let mut structural = job.insert_under.is_some();
    if !intent.is_empty() {
        let accesses = intent
            .ops
            .iter()
            .map(|(&e, ops)| {
                structural |= ops.iter().any(|o| o.is_structural());
                (e, ops.iter().any(|&o| o.conflicts_with(DataOp::Read)))
            })
            .collect();
        return (accesses, structural);
    }
    if let Some(ins) = job.insert_under {
        return (vec![(ins.parent, true), (ins.node, true)], true);
    }
    let shared = job.read_only && job.targets.len() == 1;
    (
        job.targets.iter().map(|&t| (t, !shared)).collect(),
        structural,
    )
}

/// The wave-dispatch cursor the workers claim jobs from: hands out the
/// current wave's jobs, then blocks claimers at the wave fence until
/// every in-flight job of the wave completes, and advances the whole
/// pool together. In `serial` mode (deterministic runs on global-scope
/// engines) at most one job is in flight at any moment, in admission
/// order.
pub(crate) struct WaveDispatch {
    waves: Vec<Vec<usize>>,
    serial: bool,
    state: Mutex<DispatchState>,
    fence: Condvar,
}

struct DispatchState {
    wave: usize,
    next: usize,
    active: usize,
}

impl WaveDispatch {
    /// A dispatcher over `waves` (job indices per wave).
    pub fn new(waves: Vec<Vec<usize>>, serial: bool) -> Self {
        WaveDispatch {
            waves,
            serial,
            state: Mutex::new(DispatchState {
                wave: 0,
                next: 0,
                active: 0,
            }),
            fence: Condvar::new(),
        }
    }

    /// Claims the next job index, blocking at wave fences; `None` once
    /// every wave is drained. Every `Some` claim must be matched by one
    /// [`complete`](WaveDispatch::complete) call, whatever the job's
    /// outcome — the fence counts in-flight jobs, not successes.
    pub fn claim(&self) -> Option<usize> {
        let mut st = self.state.lock().expect("wave dispatch poisoned");
        loop {
            let Some(wave_jobs) = self.waves.get(st.wave) else {
                // Drained: wake any claimer still parked at the fence.
                self.fence.notify_all();
                return None;
            };
            if st.next < wave_jobs.len() && (!self.serial || st.active == 0) {
                let ji = wave_jobs[st.next];
                st.next += 1;
                st.active += 1;
                return Some(ji);
            }
            if st.next >= wave_jobs.len() && st.active == 0 {
                st.wave += 1;
                st.next = 0;
                self.fence.notify_all();
                continue;
            }
            st = self.fence.wait(st).expect("wave dispatch poisoned");
        }
    }

    /// Marks one claimed job finished (committed, dropped, or
    /// abandoned). The last completion of a wave releases the fence.
    pub fn complete(&self) {
        let mut st = self.state.lock().expect("wave dispatch poisoned");
        st.active -= 1;
        if st.active == 0 {
            self.fence.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_policies::{AccessIntent, PolicyAction, PolicyEngine, PolicyViolation};

    /// Declares exactly the job's targets (read+write, or read for
    /// read-only jobs) — a complete-intent planner for layering tests.
    struct DeclaringPlanner;

    impl ActionPlanner for DeclaringPlanner {
        fn intent(&self, job: &Job) -> AccessIntent {
            AccessIntent {
                ops: job
                    .targets
                    .iter()
                    .map(|&t| {
                        let ops = if job.read_only {
                            vec![DataOp::Read]
                        } else {
                            vec![DataOp::Read, DataOp::Write]
                        };
                        (t, ops)
                    })
                    .collect(),
            }
        }

        fn plan(
            &mut self,
            _engine: &dyn PolicyEngine,
            _job: &Job,
        ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
            Ok(None)
        }
    }

    /// Declares nothing (the 2PL shape): classes fall back to the job.
    struct SilentPlanner;

    impl ActionPlanner for SilentPlanner {
        fn intent(&self, _job: &Job) -> AccessIntent {
            AccessIntent::empty()
        }

        fn plan(
            &mut self,
            _engine: &dyn PolicyEngine,
            _job: &Job,
        ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
            Ok(None)
        }
    }

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn disjoint_writers_share_wave_zero() {
        let jobs = vec![
            Job::access(vec![e(0)]),
            Job::access(vec![e(1)]),
            Job::access(vec![e(2)]),
        ];
        let plan = WavePlan::build(&jobs, &DeclaringPlanner);
        assert_eq!(plan.waves, vec![vec![0, 1, 2]]);
        assert_eq!(plan.conflict_edges, 0);
    }

    #[test]
    fn conflicting_writers_chain_one_wave_each() {
        let jobs = vec![
            Job::access(vec![e(0)]),
            Job::access(vec![e(0)]),
            Job::access(vec![e(0)]),
        ];
        let plan = WavePlan::build(&jobs, &DeclaringPlanner);
        assert_eq!(plan.waves, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(plan.conflict_edges, 2, "one edge per adjacent pair");
    }

    #[test]
    fn readers_share_a_wave_and_fan_into_the_next_writer() {
        // W(0) ; R(0) R(0) R(0) ; W(0) — the stratus read-class rule:
        // the readers pack one wave, the next writer waits for them all.
        let jobs = vec![
            Job::access(vec![e(0)]),
            Job::read(vec![e(0)]),
            Job::read(vec![e(0)]),
            Job::read(vec![e(0)]),
            Job::access(vec![e(0)]),
        ];
        let plan = WavePlan::build(&jobs, &DeclaringPlanner);
        assert_eq!(plan.waves, vec![vec![0], vec![1, 2, 3], vec![4]]);
        // writer→reader ×3, reader→writer ×3, writer→writer ×1.
        assert_eq!(plan.conflict_edges, 7);
    }

    #[test]
    fn structural_jobs_fence_a_wave_alone() {
        let jobs = vec![
            Job::access(vec![e(0)]),
            Job::access(vec![e(1)]),
            Job::insert(e(0), e(9)),
            Job::access(vec![e(1)]),
        ];
        let plan = WavePlan::build(&jobs, &DeclaringPlanner);
        // The insert runs alone after wave 0, and the job admitted after
        // it starts past the fence even though e(1) was last touched in
        // wave 0.
        assert_eq!(plan.waves, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn silent_planners_fall_back_to_the_job_shape() {
        let jobs = vec![
            Job::access(vec![e(0), e(1)]),
            // Single-target read: the only shape guaranteed a shared
            // lock — read-class, shares the writer's *next* wave with
            // nothing on e(0) until the writer is done.
            Job::read(vec![e(0)]),
            Job::read(vec![e(0)]),
            // Multi-target read: may be locked exclusively, so it is
            // scheduled as a mutator.
            Job::read(vec![e(0), e(1)]),
        ];
        let plan = WavePlan::build(&jobs, &SilentPlanner);
        assert_eq!(plan.waves, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn dispatch_hands_out_waves_in_order_with_a_fence() {
        let d = WaveDispatch::new(vec![vec![0, 1], vec![2]], false);
        assert_eq!(d.claim(), Some(0));
        assert_eq!(d.claim(), Some(1));
        d.complete();
        d.complete();
        // Wave 0 fully complete: the fence opens into wave 1.
        assert_eq!(d.claim(), Some(2));
        d.complete();
        assert_eq!(d.claim(), None);
        assert_eq!(d.claim(), None, "drained dispatch stays drained");
    }

    #[test]
    fn dispatch_fence_blocks_until_inflight_jobs_complete() {
        use std::sync::Arc;
        let d = Arc::new(WaveDispatch::new(vec![vec![0], vec![1]], false));
        assert_eq!(d.claim(), Some(0));
        let d2 = Arc::clone(&d);
        let waiter = std::thread::spawn(move || d2.claim());
        // The waiter cannot cross the fence while job 0 is in flight.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "fence crossed with a job in flight");
        d.complete();
        assert_eq!(waiter.join().unwrap(), Some(1));
        d.complete();
        assert_eq!(d.claim(), None);
    }

    #[test]
    fn serial_dispatch_runs_one_job_at_a_time() {
        let d = WaveDispatch::new(vec![vec![0, 1]], true);
        assert_eq!(d.claim(), Some(0));
        let started = std::time::Instant::now();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|s| {
            s.spawn(|| {
                let claimed = d.claim();
                tx.send((claimed, started.elapsed())).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            d.complete();
        });
        let (claimed, after) = rx.recv().unwrap();
        assert_eq!(claimed, Some(1));
        assert!(
            after >= std::time::Duration::from_millis(15),
            "serial claim must wait for the in-flight job"
        );
        d.complete();
        assert_eq!(d.claim(), None);
    }
}
