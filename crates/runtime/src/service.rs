//! The sharded lock service: one [`PolicyEngine`] serving many worker
//! threads.
//!
//! The engine is the serialization point for policies whose grants read
//! global state — every grant/refuse decision mutates shared policy
//! state (lock table, wakes, graph), so those decisions run under one
//! write lock. For per-entity policies
//! ([`slp_policies::GrantScope::PerEntity`]) the common case bypasses
//! even that: eligible requests are decided by a CAS on the entity's own
//! atomic lock word ([`crate::fastpath`]), and the words — not the
//! engine table — are then the grant authority (engine-path requests in
//! such a run acquire the word *first*). Everything *around* those
//! points is sharded or lock-free:
//!
//! * **planning** takes the engine's read lock (planners only read — the
//!   DDAG planner's dominator-region layout, the expensive part of a
//!   traversal, runs concurrently with other planners and never blocks on
//!   a writer queueing behind it only for the duration of one request);
//! * **parking** is entity-striped: a conflicting transaction parks on the
//!   stripe of the contended entity and only unlocks of entities hashing
//!   to that stripe wake it — uncontended stripes never touch a parked
//!   worker's condvar;
//! * **trace recording** is per-worker: granted steps are stamped from one
//!   global atomic sequence counter *while the granting context is held*
//!   — the engine lock, or (fast path) the touched entities' lock words.
//!   The stamp-ordering contract: an acquire's stamp is fetched after the
//!   acquire, a release's before the release, data stamps in between —
//!   so for every entity the counter's monotonicity orders conflicting
//!   steps exactly as the grants serialized, whichever path granted
//!   them, and the buffers merged by
//!   [`slp_core::Schedule::from_sequenced`] are a faithful schedule
//!   without any runtime coordination;
//! * **accounting** is plain atomics.
//!
//! Lost wakeups are impossible by construction: the stripe generation a
//! worker will park on is read *inside* the engine section that observed
//! its conflict ([`BatchOutcome::Conflict`]), and the worker parks only
//! if that generation is still unchanged under the stripe lock — any
//! release that could invalidate the conflict is recorded after that
//! engine section and bumps the generation first (releases bump under
//! the stripe lock, before `notify_all`). Deadlock detection is complete because a
//! waiter refreshes its waits-for edge to the current holder before every
//! park (see [`LockService::note_wait`]), so with a generous timeout the
//! park-timeout backstop never fires on a healthy run — firings are
//! counted ([`Counters::park_timeouts`]) and surfaced in the report as
//! lost-wakeup evidence.

use crate::fastpath::{LockWords, WaitGraph};
use crate::runner::CertifyMode;
use slp_core::{
    CertViolation, DataOp, EntityId, IncrementalCertifier, LockMode, Operation, ScheduledStep,
    Step, TxId, VersionedRead,
};
use slp_durability::Wal;
use slp_mvcc::{CommitPipeline, MvccStore, VisibilityRule};
use slp_policies::{AccessIntent, PolicyAction, PolicyEngine, PolicyResponse, PolicyViolation};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// One parking stripe: a generation counter advanced on every unlock of an
/// entity hashing here, plus the condvar parked workers wait on.
struct Stripe {
    gen: Mutex<u64>,
    cv: Condvar,
}

/// The outcome of [`LockService::request_batch`].
pub(crate) enum BatchOutcome {
    /// All attempted actions were granted.
    Granted { granted: usize },
    /// `granted` actions ran, then the next conflicted.
    Conflict {
        granted: usize,
        entity: EntityId,
        holder: TxId,
        /// The conflicting entity's stripe generation, read *inside* the
        /// engine section that observed the conflict. Any release that
        /// could invalidate the conflict is recorded after that section,
        /// so its generation bump strictly follows this read — parking on
        /// `gen` can never miss it.
        gen: u64,
    },
    /// Some actions may have run, then the policy refused the next
    /// outright (the requester aborts, so the count doesn't matter).
    Violation { violation: PolicyViolation },
}

/// The outcome of one [`LockService::fast_lock`] attempt.
pub(crate) enum FastLockOutcome {
    /// The word CAS won: the lock is held and its step recorded.
    Granted,
    /// The word is held against us; park on `gen` (read with the same
    /// discipline as [`BatchOutcome::Conflict`]) and retry.
    Conflict {
        /// The holder (or shared-episode representative) to publish a
        /// waits-for edge against.
        holder: TxId,
        /// The entity's stripe generation, read after the conflict was
        /// observed and rechecked — see [`LockService::fast_lock`].
        gen: u64,
    },
}

/// Shared accounting, all atomics (no lock on the hot path).
#[derive(Default)]
pub(crate) struct Counters {
    pub attempts: AtomicUsize,
    pub committed: AtomicUsize,
    pub policy_aborts: AtomicUsize,
    pub deadlock_aborts: AtomicUsize,
    pub rejected: AtomicUsize,
    pub abandoned: AtomicUsize,
    /// Transactions aborted by strict-mode certification recovery (the
    /// cycle victim was retracted and its job retried).
    pub certification_aborts: AtomicUsize,
    pub lock_waits: AtomicU64,
    pub park_timeouts: AtomicU64,
    pub grants: AtomicU64,
    /// Grants decided by a per-entity lock-word CAS, bypassing the engine
    /// lock entirely (subset of `grants`).
    pub fast_path_grants: AtomicU64,
    /// Grants decided under the engine write lock (subset of `grants`;
    /// with the fast path off this equals `grants`).
    pub slow_path_grants: AtomicU64,
    /// Attempts routed to the engine in a fast-capable run because their
    /// plan fell outside the fast path's plain lock/access shape.
    pub fast_path_fallbacks: AtomicU64,
    pub parks: AtomicU64,
    /// MVCC snapshot read steps served without touching the lock service.
    pub snapshot_reads: AtomicU64,
    pub timed_out: AtomicBool,
    /// Backstop only: set when strict certification latches a cycle it
    /// cannot recover from by retracting the feeding transaction (which
    /// should be impossible — every edge a feed adds touches the feeder).
    /// Workers treat it like an expired deadline and drain.
    pub halted: AtomicBool,
}

/// The MVCC side of a run with snapshot reads enabled: the versioned
/// store writers install into at grant time, the commit pipeline that
/// orders status-table flips into serialization order, and the
/// visibility rule snapshot reads apply ([`VisibilityRule::Broken`] only
/// in the scripted negative control).
pub(crate) struct MvccState {
    pub store: MvccStore,
    pub pipeline: CommitPipeline,
    pub rule: VisibilityRule,
}

impl MvccState {
    /// A fresh store + pipeline applying `rule`.
    pub fn new(rule: VisibilityRule) -> Self {
        MvccState {
            store: MvccStore::new(),
            pipeline: CommitPipeline::new(),
            rule,
        }
    }
}

/// The shared front-end the worker threads drive.
pub(crate) struct LockService {
    engine: RwLock<Box<dyn PolicyEngine>>,
    stripes: Vec<Stripe>,
    waits_for: WaitGraph,
    /// The per-entity atomic lock-word table, when the run's policy
    /// qualifies for the sharded grant fast path
    /// ([`slp_policies::GrantScope::PerEntity`] and the knob is on). When
    /// present, the words — not the engine's lock table — are the grant
    /// authority for covered entities: engine-path transactions acquire
    /// the word *before* asking the engine, so a fast-path CAS and a
    /// slow-path engine grant can never both win the same entity.
    fast: Option<LockWords>,
    seq: AtomicU64,
    /// Write-ahead log, when the run is durable. Appends happen *after*
    /// the engine lock is dropped (same position as the wake pass) so the
    /// fsync cost never sits on the serialization point; stamps — taken
    /// inside the lock — arbitrate the cross-worker byte order on replay.
    wal: Option<Arc<Wal>>,
    /// Online serialization-graph certifier, when the run certifies.
    /// Fed *after* the engine lock is dropped (same position as the wake
    /// pass): the stamps taken inside the lock already fix the edge
    /// directions, so the certifier tolerates out-of-order arrival and
    /// its mutex never sits on the serialization point.
    certifier: Option<CertChannel>,
    strict_certify: bool,
    /// Versioned store + commit pipeline when the run serves snapshot
    /// reads ([`crate::RuntimeConfig::snapshot_reads`]), else `None` and
    /// the MVCC paths cost nothing.
    mvcc: Option<MvccState>,
    /// The first cycle strict-mode certification caught and recovered
    /// from by retraction — kept for the report (the certifier's own
    /// latch is cleared by the recovery).
    first_violation: Mutex<Option<CertViolation>>,
    pub counters: Counters,
}

/// A batch parked in the spill lane, with the transaction to seal after
/// feeding it (and whether it aborted) when the attempt ended.
enum SpilledBatch {
    /// A stamped step batch (locked accesses).
    Steps(Vec<(u64, ScheduledStep)>, Option<(TxId, bool)>),
    /// A snapshot-read batch with explicit pivots; the reader seals
    /// (committed) after feeding.
    Reads(Vec<VersionedRead>, TxId),
}

/// Feeds one batch — spilled or fresh — to the certifier.
fn feed(cert: &mut IncrementalCertifier, batch: SpilledBatch) {
    match batch {
        SpilledBatch::Steps(steps, seal) => {
            cert.observe_trace(&steps);
            if let Some((tx, aborted)) = seal {
                cert.seal_with(tx, aborted);
            }
        }
        SpilledBatch::Reads(reads, tx) => {
            cert.observe_snapshot_reads(&reads);
            cert.seal_with(tx, false);
        }
    }
}

/// The certifier and its overflow lane. Feeding never blocks on the
/// graph: a worker that loses the `try_lock` race copies its batch into
/// `spill` (a push under a lock held for nanoseconds) and moves on; the
/// graph holder drains the spill before releasing, and
/// [`LockService::into_parts`] drains whatever the last holder missed.
/// Edges are ordered by stamps, not arrival, so the deferred feed never
/// changes the verdict.
struct CertChannel {
    graph: Mutex<IncrementalCertifier>,
    spill: Mutex<Vec<SpilledBatch>>,
    /// Number of batches sitting in `spill`; lets the drain loop skip the
    /// spill mutex entirely on the (overwhelmingly common) empty case.
    spilled: AtomicUsize,
}

impl LockService {
    /// `stripes` is clamped to 1..=64 (the wake path dedupes released
    /// stripes in a fixed bitmap). `wal`, when present, receives every
    /// recorded step batch and commit. `certify` builds the online
    /// certifier ([`CertifyMode::Off`] costs nothing on the hot path).
    /// `fast`, when present, activates the sharded grant fast path (the
    /// runner builds the word table only for
    /// [`slp_policies::GrantScope::PerEntity`] engines).
    pub fn new(
        engine: Box<dyn PolicyEngine>,
        stripes: usize,
        wal: Option<Arc<Wal>>,
        certify: CertifyMode,
        mvcc: Option<MvccState>,
        fast: Option<LockWords>,
    ) -> Self {
        let stripes = stripes.clamp(1, 64);
        LockService {
            engine: RwLock::new(engine),
            stripes: (0..stripes)
                .map(|_| Stripe {
                    gen: Mutex::new(0),
                    cv: Condvar::new(),
                })
                .collect(),
            waits_for: WaitGraph::new(stripes),
            fast,
            seq: AtomicU64::new(0),
            wal,
            certifier: (certify != CertifyMode::Off).then(|| CertChannel {
                graph: Mutex::new(IncrementalCertifier::new()),
                spill: Mutex::new(Vec::new()),
                spilled: AtomicUsize::new(0),
            }),
            strict_certify: certify == CertifyMode::Strict,
            mvcc,
            first_violation: Mutex::new(None),
            counters: Counters::default(),
        }
    }

    /// Whether this run serves read-only jobs from MVCC snapshots.
    pub fn snapshot_reads_enabled(&self) -> bool {
        self.mvcc.is_some()
    }

    /// The first cycle strict-mode certification caught (and recovered
    /// from by retracting the victim) — the certifier's own latch is
    /// cleared by the recovery, so the report reads it from here.
    pub fn recovered_violation(&self) -> Option<CertViolation> {
        self.first_violation
            .lock()
            .expect("violation latch poisoned")
            .clone()
    }

    /// Recovers the engine and the certifier after the run (all workers
    /// joined).
    pub fn into_parts(self) -> (Box<dyn PolicyEngine>, Option<IncrementalCertifier>) {
        (
            self.engine.into_inner().expect("engine lock poisoned"),
            self.certifier.map(|ch| {
                let mut cert = ch.graph.into_inner().expect("certifier lock poisoned");
                // Batches spilled after the last holder's drain pass.
                for batch in ch.spill.into_inner().expect("spill lock poisoned") {
                    feed(&mut cert, batch);
                }
                cert
            }),
        )
    }

    fn stripe(&self, e: EntityId) -> &Stripe {
        &self.stripes[e.0 as usize % self.stripes.len()]
    }

    /// Parks until the entity's stripe generation moves past `seen` or the
    /// timeout elapses (spurious wakeups and timeouts are safe — callers
    /// re-request in a loop).
    pub fn park(&self, e: EntityId, seen: u64, timeout: Duration) {
        let stripe = self.stripe(e);
        let mut gen = stripe.gen.lock().expect("stripe lock");
        if *gen != seen {
            // A release already moved the generation: fall through
            // without blocking (not a park, not a timeout).
            return;
        }
        self.counters.parks.fetch_add(1, Ordering::Relaxed);
        while *gen == seen {
            let (g, res) = stripe
                .cv
                .wait_timeout(gen, timeout)
                .expect("stripe lock poisoned");
            gen = g;
            if res.timed_out() {
                // The backstop fired instead of a wakeup — but only a
                // timeout with the generation still unmoved is evidence
                // of a lost wakeup. `wait_timeout` reports timed-out
                // whenever the deadline passed, even if a release bumped
                // the generation while we waited to reacquire the stripe
                // lock; counting that race would flake the stress
                // matrix's zero-timeouts assertion.
                if *gen == seen {
                    self.counters.park_timeouts.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        }
    }

    /// Bumps the stripe generation of every entity released in
    /// `trace[from..]` — the steps the current call recorded — and wakes
    /// their parked workers. The one wake rule, shared by the grant,
    /// finish, and abort paths: callers snapshot `trace.len()` before
    /// taking the engine lock and call this after dropping it, so woken
    /// workers contend on the engine, not on us.
    fn wake_recorded(&self, trace: &[(u64, ScheduledStep)], from: usize) {
        // Dedupe stripes per batch: one bump + notify per stripe. The
        // bound is load-bearing in release builds — indexing `bumped`
        // past it would skip wakes (a lost-wakeup bug), not just panic.
        let mut bumped = [false; 64];
        assert!(self.stripes.len() <= 64, "stripe count exceeds wake bitmap");
        for (_, s) in &trace[from..] {
            if !s.step.is_unlock() {
                continue;
            }
            let idx = s.step.entity.0 as usize % self.stripes.len();
            if bumped[idx] {
                continue;
            }
            bumped[idx] = true;
            let stripe = &self.stripes[idx];
            *stripe.gen.lock().expect("stripe lock") += 1;
            stripe.cv.notify_all();
        }
    }

    /// Appends the steps this call recorded (`trace[from..]`) to the
    /// write-ahead log, if the run is durable. Called after the engine
    /// lock is dropped. A failed log is skipped silently here — the run
    /// completes in memory and the failure surfaces in the report's
    /// [`slp_durability::WalSummary`].
    fn log_recorded(&self, trace: &[(u64, ScheduledStep)], from: usize) {
        if let Some(wal) = &self.wal {
            if !wal.is_failed() {
                let _ = wal.append_steps(&trace[from..]);
            }
        }
    }

    /// Appends `tx`'s commit record: it is durably committed once the
    /// contiguous-stamp watermark covers its last step. The worker's own
    /// trace holds every step of its transaction, so the requirement is
    /// one past the newest stamp attributed to `tx` (0 if it never took a
    /// step — such a commit is durable from the start).
    fn log_commit(&self, tx: TxId, trace: &[(u64, ScheduledStep)]) {
        if let Some(wal) = &self.wal {
            if !wal.is_failed() {
                let required = trace
                    .iter()
                    .rev()
                    .find(|(_, s)| s.tx == tx)
                    .map_or(0, |&(stamp, _)| stamp + 1);
                let _ = wal.append_commit(tx, required);
            }
        }
    }

    /// Feeds an attempt's recorded steps (`trace[from..]`) to the online
    /// certifier, sealing `seal` afterwards when the attempt retired its
    /// transaction (commit or abort — either way it takes no further
    /// steps, which is what makes it truncatable). Called from
    /// [`finish`](LockService::finish) / [`abort`](LockService::abort)
    /// after the engine lock is dropped, once per attempt rather than per
    /// engine section — the certifier orders edges by stamp, so feeding
    /// late (and in arbitrary order across workers) never changes the
    /// verdict, and one graph acquisition per attempt keeps the certifier
    /// off the grant path. The acquisition is a `try_lock`: a worker that
    /// loses the race spills a copy of its batch instead of blocking (see
    /// [`CertChannel`]), so certification never convoys the workers.
    /// Monitor mode only — strict mode certifies through
    /// [`certify_strict`](LockService::certify_strict).
    fn certify_recorded(
        &self,
        trace: &[(u64, ScheduledStep)],
        from: usize,
        seal: Option<(TxId, bool)>,
    ) {
        let Some(ch) = &self.certifier else {
            return;
        };
        if trace.len() == from && seal.is_none() {
            return;
        }
        let mut cert = match ch.graph.try_lock() {
            Ok(cert) => cert,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.spill(ch, SpilledBatch::Steps(trace[from..].to_vec(), seal));
                return;
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("certifier lock poisoned"),
        };
        feed(&mut cert, SpilledBatch::Steps(trace[from..].to_vec(), seal));
        self.drain_spill(ch, &mut cert);
    }

    /// Feeds a read-only job's snapshot reads (monitor mode): same
    /// try-lock-or-spill discipline as [`certify_recorded`], with the
    /// explicit-pivot feed path — workers publish out of order, so the
    /// certifier cannot reconstruct observed versions from arrival state.
    fn certify_reads(&self, reads: Vec<VersionedRead>, tx: TxId) {
        let Some(ch) = &self.certifier else {
            return;
        };
        if reads.is_empty() {
            return;
        }
        let mut cert = match ch.graph.try_lock() {
            Ok(cert) => cert,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.spill(ch, SpilledBatch::Reads(reads, tx));
                return;
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("certifier lock poisoned"),
        };
        feed(&mut cert, SpilledBatch::Reads(reads, tx));
        self.drain_spill(ch, &mut cert);
    }

    fn spill(&self, ch: &CertChannel, batch: SpilledBatch) {
        let mut spill = ch.spill.lock().expect("spill lock poisoned");
        spill.push(batch);
        // Updated under the spill lock, so the counter always agrees
        // with the contents.
        ch.spilled.store(spill.len(), Ordering::Release);
    }

    /// Drains batches spilled while the caller held (or raced for) the
    /// graph. Looping until the spill is observed empty shrinks the
    /// window a concurrent spill can land in; anything that still slips
    /// through is drained by the next holder or by `into_parts`.
    fn drain_spill(&self, ch: &CertChannel, cert: &mut IncrementalCertifier) {
        while ch.spilled.load(Ordering::Acquire) != 0 {
            let drained = {
                let mut spill = ch.spill.lock().expect("spill lock poisoned");
                ch.spilled.store(0, Ordering::Release);
                std::mem::take(&mut *spill)
            };
            for batch in drained {
                feed(cert, batch);
            }
        }
    }

    /// Strict-mode certification of one finished attempt: feed + seal
    /// under a **blocking** graph acquisition (strict mode never spills —
    /// the latch-and-recover step must be atomic with the feed), and
    /// *recover* from a latched violation instead of halting. Every edge
    /// a feed inserts touches the feeding transaction (its own steps, or
    /// parked edges flushed at its seal), so a cycle latched here always
    /// runs through `tx`: retracting `tx` from the graph breaks the
    /// cycle, clears the latch, and the run continues — the committed
    /// remainder stays certified-acyclic. Returns `true` when a
    /// *committing* `tx` was certification-aborted (the caller must not
    /// make it durable or visible); for an already-aborting `tx` the
    /// retraction is just cleanup and the return is `false`.
    fn certify_strict(
        &self,
        tx: TxId,
        trace: &[(u64, ScheduledStep)],
        from: usize,
        reads: Option<&[VersionedRead]>,
        aborted: bool,
    ) -> bool {
        let Some(ch) = &self.certifier else {
            return false;
        };
        let mut cert = ch.graph.lock().expect("certifier lock poisoned");
        match reads {
            Some(r) => cert.observe_snapshot_reads(r),
            None => cert.observe_trace(&trace[from..]),
        }
        if cert.violation().is_none() {
            cert.seal_with(tx, aborted);
        }
        let Some(v) = cert.violation().cloned() else {
            return false;
        };
        if v.cycle.contains(&tx) {
            // Latch the autopsy before recovering: the report must still
            // show what was caught even though the run continues.
            let mut first = self
                .first_violation
                .lock()
                .expect("violation latch poisoned");
            if first.is_none() {
                *first = Some(v);
            }
            drop(first);
            cert.retract(tx);
            !aborted
        } else {
            // A cycle not through the feeder cannot be recovered here; it
            // should be impossible (see above). Halt rather than
            // mis-certify.
            self.counters.halted.store(true, Ordering::Relaxed);
            false
        }
    }

    /// Stamps `steps` for `tx` into `trace` with consecutive global
    /// sequence numbers. Must be called while holding the serialization
    /// context that granted the steps — the engine write lock, or (fast
    /// path) the touched entities' lock words. Either way the stamps for
    /// one entity are fetched strictly between that entity's acquire and
    /// release, so the merged trace orders conflicting steps exactly as
    /// the grants serialized them (the stamp-ordering contract; see the
    /// module docs). With MVCC enabled, the same held section also
    /// installs versions (writes/inserts/deletes) into the store and
    /// registers lock grants with the commit pipeline — so version
    /// install order matches the serialization order the stamps record.
    fn record(&self, tx: TxId, steps: Vec<Step>, trace: &mut Vec<(u64, ScheduledStep)>) {
        let base = self.seq.fetch_add(steps.len() as u64, Ordering::Relaxed);
        for (i, s) in steps.into_iter().enumerate() {
            let stamp = base + i as u64;
            if let Some(m) = &self.mvcc {
                match s.op {
                    Operation::Lock(mode) => {
                        m.pipeline
                            .note_lock(tx, s.entity, mode == LockMode::Exclusive)
                    }
                    Operation::Data(DataOp::Write) | Operation::Data(DataOp::Insert) => {
                        m.store.install(s.entity, tx, stamp)
                    }
                    Operation::Data(DataOp::Delete) => m.store.delete(s.entity, tx, stamp),
                    _ => {}
                }
            }
            trace.push((stamp, ScheduledStep::new(tx, s)));
        }
    }

    /// Frees every lock word whose release `trace[from..]` just recorded
    /// (no-op when the fast path is inactive). Must run *before*
    /// [`wake_recorded`](LockService::wake_recorded) for the same range:
    /// a woken waiter re-reads the word, so the word must be free by the
    /// time the generation bumps.
    fn release_recorded_words(&self, tx: TxId, trace: &[(u64, ScheduledStep)], from: usize) {
        let Some(words) = &self.fast else {
            return;
        };
        for (_, s) in &trace[from..] {
            if let Operation::Unlock(mode) = s.step.op {
                words.release(s.step.entity, tx, mode == LockMode::Shared);
            }
        }
    }

    /// Releases a lock word acquired by [`sync_word_acquire`] whose
    /// engine request was then refused — no unlock step will ever be
    /// recorded for it, so the word (and any waiter parked on it) must be
    /// handled here. Safe under the engine write lock (stripe-lock
    /// holders never take the engine lock).
    fn drop_sync_word(&self, e: EntityId, tx: TxId) {
        if let Some(words) = &self.fast {
            if words.release(e, tx, false) {
                let stripe = self.stripe(e);
                *stripe.gen.lock().expect("stripe lock") += 1;
                stripe.cv.notify_all();
            }
        }
    }

    /// Acquires `e`'s lock word for engine-path transaction `tx` (always
    /// exclusive — the engine's lock manager grants exclusively). In a
    /// fast-active run the words are the grant authority, so the word
    /// comes *before* the engine's own table: `Ok(true)` means freshly
    /// acquired, `Ok(false)` means `tx` already held it (a relock — the
    /// engine rules on it, and the word must NOT be released on that
    /// verdict), `Err` carries the conflicting holder and the stripe
    /// generation to park on, read with the same recheck discipline as
    /// the fast path ([`fast_lock`](LockService::fast_lock)).
    fn sync_word_acquire(&self, e: EntityId, tx: TxId) -> Result<bool, (TxId, u64)> {
        let words = self.fast.as_ref().expect("fast path inactive");
        loop {
            match words.try_acquire(e, tx, false) {
                Ok(()) => return Ok(true),
                Err(h) if h == tx => return Ok(false),
                Err(_) => {
                    let gen = *self.stripe(e).gen.lock().expect("stripe lock");
                    // Recheck after the generation read: a release that
                    // freed the word before the read would otherwise be
                    // parked past (its bump precedes the read).
                    match words.conflicting_holder(e, false) {
                        None => continue,
                        Some(h) if h == tx => return Ok(false),
                        Some(h) => return Err((h, gen)),
                    }
                }
            }
        }
    }

    /// Plans `job` under the engine's *read* lock (planners only read).
    pub fn plan(
        &self,
        planner: &mut dyn slp_sim::ActionPlanner,
        job: &slp_sim::Job,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        let engine = self.engine.read().expect("engine lock poisoned");
        planner.plan(&**engine, job)
    }

    /// Begins `tx`; returns the engine's precomputed plan if any. With
    /// MVCC enabled the transaction also registers as a writer with the
    /// commit pipeline (its status-table flip orders behind lock-order
    /// predecessors).
    pub fn begin(
        &self,
        tx: TxId,
        intent: &AccessIntent,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        let mut engine = self.engine.write().expect("engine lock poisoned");
        let plan = engine.begin(tx, intent)?;
        if let Some(m) = &self.mvcc {
            m.pipeline.begin_writer(tx);
        }
        Ok(plan)
    }

    /// Requests up to `max` consecutive actions of `plan` for `tx` under
    /// ONE engine-lock acquisition, recording granted steps into `trace`.
    /// Stops early at the first conflict or violation. Batching amortizes
    /// the serialization point; `max == 1` maximizes interleaving (the
    /// conformance suites run there).
    pub fn request_batch(
        &self,
        tx: TxId,
        plan: &[PolicyAction],
        max: usize,
        trace: &mut Vec<(u64, ScheduledStep)>,
    ) -> BatchOutcome {
        let mut granted = 0usize;
        let from = trace.len();
        let outcome = {
            let mut engine = self.engine.write().expect("engine lock poisoned");
            loop {
                if granted >= max.max(1) || granted >= plan.len() {
                    break BatchOutcome::Granted { granted };
                }
                let action = plan[granted];
                // In a fast-active run the lock words are the grant
                // authority even here: acquire the word before asking the
                // engine, so an engine grant can never race a fast-path
                // CAS on the same entity.
                let mut fresh_word = None;
                if let PolicyAction::Lock(e) = action {
                    if self.fast.as_ref().is_some_and(|w| w.covers(e)) {
                        match self.sync_word_acquire(e, tx) {
                            Ok(fresh) => fresh_word = fresh.then_some(e),
                            Err((holder, gen)) => {
                                break BatchOutcome::Conflict {
                                    granted,
                                    entity: e,
                                    holder,
                                    gen,
                                };
                            }
                        }
                    }
                }
                match engine.request(tx, action) {
                    PolicyResponse::Granted(steps) => {
                        self.record(tx, steps, trace);
                        granted += 1;
                    }
                    PolicyResponse::Conflict { entity, holder } => {
                        // Unreachable for a word-covered entity (holding
                        // the word means no engine-path transaction holds
                        // the engine entry) — but if the engine disagrees,
                        // its verdict stands and the word goes back.
                        if let Some(e) = fresh_word {
                            self.drop_sync_word(e, tx);
                        }
                        // Nested stripe-lock acquisition under the engine
                        // write lock is deadlock-free: stripe-lock holders
                        // never take the engine lock.
                        let gen = *self.stripe(entity).gen.lock().expect("stripe lock");
                        break BatchOutcome::Conflict {
                            granted,
                            entity,
                            holder,
                            gen,
                        };
                    }
                    PolicyResponse::Violation(violation) => {
                        // A freshly taken word whose engine request was
                        // refused will never see an unlock step: release
                        // it here. (A relock kept `fresh_word` empty — the
                        // original grant's word stays held to the end.)
                        if let Some(e) = fresh_word {
                            self.drop_sync_word(e, tx);
                        }
                        break BatchOutcome::Violation { violation };
                    }
                }
            }
        };
        if granted > 0 {
            self.counters
                .grants
                .fetch_add(granted as u64, Ordering::Relaxed);
            self.counters
                .slow_path_grants
                .fetch_add(granted as u64, Ordering::Relaxed);
        }
        self.release_recorded_words(tx, trace, from);
        self.wake_recorded(trace, from);
        self.log_recorded(trace, from);
        outcome
    }

    /// Finishes `tx`, recording its final unlocks. `cert_from` is the
    /// trace index where the attempt began: everything the attempt
    /// recorded (`trace[cert_from..]`) is fed to the online certifier in
    /// one batch. Returns `Ok(true)` on commit; `Ok(false)` when strict
    /// certification recovered by aborting `tx` instead (no commit
    /// record, no visibility flip — the caller retries the job as a
    /// fresh transaction).
    pub fn finish(
        &self,
        tx: TxId,
        trace: &mut Vec<(u64, ScheduledStep)>,
        cert_from: usize,
    ) -> Result<bool, PolicyViolation> {
        let from = trace.len();
        {
            let mut engine = self.engine.write().expect("engine lock poisoned");
            let steps = engine.finish(tx)?;
            self.record(tx, steps, trace);
        }
        self.release_recorded_words(tx, trace, from);
        self.wake_recorded(trace, from);
        self.log_recorded(trace, from);
        if self.strict_certify && self.certify_strict(tx, trace, cert_from, None, false) {
            // Certification abort: the transaction's recorded steps stay
            // in the trace and the log (like any aborted transaction's),
            // but it gets no commit record and its versions never become
            // visible.
            if let Some(m) = &self.mvcc {
                m.pipeline.abort(tx);
            }
            return Ok(false);
        }
        self.log_commit(tx, trace);
        if let Some(m) = &self.mvcc {
            // Visibility flip strictly after the commit record: a
            // snapshot never observes a writer the log could lose.
            m.pipeline.commit(tx);
        }
        if !self.strict_certify {
            self.certify_recorded(trace, cert_from, Some((tx, false)));
        }
        Ok(true)
    }

    /// Aborts `tx`, recording the unlocks it still held. `cert_from` as
    /// in [`finish`](LockService::finish).
    pub fn abort(&self, tx: TxId, trace: &mut Vec<(u64, ScheduledStep)>, cert_from: usize) {
        let from = trace.len();
        {
            let mut engine = self.engine.write().expect("engine lock poisoned");
            let steps = engine.abort(tx);
            self.record(tx, steps, trace);
        }
        self.release_recorded_words(tx, trace, from);
        self.wake_recorded(trace, from);
        if let Some(m) = &self.mvcc {
            // Aborts resolve immediately (nothing becomes visible) and
            // release any commit-pipeline dependents waiting on `tx`.
            m.pipeline.abort(tx);
        }
        // Aborted transactions log their unlock steps (the trace replica
        // must stay lossless) but never a commit record. The certifier
        // seals them as *aborted*: they take no further steps (all
        // truncation needs) and parked snapshot-read edges against their
        // versions dissolve instead of materializing.
        self.log_recorded(trace, from);
        if self.strict_certify {
            let _ = self.certify_strict(tx, trace, cert_from, None, true);
        } else {
            self.certify_recorded(trace, cert_from, Some((tx, true)));
        }
    }

    /// Serves a read-only job from an MVCC snapshot: captures a read
    /// view under the commit-pipeline gate (claiming a dense block of
    /// trace stamps for the reads), scans version chains for the visible
    /// version of each target, and records the observations as stamped
    /// snapshot-read steps — **without ever touching the policy engine,
    /// the lock table, or a parking stripe**. Returns `false` when strict
    /// certification recovered by retracting the reader (the caller
    /// retries with a fresh snapshot).
    pub fn snapshot_read(
        &self,
        tx: TxId,
        targets: &[EntityId],
        trace: &mut Vec<(u64, ScheduledStep)>,
    ) -> bool {
        let m = self
            .mvcc
            .as_ref()
            .expect("snapshot read without an MVCC store");
        let from = trace.len();
        let snap = m.pipeline.capture(targets.len(), |n| {
            self.seq.fetch_add(n as u64, Ordering::Relaxed)
        });
        let tst = m.pipeline.status_table();
        let mut reads = Vec::with_capacity(targets.len());
        for (i, &entity) in targets.iter().enumerate() {
            let obs = m.store.read(entity, &snap, tst, m.rule);
            let stamp = snap.base_stamp + i as u64;
            trace.push((
                stamp,
                ScheduledStep::snapshot_read(tx, entity, obs.observed),
            ));
            reads.push(VersionedRead {
                stamp,
                tx,
                entity,
                observed: obs.observed,
                pivot: obs.pivot,
            });
        }
        self.counters
            .snapshot_reads
            .fetch_add(targets.len() as u64, Ordering::Relaxed);
        // Reader steps are logged (the recovered trace must stay dense)
        // but a read-only transaction needs no commit record.
        self.log_recorded(trace, from);
        if self.strict_certify {
            !self.certify_strict(tx, trace, from, Some(&reads), false)
        } else {
            self.certify_reads(reads, tx);
            true
        }
    }

    /// Whether this run has the sharded grant fast path active.
    pub fn fast_active(&self) -> bool {
        self.fast.is_some()
    }

    /// Whether `e` has a lock word (fast-path plan eligibility).
    pub fn fast_covers(&self, e: EntityId) -> bool {
        self.fast.as_ref().is_some_and(|w| w.covers(e))
    }

    /// Whether every lock word is free (end-of-run quiescence — vacuously
    /// true with the fast path off).
    pub fn fast_quiescent(&self) -> bool {
        self.fast.as_ref().is_none_or(LockWords::quiescent)
    }

    /// Begins a fast-path transaction: no engine interaction at all (the
    /// engine never learns fast-path transactions exist — the lock words
    /// are the authority for everything they touch), but MVCC writers
    /// still register with the commit pipeline before their first
    /// `note_lock`.
    pub fn fast_begin(&self, tx: TxId) {
        if let Some(m) = &self.mvcc {
            m.pipeline.begin_writer(tx);
        }
    }

    /// One fast-path lock attempt on `e` for `tx`: optimistic CAS on the
    /// entity's word; on success the lock step is stamped *while the word
    /// is held* (the stamp-ordering contract — see the module docs) and
    /// logged. On conflict the stripe generation is read under the stripe
    /// lock and the word *rechecked*: a releaser frees the word before
    /// bumping the generation, so a conflict re-observed after the
    /// generation read cannot have its wakeup already behind us — parking
    /// on `gen` is safe exactly as on the engine path.
    pub fn fast_lock(
        &self,
        tx: TxId,
        e: EntityId,
        shared: bool,
        trace: &mut Vec<(u64, ScheduledStep)>,
    ) -> FastLockOutcome {
        let words = self.fast.as_ref().expect("fast path inactive");
        loop {
            match words.try_acquire(e, tx, shared) {
                Ok(()) => {
                    let from = trace.len();
                    let mode = if shared {
                        LockMode::Shared
                    } else {
                        LockMode::Exclusive
                    };
                    self.record(tx, vec![Step::lock(mode, e)], trace);
                    self.counters.grants.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .fast_path_grants
                        .fetch_add(1, Ordering::Relaxed);
                    self.log_recorded(trace, from);
                    return FastLockOutcome::Granted;
                }
                Err(_) => {
                    let gen = *self.stripe(e).gen.lock().expect("stripe lock");
                    match words.conflicting_holder(e, shared) {
                        // Freed between the CAS and the recheck: take
                        // another optimistic swing instead of parking.
                        None => continue,
                        Some(holder) => return FastLockOutcome::Conflict { holder, gen },
                    }
                }
            }
        }
    }

    /// Records a fast-path data access on an entity whose word `tx`
    /// holds: the engine would emit `[read, write]` under an exclusive
    /// lock and `[read]` under a shared one, and the fast path emits the
    /// identical steps so fast-on and fast-off traces stay step-for-step
    /// comparable.
    pub fn fast_data(
        &self,
        tx: TxId,
        e: EntityId,
        shared: bool,
        trace: &mut Vec<(u64, ScheduledStep)>,
    ) {
        let from = trace.len();
        let steps = if shared {
            vec![Step::read(e)]
        } else {
            vec![Step::read(e), Step::write(e)]
        };
        self.record(tx, steps, trace);
        self.counters.grants.fetch_add(1, Ordering::Relaxed);
        self.counters
            .fast_path_grants
            .fetch_add(1, Ordering::Relaxed);
        self.log_recorded(trace, from);
    }

    /// Commits a fast-path transaction: records its unlocks in ascending
    /// entity order (matching the engine's finish emission), frees the
    /// words *after* stamping (release stamps precede the release CAS, so
    /// the next holder's acquire stamp lands strictly later), wakes and
    /// logs, then runs the same certification/durability/visibility tail
    /// as [`finish`](LockService::finish). `held` maps each held entity
    /// to whether the hold is shared. Returns `false` when strict
    /// certification recovered by aborting `tx`.
    pub fn fast_finish(
        &self,
        tx: TxId,
        held: &std::collections::BTreeMap<EntityId, bool>,
        trace: &mut Vec<(u64, ScheduledStep)>,
        cert_from: usize,
    ) -> bool {
        let from = trace.len();
        let steps = held
            .iter()
            .map(|(&e, &shared)| {
                let mode = if shared {
                    LockMode::Shared
                } else {
                    LockMode::Exclusive
                };
                Step::unlock(mode, e)
            })
            .collect();
        self.record(tx, steps, trace);
        self.release_recorded_words(tx, trace, from);
        self.wake_recorded(trace, from);
        self.log_recorded(trace, from);
        if self.strict_certify && self.certify_strict(tx, trace, cert_from, None, false) {
            if let Some(m) = &self.mvcc {
                m.pipeline.abort(tx);
            }
            return false;
        }
        self.log_commit(tx, trace);
        if let Some(m) = &self.mvcc {
            m.pipeline.commit(tx);
        }
        if !self.strict_certify {
            self.certify_recorded(trace, cert_from, Some((tx, false)));
        }
        true
    }

    /// Aborts a fast-path transaction: records the unlocks it still
    /// held, frees the words, wakes, and runs the same pipeline/log/
    /// certifier tail as [`abort`](LockService::abort).
    pub fn fast_abort(
        &self,
        tx: TxId,
        held: &std::collections::BTreeMap<EntityId, bool>,
        trace: &mut Vec<(u64, ScheduledStep)>,
        cert_from: usize,
    ) {
        let from = trace.len();
        let steps = held
            .iter()
            .map(|(&e, &shared)| {
                let mode = if shared {
                    LockMode::Shared
                } else {
                    LockMode::Exclusive
                };
                Step::unlock(mode, e)
            })
            .collect();
        self.record(tx, steps, trace);
        self.release_recorded_words(tx, trace, from);
        self.wake_recorded(trace, from);
        if let Some(m) = &self.mvcc {
            m.pipeline.abort(tx);
        }
        self.log_recorded(trace, from);
        if self.strict_certify {
            let _ = self.certify_strict(tx, trace, cert_from, None, true);
        } else {
            self.certify_recorded(trace, cert_from, Some((tx, true)));
        }
    }

    /// Records that `tx` waits for `holder` and walks the waits-for chain:
    /// `true` iff the chain leads back to `tx` (a deadlock this request
    /// closed — the requester aborts, as in the simulator).
    ///
    /// Detection is complete as long as every *parked* waiter's edge
    /// points at the entity's current holder: insert + walk are atomic
    /// under the map's mutex, so whichever transaction inserts the edge
    /// that closes a cycle sees the whole cycle and aborts. The runtime
    /// upholds that invariant by re-running `note_wait` with the fresh
    /// holder at every conflict observation, before any park (the holder
    /// can change across a re-request). The converse discipline matters
    /// just as much: a worker retracts its edge
    /// ([`clear_wait`](LockService::clear_wait)) before re-requesting and
    /// before aborting, so walkers never chase a transaction that is no
    /// longer blocked — a stale edge through an awake transaction
    /// manufactures phantom cycles, and under contention the needless
    /// victims feed an abort storm.
    ///
    /// The graph is sharded by waiter ([`WaitGraph`]): the publish is
    /// atomic per shard and the walk crosses shards lock by lock, so the
    /// edge that closes a persistent cycle is still seen by whichever
    /// member publishes last (every member re-publishes and re-walks at
    /// each park timeout), and a detected cycle is confirmed by a second
    /// walk before a victim is chosen.
    pub fn note_wait(&self, tx: TxId, holder: TxId) -> bool {
        self.waits_for.note(tx, holder)
    }

    /// Clears `tx`'s waits-for edge (its blocked request was granted, or
    /// it aborted).
    pub fn clear_wait(&self, tx: TxId) {
        self.waits_for.clear(tx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_policies::{PolicyConfig, PolicyKind, PolicyRegistry};

    fn one_stripe_service() -> LockService {
        let engine = PolicyRegistry::new()
            .build(PolicyKind::TwoPhase, &PolicyConfig::flat(vec![EntityId(0)]))
            .expect("2PL builds");
        LockService::new(engine, 1, None, CertifyMode::Off, None, None)
    }

    /// Forces one instance of the race the fix targets: a parker whose
    /// timeout elapses while a generation bump waits on the stripe lock.
    /// The parks counter is bumped under the stripe lock just before the
    /// parker enters its wait, so spinning on it hands this thread the
    /// very next lock acquisition — strictly after the wait began. We
    /// then hold the lock past the parker's deadline and bump the
    /// generation before releasing: `wait_timeout` must reacquire the
    /// mutex before returning, so the parker observes `timed_out()` with
    /// the generation already moved — exactly a wakeup racing the
    /// timeout. (An implementation that reports the late notify as a
    /// wakeup instead re-checks the generation and exits without
    /// counting, so the zero assertion is safe either way.)
    fn race_timeout_against_wakeup(service: &LockService, timeout: Duration) {
        let seen = *service.stripes[0].gen.lock().expect("stripe lock");
        let parks_before = service.counters.parks.load(Ordering::Relaxed);
        std::thread::scope(|s| {
            let parker = s.spawn(|| service.park(EntityId(0), seen, timeout));
            while service.counters.parks.load(Ordering::Relaxed) == parks_before {
                std::thread::yield_now();
            }
            {
                let mut gen = service.stripes[0].gen.lock().expect("stripe lock");
                std::thread::sleep(timeout * 2); // outlive the parker's timeout
                *gen += 1;
            }
            service.stripes[0].cv.notify_all();
            parker.join().expect("parker panicked");
        });
    }

    /// Regression: a park timeout that races a wakeup must not be counted
    /// as lost-wakeup evidence (the counter used to bump on every
    /// timed-out `wait_timeout`, even with the generation already moved).
    #[test]
    fn park_timeout_racing_a_wakeup_is_not_counted() {
        let service = one_stripe_service();
        race_timeout_against_wakeup(&service, Duration::from_millis(40));
        assert_eq!(
            service.counters.park_timeouts.load(Ordering::Relaxed),
            0,
            "a timeout whose generation already advanced is a wakeup, not a lost one"
        );
    }

    /// The same race hammered on the 1-stripe service, park timeout
    /// shorter than the hold time on every iteration: the counter must
    /// stay exactly zero across all of them.
    #[test]
    fn park_timeout_hammer_stays_clean() {
        let service = one_stripe_service();
        for _ in 0..25 {
            race_timeout_against_wakeup(&service, Duration::from_millis(4));
        }
        assert_eq!(service.counters.park_timeouts.load(Ordering::Relaxed), 0);
        assert_eq!(service.counters.parks.load(Ordering::Relaxed), 25);
    }

    /// The genuine case still counts: a timeout with the generation
    /// unmoved is real lost-wakeup evidence and must not be suppressed.
    #[test]
    fn park_timeout_with_generation_unmoved_still_counts() {
        let service = one_stripe_service();
        let seen = *service.stripes[0].gen.lock().expect("stripe lock");
        service.park(EntityId(0), seen, Duration::from_millis(5));
        assert_eq!(service.counters.park_timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(service.counters.parks.load(Ordering::Relaxed), 1);
    }
}
