//! The sharded lock service: one [`PolicyEngine`] serving many worker
//! threads.
//!
//! The engine itself is the unavoidable serialization point — every
//! grant/refuse decision mutates shared policy state (lock table, wakes,
//! graph), so those decisions run under one write lock. Everything *around*
//! that point is sharded or lock-free:
//!
//! * **planning** takes the engine's read lock (planners only read — the
//!   DDAG planner's dominator-region layout, the expensive part of a
//!   traversal, runs concurrently with other planners and never blocks on
//!   a writer queueing behind it only for the duration of one request);
//! * **parking** is entity-striped: a conflicting transaction parks on the
//!   stripe of the contended entity and only unlocks of entities hashing
//!   to that stripe wake it — uncontended stripes never touch a parked
//!   worker's condvar;
//! * **trace recording** is per-worker: granted steps are stamped from one
//!   global atomic sequence counter *while the engine lock is held* (so
//!   the stamp order is exactly the engine's serialization order) and
//!   buffered locally; [`slp_core::Schedule::from_sequenced`] merges the
//!   buffers afterwards without any runtime coordination;
//! * **accounting** is plain atomics.
//!
//! Lost wakeups are impossible by construction: a worker reads the
//! stripe's generation *before* re-requesting, and parks only if the
//! generation is still unchanged under the stripe lock — any release in
//! between bumps the generation first (releases bump under the stripe
//! lock, before `notify_all`). Deadlock detection is complete because a
//! waiter refreshes its waits-for edge to the current holder before every
//! park (see [`LockService::note_wait`]), so with a generous timeout the
//! park-timeout backstop never fires on a healthy run — firings are
//! counted ([`Counters::park_timeouts`]) and surfaced in the report as
//! lost-wakeup evidence.

use rustc_hash::FxHashMap;
use slp_core::{EntityId, ScheduledStep, Step, TxId};
use slp_durability::Wal;
use slp_policies::{AccessIntent, PolicyAction, PolicyEngine, PolicyResponse, PolicyViolation};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// One parking stripe: a generation counter advanced on every unlock of an
/// entity hashing here, plus the condvar parked workers wait on.
struct Stripe {
    gen: Mutex<u64>,
    cv: Condvar,
}

/// The outcome of [`LockService::request_batch`].
pub(crate) enum BatchOutcome {
    /// All attempted actions were granted.
    Granted { granted: usize },
    /// `granted` actions ran, then the next conflicted.
    Conflict {
        granted: usize,
        entity: EntityId,
        holder: TxId,
    },
    /// Some actions may have run, then the policy refused the next
    /// outright (the requester aborts, so the count doesn't matter).
    Violation { violation: PolicyViolation },
}

/// Shared accounting, all atomics (no lock on the hot path).
#[derive(Default)]
pub(crate) struct Counters {
    pub attempts: AtomicUsize,
    pub committed: AtomicUsize,
    pub policy_aborts: AtomicUsize,
    pub deadlock_aborts: AtomicUsize,
    pub rejected: AtomicUsize,
    pub abandoned: AtomicUsize,
    pub lock_waits: AtomicU64,
    pub park_timeouts: AtomicU64,
    pub timed_out: AtomicBool,
}

/// The shared front-end the worker threads drive.
pub(crate) struct LockService {
    engine: RwLock<Box<dyn PolicyEngine>>,
    stripes: Vec<Stripe>,
    waits_for: Mutex<FxHashMap<TxId, TxId>>,
    seq: AtomicU64,
    /// Write-ahead log, when the run is durable. Appends happen *after*
    /// the engine lock is dropped (same position as the wake pass) so the
    /// fsync cost never sits on the serialization point; stamps — taken
    /// inside the lock — arbitrate the cross-worker byte order on replay.
    wal: Option<Arc<Wal>>,
    pub counters: Counters,
}

impl LockService {
    /// `stripes` is clamped to 1..=64 (the wake path dedupes released
    /// stripes in a fixed bitmap). `wal`, when present, receives every
    /// recorded step batch and commit.
    pub fn new(engine: Box<dyn PolicyEngine>, stripes: usize, wal: Option<Arc<Wal>>) -> Self {
        LockService {
            engine: RwLock::new(engine),
            stripes: (0..stripes.clamp(1, 64))
                .map(|_| Stripe {
                    gen: Mutex::new(0),
                    cv: Condvar::new(),
                })
                .collect(),
            waits_for: Mutex::new(FxHashMap::default()),
            seq: AtomicU64::new(0),
            wal,
            counters: Counters::default(),
        }
    }

    /// Recovers the engine after the run (all workers joined).
    pub fn into_engine(self) -> Box<dyn PolicyEngine> {
        self.engine.into_inner().expect("engine lock poisoned")
    }

    fn stripe(&self, e: EntityId) -> &Stripe {
        &self.stripes[e.0 as usize % self.stripes.len()]
    }

    /// Current generation of the entity's stripe. Read *before*
    /// (re-)requesting; pass to [`park`](LockService::park) so a release
    /// racing the failed request cannot be missed.
    pub fn stripe_gen(&self, e: EntityId) -> u64 {
        *self.stripe(e).gen.lock().expect("stripe lock")
    }

    /// Parks until the entity's stripe generation moves past `seen` or the
    /// timeout elapses (spurious wakeups and timeouts are safe — callers
    /// re-request in a loop).
    pub fn park(&self, e: EntityId, seen: u64, timeout: Duration) {
        let stripe = self.stripe(e);
        let mut gen = stripe.gen.lock().expect("stripe lock");
        while *gen == seen {
            let (g, res) = stripe
                .cv
                .wait_timeout(gen, timeout)
                .expect("stripe lock poisoned");
            gen = g;
            if res.timed_out() {
                // The backstop fired instead of a wakeup. Counted and
                // surfaced in the report: with a generous timeout, any
                // nonzero count is evidence of a lost wakeup.
                self.counters.park_timeouts.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }

    /// Bumps the stripe generation of every entity released in
    /// `trace[from..]` — the steps the current call recorded — and wakes
    /// their parked workers. The one wake rule, shared by the grant,
    /// finish, and abort paths: callers snapshot `trace.len()` before
    /// taking the engine lock and call this after dropping it, so woken
    /// workers contend on the engine, not on us.
    fn wake_recorded(&self, trace: &[(u64, ScheduledStep)], from: usize) {
        // Dedupe stripes per batch: one bump + notify per stripe.
        let mut bumped = [false; 64];
        debug_assert!(self.stripes.len() <= 64);
        for (_, s) in &trace[from..] {
            if !s.step.is_unlock() {
                continue;
            }
            let idx = s.step.entity.0 as usize % self.stripes.len();
            if bumped[idx] {
                continue;
            }
            bumped[idx] = true;
            let stripe = &self.stripes[idx];
            *stripe.gen.lock().expect("stripe lock") += 1;
            stripe.cv.notify_all();
        }
    }

    /// Appends the steps this call recorded (`trace[from..]`) to the
    /// write-ahead log, if the run is durable. Called after the engine
    /// lock is dropped. A failed log is skipped silently here — the run
    /// completes in memory and the failure surfaces in the report's
    /// [`slp_durability::WalSummary`].
    fn log_recorded(&self, trace: &[(u64, ScheduledStep)], from: usize) {
        if let Some(wal) = &self.wal {
            if !wal.is_failed() {
                let _ = wal.append_steps(&trace[from..]);
            }
        }
    }

    /// Appends `tx`'s commit record: it is durably committed once the
    /// contiguous-stamp watermark covers its last step. The worker's own
    /// trace holds every step of its transaction, so the requirement is
    /// one past the newest stamp attributed to `tx` (0 if it never took a
    /// step — such a commit is durable from the start).
    fn log_commit(&self, tx: TxId, trace: &[(u64, ScheduledStep)]) {
        if let Some(wal) = &self.wal {
            if !wal.is_failed() {
                let required = trace
                    .iter()
                    .rev()
                    .find(|(_, s)| s.tx == tx)
                    .map_or(0, |&(stamp, _)| stamp + 1);
                let _ = wal.append_commit(tx, required);
            }
        }
    }

    /// Stamps `steps` for `tx` into `trace` with consecutive global
    /// sequence numbers. Must be called while the engine write lock is
    /// held: the stamp order is then exactly the engine's serialization
    /// order, which is what makes the merged trace a faithful schedule.
    fn record(&self, tx: TxId, steps: Vec<Step>, trace: &mut Vec<(u64, ScheduledStep)>) {
        let base = self.seq.fetch_add(steps.len() as u64, Ordering::Relaxed);
        for (i, s) in steps.into_iter().enumerate() {
            trace.push((base + i as u64, ScheduledStep::new(tx, s)));
        }
    }

    /// Plans `job` under the engine's *read* lock (planners only read).
    pub fn plan(
        &self,
        planner: &mut dyn slp_sim::ActionPlanner,
        job: &slp_sim::Job,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        let engine = self.engine.read().expect("engine lock poisoned");
        planner.plan(&**engine, job)
    }

    /// Begins `tx`; returns the engine's precomputed plan if any.
    pub fn begin(
        &self,
        tx: TxId,
        intent: &AccessIntent,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        let mut engine = self.engine.write().expect("engine lock poisoned");
        engine.begin(tx, intent)
    }

    /// Requests up to `max` consecutive actions of `plan` for `tx` under
    /// ONE engine-lock acquisition, recording granted steps into `trace`.
    /// Stops early at the first conflict or violation. Batching amortizes
    /// the serialization point; `max == 1` maximizes interleaving (the
    /// conformance suites run there).
    pub fn request_batch(
        &self,
        tx: TxId,
        plan: &[PolicyAction],
        max: usize,
        trace: &mut Vec<(u64, ScheduledStep)>,
    ) -> BatchOutcome {
        let mut granted = 0usize;
        let from = trace.len();
        let outcome = {
            let mut engine = self.engine.write().expect("engine lock poisoned");
            loop {
                if granted >= max.max(1) || granted >= plan.len() {
                    break BatchOutcome::Granted { granted };
                }
                match engine.request(tx, plan[granted]) {
                    PolicyResponse::Granted(steps) => {
                        self.record(tx, steps, trace);
                        granted += 1;
                    }
                    PolicyResponse::Conflict { entity, holder } => {
                        break BatchOutcome::Conflict {
                            granted,
                            entity,
                            holder,
                        };
                    }
                    PolicyResponse::Violation(violation) => {
                        break BatchOutcome::Violation { violation };
                    }
                }
            }
        };
        self.wake_recorded(trace, from);
        self.log_recorded(trace, from);
        outcome
    }

    /// Finishes `tx`, recording its final unlocks.
    pub fn finish(
        &self,
        tx: TxId,
        trace: &mut Vec<(u64, ScheduledStep)>,
    ) -> Result<(), PolicyViolation> {
        let from = trace.len();
        {
            let mut engine = self.engine.write().expect("engine lock poisoned");
            let steps = engine.finish(tx)?;
            self.record(tx, steps, trace);
        }
        self.wake_recorded(trace, from);
        self.log_recorded(trace, from);
        self.log_commit(tx, trace);
        Ok(())
    }

    /// Aborts `tx`, recording the unlocks it still held.
    pub fn abort(&self, tx: TxId, trace: &mut Vec<(u64, ScheduledStep)>) {
        let from = trace.len();
        {
            let mut engine = self.engine.write().expect("engine lock poisoned");
            let steps = engine.abort(tx);
            self.record(tx, steps, trace);
        }
        self.wake_recorded(trace, from);
        // Aborted transactions log their unlock steps (the trace replica
        // must stay lossless) but never a commit record.
        self.log_recorded(trace, from);
    }

    /// Records that `tx` waits for `holder` and walks the waits-for chain:
    /// `true` iff the chain leads back to `tx` (a deadlock this request
    /// closed — the requester aborts, as in the simulator).
    ///
    /// Detection is complete as long as every *parked* waiter's edge
    /// points at the entity's current holder: insert + walk are atomic
    /// under the map's mutex, so whichever transaction inserts the edge
    /// that closes a cycle sees the whole cycle and aborts. The runtime
    /// upholds that invariant by re-running `note_wait` with the fresh
    /// holder at every conflict observation, before any park (the holder
    /// can change across a re-request). The converse discipline matters
    /// just as much: a worker retracts its edge
    /// ([`clear_wait`](LockService::clear_wait)) before re-requesting and
    /// before aborting, so walkers never chase a transaction that is no
    /// longer blocked — a stale edge through an awake transaction
    /// manufactures phantom cycles, and under contention the needless
    /// victims feed an abort storm.
    pub fn note_wait(&self, tx: TxId, holder: TxId) -> bool {
        let mut wf = self.waits_for.lock().expect("waits_for lock");
        wf.insert(tx, holder);
        let mut cur = holder;
        let mut hops = 0usize;
        loop {
            if cur == tx {
                return true;
            }
            match wf.get(&cur) {
                Some(&next) => cur = next,
                None => return false,
            }
            hops += 1;
            if hops > wf.len() {
                // A cycle among *other* transactions: they resolve it.
                return false;
            }
        }
    }

    /// Clears `tx`'s waits-for edge (its blocked request was granted, or
    /// it aborted).
    pub fn clear_wait(&self, tx: TxId) {
        self.waits_for.lock().expect("waits_for lock").remove(&tx);
    }
}
