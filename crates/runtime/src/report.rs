//! Run accounting: the same shape as [`slp_sim::SimReport`] plus
//! wall-clock throughput and latency percentiles.

use slp_core::{CertStats, CertViolation, Schedule, StructuralState, TxId};
use slp_durability::WalSummary;
use std::time::Duration;

/// Commit-latency summary over a run (microseconds; wall clock from a
/// job's first dispatch to its commit, across however many abort/restart
/// attempts it took).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LatencySummary {
    /// Number of committed jobs the summary covers.
    pub count: usize,
    /// Mean latency.
    pub mean_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes raw per-job latencies (consumed: sorted in place).
    pub fn from_micros(mut us: Vec<u64>) -> Self {
        if us.is_empty() {
            return LatencySummary::default();
        }
        us.sort_unstable();
        // Nearest-rank with ceiling: round the fractional rank *up* so a
        // percentile never understates the tail (with floor, 2 samples
        // would report the fastest job as p99).
        let pct = |q: f64| us[((us.len() - 1) as f64 * q).ceil() as usize];
        let n = us.len() as u64;
        LatencySummary {
            count: us.len(),
            // Round half-up: truncating division understates the mean by
            // up to a microsecond (1..=100 averages 50.5, not 50).
            mean_us: (us.iter().sum::<u64>() + n / 2) / n,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: *us.last().expect("non-empty"),
        }
    }
}

/// The online certifier's verdict on a run
/// ([`RuntimeReport::certification`], present when
/// [`crate::RuntimeConfig::certify_online`] was not
/// [`Off`](crate::CertifyMode::Off)).
#[derive(Clone, Debug)]
pub struct Certification {
    /// Whether the run was configured to halt on the first violation
    /// ([`Strict`](crate::CertifyMode::Strict) mode).
    pub strict: bool,
    /// The first serialization-graph cycle the certifier latched, `None`
    /// on a certified-serializable run.
    pub violation: Option<CertViolation>,
    /// Certifier counters at end of run (steps observed, edges inserted,
    /// committed-prefix truncations, live/peak graph size).
    pub stats: CertStats,
}

/// The result of a [`crate::Runtime::run`].
///
/// Accounting mirrors the simulator's [`slp_sim::SimReport`]: every
/// attempt (a `begin`ed — or planned-then-refused — fresh transaction)
/// ends in exactly one of committed / policy abort / deadlock abort /
/// certification abort / rejected / abandoned, so
/// `attempts == committed + policy_aborts + deadlock_aborts +
/// certification_aborts + rejected + abandoned` always holds
/// ([`RuntimeReport::accounting_balances`]). `abandoned` is only nonzero
/// when the run [`timed out`](RuntimeReport::timed_out).
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Policy name.
    pub policy: &'static str,
    /// Worker threads the run used.
    pub workers: usize,
    /// Jobs committed.
    pub committed: usize,
    /// Aborts on *retryable* policy rule violations (the job restarted as
    /// a fresh transaction after backoff).
    pub policy_aborts: usize,
    /// Aborts chosen to break waits-for deadlocks (the requester that
    /// closed the cycle, as in the simulator).
    pub deadlock_aborts: usize,
    /// Aborts chosen by [`Strict`](crate::CertifyMode::Strict) online
    /// certification to break a serialization-graph cycle: the
    /// transaction whose commit (or snapshot read) closed the cycle is
    /// aborted, its node retracted, and the run continues. The first
    /// caught cycle is preserved in
    /// [`certification`](RuntimeReport::certification).
    pub certification_aborts: usize,
    /// Jobs dropped on a fatal violation (malformed request — retrying
    /// can never succeed; the shared [`slp_sim::Disposition`] rule).
    pub rejected: usize,
    /// Attempts cut short by the wall-clock guard (their jobs neither
    /// committed nor were rejected; nonzero only on timeout).
    pub abandoned: usize,
    /// Total fresh-transaction attempts.
    pub attempts: usize,
    /// Number of times a request found its lock held (one per conflict
    /// observation, as in the simulator).
    pub lock_waits: u64,
    /// Actions granted (across every batch and both grant paths):
    /// `grants == fast_path_grants + slow_path_grants` always.
    pub grants: u64,
    /// Actions granted by a per-entity lock-word CAS, bypassing the
    /// engine lock entirely ([`crate::RuntimeConfig::grant_fast_path`];
    /// zero with the fast path off or a
    /// [`slp_policies::GrantScope::Global`] engine).
    pub fast_path_grants: u64,
    /// Actions granted under the engine write lock. In a fast-active run
    /// this counts the fallback shapes (donations, locked points,
    /// structural ops, uncovered entities); with the fast path off it
    /// equals [`grants`](RuntimeReport::grants).
    pub slow_path_grants: u64,
    /// Attempts a fast-active run routed to the engine because their
    /// plan fell outside the fast path's plain lock/access shape (one
    /// per attempt, not per action).
    pub fast_path_fallbacks: u64,
    /// Times a conflicting worker actually blocked on its stripe's
    /// condvar (a park whose generation check found no racing release).
    pub parks: u64,
    /// Times a parked worker's timeout backstop fired instead of a
    /// wakeup. The wake protocol makes lost wakeups impossible by
    /// construction, so with a timeout comfortably above scheduler jitter
    /// this is zero on every healthy run — the stress matrix asserts
    /// exactly that. (With the default 1 ms timeout, a preempted lock
    /// holder can legitimately out-sleep a waiter, so small counts there
    /// are noise, not lost wakeups.)
    pub park_timeouts: u64,
    /// Versioned reads served from MVCC snapshots (one per target of
    /// every read-only job taking the snapshot path; zero unless
    /// [`crate::RuntimeConfig::snapshot_reads`] is on). Snapshot reads
    /// never touch the lock service, so a pure-read workload with this
    /// nonzero shows `grants == 0` and `lock_waits == 0`.
    pub snapshot_reads: u64,
    /// Waves the batch scheduler layered the job queue into (zero when
    /// [`crate::SchedMode::Off`] — the whole queue is one unscheduled
    /// pool).
    pub waves: usize,
    /// Jobs per wave, in wave order (empty when the scheduler is off);
    /// the runtime folds these into the
    /// [`wave_width`](crate::Metrics::wave_width) histogram.
    pub wave_widths: Vec<u32>,
    /// Conflict edges the admission-stage DAG resolved by wave ordering
    /// — each one a conflict that would otherwise have surfaced at grant
    /// time as a `lock_wait` (and likely a park). Zero when the
    /// scheduler is off.
    pub sched_parks_avoided: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Whether the wall-clock guard expired before the job queue drained.
    pub timed_out: bool,
    /// The total-ordered trace of every granted step, reconstructed from
    /// the per-worker sequence-stamped buffers. Replay it through
    /// `slp_core` (legal / proper / serializable) to verify the run.
    pub schedule: Schedule,
    /// The structural state when the run started (for properness replay).
    pub initial: StructuralState,
    /// Every transaction that aborted (policy, deadlock, certification,
    /// or abandonment) and may have left steps in the trace — the abort
    /// set for offline [`slp_core::is_serializable_with_aborts`] replay.
    pub aborted: Vec<TxId>,
    /// Commit-latency percentiles.
    pub latency: LatencySummary,
    /// Write-ahead log counters when the run was durable
    /// ([`crate::Runtime::run_durable`]), `None` for in-memory runs. A
    /// summary with [`failed`](WalSummary::failed) set means the log
    /// store died mid-run: the in-memory result is complete, but only a
    /// prefix of it is durable.
    pub wal: Option<WalSummary>,
    /// Online certification verdict, `None` when the run did not certify
    /// ([`crate::RuntimeConfig::certify_online`] was
    /// [`Off`](crate::CertifyMode::Off)).
    pub certification: Option<Certification>,
}

impl RuntimeReport {
    /// Committed jobs per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.committed as f64 / secs
        }
    }

    /// Abort rate over all attempts.
    pub fn abort_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            (self.policy_aborts + self.deadlock_aborts) as f64 / self.attempts as f64
        }
    }

    /// Whether every attempt is accounted for:
    /// `attempts == committed + policy_aborts + deadlock_aborts +
    /// certification_aborts + rejected + abandoned`.
    pub fn accounting_balances(&self) -> bool {
        self.attempts
            == self.committed
                + self.policy_aborts
                + self.deadlock_aborts
                + self.certification_aborts
                + self.rejected
                + self.abandoned
    }

    /// Fraction of grants decided by a lock-word CAS instead of the
    /// engine lock (the bypass ratio; 0.0 when nothing was granted).
    pub fn fast_path_ratio(&self) -> f64 {
        if self.grants == 0 {
            0.0
        } else {
            self.fast_path_grants as f64 / self.grants as f64
        }
    }

    /// `Some(true)` when the online certifier saw no cycle, `Some(false)`
    /// when it latched one, `None` when the run did not certify online.
    pub fn certified_serializable(&self) -> Option<bool> {
        self.certification.as_ref().map(|c| c.violation.is_none())
    }

    /// Whether the trace shows every acquired lock released — the
    /// trace-level statement that the engine's lock table reached
    /// quiescence when the workers drained.
    pub fn lock_table_quiescent(&self) -> bool {
        self.schedule.locks_held_at_end().is_empty()
    }

    /// The deterministic accounting fingerprint of a run: which jobs
    /// finished how. Abort *counts* are timing-dependent under real
    /// threads (two runs of the same seed interleave differently), but
    /// job *outcomes* under a safe policy are not: every well-formed job
    /// commits and every malformed one is rejected, regardless of
    /// interleaving. The determinism matrix compares this fingerprint
    /// across repeated runs.
    pub fn outcome_fingerprint(&self) -> (usize, usize, bool) {
        (self.committed, self.rejected, self.timed_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let s = LatencySummary::from_micros((1..=100).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 51);
        assert_eq!(s.p95_us, 96);
        assert_eq!(s.p99_us, 100);
        assert_eq!(s.max_us, 100);
        // 1..=100 averages 50.5; half-up rounding reports 51 (truncation
        // used to report 50).
        assert_eq!(s.mean_us, 51);
        // Tiny samples must surface the tail, not hide it: with two
        // latencies the upper percentiles are the slower one.
        let s = LatencySummary::from_micros(vec![10, 1000]);
        assert_eq!(s.p50_us, 1000);
        assert_eq!(s.p99_us, 1000);
        assert_eq!(
            LatencySummary::from_micros(vec![]),
            LatencySummary::default()
        );
    }
}
