//! The sharded grant fast path: per-entity atomic lock words and the
//! waiter-sharded waits-for graph.
//!
//! The engine `RwLock` in `service.rs` is the runtime's serialization
//! wall — every grant, finish, and abort takes it exclusively. For
//! policies whose grant decision is purely per-entity
//! ([`slp_policies::GrantScope::PerEntity`], i.e. a plain exclusive/
//! shared lock manager), the common-case decision can instead be one CAS
//! on the entity's own lock word, so uncontended transactions never
//! serialize on anything wider than the entities they touch.
//!
//! # Lock-word layout
//!
//! Each entity owns one `AtomicU64`:
//!
//! ```text
//!  63            48 47 46            32 31                           0
//! ┌────────────────┬──┬────────────────┬──────────────────────────────┐
//! │ version (16)   │X │ readers (15)   │ holder / representative (32) │
//! └────────────────┴──┴────────────────┴──────────────────────────────┘
//! ```
//!
//! * **holder** — the exclusive holder's `TxId`, or (shared mode) the
//!   *representative* reader: the first reader of the current shared
//!   episode. The representative is a waits-for hint, not ground truth —
//!   it may have already released (see below).
//! * **readers** — the shared-holder count; zero in exclusive mode.
//! * **X** — set while exclusively held.
//! * **version** — bumped (wrapping) on every transition. The word
//!   protocol is correct without it — a free word is a free word, and
//!   only the holder mutates a held word — but the version makes every
//!   transition CAS-visible, so an ABA sequence (free → held → free
//!   between a reader's load and its CAS) can never silently satisfy a
//!   stale expectation, and a release CAS that fails is a logic bug
//!   caught by the retry loop rather than silent corruption.
//!
//! Transactions `TxId(0)` is never issued by the runtime (worker
//! transaction ids start at 1), so a zero holder field with no mode bits
//! unambiguously encodes *free*.
//!
//! # The stale-representative gap, and why it is sound
//!
//! When several readers share a word, an exclusive requester's waits-for
//! edge points at the representative only. If the representative already
//! released (its decrement leaves the field untouched), the edge
//! dead-ends at a retired transaction — walkers stop at a missing edge,
//! so no *phantom* cycle can form. A *missed* real cycle would need a
//! blocked transaction hidden behind the representative; the runtime
//! grants shared words only to single-lock read-only plans, which never
//! wait while holding, so no cycle can run through a reader at all.
//!
//! # Waiter-sharded waits-for graph
//!
//! The PR-5 waits-for map was one global mutex — on the fast path it
//! would become the new wall. [`WaitGraph`] shards the edge map by the
//! *waiter* (the potential deadlock victim): publishing or retracting an
//! edge touches only the waiter's own shard, and the cycle walk crosses
//! shards one short lock at a time. The walk is therefore not atomic
//! with the publish; detection stays complete because every waiter
//! re-publishes its edge (fresh holder) and re-walks before every park —
//! in a real deadlock all members stay parked with their edges
//! published, so whichever member published last walks over the complete
//! cycle and aborts (the publish-then-scan argument). A non-atomic walk
//! can transiently observe edges from different instants; a cycle is
//! therefore confirmed by a second walk before it is reported, so a
//! mid-walk retraction cannot manufacture a victim out of an
//! already-resolved conflict.

use rustc_hash::FxHashMap;
use slp_core::{EntityId, TxId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const HOLDER_MASK: u64 = 0xFFFF_FFFF;
const COUNT_SHIFT: u32 = 32;
const COUNT_MASK: u64 = 0x7FFF;
const X_BIT: u64 = 1 << 47;
const VERSION_SHIFT: u32 = 48;

#[inline]
fn pack(holder: u32, readers: u64, exclusive: bool, version: u64) -> u64 {
    // A release-mode check, not a debug_assert: a count past the field
    // width would be masked back toward zero and silently *free* a word
    // that live readers still hold — a writer's CAS could then grant
    // exclusive over them. `try_acquire` saturates before ever calling
    // pack with an overflowing count, so this is unreachable; if it
    // ever fires, corrupting the shared word table is the one thing we
    // must not do.
    assert!(
        readers <= COUNT_MASK,
        "reader count {readers} overflows the 15-bit lock-word field"
    );
    (version & 0xFFFF) << VERSION_SHIFT
        | if exclusive { X_BIT } else { 0 }
        | (readers & COUNT_MASK) << COUNT_SHIFT
        | holder as u64
}

#[inline]
fn holder_of(word: u64) -> u32 {
    (word & HOLDER_MASK) as u32
}

#[inline]
fn readers_of(word: u64) -> u64 {
    (word >> COUNT_SHIFT) & COUNT_MASK
}

#[inline]
fn is_exclusive(word: u64) -> bool {
    word & X_BIT != 0
}

#[inline]
fn version_of(word: u64) -> u64 {
    word >> VERSION_SHIFT
}

/// What a lock word currently encodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum WordState {
    /// Nobody holds the entity.
    Free,
    /// Exclusively held.
    Exclusive(TxId),
    /// Shared by `readers` transactions; `rep` is the representative
    /// (first reader of the episode — possibly already released).
    Shared {
        /// Live shared-holder count.
        readers: u64,
        /// The waits-for hint an exclusive requester should block on.
        rep: TxId,
    },
}

fn decode(word: u64) -> WordState {
    if is_exclusive(word) {
        WordState::Exclusive(TxId(holder_of(word)))
    } else if readers_of(word) > 0 {
        WordState::Shared {
            readers: readers_of(word),
            rep: TxId(holder_of(word)),
        }
    } else {
        // Every writer canonicalizes a freed word to all-zero fields
        // (the last shared release clears the representative too), so a
        // holder with no readers and no X bit is not a state this
        // protocol produces. Reading it as Free would hand the entity to
        // the next CAS over whoever the stale holder field names —
        // reject it instead of guessing.
        assert!(
            holder_of(word) == 0,
            "corrupt lock word: holder {} with no readers and no exclusive bit",
            holder_of(word)
        );
        WordState::Free
    }
}

/// The per-entity atomic lock-word table. Entity ids index the table
/// directly; ids at or past the capacity are simply not covered (their
/// requests must take the engine path).
pub(crate) struct LockWords {
    words: Vec<AtomicU64>,
}

impl LockWords {
    /// A table covering entity ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        LockWords {
            words: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The covered id range's end.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Whether `e` has a lock word.
    pub fn covers(&self, e: EntityId) -> bool {
        (e.0 as usize) < self.words.len()
    }

    fn word(&self, e: EntityId) -> &AtomicU64 {
        &self.words[e.0 as usize]
    }

    /// One CAS attempt cycle at acquiring `e` for `tx` (`shared` selects
    /// the mode). Returns the conflicting holder (or shared-episode
    /// representative) on conflict — which is `tx` itself if `tx`
    /// already holds the word exclusively (a relock the caller must
    /// route to the engine for the policy's own verdict). Internal CAS
    /// races retry; only a genuine held-by-another observation returns.
    pub fn try_acquire(&self, e: EntityId, tx: TxId, shared: bool) -> Result<(), TxId> {
        let word = self.word(e);
        let mut cur = word.load(Ordering::SeqCst);
        loop {
            let next = match decode(cur) {
                WordState::Free => pack(tx.0, u64::from(shared), !shared, version_of(cur) + 1),
                // Saturate at the 15-bit field cap: the 32768th shared
                // acquire must *conflict* (and take the park/engine
                // path), because `readers + 1` would wrap the count to
                // zero under the mask and silently free a word 32767
                // live readers still hold — the next writer's CAS would
                // then grant exclusive over all of them.
                WordState::Shared { readers, rep } if shared && readers < COUNT_MASK => {
                    pack(rep.0, readers + 1, false, version_of(cur) + 1)
                }
                WordState::Shared { rep, .. } => return Err(rep),
                WordState::Exclusive(holder) => return Err(holder),
            };
            match word.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Ok(()),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Releases `tx`'s hold on `e` in the given mode. Exclusive release
    /// frees the word; shared release decrements the reader count (the
    /// representative field is left as-is — see the module docs) and
    /// frees the word when the last reader leaves. Returns `true` iff
    /// the word became free (the caller wakes that entity's stripe).
    /// A word `tx` does not hold in that mode is left untouched (the
    /// slow path scans recorded unlock steps, which may cover entities
    /// past the table's capacity or locks granted before a word existed).
    pub fn release(&self, e: EntityId, tx: TxId, shared: bool) -> bool {
        if !self.covers(e) {
            return false;
        }
        let word = self.word(e);
        let mut cur = word.load(Ordering::SeqCst);
        loop {
            let (next, freed) = match decode(cur) {
                WordState::Exclusive(holder) if !shared && holder == tx => {
                    (pack(0, 0, false, version_of(cur) + 1), true)
                }
                WordState::Shared { readers, rep } if shared => {
                    if readers == 1 {
                        (pack(0, 0, false, version_of(cur) + 1), true)
                    } else {
                        (pack(rep.0, readers - 1, false, version_of(cur) + 1), false)
                    }
                }
                _ => return false,
            };
            match word.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return freed,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The holder a requester in the given mode conflicts with right
    /// now, if any (the post-generation-read recheck of the parking
    /// protocol).
    pub fn conflicting_holder(&self, e: EntityId, shared: bool) -> Option<TxId> {
        match decode(self.word(e).load(Ordering::SeqCst)) {
            WordState::Free => None,
            WordState::Exclusive(holder) => Some(holder),
            WordState::Shared { .. } if shared => None,
            WordState::Shared { rep, .. } => Some(rep),
        }
    }

    /// The decoded state of `e`'s word (tests and assertions).
    #[cfg(test)]
    pub fn state(&self, e: EntityId) -> WordState {
        decode(self.word(e).load(Ordering::SeqCst))
    }

    /// Whether every word is free (end-of-run quiescence assertion).
    pub fn quiescent(&self) -> bool {
        self.words
            .iter()
            .map(|w| decode(w.load(Ordering::SeqCst)))
            .all(|s| s == WordState::Free)
    }
}

/// The waits-for graph, sharded by waiter (= potential victim). See the
/// module docs for the completeness and confirmation arguments.
pub(crate) struct WaitGraph {
    shards: Vec<Mutex<FxHashMap<TxId, TxId>>>,
}

impl WaitGraph {
    /// `shards` is clamped to 1..=64 (matching the parking stripes).
    pub fn new(shards: usize) -> Self {
        WaitGraph {
            shards: (0..shards.clamp(1, 64))
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    fn shard(&self, tx: TxId) -> &Mutex<FxHashMap<TxId, TxId>> {
        &self.shards[tx.0 as usize % self.shards.len()]
    }

    fn next(&self, tx: TxId) -> Option<TxId> {
        self.shard(tx)
            .lock()
            .expect("waits-for shard poisoned")
            .get(&tx)
            .copied()
    }

    /// Publishes the edge `tx → holder` and walks the chain for a cycle
    /// back to `tx`: `true` iff this edge closed a (doubly confirmed)
    /// deadlock — the requester aborts, as in the simulator. The walk
    /// crosses shards one lock at a time; a cycle found once is walked
    /// again before being reported, so edges observed at different
    /// instants cannot fabricate a victim.
    pub fn note(&self, tx: TxId, holder: TxId) -> bool {
        self.shard(tx)
            .lock()
            .expect("waits-for shard poisoned")
            .insert(tx, holder);
        self.cycle_through(tx) && self.cycle_through(tx)
    }

    /// Retracts `tx`'s edge (its blocked request was granted, or it
    /// aborts).
    pub fn clear(&self, tx: TxId) {
        self.shard(tx)
            .lock()
            .expect("waits-for shard poisoned")
            .remove(&tx);
    }

    /// One walk from `tx` along current edges: `true` iff it returns to
    /// `tx`. A repeated intermediate node is a cycle among *other*
    /// transactions — they resolve it, we don't.
    fn cycle_through(&self, tx: TxId) -> bool {
        let Some(mut cur) = self.next(tx) else {
            return false;
        };
        let mut visited: Vec<TxId> = Vec::new();
        loop {
            if cur == tx {
                return true;
            }
            if visited.contains(&cur) {
                return false;
            }
            visited.push(cur);
            match self.next(cur) {
                Some(n) => cur = n,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    #[test]
    fn word_pack_roundtrip_and_version() {
        let w = pack(7, 0, true, 3);
        assert_eq!(holder_of(w), 7);
        assert!(is_exclusive(w));
        assert_eq!(readers_of(w), 0);
        assert_eq!(version_of(w), 3);
        let s = pack(9, 5, false, 0xFFFF);
        assert_eq!(
            decode(s),
            WordState::Shared {
                readers: 5,
                rep: t(9)
            }
        );
        // Version wraps inside its 16 bits without touching other fields.
        let wrapped = pack(9, 5, false, 0x1_0000);
        assert_eq!(version_of(wrapped), 0);
        assert_eq!(decode(wrapped), decode(s));
    }

    #[test]
    fn exclusive_acquire_conflicts_and_releases() {
        let words = LockWords::new(4);
        assert_eq!(words.try_acquire(e(1), t(1), false), Ok(()));
        assert_eq!(words.state(e(1)), WordState::Exclusive(t(1)));
        // Conflicts name the holder; a self-relock names the requester.
        assert_eq!(words.try_acquire(e(1), t(2), false), Err(t(1)));
        assert_eq!(words.try_acquire(e(1), t(2), true), Err(t(1)));
        assert_eq!(words.try_acquire(e(1), t(1), false), Err(t(1)));
        assert_eq!(words.conflicting_holder(e(1), false), Some(t(1)));
        assert!(words.release(e(1), t(1), false), "release frees the word");
        assert_eq!(words.state(e(1)), WordState::Free);
        assert!(words.quiescent());
        // The freed word is reacquirable, version moved on.
        assert_eq!(words.try_acquire(e(1), t(2), false), Ok(()));
        assert!(words.release(e(1), t(2), false));
    }

    #[test]
    fn shared_acquires_count_and_block_writers() {
        let words = LockWords::new(2);
        assert_eq!(words.try_acquire(e(0), t(1), true), Ok(()));
        assert_eq!(words.try_acquire(e(0), t(2), true), Ok(()));
        assert_eq!(
            words.state(e(0)),
            WordState::Shared {
                readers: 2,
                rep: t(1)
            }
        );
        // Readers don't conflict with readers; writers block on the rep.
        assert_eq!(words.conflicting_holder(e(0), true), None);
        assert_eq!(words.try_acquire(e(0), t(3), false), Err(t(1)));
        // The representative leaving keeps the count right (stale rep is
        // documented as a hint, not truth).
        assert!(!words.release(e(0), t(1), true), "a reader remains");
        assert_eq!(
            words.state(e(0)),
            WordState::Shared {
                readers: 1,
                rep: t(1)
            }
        );
        assert!(words.release(e(0), t(2), true), "last reader frees");
        assert!(words.quiescent());
    }

    #[test]
    fn shared_reader_count_saturates_at_the_field_cap() {
        // Regression for the release-mode overflow: at readers ==
        // COUNT_MASK (32767) the pre-fix `readers + 1` wrapped the
        // packed count to zero, so the 32768th shared acquire silently
        // *freed* the word while every reader still held it. Seed the
        // word at the cap directly (32767 CAS acquires would dominate
        // the suite) and demand a conflict.
        let words = LockWords::new(1);
        words.words[0].store(pack(1, COUNT_MASK, false, 0), Ordering::SeqCst);
        assert_eq!(
            words.try_acquire(e(0), t(9), true),
            Err(t(1)),
            "the acquire past the cap must conflict, not free the word"
        );
        assert_eq!(
            words.state(e(0)),
            WordState::Shared {
                readers: COUNT_MASK,
                rep: t(1)
            },
            "a saturating conflict must leave the word untouched"
        );
        // The saturated word still drains normally.
        assert!(!words.release(e(0), t(2), true), "readers remain");
        assert_eq!(
            words.state(e(0)),
            WordState::Shared {
                readers: COUNT_MASK - 1,
                rep: t(1)
            }
        );
        // And a writer still sees the representative as the holder.
        assert_eq!(words.try_acquire(e(0), t(9), false), Err(t(1)));
    }

    #[test]
    #[should_panic(expected = "overflows the 15-bit lock-word field")]
    fn pack_rejects_reader_overflow_in_release_builds_too() {
        // The guard is a release-mode assert now: masking the count
        // would corrupt the shared word table, so pack must refuse.
        let _ = pack(1, COUNT_MASK + 1, false, 0);
    }

    #[test]
    #[should_panic(expected = "corrupt lock word")]
    fn decode_rejects_a_holder_with_no_mode_bits() {
        // "Holder set, readers 0, not exclusive" is non-canonical: no
        // writer produces it (a freed word zeroes every field). Reading
        // it as Free would grant over whoever the stale field names.
        let _ = decode(pack(5, 0, false, 1));
    }

    #[test]
    fn release_of_unheld_words_is_a_tolerated_noop() {
        let words = LockWords::new(2);
        assert!(!words.release(e(0), t(1), false), "free word");
        assert!(!words.release(e(9), t(1), false), "past capacity");
        assert_eq!(words.try_acquire(e(0), t(1), false), Ok(()));
        assert!(!words.release(e(0), t(2), false), "wrong holder");
        assert!(!words.release(e(0), t(1), true), "wrong mode");
        assert_eq!(words.state(e(0)), WordState::Exclusive(t(1)));
    }

    #[test]
    fn wait_graph_detects_cycles_across_shards() {
        let g = WaitGraph::new(4);
        // t1 → t2 → t3, no cycle yet (ids land in distinct shards).
        assert!(!g.note(t(1), t(2)));
        assert!(!g.note(t(2), t(3)));
        // t3 → t1 closes the cycle; t3 is the victim.
        assert!(g.note(t(3), t(1)));
        g.clear(t(3));
        // With t3's edge retracted the cycle is open again.
        assert!(!g.note(t(1), t(2)));
        // A foreign cycle (not through the walker) is not ours to break.
        assert!(g.note(t(2), t(1)), "two-cycle through the inserter");
        g.clear(t(2));
        assert!(!g.note(t(4), t(1)), "chain dead-ends outside the cycle");
    }

    #[test]
    fn wait_graph_single_shard_still_terminates() {
        let g = WaitGraph::new(1);
        assert!(!g.note(t(2), t(4)));
        assert!(g.note(t(4), t(2)), "closing a 2-cycle names the closer");
        // A walker outside that cycle terminates on the visited check
        // and is not chosen as a victim for someone else's deadlock.
        assert!(!g.note(t(1), t(2)), "foreign cycle: not ours to break");
    }

    #[test]
    fn wait_graph_refresh_overwrites_the_edge() {
        let g = WaitGraph::new(8);
        assert!(!g.note(t(1), t(2)));
        // The holder moved on; refreshing points the edge at the fresh
        // holder (PR-6 discipline), and the old edge is gone.
        assert!(!g.note(t(1), t(3)));
        assert!(!g.note(t(2), t(1)), "t1 no longer waits on t2's chain");
        assert!(g.note(t(3), t(1)), "the fresh edge closes this cycle");
    }
}
