//! Probe planners: plan shapes that *exercise the ablated rule* of each
//! DDAG mutant engine.
//!
//! The standard [`slp_sim::DdagPlanner`] emits plans that satisfy every
//! DDAG rule by construction — the paper's point is that any interleaving
//! of rule-conforming transactions is serializable, so driving a mutant
//! engine with conforming plans can never surface the ablated rule. The
//! negative controls instead need plans that are legal under the mutant
//! but that the *safe* engine would refuse at a typed L5 violation:
//!
//! * [`CrawlProbePlanner`] — lock-use-release crawls down the ancestor
//!   closure in topological order, holding **nothing** between sessions.
//!   Every predecessor was locked in the past (L5a ✓) but none is held at
//!   lock time (L5b ✗): admitted only by `DDAG-no-held-pred`, where two
//!   crawls can overtake each other into a conflict cycle.
//! * [`ShoulderProbePlanner`] — a single root-to-target *path* crawl that
//!   always holds the previous path node (L5b ✓) but never locks a join
//!   node's other predecessors (L5a ✗): admitted only by
//!   `DDAG-no-all-preds`, where two transactions descending opposite
//!   shoulders of a diamond serialize the root one way and the join the
//!   other.
//!
//! The altruistic mutant needs no probe: the standard eager-donation
//! planner already exercises AL2 — whether a lock lands "outside the
//! wake" is a property of the *interleaving* (did the transaction take a
//! donated item while the donor was still active?), not of the plan.

use slp_core::EntityId;
use slp_graph::dag;
use slp_policies::{AccessIntent, PlanViolation, PolicyAction, PolicyEngine, PolicyViolation};
use slp_sim::{ActionPlanner, Job};
use std::collections::BTreeSet;

/// Lock-use-release crawls over the ancestor closure (for the
/// `DDAG-no-held-pred` negative control). Accesses every region node to
/// maximize conflict edges between overlapping crawls.
pub struct CrawlProbePlanner;

impl ActionPlanner for CrawlProbePlanner {
    fn intent(&self, _job: &Job) -> AccessIntent {
        AccessIntent::empty()
    }

    fn plan(
        &mut self,
        engine: &dyn PolicyEngine,
        job: &Job,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        let g = engine.graph().ok_or(PlanViolation::NoGraph)?;
        if job.targets.is_empty() {
            return Err(PlanViolation::EmptyJob.into());
        }
        for &t in &job.targets {
            if !g.has_node(t) {
                return Err(PlanViolation::TargetMissing(t).into());
            }
        }
        // Ancestor closure of the targets (predecessor-closed, so every
        // predecessor of a region node precedes it in topological order —
        // L5a holds along the crawl).
        let mut region: BTreeSet<EntityId> = job.targets.iter().copied().collect();
        let mut frontier: Vec<EntityId> = job.targets.clone();
        while let Some(n) = frontier.pop() {
            for p in g.predecessors(n) {
                if region.insert(p) {
                    frontier.push(p);
                }
            }
        }
        let topo = dag::topological_sort(g).ok_or(PlanViolation::CyclicGraph)?;
        let mut plan = Vec::with_capacity(region.len() * 3);
        for n in topo.into_iter().filter(|n| region.contains(n)) {
            plan.push(PolicyAction::Lock(n));
            plan.push(PolicyAction::Access(n));
            plan.push(PolicyAction::Unlock(n));
        }
        Ok(Some(plan))
    }
}

/// Single-path shoulder crawls (for the `DDAG-no-all-preds` negative
/// control): root → … → `targets[0]` along one predecessor chain, always
/// holding the previous node, accessing every node on the path. Which
/// shoulder a multi-parent node is reached through varies with the worker
/// index and a per-plan counter, so two transactions aiming at the same
/// target routinely descend opposite shoulders.
pub struct ShoulderProbePlanner {
    salt: usize,
    planned: usize,
}

impl ShoulderProbePlanner {
    /// A planner whose shoulder choices are decorrelated by `salt`
    /// (typically the worker index).
    pub fn new(salt: usize) -> Self {
        ShoulderProbePlanner { salt, planned: 0 }
    }
}

impl ActionPlanner for ShoulderProbePlanner {
    fn intent(&self, _job: &Job) -> AccessIntent {
        AccessIntent::empty()
    }

    fn plan(
        &mut self,
        engine: &dyn PolicyEngine,
        job: &Job,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        let g = engine.graph().ok_or(PlanViolation::NoGraph)?;
        let &target = job.targets.first().ok_or(PlanViolation::EmptyJob)?;
        if !g.has_node(target) {
            return Err(PlanViolation::TargetMissing(target).into());
        }
        self.planned += 1;
        // Climb from the target to the root, picking one predecessor per
        // level (salted, so different transactions pick different
        // shoulders).
        let mut path = vec![target];
        let mut cur = target;
        let mut depth = 0usize;
        loop {
            let mut preds: Vec<EntityId> = g.predecessors(cur).collect();
            if preds.is_empty() {
                break; // reached the root
            }
            preds.sort_unstable();
            let pick = (self
                .salt
                .wrapping_mul(31)
                .wrapping_add(self.planned.wrapping_mul(13))
                .wrapping_add(depth.wrapping_mul(7)))
                % preds.len();
            cur = preds[pick];
            path.push(cur);
            depth += 1;
            if depth > g.node_count() {
                // A cycle would already have failed topological planning;
                // guard anyway rather than loop forever on a broken graph.
                return Err(PlanViolation::CyclicGraph.into());
            }
        }
        path.reverse();
        let mut plan = Vec::with_capacity(path.len() * 3);
        plan.push(PolicyAction::Lock(path[0]));
        plan.push(PolicyAction::Access(path[0]));
        for i in 1..path.len() {
            plan.push(PolicyAction::Lock(path[i]));
            plan.push(PolicyAction::Access(path[i]));
            plan.push(PolicyAction::Unlock(path[i - 1]));
        }
        plan.push(PolicyAction::Unlock(*path.last().expect("non-empty path")));
        Ok(Some(plan))
    }
}
