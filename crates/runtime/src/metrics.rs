//! Lock-free service metrics: a registry of atomic counters and
//! fixed-bucket latency histograms, fed by the runtime at the end of
//! every run and rendered as a plain-text snapshot.
//!
//! The registry is shared-reference friendly (every cell is an atomic
//! with relaxed ordering — counts are monotone statistics, not
//! synchronization), so a load generator can hold a [`Metrics`] across
//! thousands of runs and render a consolidated snapshot at any point
//! without stopping the world. [`Metrics::render`] emits one
//! `name value` line per counter plus cumulative `_bucket{le="..."}` /
//! `_sum` / `_count` lines per histogram — the text-exposition shape
//! scrapers already understand.

use crate::report::RuntimeReport;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone atomic counter (relaxed ordering; a statistic, not a
/// synchronization point).
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger (for high-water marks).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (µs, inclusive) of the histogram buckets: powers of 4
/// from 1 µs to ~1 s, followed by an implicit overflow bucket. Eleven
/// fixed buckets cover six decades at a quarter-decade resolution —
/// coarse, but allocation-free and mergeable across runs.
pub const LATENCY_BUCKETS_US: [u64; 11] = [
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
];

/// A fixed-bucket latency histogram (microseconds). Recording is one
/// relaxed `fetch_add` per sample; buckets are cumulative only at
/// render time.
#[derive(Default)]
pub struct Histogram {
    counts: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples (µs).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    fn render_into(&self, name: &str, out: &mut String) {
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.counts[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum_us());
        let _ = writeln!(out, "{name}_count {cumulative}");
    }
}

/// The metrics registry. All fields are public: samplers bump them
/// directly, dashboards read them directly, [`Metrics::render`] snapshots
/// everything as text.
#[derive(Default)]
pub struct Metrics {
    /// Completed runs recorded into this registry.
    pub runs: Counter,
    /// Fresh-transaction attempts.
    pub attempts: Counter,
    /// Jobs committed.
    pub committed: Counter,
    /// Retryable policy-rule aborts.
    pub policy_aborts: Counter,
    /// Deadlock-victim aborts.
    pub deadlock_aborts: Counter,
    /// Strict-certification cycle-victim aborts.
    pub certification_aborts: Counter,
    /// Jobs dropped on fatal violations.
    pub rejected: Counter,
    /// Attempts cut short by the wall-clock guard or a strict-mode halt.
    pub abandoned: Counter,
    /// Actions granted (both paths; fast + slow always equals this).
    pub grants: Counter,
    /// Actions granted by a per-entity lock-word CAS (engine bypassed).
    pub fast_path_grants: Counter,
    /// Actions granted under the engine write lock.
    pub slow_path_grants: Counter,
    /// Attempts routed to the engine despite an active fast path (plan
    /// shape outside plain lock/access).
    pub fast_path_fallbacks: Counter,
    /// Conflict observations (a request found its lock held).
    pub conflicts: Counter,
    /// Times a worker actually blocked on a parking stripe.
    pub parks: Counter,
    /// Park-timeout backstop firings (lost-wakeup evidence under a
    /// generous timeout).
    pub park_timeouts: Counter,
    /// Versioned reads served from MVCC snapshots (no lock service).
    pub snapshot_reads: Counter,
    /// Waves dispatched by the batch scheduler (zero for unscheduled
    /// runs).
    pub waves: Counter,
    /// Conflict edges the admission-stage DAG resolved by wave ordering
    /// instead of grant-time parking.
    pub sched_parks_avoided: Counter,
    /// WAL records appended.
    pub wal_records: Counter,
    /// WAL bytes appended.
    pub wal_bytes: Counter,
    /// WAL fsync (or simulated sync) calls.
    pub wal_syncs: Counter,
    /// Steps the online certifier observed.
    pub cert_steps: Counter,
    /// Serialization-graph edges the certifier inserted.
    pub cert_edges: Counter,
    /// Transactions pruned by committed-prefix truncation.
    pub cert_truncations: Counter,
    /// High-water mark of live certifier nodes (bounded-memory witness).
    pub cert_peak_nodes: Counter,
    /// Serialization-graph cycles latched across runs.
    pub cert_violations: Counter,
    /// Commit latency (job dispatch to commit, across retries).
    pub commit_latency: Histogram,
    /// Wave width (jobs per scheduler wave; the bucket bounds read as
    /// plain counts here, not microseconds).
    pub wave_width: Histogram,
}

impl Metrics {
    /// A fresh, zeroed registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records raw per-job commit latencies into the histogram (the
    /// runtime calls this before the samples are folded into the
    /// report's [`crate::LatencySummary`]).
    pub fn observe_latencies(&self, us: &[u64]) {
        for &sample in us {
            self.commit_latency.record(sample);
        }
    }

    /// Folds one finished run's report into the registry: accounting,
    /// service contention counters, WAL counters, and the online
    /// certifier's stats when the run certified.
    pub fn record_run(&self, report: &RuntimeReport) {
        self.runs.add(1);
        self.attempts.add(report.attempts as u64);
        self.committed.add(report.committed as u64);
        self.policy_aborts.add(report.policy_aborts as u64);
        self.deadlock_aborts.add(report.deadlock_aborts as u64);
        self.certification_aborts
            .add(report.certification_aborts as u64);
        self.rejected.add(report.rejected as u64);
        self.abandoned.add(report.abandoned as u64);
        self.grants.add(report.grants);
        self.fast_path_grants.add(report.fast_path_grants);
        self.slow_path_grants.add(report.slow_path_grants);
        self.fast_path_fallbacks.add(report.fast_path_fallbacks);
        self.conflicts.add(report.lock_waits);
        self.parks.add(report.parks);
        self.park_timeouts.add(report.park_timeouts);
        self.snapshot_reads.add(report.snapshot_reads);
        self.waves.add(report.waves as u64);
        self.sched_parks_avoided.add(report.sched_parks_avoided);
        for &width in &report.wave_widths {
            self.wave_width.record(u64::from(width));
        }
        if let Some(wal) = &report.wal {
            self.wal_records.add(wal.records);
            self.wal_bytes.add(wal.bytes);
            self.wal_syncs.add(wal.syncs);
        }
        if let Some(cert) = &report.certification {
            self.cert_steps.add(cert.stats.steps);
            self.cert_edges.add(cert.stats.edges);
            self.cert_truncations.add(cert.stats.truncations);
            self.cert_peak_nodes
                .record_max(cert.stats.peak_nodes as u64);
            if cert.violation.is_some() {
                self.cert_violations.add(1);
            }
        }
    }

    /// Renders the registry as a text snapshot: `slp_<name> <value>`
    /// lines, histogram as cumulative buckets.
    pub fn render(&self) -> String {
        let counters: [(&str, &Counter); 26] = [
            ("runs_total", &self.runs),
            ("attempts_total", &self.attempts),
            ("committed_total", &self.committed),
            ("policy_aborts_total", &self.policy_aborts),
            ("deadlock_aborts_total", &self.deadlock_aborts),
            ("certification_aborts_total", &self.certification_aborts),
            ("rejected_total", &self.rejected),
            ("abandoned_total", &self.abandoned),
            ("grants_total", &self.grants),
            ("fast_path_grants_total", &self.fast_path_grants),
            ("slow_path_grants_total", &self.slow_path_grants),
            ("fast_path_fallbacks_total", &self.fast_path_fallbacks),
            ("conflicts_total", &self.conflicts),
            ("parks_total", &self.parks),
            ("park_timeouts_total", &self.park_timeouts),
            ("snapshot_reads_total", &self.snapshot_reads),
            ("waves_total", &self.waves),
            ("sched_parks_avoided_total", &self.sched_parks_avoided),
            ("wal_records_total", &self.wal_records),
            ("wal_bytes_total", &self.wal_bytes),
            ("wal_syncs_total", &self.wal_syncs),
            ("cert_steps_total", &self.cert_steps),
            ("cert_edges_total", &self.cert_edges),
            ("cert_truncations_total", &self.cert_truncations),
            ("cert_peak_nodes", &self.cert_peak_nodes),
            ("cert_violations_total", &self.cert_violations),
        ];
        let mut out = String::new();
        for (name, counter) in counters {
            let _ = writeln!(out, "slp_{name} {}", counter.get());
        }
        self.commit_latency
            .render_into("slp_commit_latency_us", &mut out);
        self.wave_width.render_into("slp_wave_width", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_lossless() {
        let h = Histogram::default();
        for us in [0, 1, 2, 100, 5_000, u64::MAX] {
            h.record(us);
        }
        assert_eq!(h.count(), 6);
        // 0 and 1 land in the first bucket; u64::MAX overflows past the
        // last bound but is still counted.
        let rendered = {
            let mut s = String::new();
            h.render_into("lat", &mut s);
            s
        };
        assert!(rendered.contains("lat_bucket{le=\"1\"} 2"));
        assert!(rendered.contains("lat_bucket{le=\"4\"} 3"));
        assert!(rendered.contains("lat_bucket{le=\"+Inf\"} 6"));
        assert!(rendered.contains("lat_count 6"));
    }

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.committed.add(7);
        m.committed.add(3);
        m.cert_peak_nodes.record_max(5);
        m.cert_peak_nodes.record_max(2); // lower: high-water mark holds
        m.observe_latencies(&[10, 20, 30]);
        let text = m.render();
        assert!(text.contains("slp_committed_total 10"));
        assert!(text.contains("slp_cert_peak_nodes 5"));
        assert!(text.contains("slp_commit_latency_us_count 3"));
        assert!(text.contains("slp_commit_latency_us_sum 60"));
    }
}
