//! Runtime stress/determinism matrix (à la
//! `verifier/tests/parallel_agreement.rs`): seeded workloads at 1/2/4/8
//! workers, with the `SLP_RUNTIME_THREADS` override collapsing the ladder
//! to one width (the CI matrix convention).
//!
//! Per run: no lost jobs (attempts balance against committed + aborts +
//! rejected + abandoned, and every job either commits or is rejected), the
//! lock table is empty at quiescence (trace-level check), and the trace
//! replays legal + proper + serializable. Across repeated runs of the same
//! seed at the same width: the deterministic accounting — job *outcomes* —
//! is identical. Abort and wait *counts* are timing-dependent under real
//! threads by design (two runs of the same seed interleave differently);
//! at 1 worker there is no interleaving at all, so there the entire
//! accounting and the full step trace must be bit-identical.

use slp_core::{is_serializable, EntityId};
use slp_policies::{PolicyConfig, PolicyKind};
use slp_runtime::{Runtime, RuntimeConfig, RuntimeReport};
use slp_sim::{deep_dag_jobs, hot_cold_jobs, layered_dag, uniform_jobs, Job};

/// The worker widths to sweep: the env override pins one, else the ladder.
fn widths() -> Vec<usize> {
    match RuntimeConfig::env_workers() {
        Some(w) => vec![w],
        None => vec![1, 2, 4, 8],
    }
}

/// The grant-path modes to sweep: `SLP_RUNTIME_FAST_PATH` pins one (the
/// CI fast-path matrix), else both.
fn fast_modes() -> Vec<bool> {
    match RuntimeConfig::env_fast_path() {
        Some(f) => vec![f],
        None => vec![true, false],
    }
}

fn run_once(
    kind: PolicyKind,
    config: &PolicyConfig,
    jobs: &[Job],
    workers: usize,
    fast: bool,
) -> RuntimeReport {
    let mut rt = Runtime::new(kind, config).expect("buildable kind");
    // A park timeout far above scheduler jitter: with the wake protocol
    // correct it never fires (a parked worker is always woken by the
    // release that unblocks it), so `check_invariants` can assert the
    // counter stays zero. The default 1 ms timeout would race OS
    // preemption of lock holders and make that assertion meaningless.
    let config = RuntimeConfig {
        park_timeout: std::time::Duration::from_secs(10),
        // The env pin (CI fast-path matrix) wins over the caller's sweep
        // value, mirroring how `widths()` collapses under the width pin.
        grant_fast_path: RuntimeConfig::env_fast_path().unwrap_or(fast),
        ..RuntimeConfig::with_workers(workers)
    };
    rt.run(jobs, &config)
}

/// The per-run invariants every stress cell must satisfy.
fn check_invariants(report: &RuntimeReport, jobs: usize, ctx: &str) {
    assert!(!report.timed_out, "{ctx}: timed out");
    assert!(
        report.accounting_balances(),
        "{ctx}: attempts ({}) != committed ({}) + policy aborts ({}) + \
         deadlock aborts ({}) + rejected ({}) + abandoned ({})",
        report.attempts,
        report.committed,
        report.policy_aborts,
        report.deadlock_aborts,
        report.rejected,
        report.abandoned
    );
    assert_eq!(report.committed + report.rejected, jobs, "{ctx}: lost jobs");
    assert_eq!(report.abandoned, 0, "{ctx}: abandoned jobs without timeout");
    assert!(
        report.lock_table_quiescent(),
        "{ctx}: locks still held at quiescence: {:?}",
        report.schedule.locks_held_at_end()
    );
    assert!(report.schedule.is_legal(), "{ctx}: illegal trace");
    assert!(
        report.schedule.is_proper(&report.initial),
        "{ctx}: improper trace"
    );
    assert!(
        is_serializable(&report.schedule),
        "{ctx}: nonserializable trace"
    );
    assert_eq!(
        report.latency.count, report.committed,
        "{ctx}: latency sample per committed job"
    );
    assert_eq!(
        report.grants,
        report.fast_path_grants + report.slow_path_grants,
        "{ctx}: every grant must be attributed to exactly one path"
    );
    // Happy paths run with a generous park timeout, so a firing backstop
    // means a worker parked and was never woken — a lost wakeup.
    assert_eq!(
        report.park_timeouts, 0,
        "{ctx}: park-timeout backstop fired on a healthy run"
    );
    // Anti-spin regression (race-free by construction): every conflict
    // observation is chargeable to the attempt or grant whose request
    // observed it, or — after the first in a conflict loop — to the park
    // return that preceded it, and a park only returns on a stripe
    // generation bump (one per released entity, waking at most `workers`
    // waiters) or a counted timeout. The old conflict loop re-requested
    // immediately when contention moved to a new entity, and that spin
    // inflates lock_waits past this budget on a hot plan tail.
    let unlock_bumps = report
        .schedule
        .steps()
        .iter()
        .filter(|s| s.step.is_unlock())
        .count() as u64;
    let budget = report.attempts as u64
        + report.grants
        + unlock_bumps * report.workers as u64
        + report.park_timeouts;
    assert!(
        report.lock_waits <= budget,
        "{ctx}: lock_waits ({}) exceeds the park/wake budget ({budget}: {} attempts + {} \
         grants + {unlock_bumps} unlock bumps x {} workers + {} timeouts) — a conflict loop \
         is spinning without parking",
        report.lock_waits,
        report.attempts,
        report.grants,
        report.workers,
        report.park_timeouts
    );
}

#[test]
fn stress_ladder_holds_invariants_at_every_width() {
    let pool: Vec<EntityId> = (0..20).map(EntityId).collect();
    for kind in [
        PolicyKind::TwoPhase,
        PolicyKind::Altruistic,
        PolicyKind::Dtr,
    ] {
        for seed in [5u64, 11] {
            let jobs = hot_cold_jobs(&pool, 24, 3, 4, 0.8, seed);
            for &w in &widths() {
                // Both grant paths at every cell: the fast path is inert
                // for Global-scope engines, but 2PL genuinely bypasses
                // the engine lock when `fast` is on.
                for fast in fast_modes() {
                    let ctx = format!("{} / seed {seed} / {w} workers / fast {fast}", kind.name());
                    let report = run_once(kind, &PolicyConfig::flat(pool.clone()), &jobs, w, fast);
                    assert_eq!(report.workers, w, "{ctx}: width not honored");
                    check_invariants(&report, jobs.len(), &ctx);
                    if !fast {
                        assert_eq!(report.fast_path_grants, 0, "{ctx}: fast grants when off");
                    }
                }
            }
        }
    }
}

#[test]
fn ddag_stress_ladder_holds_invariants() {
    for seed in [3u64, 9] {
        let dag = layered_dag(4, 3, 2, seed);
        let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
        let jobs = deep_dag_jobs(&dag, 16, 2, seed);
        for &w in &widths() {
            let ctx = format!("DDAG / seed {seed} / {w} workers");
            let report = run_once(PolicyKind::Ddag, &config, &jobs, w, true);
            check_invariants(&report, jobs.len(), &ctx);
        }
    }
}

#[test]
fn outcome_accounting_is_identical_across_repeated_runs() {
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    for seed in [2u64, 7] {
        let jobs = uniform_jobs(&pool, 20, 3, seed);
        for &w in &widths() {
            let runs: Vec<RuntimeReport> = (0..3)
                .map(|_| {
                    run_once(
                        PolicyKind::TwoPhase,
                        &PolicyConfig::flat(pool.clone()),
                        &jobs,
                        w,
                        true,
                    )
                })
                .collect();
            for r in &runs {
                check_invariants(r, jobs.len(), &format!("2PL / seed {seed} / {w} workers"));
            }
            let first = runs[0].outcome_fingerprint();
            for (i, r) in runs.iter().enumerate().skip(1) {
                assert_eq!(
                    r.outcome_fingerprint(),
                    first,
                    "seed {seed} / {w} workers: run {i} changed job outcomes"
                );
            }
        }
    }
}

#[test]
fn single_worker_runs_are_fully_deterministic() {
    // With one worker there is no interleaving: the entire report —
    // including abort counts, wait counts, and the step-by-step trace —
    // must repeat exactly.
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    for kind in [
        PolicyKind::TwoPhase,
        PolicyKind::Altruistic,
        PolicyKind::Dtr,
    ] {
        let jobs = hot_cold_jobs(&pool, 20, 3, 4, 0.8, 13);
        let a = run_once(kind, &PolicyConfig::flat(pool.clone()), &jobs, 1, true);
        let b = run_once(kind, &PolicyConfig::flat(pool.clone()), &jobs, 1, true);
        let ctx = format!("{} / 1 worker", kind.name());
        check_invariants(&a, jobs.len(), &ctx);
        assert_eq!(a.schedule, b.schedule, "{ctx}: trace changed across runs");
        assert_eq!(a.attempts, b.attempts, "{ctx}");
        assert_eq!(a.policy_aborts, b.policy_aborts, "{ctx}");
        assert_eq!(a.deadlock_aborts, b.deadlock_aborts, "{ctx}");
        assert_eq!(a.lock_waits, b.lock_waits, "{ctx}");
        assert_eq!(a.deadlock_aborts, 0, "{ctx}: one worker cannot deadlock");
        assert_eq!(a.lock_waits, 0, "{ctx}: one worker cannot conflict");
    }
}

#[test]
fn wall_clock_guard_reports_timeouts_honestly() {
    // A zero deadline: workers must drain without committing, flag the
    // timeout, and keep the accounting balanced (abandoned attempts are
    // counted, not lost).
    let pool: Vec<EntityId> = (0..8).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 10, 2, 1);
    let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool)).unwrap();
    let report = rt.run(
        &jobs,
        &RuntimeConfig {
            workers: 2,
            max_wall: std::time::Duration::ZERO,
            ..Default::default()
        },
    );
    assert!(report.timed_out);
    assert!(report.accounting_balances());
    assert_eq!(report.abandoned, jobs.len());
    assert_eq!(report.committed, 0);
    assert!(report.lock_table_quiescent());
}
