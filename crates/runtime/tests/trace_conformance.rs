//! Trace-replay conformance: every trace the concurrent runtime emits is
//! replayed through `slp-core` and checked against the formal model.
//!
//! * **Safe sweep** — every safe [`PolicyKind`] × 50+ seeded workloads
//!   (uniform, long/short, hot/cold contention, DAG traversals, deep-layer
//!   dominator traversals, insert mixes): each captured trace must be
//!   legal, proper for the run's initial structural state, and
//!   serializable, with no lost jobs and a quiescent lock table.
//! * **Fast-path sweep** — the sharded grant fast path
//!   ([`RuntimeConfig::grant_fast_path`]) on and off × 1/2/4/8 workers
//!   for the per-entity-scope policy, same verdicts required, plus the
//!   grant-accounting identity `grants == fast + slow`.
//! * **Negative controls** — the three mutant kinds run under the same
//!   runtime (the DDAG mutants driven by the probe planners that exercise
//!   their ablated rule) and the checker must catch at least one
//!   **non**serializable trace per mutant across the seed sweep — proving
//!   the capture → replay → verdict pipeline can actually see unsafety.
//!
//! The worker count honors `SLP_RUNTIME_THREADS` (CI matrix convention).

use slp_core::{is_serializable, EntityId};
use slp_policies::{PolicyConfig, PolicyKind};
use slp_runtime::{CrawlProbePlanner, Runtime, RuntimeConfig, ShoulderProbePlanner};
use slp_sim::{
    dag_access_jobs, dag_mixed_jobs, deep_dag_jobs, hot_cold_jobs, layered_dag, long_short_jobs,
    uniform_jobs, Job,
};
use std::sync::Arc;

fn workers() -> usize {
    RuntimeConfig::workers_from_env(4)
}

fn conf() -> RuntimeConfig {
    RuntimeConfig {
        workers: workers(),
        // The CI fast-path matrix pins the grant path; unset, the
        // default (fast on) applies.
        grant_fast_path: RuntimeConfig::env_fast_path().unwrap_or(true),
        ..Default::default()
    }
}

/// Config for the mutant sweeps: a nonserializable interleaving requires
/// *actual* concurrency, so the width never drops below 4 even when
/// `SLP_RUNTIME_THREADS` pins the safe sweeps to 1 (at width 1 every run
/// is serial and trivially serializable — the negative control would be
/// vacuous, not failed).
fn mutant_conf() -> RuntimeConfig {
    RuntimeConfig {
        workers: workers().max(4),
        ..Default::default()
    }
}

/// Runs jobs through a fresh runtime and applies the full replay check.
/// Returns the number of committed jobs.
fn run_and_verify_safe(kind: PolicyKind, config: &PolicyConfig, jobs: &[Job], ctx: &str) {
    let mut rt = Runtime::new(kind, config).expect("buildable kind");
    let report = rt.run(jobs, &conf());
    assert!(!report.timed_out, "{ctx}: timed out");
    assert!(
        report.accounting_balances(),
        "{ctx}: attempts don't balance"
    );
    assert_eq!(report.rejected, 0, "{ctx}: well-formed jobs rejected");
    assert_eq!(report.committed, jobs.len(), "{ctx}: lost jobs");
    assert!(report.lock_table_quiescent(), "{ctx}: locks leaked");
    assert!(report.schedule.is_legal(), "{ctx}: illegal trace");
    assert!(
        report.schedule.is_proper(&report.initial),
        "{ctx}: improper trace"
    );
    assert!(
        is_serializable(&report.schedule),
        "{ctx}: NONSERIALIZABLE trace from a safe policy"
    );
}

#[test]
fn flat_pool_policies_emit_serializable_traces_across_the_seed_sweep() {
    // 3 workload shapes × 17 seeds = 51 workloads per flat-pool kind.
    let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
    for kind in [
        PolicyKind::TwoPhase,
        PolicyKind::Altruistic,
        PolicyKind::Dtr,
    ] {
        for seed in 0..17u64 {
            let workloads: [(&str, Vec<Job>); 3] = [
                ("uniform", uniform_jobs(&pool, 24, 3, seed)),
                ("long-short", long_short_jobs(&pool, 12, 14, 2, seed)),
                ("hot-cold", hot_cold_jobs(&pool, 30, 3, 4, 0.8, seed)),
            ];
            for (name, jobs) in workloads {
                let ctx = format!("{} / {name} / seed {seed}", kind.name());
                run_and_verify_safe(kind, &PolicyConfig::flat(pool.clone()), &jobs, &ctx);
            }
        }
    }
}

#[test]
fn fast_path_on_and_off_conform_at_every_width() {
    // The sharded grant fast path must be invisible to the formal model:
    // 2PL (the per-entity-scope engine) swept with the word table on and
    // off at widths 1/2/4/8 (or the env-pinned width), every trace still
    // legal + proper + serializable, and the grant accounting split
    // exactly between the two paths.
    let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
    let widths: Vec<usize> = if std::env::var("SLP_RUNTIME_THREADS").is_ok() {
        vec![workers()]
    } else {
        vec![1, 2, 4, 8]
    };
    let modes = match RuntimeConfig::env_fast_path() {
        Some(f) => vec![f],
        None => vec![true, false],
    };
    for fast in modes {
        for &width in &widths {
            for seed in 0..5u64 {
                let workloads: [(&str, Vec<Job>); 2] = [
                    ("uniform", uniform_jobs(&pool, 24, 3, seed)),
                    ("hot-cold", hot_cold_jobs(&pool, 30, 3, 4, 0.8, seed)),
                ];
                for (name, jobs) in workloads {
                    let ctx = format!("2PL / fast {fast} / width {width} / {name} / seed {seed}");
                    let mut rt =
                        Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone()))
                            .expect("2PL builds");
                    let config = RuntimeConfig {
                        workers: width,
                        grant_fast_path: fast,
                        ..Default::default()
                    };
                    let report = rt.run(&jobs, &config);
                    assert!(!report.timed_out, "{ctx}: timed out");
                    assert!(report.accounting_balances(), "{ctx}: unbalanced");
                    assert_eq!(report.committed, jobs.len(), "{ctx}: lost jobs");
                    assert!(report.lock_table_quiescent(), "{ctx}: locks leaked");
                    assert!(report.schedule.is_legal(), "{ctx}: illegal trace");
                    assert!(
                        report.schedule.is_proper(&report.initial),
                        "{ctx}: improper trace"
                    );
                    assert!(
                        is_serializable(&report.schedule),
                        "{ctx}: NONSERIALIZABLE trace"
                    );
                    assert_eq!(
                        report.grants,
                        report.fast_path_grants + report.slow_path_grants,
                        "{ctx}: grant split doesn't sum"
                    );
                    if fast {
                        assert!(report.fast_path_grants > 0, "{ctx}: fast path inert");
                    } else {
                        assert_eq!(report.fast_path_grants, 0, "{ctx}: fast grants when off");
                        assert_eq!(report.fast_path_fallbacks, 0, "{ctx}");
                    }
                }
            }
        }
    }
}

#[test]
fn ddag_emits_serializable_traces_across_the_seed_sweep() {
    // 3 workload shapes × 17 seeds = 51 workloads for the DDAG policy,
    // including the insert mix (the *dynamic* part: the graph grows while
    // traversals run, and invalidated plans abort + replan as in Fig. 3).
    for seed in 0..17u64 {
        let dag = layered_dag(4, 3, 2, seed);
        let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());

        let ctx = format!("DDAG / traversals / seed {seed}");
        run_and_verify_safe(
            PolicyKind::Ddag,
            &config,
            &dag_access_jobs(&dag, 16, 2, seed),
            &ctx,
        );

        let deep = layered_dag(5, 3, 2, seed);
        let deep_config = PolicyConfig::dag(deep.universe.clone(), deep.graph.clone());
        let ctx = format!("DDAG / deep / seed {seed}");
        run_and_verify_safe(
            PolicyKind::Ddag,
            &deep_config,
            &deep_dag_jobs(&deep, 18, 2, seed),
            &ctx,
        );

        // Insert mix: fresh nodes interned through the engine before the
        // run, inserted concurrently with traversals during it.
        let mut rt = Runtime::new(PolicyKind::Ddag, &config).expect("DDAG builds");
        let mut fresh = Vec::new();
        let jobs = {
            let mut intern = |name: &str| {
                let id = rt.intern(name).expect("DDAG interns");
                fresh.push(id);
                id
            };
            dag_mixed_jobs(&dag, 16, 2, 0.3, &mut intern, seed)
        };
        let report = rt.run(&jobs, &conf());
        let ctx = format!("DDAG / insert-mix / seed {seed}");
        assert!(!report.timed_out, "{ctx}: timed out");
        assert!(
            report.accounting_balances(),
            "{ctx}: attempts don't balance"
        );
        assert_eq!(report.rejected, 0, "{ctx}: well-formed jobs rejected");
        assert_eq!(report.committed, jobs.len(), "{ctx}: lost jobs");
        assert!(report.lock_table_quiescent(), "{ctx}: locks leaked");
        assert!(report.schedule.is_legal(), "{ctx}: illegal trace");
        assert!(
            report.schedule.is_proper(&report.initial),
            "{ctx}: improper trace"
        );
        assert!(
            is_serializable(&report.schedule),
            "{ctx}: NONSERIALIZABLE trace from safe DDAG"
        );
    }
}

// ---------------------------------------------------------------------
// Negative controls: the checker must flag real runtime unsafety.
// ---------------------------------------------------------------------

/// Sweeps seeds (each retried a few times — the unsafe interleaving is a
/// genuine race, and a fresh run rolls fresh thread timings) until the
/// runtime + checker produce a nonserializable trace, panicking if the
/// whole budget stays clean. Every swept trace must still be legal and
/// proper: the mutants only lose serializability. Measured catch rates
/// per seed (release, single-CPU host, the hardest setting): ~0.9 for the
/// AL2 mutant, ~1.0 for the L5b mutant, ~0.5 for the L5a mutant — across
/// 60+ seeds × 3 runs the sweep failing spuriously is vanishingly
/// unlikely, and debug builds (the tier-1 gate) interleave far more.
const RUNS_PER_SEED: usize = 3;

fn sweep_for_nonserializable(
    mutant: PolicyKind,
    seeds: std::ops::Range<u64>,
    mut run_one: impl FnMut(u64) -> slp_runtime::RuntimeReport,
) {
    let mut caught = 0usize;
    let total = seeds.end - seeds.start;
    'seeds: for seed in seeds {
        for _ in 0..RUNS_PER_SEED {
            let report = run_one(seed);
            assert!(
                report.schedule.is_legal(),
                "{} / seed {seed}: the engine's lock table must keep every trace legal",
                mutant.name()
            );
            assert!(
                report.schedule.is_proper(&report.initial),
                "{} / seed {seed}: improper trace",
                mutant.name()
            );
            if !is_serializable(&report.schedule) {
                caught += 1;
                break 'seeds; // one caught trace proves the pipeline
            }
        }
    }
    assert!(
        caught >= 1,
        "{}: checker caught no nonserializable trace in {total} seeds × \
         {RUNS_PER_SEED} runs — either the mutant workload no longer \
         exercises the ablated rule or the replay pipeline lost its teeth",
        mutant.name()
    );
}

#[test]
fn mutant_altruistic_no_wake_yields_a_caught_nonserializable_trace() {
    // Long/short under eager donation: shorts run in the long scan's wake;
    // without AL2 a short can escape the wake, commit an entity ahead of
    // the scan, and close a cycle when the scan reaches it.
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    sweep_for_nonserializable(PolicyKind::AltruisticNoWake, 0..80, |seed| {
        let mut rt = Runtime::new(
            PolicyKind::AltruisticNoWake,
            &PolicyConfig::flat(pool.clone()),
        )
        .expect("mutant builds");
        rt.run(&long_short_jobs(&pool, 10, 10, 2, seed), &mutant_conf())
    });
}

#[test]
fn mutant_ddag_no_held_pred_yields_a_caught_nonserializable_trace() {
    // Lock-use-release crawls (L5a-conforming, L5b-violating) at mixed
    // speeds: short crawls overtake long ones mid-region, inverting the
    // conflict order between two shared nodes.
    sweep_for_nonserializable(PolicyKind::DdagNoHeldPredecessor, 0..80, |seed| {
        let dag = layered_dag(4, 3, 2, seed);
        let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
        let mut rt =
            Runtime::new(PolicyKind::DdagNoHeldPredecessor, &config).expect("mutant builds");
        rt.set_planner_factory(Arc::new(|_| Box::new(CrawlProbePlanner)));
        let mut jobs = deep_dag_jobs(&dag, 8, 2, seed);
        jobs.extend(deep_dag_jobs(&dag, 8, 1, seed.wrapping_add(7)));
        rt.run(&jobs, &mutant_conf())
    });
}

#[test]
fn mutant_ddag_no_all_preds_yields_a_caught_nonserializable_trace() {
    // Opposite shoulder crawls through a deep, wide DAG: paths to
    // different deep targets cross at multi-parent mid-layer nodes in
    // either order (everyone shares the root early), and whoever closes
    // the crossing second closes the cycle the safe policy's L5a would
    // have refused. This is the hardest race of the three — a cycle
    // needs two path crossings to invert — so it gets the deepest DAG,
    // the most jobs, and the widest worker pool (see the catch-rate note
    // on the sweep helper).
    sweep_for_nonserializable(PolicyKind::DdagNoAllPredecessors, 0..60, |seed| {
        let dag = layered_dag(5, 4, 2, seed);
        let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
        let mut rt =
            Runtime::new(PolicyKind::DdagNoAllPredecessors, &config).expect("mutant builds");
        rt.set_planner_factory(Arc::new(|w| Box::new(ShoulderProbePlanner::new(w))));
        let mut conf = mutant_conf();
        conf.workers = conf.workers.max(8);
        rt.run(&deep_dag_jobs(&dag, 20, 1, seed), &conf)
    });
}
