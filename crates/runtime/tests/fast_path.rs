//! Sharded-grant fast-path conformance: the lock-word bypass must be
//! invisible in every verdict the formal model renders.
//!
//! * **Bypass ratio** — on an uncontended 2PL workload every grant is a
//!   word CAS: the engine lock is never taken for a grant at all.
//! * **Width-1 equivalence** — with one worker, fast-on and fast-off
//!   runs of the same jobs produce *byte-identical* schedules: the fast
//!   path emits exactly the steps the engine would (lock / read+write /
//!   ascending unlocks), stamped by the same counter in the same order.
//! * **Fast/slow interleaving** — a hot single entity hammered by
//!   fast-path workers, engine-path workers (their planner emits a
//!   locked point, which is fast-ineligible by design), and shared-mode
//!   readers at once: both grant paths must agree on one lock word with
//!   no lost wakeups, no double grants, and a serializable merged trace.
//!
//! The stamp-ordering contract under test throughout: an acquire's stamp
//! is fetched after the word CAS, a release's before it, so per entity
//! the global counter orders conflicting steps exactly as the word
//! serialized them — `Schedule::from_sequenced` (which rejects duplicate
//! or gapped stamps outright) then merges the per-worker buffers into a
//! schedule that replays legal + serializable.

use slp_core::{is_serializable, EntityId};
use slp_policies::{
    AccessIntent, PolicyAction, PolicyConfig, PolicyEngine, PolicyKind, PolicyViolation,
};
use slp_runtime::{Runtime, RuntimeConfig, RuntimeReport};
use slp_sim::{planner_for, uniform_jobs, ActionPlanner, Job};
use std::sync::Arc;

fn conf(workers: usize, fast: bool) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        // Generous timeout so `park_timeouts == 0` is a real lost-wakeup
        // assertion (see stress_matrix.rs).
        park_timeout: std::time::Duration::from_secs(10),
        grant_fast_path: fast,
        ..Default::default()
    }
}

/// The full replay check plus the fast-path accounting identities.
fn verify(report: &RuntimeReport, jobs: usize, ctx: &str) {
    assert!(!report.timed_out, "{ctx}: timed out");
    assert!(
        report.accounting_balances(),
        "{ctx}: attempts don't balance"
    );
    assert_eq!(report.committed, jobs, "{ctx}: lost jobs");
    assert!(report.lock_table_quiescent(), "{ctx}: locks leaked");
    assert!(report.schedule.is_legal(), "{ctx}: illegal trace");
    assert!(
        report.schedule.is_proper(&report.initial),
        "{ctx}: improper trace"
    );
    assert!(
        is_serializable(&report.schedule),
        "{ctx}: nonserializable trace"
    );
    assert_eq!(
        report.grants,
        report.fast_path_grants + report.slow_path_grants,
        "{ctx}: every grant is fast or slow, never both or neither"
    );
    assert_eq!(
        report.park_timeouts, 0,
        "{ctx}: park-timeout backstop fired (lost wakeup)"
    );
}

#[test]
fn uncontended_two_phase_grants_bypass_the_engine_lock() {
    // A cold workload: 2 targets per job over 64 entities, so plans are
    // always plain lock/access over covered entities — every grant is
    // word-eligible and the engine lock is never taken for a grant.
    let pool: Vec<EntityId> = (0..64).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 200, 2, 42);
    let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool)).unwrap();
    let report = rt.run(&jobs, &conf(4, true));
    verify(&report, jobs.len(), "2PL cold / fast on");
    assert_eq!(
        report.slow_path_grants, 0,
        "2PL plans are always fast-eligible: no grant should reach the engine"
    );
    assert_eq!(report.fast_path_fallbacks, 0, "no plan should fall back");
    assert!(
        report.fast_path_ratio() > 0.9,
        "bypass ratio {} not > 0.9 (fast {} / total {})",
        report.fast_path_ratio(),
        report.fast_path_grants,
        report.grants
    );
}

#[test]
fn fast_off_keeps_the_engine_path_untouched() {
    let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 60, 3, 9);
    let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool)).unwrap();
    let report = rt.run(&jobs, &conf(4, false));
    verify(&report, jobs.len(), "2PL / fast off");
    assert_eq!(report.fast_path_grants, 0);
    assert_eq!(report.fast_path_fallbacks, 0);
    assert_eq!(
        report.slow_path_grants, report.grants,
        "with the fast path off every grant is an engine grant"
    );
}

#[test]
fn global_scope_engines_ignore_the_knob() {
    // Altruistic grants read global wake state, so the engine advertises
    // GrantScope::Global and the knob must change nothing.
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 40, 3, 4);
    let mut rt = Runtime::new(PolicyKind::Altruistic, &PolicyConfig::flat(pool)).unwrap();
    let report = rt.run(&jobs, &conf(4, true));
    verify(&report, jobs.len(), "altruistic / knob on");
    assert_eq!(report.fast_path_grants, 0, "no word table for Global scope");
    assert_eq!(report.fast_path_fallbacks, 0);
}

#[test]
fn width_one_schedules_are_identical_fast_on_and_off() {
    // At one worker there is no interleaving: the fast path must emit
    // byte-for-byte the schedule the engine path emits — same steps,
    // same stamps, same outcomes — across several seeds.
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    for seed in 0..6u64 {
        let jobs = uniform_jobs(&pool, 30, 3, seed);
        let run = |fast: bool| {
            let mut rt =
                Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone())).unwrap();
            rt.run(&jobs, &conf(1, fast))
        };
        let on = run(true);
        let off = run(false);
        let ctx = format!("2PL width-1 / seed {seed}");
        verify(&on, jobs.len(), &format!("{ctx} / fast on"));
        verify(&off, jobs.len(), &format!("{ctx} / fast off"));
        assert_eq!(
            on.schedule, off.schedule,
            "{ctx}: fast path changed the step-for-step schedule"
        );
        assert_eq!(on.outcome_fingerprint(), off.outcome_fingerprint(), "{ctx}");
        assert_eq!(on.grants, off.grants, "{ctx}: grant counts diverged");
        assert_eq!(on.fast_path_grants, on.grants, "{ctx}: all grants fast");
        assert_eq!(off.fast_path_grants, 0, "{ctx}: no fast grants when off");
    }
}

/// A 2PL planner whose plans are deliberately fast-ineligible: it
/// appends a [`PolicyAction::LockedPoint`] (after every lock, so the
/// engine accepts it), forcing the attempt down the engine path even in
/// a fast-active run — the tool for pitting both grant paths against the
/// same lock word.
struct LockedPointPlanner;

impl ActionPlanner for LockedPointPlanner {
    fn intent(&self, _job: &Job) -> AccessIntent {
        AccessIntent::empty()
    }

    fn plan(
        &mut self,
        _engine: &dyn PolicyEngine,
        job: &Job,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        let mut plan = Vec::with_capacity(job.targets.len() * 2 + 1);
        for &t in &job.targets {
            plan.push(PolicyAction::Lock(t));
            plan.push(PolicyAction::Access(t));
        }
        plan.push(PolicyAction::LockedPoint);
        Ok(Some(plan))
    }
}

#[test]
fn fast_and_slow_paths_interleave_on_one_hot_entity() {
    // The dual-path stress the tentpole demands: ONE entity, 8 workers.
    // Even workers plan plain lock/access (fast path); odd workers plan
    // through LockedPointPlanner (engine path, counted as fallbacks);
    // every third job is read-only (shared-mode fast grants). Both paths
    // contend on the same lock word, so a coherence bug — a double
    // grant, a lost wakeup, a release the other path missed — surfaces
    // as an illegal or nonserializable trace, a stuck run (10 s park
    // backstop), or a leaked lock.
    let pool = vec![EntityId(0)];
    let jobs: Vec<Job> = (0..240)
        .map(|i| {
            if i % 3 == 0 {
                Job::read(vec![EntityId(0)])
            } else {
                Job::access(vec![EntityId(0)])
            }
        })
        .collect();
    let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool)).unwrap();
    rt.set_planner_factory(Arc::new(|w| {
        if w % 2 == 1 {
            Box::new(LockedPointPlanner) as Box<dyn ActionPlanner>
        } else {
            planner_for(PolicyKind::TwoPhase)
        }
    }));
    let report = rt.run(&jobs, &conf(8, true));
    verify(&report, jobs.len(), "hot-entity interleaving");
    assert_eq!(
        report.deadlock_aborts, 0,
        "single-lock transactions cannot cycle — a victim here is a phantom"
    );
    // Both paths must actually have been exercised (8 workers, half per
    // planner, every worker claims many of the 240 jobs).
    assert!(report.fast_path_grants > 0, "fast path never ran");
    assert!(report.slow_path_grants > 0, "engine path never ran");
    assert!(
        report.fast_path_fallbacks > 0,
        "locked-point plans must fall back"
    );
}

#[test]
fn shared_mode_readers_overlap_on_the_word() {
    // Pure single-target readers, fast on: every grant takes the word in
    // shared mode, emits read-only steps, and the run stays serializable
    // with zero conflicts only if readers genuinely share (an exclusive
    // mis-grant would serialize them and a word-count bug would leak).
    let pool = vec![EntityId(0)];
    let jobs: Vec<Job> = (0..120).map(|_| Job::read(vec![EntityId(0)])).collect();
    let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool)).unwrap();
    let report = rt.run(&jobs, &conf(8, true));
    verify(&report, jobs.len(), "shared readers");
    assert_eq!(report.slow_path_grants, 0);
    assert_eq!(
        report.lock_waits, 0,
        "shared locks on one entity never conflict with each other"
    );
    assert!(
        report
            .schedule
            .steps()
            .iter()
            .all(|s| !s.step.op.is_mutation()),
        "read-only jobs must emit no writes on the shared fast path"
    );
}
