//! Batch-scheduler conformance: the admission-stage conflict-DAG
//! scheduler must be invisible to the formal model and visible in the
//! contention counters.
//!
//! * **Mode sweep** — safe policies × contended workloads (hot/cold,
//!   deep-layer DAG traversals, the DDAG insert mix) × `off | waves |
//!   deterministic` × 1/2/4/8 workers: every captured trace legal,
//!   proper, serializable; accounting balanced; no lost jobs; and the
//!   wave accounting self-consistent (`wave_widths` sums to the job
//!   count, zero waves with the scheduler off).
//! * **Deterministic pin** — [`SchedMode::Deterministic`] must produce a
//!   byte-identical merged [`slp_core::Schedule`] and outcome
//!   fingerprint across worker counts *and* across repeated runs, for
//!   both a per-entity-scope engine (2PL, concurrent waves) and a
//!   global-scope engine (DDAG, serial waves).
//! * **Park avoidance** — on hot/cold contention at 4 workers, `waves`
//!   mode must resolve declared conflicts up front: nonzero
//!   `sched_parks_avoided`, and strictly fewer grant-time lock waits
//!   than the unscheduled runtime accumulates over the same seeds.
//!
//! Worker count honors `SLP_RUNTIME_THREADS` and the mode sweep honors
//! `SLP_RUNTIME_SCHED` (CI matrix convention).

use slp_core::{is_serializable, EntityId};
use slp_policies::{PolicyConfig, PolicyKind};
use slp_runtime::{Runtime, RuntimeConfig, RuntimeReport, SchedMode};
use slp_sim::{dag_mixed_jobs, deep_dag_jobs, hot_cold_jobs, layered_dag, Job};

fn workers() -> usize {
    RuntimeConfig::workers_from_env(4)
}

fn conf(width: usize, sched: SchedMode) -> RuntimeConfig {
    RuntimeConfig {
        workers: width,
        scheduler: sched,
        ..Default::default()
    }
}

/// The widths a sweep covers: the env-pinned width under the CI matrix,
/// the full 1/2/4/8 ladder otherwise.
fn widths() -> Vec<usize> {
    if std::env::var("SLP_RUNTIME_THREADS").is_ok() {
        vec![workers()]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// The modes a sweep covers (env-pinned under the CI matrix).
fn modes() -> Vec<SchedMode> {
    match RuntimeConfig::env_sched() {
        Some(m) => vec![m],
        None => vec![SchedMode::Off, SchedMode::Waves, SchedMode::Deterministic],
    }
}

/// The full replay check plus the scheduler's own accounting: wave
/// widths must partition the job queue when scheduling is on and be
/// absent when it is off.
fn verify(report: &RuntimeReport, jobs: usize, sched: SchedMode, ctx: &str) {
    assert!(!report.timed_out, "{ctx}: timed out");
    assert!(report.accounting_balances(), "{ctx}: unbalanced accounting");
    assert_eq!(report.rejected, 0, "{ctx}: well-formed jobs rejected");
    assert_eq!(report.committed, jobs, "{ctx}: lost jobs");
    assert!(report.lock_table_quiescent(), "{ctx}: locks leaked");
    assert!(report.schedule.is_legal(), "{ctx}: illegal trace");
    assert!(
        report.schedule.is_proper(&report.initial),
        "{ctx}: improper trace"
    );
    assert!(
        is_serializable(&report.schedule),
        "{ctx}: NONSERIALIZABLE trace under the scheduler"
    );
    if sched == SchedMode::Off {
        assert_eq!(report.waves, 0, "{ctx}: waves reported with scheduler off");
        assert!(report.wave_widths.is_empty(), "{ctx}");
        assert_eq!(report.sched_parks_avoided, 0, "{ctx}");
    } else {
        assert_eq!(report.waves, report.wave_widths.len(), "{ctx}");
        assert!(report.waves > 0, "{ctx}: scheduled run reported no waves");
        assert_eq!(
            report
                .wave_widths
                .iter()
                .map(|&w| w as usize)
                .sum::<usize>(),
            jobs,
            "{ctx}: wave widths don't partition the job queue"
        );
    }
}

#[test]
fn scheduled_runs_conform_across_policies_modes_and_widths() {
    let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
    for sched in modes() {
        for &width in &widths() {
            for seed in 0..3u64 {
                // Flat-pool policies on the contended workload.
                for kind in [
                    PolicyKind::TwoPhase,
                    PolicyKind::Altruistic,
                    PolicyKind::Dtr,
                ] {
                    let jobs = hot_cold_jobs(&pool, 30, 3, 4, 0.8, seed);
                    let ctx = format!(
                        "{} / hot-cold / {sched:?} / width {width} / seed {seed}",
                        kind.name()
                    );
                    let mut rt = Runtime::new(kind, &PolicyConfig::flat(pool.clone()))
                        .expect("buildable kind");
                    let report = rt.run(&jobs, &conf(width, sched));
                    verify(&report, jobs.len(), sched, &ctx);
                }

                // DDAG on deep traversals (structural state, global scope).
                let dag = layered_dag(5, 3, 2, seed);
                let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
                let jobs = deep_dag_jobs(&dag, 18, 2, seed);
                let ctx = format!("DDAG / deep / {sched:?} / width {width} / seed {seed}");
                let mut rt = Runtime::new(PolicyKind::Ddag, &config).expect("DDAG builds");
                let report = rt.run(&jobs, &conf(width, sched));
                verify(&report, jobs.len(), sched, &ctx);

                // DDAG insert mix: structural ops must fence waves, and
                // the fenced trace must still replay clean.
                let base = layered_dag(4, 3, 2, seed);
                let config = PolicyConfig::dag(base.universe.clone(), base.graph.clone());
                let mut rt = Runtime::new(PolicyKind::Ddag, &config).expect("DDAG builds");
                let jobs: Vec<Job> = {
                    let mut intern = |name: &str| rt.intern(name).expect("DDAG interns");
                    dag_mixed_jobs(&base, 16, 2, 0.3, &mut intern, seed)
                };
                let ctx = format!("DDAG / insert-mix / {sched:?} / width {width} / seed {seed}");
                let report = rt.run(&jobs, &conf(width, sched));
                verify(&report, jobs.len(), sched, &ctx);
            }
        }
    }
}

#[test]
fn deterministic_mode_is_byte_identical_across_widths_and_repeats() {
    let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
    for seed in 0..3u64 {
        // 2PL: per-entity scope, waves run concurrently — the hard case,
        // since real threads race within each wave.
        let jobs = hot_cold_jobs(&pool, 30, 3, 4, 0.8, seed);
        let mut baseline: Option<RuntimeReport> = None;
        for &width in &widths() {
            for repeat in 0..2 {
                let ctx = format!("2PL / det / width {width} / repeat {repeat} / seed {seed}");
                let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone()))
                    .expect("2PL builds");
                let report = rt.run(&jobs, &conf(width, SchedMode::Deterministic));
                verify(&report, jobs.len(), SchedMode::Deterministic, &ctx);
                match &baseline {
                    None => baseline = Some(report),
                    Some(base) => {
                        assert_eq!(
                            report.outcome_fingerprint(),
                            base.outcome_fingerprint(),
                            "{ctx}: fingerprint diverged"
                        );
                        assert_eq!(
                            report.schedule, base.schedule,
                            "{ctx}: deterministic schedule diverged from the \
                             width-{} baseline",
                            base.workers
                        );
                    }
                }
            }
        }

        // DDAG: global scope, waves run serially — admission order IS the
        // execution order, so the pin must hold here too.
        let dag = layered_dag(5, 3, 2, seed);
        let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
        let jobs = deep_dag_jobs(&dag, 18, 2, seed);
        let mut baseline: Option<RuntimeReport> = None;
        for &width in &widths() {
            for repeat in 0..2 {
                let ctx = format!("DDAG / det / width {width} / repeat {repeat} / seed {seed}");
                let mut rt = Runtime::new(PolicyKind::Ddag, &config).expect("DDAG builds");
                let report = rt.run(&jobs, &conf(width, SchedMode::Deterministic));
                verify(&report, jobs.len(), SchedMode::Deterministic, &ctx);
                match &baseline {
                    None => baseline = Some(report),
                    Some(base) => {
                        assert_eq!(
                            report.outcome_fingerprint(),
                            base.outcome_fingerprint(),
                            "{ctx}: fingerprint diverged"
                        );
                        assert_eq!(report.schedule, base.schedule, "{ctx}: schedule diverged");
                    }
                }
            }
        }
    }
}

#[test]
fn waves_resolve_hot_cold_conflicts_ahead_of_the_lock_service() {
    // Conflicts the DAG orders up front never reach the lock service as
    // grant-time waits. Individual runs race (an unscheduled run can get
    // lucky), so the comparison aggregates over a seed sweep; the
    // scheduler's own counters are asserted per run.
    let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
    let width = workers().max(4);
    let mut off_waits = 0u64;
    let mut waves_waits = 0u64;
    for seed in 0..8u64 {
        let jobs = hot_cold_jobs(&pool, 40, 3, 4, 0.9, seed);
        let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone()))
            .expect("2PL builds");
        let off = rt.run(&jobs, &conf(width, SchedMode::Off));
        verify(
            &off,
            jobs.len(),
            SchedMode::Off,
            &format!("off / seed {seed}"),
        );

        let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone()))
            .expect("2PL builds");
        let waves = rt.run(&jobs, &conf(width, SchedMode::Waves));
        let ctx = format!("waves / seed {seed}");
        verify(&waves, jobs.len(), SchedMode::Waves, &ctx);
        assert!(
            waves.sched_parks_avoided > 0,
            "{ctx}: hot/cold contention must produce conflict edges"
        );
        off_waits += off.lock_waits;
        waves_waits += waves.lock_waits;
    }
    assert!(
        off_waits > 0,
        "hot/cold at width {width} produced no lock waits unscheduled — \
         the workload no longer contends and this comparison is vacuous"
    );
    assert!(
        waves_waits < off_waits,
        "wave scheduling must strictly reduce grant-time lock waits \
         (waves {waves_waits} vs unscheduled {off_waits})"
    );
}
