//! Conformance for MVCC snapshot reads: mixed snapshot-read +
//! locked-write runs across every safe policy must stay legal, proper,
//! and serializable — certified online *and* replayed offline — while
//! read-only jobs never touch the lock service.
//!
//! * **Mixed sweep** — read-heavy hot-set workloads on every safe
//!   flat-pool kind, and a DDAG insert mix with concurrent readers:
//!   snapshot reads enter the trace as stamped steps, the online
//!   certifier sees them, and the offline replay (aborted transactions
//!   excised) agrees.
//! * **Reader isolation** — a pure-read workload records zero grants and
//!   zero lock waits: the snapshot path is the entire read path.
//! * **Negative control** — the deliberately broken visibility rule
//!   (snapshots dirty-read in-progress writers) is scripted at the
//!   component level, where the race is deterministic: the certifier
//!   must flag the dirty snapshot as nonserializable at the closing
//!   edge, and the correct rule on the same script must not.

use slp_core::{
    is_serializable_with_aborts, EntityId, IncrementalCertifier, ScheduledStep, Step, TxId,
    VersionedRead,
};
use slp_mvcc::{CommitPipeline, MvccStore, ObservedRead, VisibilityRule};
use slp_policies::{PolicyConfig, PolicyKind};
use slp_runtime::{CertifyMode, Runtime, RuntimeConfig, RuntimeReport};
use slp_sim::{dag_mixed_jobs, layered_dag, read_heavy_jobs, Job};

fn snapshot_conf(certify: CertifyMode) -> RuntimeConfig {
    RuntimeConfig {
        workers: RuntimeConfig::workers_from_env(4),
        snapshot_reads: true,
        certify_online: certify,
        ..Default::default()
    }
}

/// The full replay check for a mixed snapshot/locked run: accounting,
/// legality, properness, online certification, offline serializability
/// with the aborted set excised.
fn verify_mixed(report: &RuntimeReport, jobs: &[Job], ctx: &str) {
    assert!(!report.timed_out, "{ctx}: timed out");
    assert!(report.accounting_balances(), "{ctx}: unbalanced accounting");
    assert_eq!(report.rejected, 0, "{ctx}: well-formed jobs rejected");
    assert_eq!(report.committed, jobs.len(), "{ctx}: lost jobs");
    assert!(report.lock_table_quiescent(), "{ctx}: locks leaked");
    assert!(report.schedule.is_legal(), "{ctx}: illegal trace");
    assert!(
        report.schedule.is_proper(&report.initial),
        "{ctx}: improper trace"
    );
    let expected_reads: u64 = jobs
        .iter()
        .filter(|j| j.read_only)
        .map(|j| j.targets.len() as u64)
        .sum();
    // Every read-only job commits exactly once through the snapshot
    // path, so the counter is exact even across writer retries.
    assert_eq!(
        report.snapshot_reads, expected_reads,
        "{ctx}: snapshot read count off"
    );
    if let Some(cert) = &report.certification {
        assert!(
            cert.violation.is_none(),
            "{ctx}: online certifier flagged a safe mixed run: {:?}",
            cert.violation
        );
    }
    assert!(
        is_serializable_with_aborts(&report.schedule, &report.aborted),
        "{ctx}: NONSERIALIZABLE mixed trace from a safe policy"
    );
}

#[test]
fn read_heavy_mixes_conform_across_safe_flat_pool_policies() {
    let pool: Vec<EntityId> = (0..20).map(EntityId).collect();
    for kind in [
        PolicyKind::TwoPhase,
        PolicyKind::Altruistic,
        PolicyKind::Dtr,
    ] {
        for seed in 0..8u64 {
            let jobs = read_heavy_jobs(&pool, 28, 3, 4, 0.95, seed);
            let ctx = format!("{} / read-heavy / seed {seed}", kind.name());
            let mut rt =
                Runtime::new(kind, &PolicyConfig::flat(pool.clone())).expect("buildable kind");
            let report = rt.run(&jobs, &snapshot_conf(CertifyMode::Monitor));
            verify_mixed(&report, &jobs, &ctx);
            assert!(
                report.snapshot_reads > 0,
                "{ctx}: 95% read probability produced no snapshot reads"
            );
        }
    }
}

#[test]
fn strict_certification_never_aborts_a_safe_mixed_run() {
    let pool: Vec<EntityId> = (0..20).map(EntityId).collect();
    for seed in 0..4u64 {
        let jobs = read_heavy_jobs(&pool, 24, 3, 4, 0.9, seed);
        let ctx = format!("2PL strict / read-heavy / seed {seed}");
        let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone()))
            .expect("2PL builds");
        let report = rt.run(&jobs, &snapshot_conf(CertifyMode::Strict));
        verify_mixed(&report, &jobs, &ctx);
        assert_eq!(
            report.certification_aborts, 0,
            "{ctx}: strict mode aborted a correctly-visible snapshot run"
        );
    }
}

#[test]
fn ddag_insert_mix_with_concurrent_readers_conforms() {
    for seed in 0..8u64 {
        let dag = layered_dag(4, 3, 2, seed);
        let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
        let mut rt = Runtime::new(PolicyKind::Ddag, &config).expect("DDAG builds");
        let jobs = {
            let mut intern = |name: &str| rt.intern(name).expect("DDAG interns");
            let mut jobs = dag_mixed_jobs(&dag, 14, 2, 0.3, &mut intern, seed);
            // Readers target the pre-existing universe only (never the
            // interned fresh nodes), so every snapshot read stays proper
            // whatever the insert timing.
            let base: Vec<EntityId> = dag.universe.iter().collect();
            jobs.extend(read_heavy_jobs(&base, 14, 2, 4, 1.0, seed.wrapping_add(99)));
            jobs
        };
        let report = rt.run(&jobs, &snapshot_conf(CertifyMode::Monitor));
        let ctx = format!("DDAG / insert-mix + readers / seed {seed}");
        verify_mixed(&report, &jobs, &ctx);
        assert!(report.snapshot_reads > 0, "{ctx}: readers never ran");
    }
}

#[test]
fn pure_read_workload_never_touches_the_lock_service() {
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    let jobs = read_heavy_jobs(&pool, 40, 3, 4, 1.0, 7);
    assert!(
        jobs.iter().all(|j| j.read_only),
        "read_prob 1.0 is all reads"
    );
    let mut rt =
        Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone())).expect("2PL builds");
    let report = rt.run(&jobs, &snapshot_conf(CertifyMode::Monitor));
    assert_eq!(report.committed, jobs.len(), "reads lost");
    assert_eq!(report.snapshot_reads, 40 * 3, "three reads per job");
    // The headline claim: the read path performs zero lock-service work.
    assert_eq!(report.grants, 0, "snapshot reads requested locks");
    assert_eq!(report.lock_waits, 0, "snapshot reads waited on locks");
    assert_eq!(report.parks, 0, "snapshot reads parked");
    verify_mixed(&report, &jobs, "pure-read");
}

// ---------------------------------------------------------------------
// Negative control: the broken visibility rule, scripted.
// ---------------------------------------------------------------------

/// Runs the two-entity dirty-read script against `rule` and feeds
/// exactly what the snapshot observed (plus the writer's own trace) to a
/// fresh certifier, returning it for verdict inspection.
///
/// The script: writer `W` installs `e1`, the reader captures its
/// snapshot *between* `W`'s two installs, reads `e1` then `e0`, then `W`
/// installs `e0` and commits. Under the correct rule the snapshot
/// observes neither install (a consistent cut: `W` was in progress at
/// capture). Under the broken rule it observes `W` on `e1` but the
/// initial state on `e0` — a torn read ordered both after and before
/// `W`, which is precisely a serialization cycle.
fn certify_dirty_read_script(rule: VisibilityRule) -> IncrementalCertifier {
    let (e0, e1) = (EntityId(0), EntityId(1));
    let (w, r) = (TxId(1), TxId(2));
    let pipeline = CommitPipeline::new();
    let store = MvccStore::new();
    pipeline.begin_writer(w);
    store.install(e1, w, 0);
    // Trace stamps: W writes e1 @0, the snapshot's reads claim @1..=2,
    // W writes e0 @3.
    let snap = pipeline.capture(2, |_| 1);
    let got_e1 = store.read(e1, &snap, pipeline.status_table(), rule);
    let got_e0 = store.read(e0, &snap, pipeline.status_table(), rule);
    match rule {
        VisibilityRule::Broken => {
            assert_eq!(
                got_e1,
                ObservedRead {
                    observed: Some(w),
                    pivot: Some(0)
                },
                "broken rule must dirty-read the in-progress install"
            );
            assert_eq!(got_e0, ObservedRead::INITIAL, "e0 not yet installed");
        }
        VisibilityRule::Correct => {
            assert_eq!(got_e1, ObservedRead::INITIAL, "consistent cut");
            assert_eq!(got_e0, ObservedRead::INITIAL, "consistent cut");
        }
    }
    store.install(e0, w, 3);
    pipeline.commit(w);

    let mut cert = IncrementalCertifier::new();
    cert.observe_trace(&[(0, ScheduledStep::new(w, Step::write(e1)))]);
    cert.observe_snapshot_reads(&[
        VersionedRead {
            stamp: 1,
            tx: r,
            entity: e1,
            observed: got_e1.observed,
            pivot: got_e1.pivot,
        },
        VersionedRead {
            stamp: 2,
            tx: r,
            entity: e0,
            observed: got_e0.observed,
            pivot: got_e0.pivot,
        },
    ]);
    cert.seal_with(r, false);
    cert.observe_trace(&[(3, ScheduledStep::new(w, Step::write(e0)))]);
    cert.seal_with(w, false);
    cert
}

#[test]
fn broken_visibility_is_flagged_nonserializable_at_the_closing_edge() {
    let cert = certify_dirty_read_script(VisibilityRule::Broken);
    let v = cert
        .violation()
        .expect("a dirty snapshot must be certified nonserializable");
    assert!(
        v.cycle.contains(&TxId(1)) && v.cycle.contains(&TxId(2)),
        "the cycle must run through both the writer and the reader: {v}"
    );
    // The wr-dependency (W → R, the dirty read of e1) lands when the
    // read is fed; the anti-dependency (R → W, the missed e0 install)
    // parks until W's commit seal and closes the cycle carrying the e0
    // read's stamp.
    assert_eq!(v.stamp, 2, "closing edge must be the torn e0 read");
}

#[test]
fn correct_visibility_on_the_same_script_is_serializable() {
    let cert = certify_dirty_read_script(VisibilityRule::Correct);
    assert!(
        cert.violation().is_none(),
        "a consistent cut must certify serializable: {:?}",
        cert.violation()
    );
}
