//! Crash/recovery conformance: a durable run's log, killed at *any* byte
//! or record boundary, recovers to a certified prefix of the execution
//! the runtime actually produced.
//!
//! The contract under test (the durability subsystem's north star):
//!
//! 1. **Prefix consistency** — the recovered stamped tail is exactly a
//!    prefix of the run's merged trace (stamps arbitrate the cross-worker
//!    byte order, so a torn group-commit batch can only cost a *suffix*);
//! 2. **Safety of the prefix** — the recovered schedule independently
//!    re-certifies as legal, proper, and conflict-serializable
//!    ([`Recovered::certify`]), because conflict-serializability is
//!    prefix-closed;
//! 3. **Graceful truncation** — torn frames, flipped bytes, and missing
//!    segments truncate the log at the damage; no input panics recovery;
//! 4. **Checkpoint fidelity** — seeding from the newest checkpoint lands
//!    on the same state as replaying everything from the base checkpoint.
//!
//! The crash-point property suite runs a seed matrix: two fixed seeds
//! always, plus `SLP_DURABILITY_SEED` when set (CI's rolling seed — see
//! `.github/workflows/ci.yml`).

use proptest::test_runner::TestRng;
use slp_core::{EntityId, StructuralState};
use slp_durability::{FaultyStore, Recovered};
use slp_policies::{PolicyConfig, PolicyKind};
use slp_runtime::{
    recover, RecoveryMode, Runtime, RuntimeConfig, RuntimeReport, SharedMemStore, Store, Wal,
    WalConfig,
};
use slp_sim::{dag_mixed_jobs, layered_dag, uniform_jobs, Job};
use std::sync::Arc;

/// Runs `jobs` durably against a fresh in-memory store; returns the run
/// report and the store handle (kept by the caller to simulate crashes).
fn durable_run(
    kind: PolicyKind,
    config: &PolicyConfig,
    jobs: &[Job],
    workers: usize,
    wal_config: WalConfig,
) -> (RuntimeReport, SharedMemStore) {
    let mut rt = Runtime::new(kind, config).expect("buildable kind");
    let handle = SharedMemStore::new();
    let wal = Arc::new(
        rt.create_wal(Box::new(handle.clone()), wal_config)
            .expect("fresh store"),
    );
    let report = rt.run_durable(jobs, &RuntimeConfig::with_workers(workers), wal);
    (report, handle)
}

/// The structural state the run ended in, derived by independent replay.
fn final_state(report: &RuntimeReport) -> StructuralState {
    report
        .schedule
        .check_proper(&report.initial)
        .expect("runtime traces are proper")
}

/// Asserts the recovered tail is a stamp-contiguous prefix of the run's
/// merged trace.
fn assert_prefix_of_run(r: &Recovered, report: &RuntimeReport, ctx: &str) {
    assert!(
        r.watermark <= report.schedule.len() as u64,
        "{ctx}: recovered past the end of the run"
    );
    for (i, &(stamp, step)) in r.tail.iter().enumerate() {
        assert_eq!(stamp, r.base_stamp + i as u64, "{ctx}: tail not contiguous");
        assert_eq!(
            step,
            report.schedule.steps()[stamp as usize],
            "{ctx}: recovered step {stamp} diverges from the run's trace"
        );
    }
}

#[test]
fn durable_run_recovers_the_full_execution() {
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 20, 3, 7);
    let wal_config = WalConfig {
        group_commit: 4,
        checkpoint_every: 64,
        ..WalConfig::default()
    };
    let (report, handle) = durable_run(
        PolicyKind::TwoPhase,
        &PolicyConfig::flat(pool),
        &jobs,
        4,
        wal_config,
    );
    assert_eq!(report.committed, jobs.len());
    let summary = report.wal.expect("durable run reports its log");
    assert!(!summary.failed);
    assert_eq!(
        summary.watermark,
        report.schedule.len() as u64,
        "every recorded step reached the log"
    );
    assert!(summary.records > 0 && summary.syncs > 0);

    // The flushed log replays to exactly the run the workers produced.
    let store = handle.snapshot();
    let r = recover(&store, RecoveryMode::Oldest).expect("clean log recovers");
    assert_eq!(r.truncation, None);
    assert_eq!(r.dropped_after_gap, 0);
    assert_eq!(r.watermark, report.schedule.len() as u64);
    assert_prefix_of_run(&r, &report, "full recovery");
    assert_eq!(r.state, final_state(&report));
    assert!(
        r.locks.is_empty(),
        "quiescent run leaves no in-flight locks"
    );
    assert_eq!(
        r.committed.len(),
        report.committed,
        "every commit record is durable after flush"
    );
    r.certify().expect("full recovery certifies");

    // Checkpoint fidelity: the fast path lands on the same state.
    let fast = recover(&store, RecoveryMode::Newest).expect("newest-checkpoint recovery");
    assert_eq!(fast.watermark, r.watermark);
    assert_eq!(fast.state, r.state);
    assert_eq!(fast.locks, r.locks);
}

#[test]
fn every_sampled_byte_prefix_recovers_a_certified_prefix() {
    let pool: Vec<EntityId> = (0..8).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 10, 2, 3);
    let wal_config = WalConfig {
        group_commit: 1,
        checkpoint_every: 16,
        segment_bytes: 2048,
        ..WalConfig::default()
    };
    let (report, handle) = durable_run(
        PolicyKind::TwoPhase,
        &PolicyConfig::flat(pool),
        &jobs,
        2,
        wal_config,
    );
    let full = handle.snapshot();
    let total = full.total_bytes();
    let mut watermarks = Vec::new();
    let mut cut = 0;
    while cut <= total {
        let ctx = format!("cut at {cut}/{total}");
        let store = full.prefix(cut);
        match recover(&store, RecoveryMode::Oldest) {
            Ok(r) => {
                assert_prefix_of_run(&r, &report, &ctx);
                r.certify().unwrap_or_else(|e| panic!("{ctx}: {e}"));
                assert!(r.committed.len() <= report.committed, "{ctx}");
                // Checkpoint fidelity holds at every crash point, not
                // just on the clean log.
                let fast = recover(&store, RecoveryMode::Newest).expect("newest mode");
                assert_eq!(fast.state, r.state, "{ctx}: Newest != Oldest state");
                assert_eq!(fast.watermark, r.watermark, "{ctx}");
                watermarks.push(r.watermark);
            }
            Err(e) => {
                // Only a crash that beat the base checkpoint's first
                // fsync has nothing to recover.
                assert!(
                    cut < 256,
                    "{ctx}: lost the base checkpoint unexpectedly ({e})"
                );
            }
        }
        // Step 3 samples every frame header, length split, and payload
        // region without sweeping hundreds of thousands of cuts.
        cut += 3;
    }
    assert!(
        watermarks.windows(2).all(|w| w[0] <= w[1]),
        "longer surviving prefixes never recover less"
    );
    assert_eq!(
        watermarks.last(),
        Some(&(report.schedule.len() as u64)),
        "the complete log recovers the complete run"
    );
}

/// The crash-point property suite: randomized workloads, log tunings, and
/// crash treatments, over the seed matrix.
#[test]
fn crash_point_property_suite() {
    let mut seeds: Vec<u64> = vec![0xD00D_0001, 0xD00D_0002];
    if let Some(extra) = env_seed() {
        seeds.push(extra);
    }
    for seed in seeds {
        let mut rng = TestRng::deterministic(&format!("crash-points/{seed:#x}"));
        for case in 0..16u32 {
            run_crash_case(seed, case, &mut rng);
        }
    }
}

/// `SLP_DURABILITY_SEED`: the rolling CI seed. Same contract as the
/// runtime's env overrides — malformed panics — except empty counts as
/// unset (a CI matrix passes "no seed" as an empty string).
fn env_seed() -> Option<u64> {
    std::env::var("SLP_DURABILITY_SEED")
        .ok()
        .filter(|v| !v.is_empty())
        .map(|v| v.parse::<u64>().expect("SLP_DURABILITY_SEED must be a u64"))
}

fn run_crash_case(seed: u64, case: u32, rng: &mut TestRng) {
    let pool_size = 6 + rng.below(10) as u32;
    let pool: Vec<EntityId> = (0..pool_size).map(EntityId).collect();
    let jobs = uniform_jobs(
        &pool,
        6 + rng.below(12) as usize,
        2 + rng.below(2) as usize,
        rng.next_u64(),
    );
    let wal_config = WalConfig {
        segment_bytes: [256, 1024, 64 * 1024][rng.below(3) as usize],
        group_commit: 1 + rng.below(8) as usize,
        checkpoint_every: [0, 8, 32][rng.below(3) as usize],
        ..WalConfig::default()
    };
    let workers = 1 + rng.below(4) as usize;
    let kind = if rng.below(2) == 0 {
        PolicyKind::TwoPhase
    } else {
        PolicyKind::Altruistic
    };
    let (report, handle) = durable_run(kind, &PolicyConfig::flat(pool), &jobs, workers, wal_config);
    let full = handle.snapshot();
    let total = full.total_bytes();
    let ctx = format!(
        "seed {seed:#x} case {case} ({} @ {workers}w)",
        report.policy
    );

    // One random crash treatment per case.
    let (store, treatment) = match rng.below(3) {
        0 => {
            let cut = rng.below(total as u64 + 1) as usize;
            (full.prefix(cut), format!("prefix cut {cut}/{total}"))
        }
        1 => {
            let keep = rng.below(2) == 1;
            (full.crashed(keep), format!("crash keep_volatile={keep}"))
        }
        _ => {
            let mut store = full.clone();
            let offset = rng.below(total as u64) as usize;
            let mask = 1u8 << rng.below(8);
            store.corrupt(offset, mask);
            (store, format!("flip {mask:#04x} at {offset}/{total}"))
        }
    };
    let ctx = format!("{ctx} / {treatment}");

    match recover(&store, RecoveryMode::Oldest) {
        Ok(r) => {
            // The unpruned log's oldest checkpoint is the base: every
            // successful recovery is fully re-certifiable.
            assert_eq!(r.base_stamp, 0, "{ctx}: unpruned log must seed from base");
            assert_prefix_of_run(&r, &report, &ctx);
            r.certify().unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert!(r.committed.len() <= report.committed, "{ctx}");
            let fast = recover(&store, RecoveryMode::Newest).expect("newest mode");
            assert_eq!(fast.state, r.state, "{ctx}: Newest != Oldest state");
            assert_eq!(fast.watermark, r.watermark, "{ctx}");
        }
        Err(e) => {
            // Legitimate only when the treatment destroyed the base
            // checkpoint itself (an early cut or an early byte flip);
            // a durable-only crash always keeps it (synced at create).
            assert!(
                !treatment.starts_with("crash"),
                "{ctx}: base checkpoint should survive any post-sync crash ({e})"
            );
        }
    }
}

#[test]
fn mid_run_store_failure_finishes_in_memory_and_the_prefix_recovers() {
    let pool: Vec<EntityId> = (0..12).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 16, 3, 11);
    // Two failure styles: a torn append mid-byte, and a dying fsync.
    type FaultWrap = Box<dyn Fn(SharedMemStore) -> Box<dyn Store>>;
    let faults: Vec<(&str, FaultWrap)> = vec![
        (
            "torn append after 2 KiB",
            Box::new(|h| Box::new(FaultyStore::new(h).fail_after_bytes(2048))),
        ),
        (
            "third fsync dies",
            Box::new(|h| Box::new(FaultyStore::new(h).fail_on_sync(3))),
        ),
    ];
    for (name, wrap) in faults {
        let handle = SharedMemStore::new();
        let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone()))
            .expect("buildable kind");
        let wal = Arc::new(
            Wal::create(
                wrap(handle.clone()),
                WalConfig {
                    group_commit: 2,
                    checkpoint_every: 16,
                    ..WalConfig::default()
                },
                &rt.initial_state(),
            )
            .expect("create beats the fault budget"),
        );
        let report = rt.run_durable(&jobs, &RuntimeConfig::with_workers(4), wal);

        // The dead log never stops the run.
        assert_eq!(report.committed, jobs.len(), "{name}: run must complete");
        assert!(report.accounting_balances(), "{name}");
        let summary = report.wal.expect("durable run reports its log");
        assert!(summary.failed, "{name}: failure must be surfaced");
        assert!(
            summary.watermark < report.schedule.len() as u64,
            "{name}: a dead log cannot have recorded the whole run"
        );

        // What did reach the store — including a torn final append —
        // recovers to a certified prefix, with and without the volatile
        // (never-synced) suffix.
        for keep_volatile in [true, false] {
            let ctx = format!("{name} / keep_volatile={keep_volatile}");
            let store = handle.snapshot().crashed(keep_volatile);
            let r = recover(&store, RecoveryMode::Oldest).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_prefix_of_run(&r, &report, &ctx);
            r.certify().unwrap_or_else(|e| panic!("{ctx}: {e}"));
        }
    }
}

#[test]
fn ddag_insert_mix_durable_run_recovers() {
    for seed in [3u64, 9] {
        let dag = layered_dag(4, 3, 2, seed);
        let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
        let mut rt = Runtime::new(PolicyKind::Ddag, &config).expect("DDAG builds");
        let jobs = {
            let mut intern = |name: &str| rt.intern(name).expect("DDAG interns");
            dag_mixed_jobs(&dag, 16, 2, 0.3, &mut intern, seed)
        };
        // The WAL's base checkpoint is captured *after* interning, so it
        // matches the initial state the run itself will record against.
        let handle = SharedMemStore::new();
        let wal = Arc::new(
            rt.create_wal(Box::new(handle.clone()), WalConfig::default())
                .expect("fresh store"),
        );
        let report = rt.run_durable(&jobs, &RuntimeConfig::with_workers(4), wal);
        let ctx = format!("DDAG insert-mix / seed {seed}");
        assert_eq!(report.committed, jobs.len(), "{ctx}: lost jobs");
        assert!(!report.wal.expect("durable").failed, "{ctx}");

        let r = recover(&handle.snapshot(), RecoveryMode::Oldest)
            .unwrap_or_else(|e| panic!("{ctx}: {e}"));
        assert_eq!(r.base_state, report.initial, "{ctx}: base != run initial");
        assert_eq!(r.watermark, report.schedule.len() as u64, "{ctx}");
        assert_prefix_of_run(&r, &report, &ctx);
        assert_eq!(r.state, final_state(&report), "{ctx}: structural drift");
        r.certify().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    }
}
