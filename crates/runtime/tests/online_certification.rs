//! Differential suite: the online incremental certifier against the
//! offline serializability checker.
//!
//! * **Safe agreement** — every safe kind × seeded workload runs with
//!   the certifier in monitor mode: the live verdict must be "no cycle"
//!   and the offline replay (`is_serializable`) must agree, with the
//!   certifier having observed every recorded step.
//! * **Mutant agreement** — the unsafe mutants run under the same
//!   sweep as the trace-conformance negative controls: on *every* swept
//!   run the live verdict must equal the offline verdict, and each
//!   caught nonserializable trace must be flagged at its closing edge —
//!   the in-stamp-order replay latches its violation at exactly the
//!   last step of the minimal nonserializable prefix.
//! * **Truncation properties** — sealing transactions at random points
//!   (forcing committed-prefix truncation at different watermarks) and
//!   feeding steps in random arrival orders never changes a verdict.

use proptest::test_runner::TestRng;
use slp_core::{is_serializable, EntityId, IncrementalCertifier, Schedule, ScheduledStep, TxId};
use slp_policies::{PolicyConfig, PolicyKind};
use slp_runtime::{
    CertifyMode, CrawlProbePlanner, Runtime, RuntimeConfig, RuntimeReport, ShoulderProbePlanner,
};
use slp_sim::{deep_dag_jobs, hot_cold_jobs, layered_dag, long_short_jobs, uniform_jobs};
use std::collections::HashMap;
use std::sync::Arc;

fn monitor_conf(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        certify_online: CertifyMode::Monitor,
        ..Default::default()
    }
}

/// Mutant sweeps need actual concurrency (see trace_conformance.rs).
fn mutant_workers() -> usize {
    RuntimeConfig::workers_from_env(4).max(4)
}

/// Asserts the live verdict equals the offline one on `report` and
/// returns whether the trace is nonserializable.
fn assert_agreement(report: &RuntimeReport, ctx: &str) -> bool {
    let cert = report
        .certification
        .as_ref()
        .unwrap_or_else(|| panic!("{ctx}: monitor run must carry a certification"));
    let offline_bad = !is_serializable(&report.schedule);
    assert_eq!(
        cert.violation.is_some(),
        offline_bad,
        "{ctx}: online certifier ({:?}) disagrees with offline checker (nonserializable: \
         {offline_bad})",
        cert.violation
    );
    offline_bad
}

#[test]
fn safe_kinds_certify_live_and_agree_with_offline_replay() {
    let pool: Vec<EntityId> = (0..20).map(EntityId).collect();
    let workers = RuntimeConfig::workers_from_env(4);
    for kind in [
        PolicyKind::TwoPhase,
        PolicyKind::Altruistic,
        PolicyKind::Dtr,
    ] {
        for seed in 0..6u64 {
            for (name, jobs) in [
                ("uniform", uniform_jobs(&pool, 18, 3, seed)),
                ("hot-cold", hot_cold_jobs(&pool, 24, 3, 4, 0.8, seed)),
                ("long-short", long_short_jobs(&pool, 8, 10, 2, seed)),
            ] {
                let ctx = format!("{} / {name} / seed {seed}", kind.name());
                let mut rt =
                    Runtime::new(kind, &PolicyConfig::flat(pool.clone())).expect("buildable kind");
                let report = rt.run(&jobs, &monitor_conf(workers));
                assert!(!report.timed_out, "{ctx}: timed out");
                assert!(report.accounting_balances(), "{ctx}: unbalanced");
                assert_eq!(report.committed, jobs.len(), "{ctx}: lost jobs");
                assert!(!assert_agreement(&report, &ctx), "{ctx}: safe kind flagged");
                let stats = report.certification.as_ref().expect("certified").stats;
                assert_eq!(
                    stats.steps,
                    report.schedule.len() as u64,
                    "{ctx}: certifier missed steps"
                );
                // Every transaction retires (commit or abort), so by
                // quiescence truncation has reclaimed the whole graph.
                assert_eq!(stats.live_nodes, 0, "{ctx}: unreclaimed certifier nodes");
            }
        }
    }
}

#[test]
fn ddag_certifies_live_across_traversal_workloads() {
    let workers = RuntimeConfig::workers_from_env(4);
    for seed in 0..6u64 {
        let dag = layered_dag(4, 3, 2, seed);
        let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
        let jobs = deep_dag_jobs(&dag, 14, 2, seed);
        let ctx = format!("DDAG / deep / seed {seed}");
        let mut rt = Runtime::new(PolicyKind::Ddag, &config).expect("DDAG builds");
        let report = rt.run(&jobs, &monitor_conf(workers));
        assert!(!report.timed_out, "{ctx}: timed out");
        assert_eq!(report.committed, jobs.len(), "{ctx}: lost jobs");
        assert!(!assert_agreement(&report, &ctx), "{ctx}: safe DDAG flagged");
    }
}

/// The last position of the minimal nonserializable prefix of
/// `schedule` — the closing edge of the first cycle in stamp order.
/// Serialization-graph edges only accumulate as steps append, so
/// nonserializability is monotone in the prefix length and binary
/// search finds the boundary.
fn closing_edge(schedule: &Schedule) -> u64 {
    let steps = schedule.steps();
    let prefix_bad = |k: usize| {
        let entries: Vec<(u64, ScheduledStep)> = steps[..k]
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, s))
            .collect();
        !is_serializable(&Schedule::from_sequenced(entries).expect("dense prefix stamps"))
    };
    let (mut lo, mut hi) = (1usize, steps.len());
    assert!(prefix_bad(hi), "whole schedule must be nonserializable");
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if prefix_bad(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (lo - 1) as u64
}

/// Sweeps a mutant until the runtime emits a nonserializable trace
/// (asserting online/offline agreement on *every* swept run), then
/// checks the caught trace is flagged at its closing edge by an
/// in-stamp-order replay.
fn sweep_mutant_for_agreement(
    mutant: PolicyKind,
    seeds: std::ops::Range<u64>,
    mut run_one: impl FnMut(u64) -> RuntimeReport,
) {
    const RUNS_PER_SEED: usize = 3;
    for seed in seeds {
        for _ in 0..RUNS_PER_SEED {
            let report = run_one(seed);
            let ctx = format!("{} / seed {seed}", mutant.name());
            if !assert_agreement(&report, &ctx) {
                continue;
            }
            // Caught: the deterministic replay (stamps fed in order,
            // transactions sealed at their last step) must latch its
            // violation exactly where the offline minimal prefix closes.
            let edge = closing_edge(&report.schedule);
            let replayed = IncrementalCertifier::certify_schedule(&report.schedule)
                .unwrap_or_else(|| panic!("{ctx}: replay must flag a nonserializable trace"));
            assert_eq!(
                replayed.stamp, edge,
                "{ctx}: replay flagged at stamp {} but the minimal nonserializable prefix \
                 closes at {edge}",
                replayed.stamp
            );
            return;
        }
    }
    panic!(
        "{}: no nonserializable trace caught across the sweep — mutant workload lost its teeth",
        mutant.name()
    );
}

#[test]
fn mutant_altruistic_no_wake_agrees_and_flags_the_closing_edge() {
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    sweep_mutant_for_agreement(PolicyKind::AltruisticNoWake, 0..80, |seed| {
        let mut rt = Runtime::new(
            PolicyKind::AltruisticNoWake,
            &PolicyConfig::flat(pool.clone()),
        )
        .expect("mutant builds");
        rt.run(
            &long_short_jobs(&pool, 10, 10, 2, seed),
            &monitor_conf(mutant_workers()),
        )
    });
}

#[test]
fn mutant_ddag_no_held_pred_agrees_and_flags_the_closing_edge() {
    sweep_mutant_for_agreement(PolicyKind::DdagNoHeldPredecessor, 0..80, |seed| {
        let dag = layered_dag(4, 3, 2, seed);
        let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
        let mut rt =
            Runtime::new(PolicyKind::DdagNoHeldPredecessor, &config).expect("mutant builds");
        rt.set_planner_factory(Arc::new(|_| Box::new(CrawlProbePlanner)));
        let mut jobs = deep_dag_jobs(&dag, 8, 2, seed);
        jobs.extend(deep_dag_jobs(&dag, 8, 1, seed.wrapping_add(7)));
        rt.run(&jobs, &monitor_conf(mutant_workers()))
    });
}

#[test]
fn mutant_ddag_no_all_preds_agrees_and_flags_the_closing_edge() {
    sweep_mutant_for_agreement(PolicyKind::DdagNoAllPredecessors, 0..60, |seed| {
        let dag = layered_dag(5, 4, 2, seed);
        let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
        let mut rt =
            Runtime::new(PolicyKind::DdagNoAllPredecessors, &config).expect("mutant builds");
        rt.set_planner_factory(Arc::new(|w| Box::new(ShoulderProbePlanner::new(w))));
        rt.run(
            &deep_dag_jobs(&dag, 20, 1, seed),
            &monitor_conf(mutant_workers().max(8)),
        )
    });
}

#[test]
fn strict_mode_recovers_by_aborting_the_cycle_victim_and_running_on() {
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    let mut recovered_once = false;
    'sweep: for seed in 0..80u64 {
        for _ in 0..3 {
            let mut rt = Runtime::new(
                PolicyKind::AltruisticNoWake,
                &PolicyConfig::flat(pool.clone()),
            )
            .expect("mutant builds");
            let config = RuntimeConfig {
                workers: mutant_workers(),
                certify_online: CertifyMode::Strict,
                ..Default::default()
            };
            let jobs = long_short_jobs(&pool, 10, 10, 2, seed);
            let report = rt.run(&jobs, &config);
            let cert = report.certification.as_ref().expect("strict run certifies");
            assert!(cert.strict);
            // Recovery means the run *finishes*: no halt, no timeout,
            // and the accounting (including certification aborts)
            // balances.
            assert!(!report.timed_out, "strict recovery must not hang");
            assert!(report.accounting_balances(), "unbalanced after recovery");
            assert_eq!(
                cert.violation.is_some(),
                report.certification_aborts > 0,
                "the preserved first violation and the abort count must agree"
            );
            // The certifier excised every cycle it caught by aborting
            // the transaction that closed it, so the *committed
            // projection* — the victims' steps removed wholesale — is
            // serializable no matter what the mutant admitted. (The raw
            // trace keeps the victims' locked steps and so keeps the
            // caught cycle; excision is the recovery claim.)
            let committed_only = Schedule::from_steps(
                report
                    .schedule
                    .steps()
                    .iter()
                    .filter(|s| !report.aborted.contains(&s.tx))
                    .copied()
                    .collect(),
            );
            assert!(
                is_serializable(&committed_only),
                "seed {seed}: committed set nonserializable after strict recovery"
            );
            if report.certification_aborts > 0 {
                // The victims were retried as fresh transactions and the
                // run still drained the whole queue.
                assert_eq!(report.committed, jobs.len(), "jobs lost after recovery");
                assert!(
                    !is_serializable(&report.schedule),
                    "a certification abort implies the raw trace had a cycle"
                );
                recovered_once = true;
                break 'sweep;
            }
        }
    }
    assert!(
        recovered_once,
        "strict mode never caught a violation across the mutant sweep"
    );
}

// ---------------------------------------------------------------------
// Truncation / arrival-order properties.
// ---------------------------------------------------------------------

/// A few base schedules with varied shapes: safe concurrent captures
/// plus one caught mutant trace when the sweep yields one.
fn base_schedules() -> Vec<Schedule> {
    let pool: Vec<EntityId> = (0..12).map(EntityId).collect();
    let mut out = Vec::new();
    for seed in [3u64, 8] {
        let mut rt =
            Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone())).expect("2PL");
        out.push(
            rt.run(&hot_cold_jobs(&pool, 16, 3, 4, 0.8, seed), &monitor_conf(4))
                .schedule,
        );
    }
    'mutant: for seed in 0..40u64 {
        for _ in 0..3 {
            let mut rt = Runtime::new(
                PolicyKind::AltruisticNoWake,
                &PolicyConfig::flat(pool.clone()),
            )
            .expect("mutant builds");
            let report = rt.run(&long_short_jobs(&pool, 8, 8, 2, seed), &monitor_conf(4));
            if !is_serializable(&report.schedule) {
                out.push(report.schedule);
                break 'mutant;
            }
        }
    }
    out
}

/// Feeds `schedule` in stamp order, sealing each transaction at a
/// random point at or after its last step (varying how early the
/// committed-prefix watermark can truncate it); returns the verdict.
fn verdict_with_random_seals(schedule: &Schedule, rng: &mut TestRng) -> bool {
    let steps = schedule.steps();
    let mut last_pos: HashMap<TxId, usize> = HashMap::new();
    for (i, s) in steps.iter().enumerate() {
        last_pos.insert(s.tx, i);
    }
    let mut seal_at: Vec<Vec<TxId>> = vec![Vec::new(); steps.len()];
    let mut seal_tail: Vec<TxId> = Vec::new();
    for (&tx, &lp) in &last_pos {
        let p = lp + rng.below((steps.len() - lp) as u64 + 1) as usize;
        if p < steps.len() {
            seal_at[p].push(tx);
        } else {
            seal_tail.push(tx);
        }
    }
    let mut cert = IncrementalCertifier::new();
    for (i, s) in steps.iter().enumerate() {
        cert.observe(i as u64, s.tx, s.step);
        for &tx in &seal_at[i] {
            cert.seal(tx);
        }
    }
    for tx in seal_tail {
        cert.seal(tx);
    }
    assert!(
        cert.stats().live_nodes < last_pos.len() || cert.violation().is_some(),
        "sealing every transaction must reclaim nodes on a clean run"
    );
    cert.violation().is_some()
}

/// Feeds `schedule` in a random arrival order (stamps keep their
/// original positions), sealing each transaction as soon as its last
/// step has arrived; returns the verdict.
fn verdict_with_random_arrival(schedule: &Schedule, rng: &mut TestRng) -> bool {
    let steps = schedule.steps();
    let mut remaining: HashMap<TxId, usize> = HashMap::new();
    for s in steps {
        *remaining.entry(s.tx).or_default() += 1;
    }
    let mut order: Vec<usize> = (0..steps.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let mut cert = IncrementalCertifier::new();
    for idx in order {
        let s = steps[idx];
        cert.observe(idx as u64, s.tx, s.step);
        let left = remaining.get_mut(&s.tx).expect("counted");
        *left -= 1;
        if *left == 0 {
            cert.seal(s.tx);
        }
    }
    cert.violation().is_some()
}

#[test]
fn truncation_and_arrival_order_never_change_a_verdict() {
    let schedules = base_schedules();
    assert!(schedules.len() >= 2, "base schedules missing");
    for (si, schedule) in schedules.iter().enumerate() {
        let offline_bad = !is_serializable(schedule);
        // The deterministic replay agrees before any randomization.
        assert_eq!(
            IncrementalCertifier::certify_schedule(schedule).is_some(),
            offline_bad,
            "schedule {si}: baseline replay disagrees"
        );
        let mut rng = TestRng::deterministic(&format!("online-cert/truncation/{si}"));
        for case in 0..24 {
            assert_eq!(
                verdict_with_random_seals(schedule, &mut rng),
                offline_bad,
                "schedule {si} case {case}: truncation point changed the verdict"
            );
            assert_eq!(
                verdict_with_random_arrival(schedule, &mut rng),
                offline_bad,
                "schedule {si} case {case}: arrival order changed the verdict"
            );
        }
    }
}
