//! Microbenchmarks for the policy engines: lock-plan generation and
//! per-lock rule enforcement cost (the price of L5 / AL2 / tree-locking).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use slp_core::{DataOp, EntityId, Step, Transaction, TxId};
use slp_policies::altruistic::AltruisticEngine;
use slp_policies::ddag::DdagEngine;
use slp_policies::dtr::DtrEngine;
use slp_policies::{tree_lock_plan, two_phase};
use slp_sim::layered_dag;
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_two_phase_generators(c: &mut Criterion) {
    let t = Transaction::new(
        TxId(1),
        (0..64u32)
            .flat_map(|i| [Step::read(EntityId(i)), Step::write(EntityId(i))])
            .collect(),
    );
    c.bench_function("2pl_lock_strict_64", |b| {
        b.iter(|| black_box(two_phase::lock_strict(&t)));
    });
    c.bench_function("2pl_lock_conservative_64", |b| {
        b.iter(|| black_box(two_phase::lock_conservative(&t)));
    });
}

fn bench_tree_plan(c: &mut Criterion) {
    // A complete binary tree of depth 8 in a Forest.
    let mut f = slp_graph::Forest::new();
    f.add_root(EntityId(1)).unwrap();
    for i in 2..512u32 {
        f.add_child(EntityId(i / 2), EntityId(i)).unwrap();
    }
    let ops: BTreeMap<EntityId, Vec<DataOp>> = [300u32, 301, 510, 511]
        .iter()
        .map(|&i| (EntityId(i), vec![DataOp::Read, DataOp::Write]))
        .collect();
    c.bench_function("tree_lock_plan_4_targets_depth8", |b| {
        b.iter(|| black_box(tree_lock_plan(&f, &ops).unwrap()));
    });
}

fn bench_ddag_lock_cost(c: &mut Criterion) {
    // Cost of rule-checked lock acquisitions while crawling the whole DAG
    // in topological order (every lock runs the full L5 check).
    let d = layered_dag(6, 4, 2, 11);
    let topo = slp_graph::dag::topological_sort(&d.graph).unwrap();
    c.bench_function("ddag_crawl_l5_checks", |b| {
        b.iter_batched(
            || DdagEngine::new(d.universe.clone(), d.graph.clone()),
            |mut eng| {
                let tx = TxId(1);
                eng.begin(tx).unwrap();
                for &n in &topo {
                    eng.lock(tx, n).unwrap();
                }
                black_box(eng.finish(tx).unwrap().len())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_altruistic_wake_checks(c: &mut Criterion) {
    // Cost of AL2 checking with many concurrent donors.
    c.bench_function("altruistic_lock_with_8_donors", |b| {
        b.iter_batched(
            || {
                let mut eng = AltruisticEngine::new();
                // 8 active donor transactions, each has donated 4 items.
                for d in 0..8u32 {
                    let tx = TxId(d + 1);
                    eng.begin(tx).unwrap();
                    for k in 0..4u32 {
                        let e = EntityId(d * 4 + k);
                        eng.lock(tx, e).unwrap();
                        eng.unlock(tx, e).unwrap();
                    }
                }
                let probe = TxId(100);
                eng.begin(probe).unwrap();
                eng
            },
            |mut eng| {
                // The probe locks items donated by donor 0 — every lock
                // re-checks AL2 against all 8 active transactions.
                for k in 0..4u32 {
                    eng.lock(TxId(100), EntityId(k)).unwrap();
                }
                black_box(eng.holding(TxId(100)).len())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_dtr_begin(c: &mut Criterion) {
    // DT2 plan precomputation including forest joins.
    c.bench_function("dtr_begin_8_targets", |b| {
        b.iter_batched(
            || {
                let mut eng = DtrEngine::new();
                // Seed the forest with 32 single-node trees.
                for i in 0..32u32 {
                    let ops = BTreeMap::from([(EntityId(i), vec![DataOp::Read])]);
                    eng.begin(TxId(i + 1), &ops).unwrap();
                    eng.run_to_end(TxId(i + 1)).unwrap();
                    eng.finish(TxId(i + 1)).unwrap();
                }
                eng
            },
            |mut eng| {
                let ops: BTreeMap<EntityId, Vec<DataOp>> = (0..8u32)
                    .map(|i| (EntityId(i * 4), vec![DataOp::Read, DataOp::Write]))
                    .collect();
                black_box(eng.begin(TxId(1000), &ops).unwrap().len())
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_two_phase_generators,
    bench_tree_plan,
    bench_ddag_lock_cost,
    bench_altruistic_wake_checks,
    bench_dtr_begin
);
criterion_main!(benches);
