//! Microbenchmarks for the core model: properness/legality checking,
//! serializability-graph construction, and the structural-state
//! representation ablation (bitset vs `HashSet`, DESIGN.md §6 ♦).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use slp_core::{
    is_serializable, EntityId, LockedTransaction, Schedule, ScheduleSimulator, SerializationGraph,
    Step, StructuralState, TxId,
};
use std::collections::HashSet;
use std::hint::black_box;

/// Builds an interleaved schedule of `k` strict-2PL transactions over
/// `entities` entities with `len` accesses each.
fn interleaved_schedule(k: u32, len: usize, entities: u32) -> (Schedule, StructuralState) {
    let txs: Vec<LockedTransaction> = (0..k)
        .map(|i| {
            let mut steps = Vec::new();
            let mine: Vec<EntityId> = (0..len)
                .map(|j| EntityId((i + j as u32 * k) % entities))
                .collect();
            let mut seen: Vec<EntityId> = Vec::new();
            for &e in &mine {
                if !seen.contains(&e) {
                    steps.push(Step::lock_exclusive(e));
                    seen.push(e);
                }
                steps.push(Step::read(e));
                steps.push(Step::write(e));
            }
            for &e in &seen {
                steps.push(Step::unlock_exclusive(e));
            }
            LockedTransaction::new(TxId(i + 1), steps)
        })
        .collect();
    // Round-robin interleave (cross-transaction locks may overlap; that is
    // fine for properness benches, and conflicts enrich the graph bench).
    let mut order = Vec::new();
    let max_len = txs.iter().map(LockedTransaction::len).max().unwrap_or(0);
    for round in 0..max_len {
        for t in &txs {
            if round < t.len() {
                order.push(t.id);
            }
        }
    }
    let schedule = Schedule::interleave(&txs, &order).expect("valid");
    let g0 = StructuralState::from_entities((0..entities).map(EntityId));
    (schedule, g0)
}

fn bench_properness(c: &mut Criterion) {
    let mut group = c.benchmark_group("properness");
    for steps in [64usize, 256, 1024] {
        let (schedule, g0) = interleaved_schedule(4, steps / 12, 32);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, _| {
            b.iter(|| black_box(schedule.check_proper(&g0).is_ok()));
        });
    }
    group.finish();
}

fn bench_legality(c: &mut Criterion) {
    let mut group = c.benchmark_group("legality");
    for steps in [64usize, 256, 1024] {
        let (schedule, _) = interleaved_schedule(4, steps / 12, 32);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, _| {
            b.iter(|| black_box(schedule.check_legal().is_ok()));
        });
    }
    group.finish();
}

fn bench_sgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("serialization_graph");
    for steps in [64usize, 256, 1024] {
        let (schedule, _) = interleaved_schedule(6, steps / 18, 16);
        group.bench_with_input(BenchmarkId::new("build", steps), &steps, |b, _| {
            b.iter(|| black_box(SerializationGraph::of(&schedule)));
        });
        group.bench_with_input(BenchmarkId::new("serializable", steps), &steps, |b, _| {
            b.iter(|| black_box(is_serializable(&schedule)));
        });
    }
    group.finish();
}

/// Ablation ♦: incremental simulator pass vs re-running the one-shot
/// checks on every prefix (what a verifier without the cursor would do).
fn bench_incremental_vs_oneshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation_strategy");
    let (schedule, g0) = interleaved_schedule(4, 16, 32);
    group.bench_function("incremental_simulator", |b| {
        b.iter(|| {
            let mut sim = ScheduleSimulator::new(g0.clone());
            black_box(sim.apply_schedule(&schedule).is_ok())
        });
    });
    group.bench_function("oneshot_per_prefix", |b| {
        b.iter(|| {
            let mut ok = true;
            for n in 1..=schedule.len() {
                let p = schedule.prefix(n);
                ok &= p.check_legal().is_ok() && p.check_proper(&g0).is_ok();
            }
            black_box(ok)
        });
    });
    group.finish();
}

/// Ablation ♦: bitset-backed structural state vs a plain HashSet.
fn bench_state_representation(c: &mut Criterion) {
    let mut group = c.benchmark_group("structural_state");
    let ids: Vec<EntityId> = (0..512).map(EntityId).collect();
    group.bench_function("bitset_insert_query_remove", |b| {
        b.iter_batched(
            StructuralState::empty,
            |mut s| {
                for &e in &ids {
                    s.insert(e);
                }
                let mut hits = 0;
                for &e in &ids {
                    hits += usize::from(s.contains(e));
                }
                for &e in &ids {
                    s.remove(e);
                }
                black_box(hits)
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("hashset_insert_query_remove", |b| {
        b.iter_batched(
            HashSet::<EntityId>::new,
            |mut s| {
                for &e in &ids {
                    s.insert(e);
                }
                let mut hits = 0;
                for &e in &ids {
                    hits += usize::from(s.contains(&e));
                }
                for &e in &ids {
                    s.remove(&e);
                }
                black_box(hits)
            },
            BatchSize::SmallInput,
        );
    });
    // Snapshot (clone) cost — the verifier clones states on every branch.
    let full = StructuralState::from_entities(ids.iter().copied());
    let full_hash: HashSet<EntityId> = ids.iter().copied().collect();
    group.bench_function("bitset_clone", |b| b.iter(|| black_box(full.clone())));
    group.bench_function("hashset_clone", |b| b.iter(|| black_box(full_hash.clone())));
    group.finish();
}

criterion_group!(
    benches,
    bench_properness,
    bench_legality,
    bench_sgraph,
    bench_incremental_vs_oneshot,
    bench_state_representation
);
criterion_main!(benches);
