//! Benchmarks for the concurrent transaction runtime (`slp-runtime`):
//! end-to-end throughput across worker counts, the grant-batching
//! ablation on the sharded front-end, and the offline trace-replay cost.
//!
//! Results are appended to `BENCH_runtime.json` with the host CPU count
//! noted (the PR-2/PR-4 convention): on a single-CPU container the
//! worker-scaling rows record scheduling overhead only — re-measure on
//! real cores before reading them as speedups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp_core::EntityId;
use slp_policies::{PolicyConfig, PolicyKind};
use slp_runtime::{
    recover, CertifyMode, DirStore, IncrementalCertifier, RecoveryMode, Runtime, RuntimeConfig,
    SchedMode, SharedMemStore, Store, WalConfig,
};
use slp_sim::{deep_dag_jobs, hot_cold_jobs, layered_dag, read_heavy_jobs, Job};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn pool(n: u32) -> Vec<EntityId> {
    (0..n).map(EntityId).collect()
}

/// Throughput-oriented config: no per-step yields, batched grants. The
/// grant fast path (on by default since PR 9) is pinned OFF here so the
/// baseline groups keep measuring the engine path their historical
/// `BENCH_runtime.json` rows measured; `bench_fast_path` is the group
/// that toggles it.
fn bench_config(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        grant_batch: 4,
        step_yield: false,
        grant_fast_path: false,
        max_wall: Duration::from_secs(60),
        ..Default::default()
    }
}

fn run_flat(kind: PolicyKind, pool: &[EntityId], jobs: &[Job], config: &RuntimeConfig) -> usize {
    let mut rt = Runtime::new(kind, &PolicyConfig::flat(pool.to_vec())).expect("flat kind");
    let report = rt.run(jobs, config);
    assert!(!report.timed_out);
    report.committed
}

/// End-to-end runtime throughput at 1/2/4/8 workers: 2PL over the
/// hot/cold contention mix, DDAG over deep dominator traversals.
fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_throughput");
    let p = pool(32);
    let jobs = hot_cold_jobs(&p, 160, 3, 4, 0.8, 42);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("2pl_hot_cold", workers),
            &workers,
            |b, &w| {
                b.iter(|| black_box(run_flat(PolicyKind::TwoPhase, &p, &jobs, &bench_config(w))));
            },
        );
    }
    let dag = layered_dag(5, 4, 2, 42);
    let dag_jobs = deep_dag_jobs(&dag, 48, 2, 42);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("ddag_deep", workers), &workers, |b, &w| {
            b.iter(|| {
                let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
                let mut rt = Runtime::new(PolicyKind::Ddag, &config).expect("DDAG builds");
                let report = rt.run(&dag_jobs, &bench_config(w));
                assert!(!report.timed_out);
                black_box(report.committed)
            });
        });
    }
    group.finish();
}

/// Front-end ablation: how much does batching consecutive grants under
/// one engine-lock acquisition save at a fixed worker count?
fn bench_grant_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_batching");
    let p = pool(32);
    let jobs = hot_cold_jobs(&p, 160, 3, 4, 0.8, 7);
    for batch in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("2pl_batch", batch), &batch, |b, &batch| {
            let config = RuntimeConfig {
                grant_batch: batch,
                ..bench_config(4)
            };
            b.iter(|| black_box(run_flat(PolicyKind::TwoPhase, &p, &jobs, &config)));
        });
    }
    group.finish();
}

/// Offline verification cost of a captured runtime trace (the conformance
/// suite's hot loop): legality + properness + serializability replay.
fn bench_trace_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_trace_replay");
    let p = pool(32);
    let jobs = hot_cold_jobs(&p, 160, 3, 4, 0.8, 21);
    let mut rt =
        Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(p.clone())).expect("2PL builds");
    // Capture at 1 worker: a single-worker run is deterministic, so the
    // replayed trace (and this row's cost) is identical every invocation —
    // the trajectory file compares rows by name across runs, so the name
    // must not embed a timing-dependent quantity.
    let report = rt.run(&jobs, &bench_config(1));
    let steps = report.schedule.len();
    assert_eq!(steps, 1920, "single-worker capture must be deterministic");
    group.bench_with_input(
        BenchmarkId::new("verify", "2pl_160jobs_1920steps"),
        &steps,
        |b, _| {
            b.iter(|| {
                black_box(
                    report.schedule.is_legal()
                        && report.schedule.is_proper(&report.initial)
                        && slp_core::is_serializable(&report.schedule),
                )
            });
        },
    );
    group.finish();
}

/// Online-certification overhead: the same hot/cold run with the
/// incremental serialization-graph certifier off vs monitoring. The
/// certifier runs outside the engine lock (one mutex around the graph,
/// fed once per attempt at finish/abort), so the acceptance bar is
/// ≤ 10% over the certifier-off row at grant_batch = 4.
fn bench_certification(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_certification");
    let p = pool(32);
    let jobs = hot_cold_jobs(&p, 160, 3, 4, 0.8, 42);
    for (name, mode) in [
        ("certify_off", CertifyMode::Off),
        ("certify_monitor", CertifyMode::Monitor),
    ] {
        for workers in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("2pl_hot_cold_160/{workers}w")),
                &mode,
                |b, &mode| {
                    let config = RuntimeConfig {
                        certify_online: mode,
                        ..bench_config(workers)
                    };
                    b.iter(|| black_box(run_flat(PolicyKind::TwoPhase, &p, &jobs, &config)));
                },
            );
        }
    }
    // The certifier's own feeding cost, isolated from the runtime: replay
    // a deterministic 1-worker capture of the same workload through the
    // incremental machinery (observe + seal + truncation, no mutex).
    let mut rt =
        Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(p.clone())).expect("2PL builds");
    let report = rt.run(&jobs, &bench_config(1));
    let steps = report.schedule.len();
    group.bench_with_input(
        BenchmarkId::new("incremental_replay", format!("{steps}steps")),
        &steps,
        |b, _| {
            b.iter(|| black_box(IncrementalCertifier::certify_schedule(&report.schedule)));
        },
    );
    // The same capture fed the way the runtime feeds it: one batch per
    // maximal same-transaction run (= one attempt at 1 worker), sealed at
    // the transaction's last batch. The gap between this row and the
    // per-step row above is the batching win; the gap between this row
    // and the off/monitor pair is the runtime-side plumbing.
    let scheduled = report.schedule.steps();
    let mut batches: Vec<(Vec<(u64, slp_core::ScheduledStep)>, bool)> = Vec::new();
    let mut last_batch_of_tx = std::collections::HashMap::new();
    for (i, s) in scheduled.iter().enumerate() {
        match batches.last_mut() {
            Some((b, _)) if b.last().map(|(_, p)| p.tx) == Some(s.tx) => b.push((i as u64, *s)),
            _ => batches.push((vec![(i as u64, *s)], false)),
        }
        last_batch_of_tx.insert(s.tx, batches.len() - 1);
    }
    for (tx, &i) in &last_batch_of_tx {
        let _ = tx;
        batches[i].1 = true;
    }
    group.bench_with_input(
        BenchmarkId::new(
            "incremental_replay_batched",
            format!("{}batches", batches.len()),
        ),
        &steps,
        |b, _| {
            b.iter(|| {
                let mut cert = IncrementalCertifier::new();
                for (batch, seals) in &batches {
                    cert.observe_trace(batch);
                    if *seals {
                        cert.seal(batch.last().expect("nonempty batch").1.tx);
                    }
                }
                black_box(cert.violation().is_none())
            });
        },
    );
    group.finish();
}

/// The MVCC read path vs locked reads: the same read-heavy workload (90%
/// read-only jobs over a hot/cold mix) with `snapshot_reads` off — every
/// read planned through the lock service like any other job — and on —
/// read-only jobs capture a snapshot and walk version chains, zero lock
/// requests. The gap is the tentpole's headline: the snapshot rows must
/// beat the locked rows at every width, and the win grows with workers
/// because readers leave the sharded front-end entirely to the writer
/// minority.
fn bench_read_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_read_path");
    let p = pool(64);
    let jobs = read_heavy_jobs(&p, 160, 3, 4, 0.9, 42);
    for (name, snapshots) in [("locked_reads", false), ("snapshot_reads", true)] {
        for workers in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{workers}w")),
                &snapshots,
                |b, &snapshots| {
                    let config = RuntimeConfig {
                        snapshot_reads: snapshots,
                        ..bench_config(workers)
                    };
                    b.iter(|| black_box(run_flat(PolicyKind::TwoPhase, &p, &jobs, &config)));
                },
            );
        }
    }
    group.finish();
}

/// The sharded grant fast path on vs off: 2PL hot/cold contention (the
/// workload the engine lock serializes hardest) and a 90/10 read-heavy
/// mix over a wider pool, at 1/2/4/8 workers. On real cores the word-CAS
/// rows should pull ahead as workers climb; on a single-CPU container
/// both paths time-slice one core, so the rows bound the fast path's
/// *overhead* instead (acceptance: within ~5% of the engine path at
/// every width).
fn bench_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_fast_path");
    let p = pool(32);
    let hot = hot_cold_jobs(&p, 160, 3, 4, 0.8, 42);
    let wide = pool(64);
    let reads = read_heavy_jobs(&wide, 160, 3, 4, 0.9, 42);
    for (name, fast) in [("engine_path", false), ("word_path", true)] {
        for workers in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("hot_cold/{workers}w")),
                &fast,
                |b, &fast| {
                    let config = RuntimeConfig {
                        grant_fast_path: fast,
                        ..bench_config(workers)
                    };
                    b.iter(|| black_box(run_flat(PolicyKind::TwoPhase, &p, &hot, &config)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(name, format!("read90/{workers}w")),
                &fast,
                |b, &fast| {
                    let config = RuntimeConfig {
                        grant_fast_path: fast,
                        ..bench_config(workers)
                    };
                    b.iter(|| black_box(run_flat(PolicyKind::TwoPhase, &wide, &reads, &config)));
                },
            );
        }
    }
    group.finish();
}

/// One durable run of `jobs` against `store`; returns the committed count
/// (and asserts the log never failed — a dead log would make the row
/// measure nothing).
fn run_durable(
    jobs: &[Job],
    pool: &[EntityId],
    store: Box<dyn Store>,
    group_commit: usize,
    config: &RuntimeConfig,
) -> usize {
    let mut rt =
        Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.to_vec())).expect("2PL builds");
    let wal = Arc::new(
        rt.create_wal(
            store,
            WalConfig {
                group_commit,
                ..WalConfig::default()
            },
        )
        .expect("fresh store"),
    );
    let report = rt.run_durable(jobs, config, wal);
    assert!(!report.timed_out);
    assert!(!report.wal.as_ref().expect("durable").failed);
    report.committed
}

/// Group-commit latency vs batch size: the durability tentpole's headline
/// knob. `wal_mem` rows isolate framing + checksum + watermark overhead
/// (no real I/O); `wal_dir` rows add real files and `sync_data`, so the
/// group-commit amortization shows up as fewer fsyncs per job. The
/// recovery row prices the replay path on the clean log.
fn bench_durability(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_durability");
    let p = pool(32);
    let jobs = hot_cold_jobs(&p, 160, 3, 4, 0.8, 42);
    let config = bench_config(4);
    for batch in [1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("wal_mem_group", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let store = Box::new(SharedMemStore::new());
                    black_box(run_durable(&jobs, &p, store, batch, &config))
                });
            },
        );
    }
    // Real files: fresh directory per iteration (the log insists on an
    // empty store), cleaned up as we go.
    let scratch = std::env::temp_dir().join(format!("slp-bench-wal-{}", std::process::id()));
    let serial = AtomicU64::new(0);
    for batch in [1usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("wal_dir_group", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let dir =
                        scratch.join(format!("run-{}", serial.fetch_add(1, Ordering::Relaxed)));
                    let store = Box::new(DirStore::open(&dir).expect("scratch dir"));
                    let committed = run_durable(&jobs, &p, store, batch, &config);
                    std::fs::remove_dir_all(&dir).expect("scratch cleanup");
                    black_box(committed)
                });
            },
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
    // Recovery replay: rebuild state + committed set from the flushed log
    // of one representative run.
    let handle = SharedMemStore::new();
    run_durable(&jobs, &p, Box::new(handle.clone()), 4, &config);
    let full = handle.snapshot();
    group.bench_with_input(BenchmarkId::new("recover", "oldest"), &(), |b, _| {
        b.iter(|| {
            let r = recover(&full, RecoveryMode::Oldest).expect("clean log recovers");
            black_box(r.watermark)
        });
    });
    group.finish();
}

/// The admission-stage batch scheduler vs grant-time parking: 2PL over
/// hot/cold contention and DDAG over deep dominator traversals, with the
/// conflict DAG off (`parking` rows — every conflict discovered at the
/// lock service) and in `waves` mode (declared conflicts ordered into
/// barrier-separated waves up front) at 1/2/4/8 workers, plus a
/// `deterministic` overhead row at each width (admission-pinned ids and
/// trace renumbering; serial waves for the global-scope DDAG engine). On
/// a single-CPU container all rows time-slice one core, so read the
/// waves-vs-parking gap as scheduling overhead vs parking overhead, not
/// parallel speedup.
fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_scheduler");
    let p = pool(32);
    let hot = hot_cold_jobs(&p, 160, 3, 4, 0.8, 42);
    let dag = layered_dag(5, 4, 2, 42);
    let dag_jobs = deep_dag_jobs(&dag, 48, 2, 42);
    for (name, sched) in [
        ("parking", SchedMode::Off),
        ("waves", SchedMode::Waves),
        ("deterministic", SchedMode::Deterministic),
    ] {
        for workers in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("2pl_hot_cold/{workers}w")),
                &sched,
                |b, &sched| {
                    let config = RuntimeConfig {
                        scheduler: sched,
                        ..bench_config(workers)
                    };
                    b.iter(|| black_box(run_flat(PolicyKind::TwoPhase, &p, &hot, &config)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(name, format!("ddag_deep/{workers}w")),
                &sched,
                |b, &sched| {
                    let config = RuntimeConfig {
                        scheduler: sched,
                        ..bench_config(workers)
                    };
                    b.iter(|| {
                        let pc = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
                        let mut rt = Runtime::new(PolicyKind::Ddag, &pc).expect("DDAG builds");
                        let report = rt.run(&dag_jobs, &config);
                        assert!(!report.timed_out);
                        black_box(report.committed)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_worker_scaling,
    bench_grant_batching,
    bench_trace_replay,
    bench_certification,
    bench_read_path,
    bench_fast_path,
    bench_durability,
    bench_scheduler
);
criterion_main!(benches);
