//! Microbenchmarks for the safety verifier: exhaustive vs canonical
//! search, and the memoization ablation (DESIGN.md §6 ♦).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp_core::SystemBuilder;
use slp_verifier::{
    find_canonical_witness, random_system, verify_safety, verify_safety_reference, CanonicalBudget,
    GenParams, ParallelVerifier, SearchBudget,
};
use std::hint::black_box;

/// A safe 2PL system of `k` transactions over `k + 1` entities.
fn safe_system(k: u32) -> slp_core::TransactionSystem {
    let mut b = SystemBuilder::new();
    for i in 0..=k {
        b.exists(&format!("x{i}"));
    }
    for t in 1..=k {
        let (a, bb) = (format!("x{}", t - 1), format!("x{t}"));
        b.tx(t)
            .lx(&a)
            .write(&a)
            .lx(&bb)
            .write(&bb)
            .ux(&a)
            .ux(&bb)
            .finish();
    }
    b.build()
}

/// An unsafe early-release system of `k` transactions.
fn unsafe_system(k: u32) -> slp_core::TransactionSystem {
    let mut b = SystemBuilder::new();
    b.exists("x");
    b.exists("y");
    for t in 1..=k {
        b.tx(t)
            .lx("x")
            .write("x")
            .ux("x")
            .lx("y")
            .write("y")
            .ux("y")
            .finish();
    }
    b.build()
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_safety");
    group.sample_size(20);
    for k in [2u32, 3] {
        let safe = safe_system(k);
        group.bench_with_input(BenchmarkId::new("safe", k), &k, |b, _| {
            b.iter(|| black_box(verify_safety(&safe, SearchBudget::default()).is_safe()));
        });
        let unsafe_ = unsafe_system(k);
        group.bench_with_input(BenchmarkId::new("unsafe", k), &k, |b, _| {
            b.iter(|| black_box(verify_safety(&unsafe_, SearchBudget::default()).is_unsafe()));
        });
    }
    group.finish();
}

/// Ablation ♦: memoized search vs plain DFS on the same safe system
/// (safe systems force full-space coverage, where memoization matters).
fn bench_memo_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("memoization");
    group.sample_size(10);
    let system = safe_system(3);
    group.bench_function("memo_on", |b| {
        b.iter(|| {
            black_box(verify_safety(
                &system,
                SearchBudget {
                    use_memo: true,
                    ..Default::default()
                },
            ))
        });
    });
    group.bench_function("memo_off", |b| {
        b.iter(|| {
            black_box(verify_safety(
                &system,
                SearchBudget {
                    use_memo: false,
                    ..Default::default()
                },
            ))
        });
    });
    group.finish();
}

/// DFS throughput: the apply/undo explorer against the retained
/// clone-per-node reference, on safe systems (full-space coverage) and an
/// unsafe system (early exit), with the memoization ablation retained.
/// States/sec is derivable from the reported time and the fixed state
/// counts both explorers visit (their search shapes are identical).
fn bench_dfs_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfs_throughput");
    group.sample_size(10);
    for k in [3u32, 4] {
        let safe = safe_system(k);
        group.bench_with_input(BenchmarkId::new("optimized/safe", k), &k, |b, _| {
            b.iter(|| black_box(verify_safety(&safe, SearchBudget::default()).is_safe()));
        });
        group.bench_with_input(BenchmarkId::new("reference/safe", k), &k, |b, _| {
            b.iter(|| black_box(verify_safety_reference(&safe, SearchBudget::default()).is_safe()));
        });
    }
    let unsafe_ = unsafe_system(3);
    group.bench_function("optimized/unsafe/3", |b| {
        b.iter(|| black_box(verify_safety(&unsafe_, SearchBudget::default()).is_unsafe()));
    });
    group.bench_function("reference/unsafe/3", |b| {
        b.iter(|| {
            black_box(verify_safety_reference(&unsafe_, SearchBudget::default()).is_unsafe())
        });
    });
    // Memo ablation on the optimized explorer (plain DFS vs memoized).
    let safe3 = safe_system(3);
    group.bench_function("optimized/safe/3/memo_off", |b| {
        b.iter(|| {
            black_box(verify_safety(
                &safe3,
                SearchBudget {
                    use_memo: false,
                    ..Default::default()
                },
            ))
        });
    });
    group.bench_function("reference/safe/3/memo_off", |b| {
        b.iter(|| {
            black_box(verify_safety_reference(
                &safe3,
                SearchBudget {
                    use_memo: false,
                    ..Default::default()
                },
            ))
        });
    });
    group.finish();
}

/// Work-stealing parallel DFS (lock-free memo core + batched donation)
/// against the sequential apply/undo DFS, on full-coverage (safe) systems
/// where parallelism can pay. Same systems as PR 2's `parallel_dfs` rows,
/// so the group is directly comparable against the sharded-mutex numbers
/// recorded in BENCH_verifier.json. The `ParallelVerifier` is constructed
/// once per row, so the measurement is dispatch + search, not thread-spawn
/// latency. The wide row runs a `k = 13` system through the words-backed
/// `EdgeSet` path end-to-end — one synchronized probe-or-intern per wide
/// key.
///
/// NOTE: speedups only manifest with real cores; on a single-CPU host the
/// parallel rows measure coordination overhead (see BENCH_verifier.json).
fn bench_parallel_dfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_dfs_lockfree");
    group.sample_size(10);
    for k in [4u32, 5] {
        let safe = safe_system(k);
        group.bench_with_input(BenchmarkId::new("sequential/safe", k), &k, |b, _| {
            b.iter(|| black_box(verify_safety(&safe, SearchBudget::default()).is_safe()));
        });
        for threads in [1usize, 2, 4] {
            let verifier = ParallelVerifier::new(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("parallel/safe/{k}/threads"), threads),
                &threads,
                |b, _| {
                    b.iter(|| black_box(verifier.verify(&safe, SearchBudget::default()).is_safe()));
                },
            );
        }
    }
    // Wide regime: a k = 13 system (2 real transactions + 11 padding) —
    // impossible to verify at all before the EdgeSet lift.
    let wide = random_system(
        GenParams {
            transactions: 2,
            sessions_per_tx: 2,
            padding_txs: 11,
            ..GenParams::default()
        },
        9,
    );
    assert_eq!(wide.ids().len(), 13);
    group.bench_function("sequential/wide/13", |b| {
        b.iter(|| black_box(verify_safety(&wide, SearchBudget::default())));
    });
    let verifier = ParallelVerifier::new(4);
    group.bench_function("parallel/wide/13/threads/4", |b| {
        b.iter(|| black_box(verifier.verify(&wide, SearchBudget::default())));
    });
    group.finish();
}

/// PR-2's sharded-mutex shared memo, reconstructed locally as the
/// baseline arm of the `memo_contention` ablation (the live verifier no
/// longer contains it): 64 `Mutex<FxHashSet>` shards keyed by the high
/// hash bits, `contains`/`insert` locking the key's shard.
mod mutex_sharded {
    use criterion::black_box;
    use rustc_hash::{FxHashSet, FxHasher};
    use std::hash::{Hash, Hasher};
    use std::sync::Mutex;

    const SHARDS: usize = 64;

    pub struct MutexShardedSet {
        shards: Vec<Mutex<FxHashSet<(u128, u128)>>>,
    }

    impl MutexShardedSet {
        pub fn new() -> Self {
            MutexShardedSet {
                shards: (0..SHARDS)
                    .map(|_| Mutex::new(FxHashSet::default()))
                    .collect(),
            }
        }

        fn shard(&self, key: &(u128, u128)) -> &Mutex<FxHashSet<(u128, u128)>> {
            let mut h = FxHasher::default();
            key.hash(&mut h);
            &self.shards[(h.finish() >> 58) as usize % SHARDS]
        }

        pub fn contains(&self, key: &(u128, u128)) -> bool {
            self.shard(key).lock().expect("shard").contains(key)
        }

        pub fn insert(&self, key: (u128, u128)) {
            self.shard(&key).lock().expect("shard").insert(key);
        }
    }

    /// One worker's share of the storm: a probe-miss/insert pass over
    /// every key, then a probe-hit pass — the memo's two access patterns.
    pub fn hammer(set: &MutexShardedSet, keys: &[(u128, u128)]) {
        for k in keys {
            if !set.contains(k) {
                set.insert(*k);
            }
        }
        for k in keys {
            black_box(set.contains(k));
        }
    }
}

/// Pure probe/insert throughput of the retired sharded-mutex memo against
/// the lock-free `AtomicWordTable`, at 1/2/4/8 threads all hammering the
/// same overlapping key set (every thread walks every key: a miss/insert
/// pass, then a hit pass). Both arms use the packed four-word key shape.
/// Reported time is per full storm (threads × 2 × KEYS operations, plus
/// thread spawn); compare arms at equal thread count. On a single-CPU
/// host the >1-thread rows still exercise lock/CAS traffic under
/// preemption, but true cache-line contention needs real cores.
fn bench_memo_contention(c: &mut Criterion) {
    use slp_verifier::memo::AtomicWordTable;
    let mut group = c.benchmark_group("memo_contention");
    group.sample_size(10);
    const KEYS: usize = 4096;
    let keys: Vec<(u128, u128)> = (0..KEYS as u128)
        .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15), (i << 7) | 1))
        .collect();
    let word_keys: Vec<[u64; 4]> = keys
        .iter()
        .map(|&(p, e)| [p as u64, (p >> 64) as u64, e as u64, (e >> 64) as u64])
        .collect();
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("mutex_sharded/threads", threads),
            &threads,
            |b, &t| {
                b.iter_batched(
                    mutex_sharded::MutexShardedSet::new,
                    |set| {
                        std::thread::scope(|s| {
                            for _ in 0..t {
                                let set = &set;
                                let keys = &keys;
                                s.spawn(move || mutex_sharded::hammer(set, keys));
                            }
                        });
                        set
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lockfree/threads", threads),
            &threads,
            |b, &t| {
                b.iter_batched(
                    || AtomicWordTable::new(4),
                    |table| {
                        std::thread::scope(|s| {
                            for _ in 0..t {
                                let table = &table;
                                let word_keys = &word_keys;
                                s.spawn(move || {
                                    for k in word_keys {
                                        if !table.contains(k) {
                                            table.insert(k);
                                        }
                                    }
                                    for k in word_keys {
                                        black_box(table.contains(k));
                                    }
                                });
                            }
                        });
                        table
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_canonical(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonical_search");
    group.sample_size(20);
    let safe = safe_system(3);
    group.bench_function("safe_3tx", |b| {
        b.iter(|| black_box(find_canonical_witness(&safe, CanonicalBudget::default())));
    });
    let unsafe_ = unsafe_system(2);
    group.bench_function("unsafe_2tx", |b| {
        b.iter(|| black_box(find_canonical_witness(&unsafe_, CanonicalBudget::default())));
    });
    group.finish();
}

fn bench_random_agreement_pair(c: &mut Criterion) {
    // The per-system cost of an E6 row: one exhaustive + one canonical run.
    let mut group = c.benchmark_group("agreement_pair");
    group.sample_size(10);
    let systems: Vec<_> = (0..8u64)
        .map(|s| random_system(GenParams::default(), s))
        .collect();
    group.bench_function("8_random_systems", |b| {
        b.iter(|| {
            let mut unsafe_count = 0;
            for sys in &systems {
                let e = verify_safety(sys, SearchBudget::default()).is_unsafe();
                let w = find_canonical_witness(sys, CanonicalBudget::default())
                    .witness()
                    .is_some();
                assert_eq!(e, w);
                unsafe_count += usize::from(e);
            }
            black_box(unsafe_count)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exhaustive,
    bench_memo_ablation,
    bench_dfs_throughput,
    bench_parallel_dfs,
    bench_memo_contention,
    bench_canonical,
    bench_random_agreement_pair
);
criterion_main!(benches);
