//! Microbenchmarks for the graph substrate: dominators (Lemma 3's engine),
//! reachability, topological sort, and forest operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp_core::EntityId;
use slp_graph::{dag, dominators, reach, rooted, Forest};
use slp_sim::layered_dag;
use std::hint::black_box;

fn bench_dominators(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominator_sets");
    for (layers, width) in [(3usize, 4usize), (5, 6), (7, 8)] {
        let d = layered_dag(layers, width, 3, 42);
        let nodes = d.graph.node_count();
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(dominators::dominator_sets(&d.graph, d.root)));
        });
    }
    group.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    for (layers, width) in [(5usize, 6usize), (7, 8)] {
        let d = layered_dag(layers, width, 3, 42);
        let nodes = d.graph.node_count();
        group.bench_with_input(BenchmarkId::new("descendants", nodes), &nodes, |b, _| {
            b.iter(|| black_box(reach::descendants(&d.graph, d.root)));
        });
        let leaf = *d.nodes.last().unwrap().last().unwrap();
        group.bench_with_input(BenchmarkId::new("ancestors", nodes), &nodes, |b, _| {
            b.iter(|| black_box(reach::ancestors(&d.graph, leaf)));
        });
    }
    group.finish();
}

fn bench_topo_and_rooted(c: &mut Criterion) {
    let d = layered_dag(6, 8, 3, 7);
    c.bench_function("topological_sort", |b| {
        b.iter(|| black_box(dag::topological_sort(&d.graph)));
    });
    c.bench_function("rootedness_check", |b| {
        b.iter(|| black_box(rooted::is_rooted(&d.graph)));
    });
}

fn bench_forest_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest");
    group.bench_function("grow_join_query_256", |b| {
        b.iter(|| {
            let mut f = Forest::new();
            for i in 0..256u32 {
                f.add_root(EntityId(i)).unwrap();
            }
            for i in 1..256u32 {
                f.join(EntityId(0), EntityId(i)).unwrap();
            }
            let mut depth = 0;
            for i in 0..256u32 {
                depth += f.path_from_root(EntityId(i)).map_or(0, |p| p.len());
            }
            black_box(depth)
        });
    });
    // LCA on a deep chain.
    let mut chain = Forest::new();
    chain.add_root(EntityId(0)).unwrap();
    for i in 1..512u32 {
        chain.add_child(EntityId(i - 1), EntityId(i)).unwrap();
    }
    group.bench_function("lca_deep_chain", |b| {
        b.iter(|| black_box(chain.lca(EntityId(500), EntityId(255))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dominators,
    bench_reachability,
    bench_topo_and_rooted,
    bench_forest_ops
);
criterion_main!(benches);
