//! Microbenchmarks for the simulator: end-to-end run cost per policy and
//! the post-hoc trace verification cost. Every adapter is built through
//! the policy registry.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use slp_core::EntityId;
use slp_policies::{PolicyConfig, PolicyKind, PolicyRegistry};
use slp_sim::{build_adapter, dag_access_jobs, layered_dag, run_sim, uniform_jobs, SimConfig};
use std::hint::black_box;

fn bench_policy_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_sim_30_jobs");
    group.sample_size(20);
    let registry = PolicyRegistry::new();
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 30, 3, 5);
    let config = SimConfig {
        workers: 4,
        ..Default::default()
    };

    for kind in [
        PolicyKind::TwoPhase,
        PolicyKind::Altruistic,
        PolicyKind::Dtr,
    ] {
        let flat = PolicyConfig::flat(pool.clone());
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || build_adapter(&registry, kind, &flat).expect("flat kind"),
                |mut a| black_box(run_sim(&mut a, &jobs, &config).committed),
                BatchSize::SmallInput,
            );
        });
    }
    let dag = layered_dag(4, 4, 2, 5);
    let dag_jobs = dag_access_jobs(&dag, 30, 2, 5);
    let dag_config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
    group.bench_function(PolicyKind::Ddag.name(), |b| {
        b.iter_batched(
            || build_adapter(&registry, PolicyKind::Ddag, &dag_config).expect("DAG provided"),
            |mut a| black_box(run_sim(&mut a, &dag_jobs, &config).committed),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_trace_verification(c: &mut Criterion) {
    // Post-hoc verification cost for a realistic trace.
    let registry = PolicyRegistry::new();
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 50, 3, 9);
    let mut adapter = build_adapter(
        &registry,
        PolicyKind::TwoPhase,
        &PolicyConfig::flat(pool.clone()),
    )
    .expect("flat kind");
    let initial = adapter.initial_state();
    let report = run_sim(
        &mut adapter,
        &jobs,
        &SimConfig {
            workers: 4,
            ..Default::default()
        },
    );
    let trace = report.schedule;
    c.bench_function("verify_trace_legal_proper_serializable", |b| {
        b.iter(|| {
            black_box(
                trace.is_legal() && trace.is_proper(&initial) && slp_core::is_serializable(&trace),
            )
        });
    });
}

criterion_group!(benches, bench_policy_runs, bench_trace_verification);
criterion_main!(benches);
