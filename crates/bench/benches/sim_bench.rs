//! Microbenchmarks for the simulator: end-to-end run cost per policy and
//! the post-hoc trace verification cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use slp_core::EntityId;
use slp_sim::{
    dag_access_jobs, layered_dag, run_sim, uniform_jobs, AltruisticAdapter, DdagAdapter,
    DtrAdapter, SimConfig, TwoPhaseAdapter,
};
use std::hint::black_box;

fn bench_policy_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_sim_30_jobs");
    group.sample_size(20);
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 30, 3, 5);
    let config = SimConfig {
        workers: 4,
        ..Default::default()
    };

    group.bench_function("2pl", |b| {
        b.iter_batched(
            || TwoPhaseAdapter::new(pool.clone()),
            |mut a| black_box(run_sim(&mut a, &jobs, &config).committed),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("altruistic", |b| {
        b.iter_batched(
            || AltruisticAdapter::new(pool.clone()),
            |mut a| black_box(run_sim(&mut a, &jobs, &config).committed),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("dtr", |b| {
        b.iter_batched(
            || DtrAdapter::new(pool.clone()),
            |mut a| black_box(run_sim(&mut a, &jobs, &config).committed),
            BatchSize::SmallInput,
        );
    });
    let dag = layered_dag(4, 4, 2, 5);
    let dag_jobs = dag_access_jobs(&dag, 30, 2, 5);
    group.bench_function("ddag", |b| {
        b.iter_batched(
            || DdagAdapter::new(dag.universe.clone(), dag.graph.clone()),
            |mut a| black_box(run_sim(&mut a, &dag_jobs, &config).committed),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_trace_verification(c: &mut Criterion) {
    // Post-hoc verification cost for a realistic trace.
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 50, 3, 9);
    let mut adapter = TwoPhaseAdapter::new(pool.clone());
    let initial = adapter.initial_state();
    let report = run_sim(
        &mut adapter,
        &jobs,
        &SimConfig {
            workers: 4,
            ..Default::default()
        },
    );
    let trace = report.schedule;
    c.bench_function("verify_trace_legal_proper_serializable", |b| {
        b.iter(|| {
            black_box(
                trace.is_legal() && trace.is_proper(&initial) && slp_core::is_serializable(&trace),
            )
        });
    });
}

criterion_group!(benches, bench_policy_runs, bench_trace_verification);
criterion_main!(benches);
