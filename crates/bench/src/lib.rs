//! # slp-bench — the paper's experiment harness
//!
//! One module per experiment of DESIGN.md §3; each `run()` regenerates the
//! corresponding figure or table of the paper (or of its validation /
//! performance substitution) and returns the report as text. The
//! `paper-experiments` binary prints them; the integration tests assert
//! their key claims.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`experiments::e0`] | §2 proper/improper interleavings |
//! | [`experiments::e1`] | Fig. 1 canonical serialization-graph shapes |
//! | [`experiments::e2`] | Fig. 2 chordless-cycle counterexample |
//! | [`experiments::e3`] | Fig. 3 DDAG walkthrough |
//! | [`experiments::e4`] | Fig. 4 altruistic-locking walkthrough |
//! | [`experiments::e5`] | Fig. 5 dynamic-tree walkthrough |
//! | [`experiments::e6`] | Theorem 1 cross-validation table |
//! | [`experiments::e7`] | Theorems 2–4 policy-safety + mutant ablations |
//! | [`experiments::e8`] | Lemmas 1–2 transformation-invariance table |
//! | [`experiments::e9`] | \[CHMS94\]-style performance comparison |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
