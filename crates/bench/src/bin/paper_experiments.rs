//! `paper-experiments` — regenerates every figure and table of the paper
//! (and of the validation/performance substitutions).
//!
//! Usage:
//! ```text
//! paper-experiments all        # run everything, in order
//! paper-experiments e3 e7     # run selected experiments
//! paper-experiments --list    # list experiment ids
//! ```

use slp_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: paper-experiments [--list] <all | e0 e1 ... e9>");
        std::process::exit(if args.is_empty() { 1 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for (i, id) in ids.iter().enumerate() {
        match experiments::run(id) {
            Some(report) => {
                if i > 0 {
                    println!("\n{}\n", "=".repeat(78));
                }
                print!("{report}");
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }
}
