//! Experiment implementations (one module per paper artifact).

pub mod e0;
pub mod e1;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

/// All experiment ids, in order.
pub const ALL: [&str; 10] = ["e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"];

/// Runs the experiment with the given id, returning its report.
pub fn run(id: &str) -> Option<String> {
    match id {
        "e0" => Some(e0::run()),
        "e1" => Some(e1::run()),
        "e2" => Some(e2::run()),
        "e3" => Some(e3::run()),
        "e4" => Some(e4::run()),
        "e5" => Some(e5::run()),
        "e6" => Some(e6::run()),
        "e7" => Some(e7::run()),
        "e8" => Some(e8::run()),
        "e9" => Some(e9::run()),
        _ => None,
    }
}
