//! E5 — Fig. 5: the dynamic tree policy walkthrough.
//!
//! The database forest evolves under the policy's own rules: empty at
//! first (DT0), grown and joined as transactions declare access sets
//! (DT1, DT2), and shrunk by garbage collection once no active
//! transaction's tree-lockedness depends on a node (DT3).

use slp_core::{DataOp, EntityId, TxId};
use slp_graph::Forest;
use slp_policies::dtr::{DtrEngine, DtrViolation};
use std::collections::BTreeMap;
use std::fmt::Write;

fn access() -> Vec<DataOp> {
    vec![DataOp::Read, DataOp::Write]
}

fn render_forest(f: &Forest) -> String {
    let mut out = String::new();
    if f.is_empty() {
        return "  (empty)".to_owned();
    }
    for root in f.roots() {
        write!(out, "  tree rooted at {root}:").unwrap();
        for n in f.tree_nodes(root) {
            match f.parent(n) {
                Some(p) => write!(out, " {n}(parent {p})").unwrap(),
                None => write!(out, " {n}(root)").unwrap(),
            }
        }
        out.push('\n');
    }
    out.pop();
    out
}

/// Regenerates the Fig. 5 walkthrough.
pub fn run() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E5 — Fig. 5: the database forest under the dynamic tree policy\n"
    )
    .unwrap();
    let mut eng = DtrEngine::new();
    let (e1, e2, e3, e4) = (EntityId(1), EntityId(2), EntityId(3), EntityId(4));

    writeln!(out, "DT0 — initially the database forest is empty:").unwrap();
    writeln!(out, "{}", render_forest(eng.forest())).unwrap();

    let ops1 = BTreeMap::from([(e1, access()), (e2, access()), (e3, access())]);
    let plan1 = eng.begin(TxId(1), &ops1).unwrap();
    writeln!(out, "\nDT2 — T1 declares A(T1) = {{e1, e2, e3}} (Fig. 5a):").unwrap();
    writeln!(out, "{}", render_forest(eng.forest())).unwrap();
    writeln!(
        out,
        "T1 is tree-locked with a precomputed {}-step plan",
        plan1.len()
    )
    .unwrap();
    assert_eq!(eng.forest().roots().len(), 1);
    eng.step(TxId(1)).unwrap(); // T1 takes its first lock

    let ops2 = BTreeMap::from([(e3, access()), (e4, access())]);
    let plan2 = eng.begin(TxId(2), &ops2).unwrap();
    writeln!(
        out,
        "\nDT1+DT2 — T2 declares A(T2) = {{e3, e4}}; e4 is joined (Fig. 5b):"
    )
    .unwrap();
    writeln!(out, "{}", render_forest(eng.forest())).unwrap();
    writeln!(out, "T2's plan has {} steps", plan2.len()).unwrap();
    assert!(eng.forest().contains(e4));
    assert_eq!(eng.forest().roots().len(), 1);

    match eng.check_delete(e4) {
        Err(DtrViolation::WouldBreakTreeLocking(tx)) => {
            writeln!(
                out,
                "\nDT3 while T2 is active: deleting e4 would leave {tx} not tree-locked — rejected"
            )
            .unwrap();
        }
        Err(DtrViolation::NodeLocked(n)) => {
            writeln!(
                out,
                "\nDT3 while e4 is locked: node {n} is locked — rejected"
            )
            .unwrap();
        }
        other => panic!("DT3 must reject, got {other:?}"),
    }

    eng.run_to_end(TxId(1)).unwrap();
    eng.finish(TxId(1)).unwrap();
    eng.run_to_end(TxId(2)).unwrap();
    eng.finish(TxId(2)).unwrap();
    writeln!(
        out,
        "\nT1 and T2 run to completion (every plan step validated online)"
    )
    .unwrap();

    eng.delete(e4).unwrap();
    writeln!(out, "\nDT3 after T2 finishes: e4 deleted — remaining transactions (none)\nstay tree-locked w.r.t. G(e4):").unwrap();
    writeln!(out, "{}", render_forest(eng.forest())).unwrap();
    assert!(!eng.forest().contains(e4));

    // A third transaction spanning two separate trees triggers a join.
    let mut eng2 = DtrEngine::new();
    eng2.begin(TxId(10), &BTreeMap::from([(e1, access())]))
        .unwrap();
    eng2.run_to_end(TxId(10)).unwrap();
    eng2.finish(TxId(10)).unwrap();
    eng2.begin(TxId(11), &BTreeMap::from([(e2, access())]))
        .unwrap();
    eng2.run_to_end(TxId(11)).unwrap();
    eng2.finish(TxId(11)).unwrap();
    writeln!(
        out,
        "\nsecond scenario — two single-node trees from T10, T11:"
    )
    .unwrap();
    writeln!(out, "{}", render_forest(eng2.forest())).unwrap();
    assert_eq!(eng2.forest().roots().len(), 2);
    eng2.begin(TxId(12), &BTreeMap::from([(e1, access()), (e2, access())]))
        .unwrap();
    writeln!(
        out,
        "\nT12 spans both trees -> DT1 joins them (edge between the roots):"
    )
    .unwrap();
    writeln!(out, "{}", render_forest(eng2.forest())).unwrap();
    assert_eq!(eng2.forest().roots().len(), 1);
    eng2.run_to_end(TxId(12)).unwrap();
    eng2.finish(TxId(12)).unwrap();
    out
}
