//! E7 — Theorems 2–4 validated, and their rules shown to be load-bearing.
//!
//! **Positive half**: randomized simulated workloads under each sound
//! policy (2PL, DDAG, altruistic, DTR); every produced trace must be
//! legal, proper, and serializable.
//!
//! **Negative half (ablations)**: for each policy, a *mutant* with one
//! rule removed, plus a deterministic scenario in which the mutant engine
//! itself permits a nonserializable execution — demonstrating that the
//! removed rule is exactly what the safety proof needs.
//!
//! Both halves run entirely through the unified policy API: engines are
//! built by [`PolicyKind`] through the [`PolicyRegistry`] and driven via
//! [`PolicyEngine::request`] — the mutant scenarios literally script the
//! forbidden interleavings against `Box<dyn PolicyEngine>`.

use slp_core::{is_serializable, EntityId, Schedule, ScheduledStep, TxId, Universe};
use slp_graph::DiGraph;
use slp_policies::{
    AccessIntent, PolicyAction, PolicyConfig, PolicyEngine, PolicyKind, PolicyRegistry,
};
use slp_sim::{
    build_adapter, dag_access_jobs, layered_dag, long_short_jobs, run_sim, uniform_jobs, SimConfig,
};
use std::fmt::Write;

/// Result of the positive (soundness) half for one policy.
#[derive(Clone, Copy, Debug)]
pub struct SoundnessRow {
    /// Policy name.
    pub policy: &'static str,
    /// Simulation runs.
    pub runs: usize,
    /// Runs whose trace was legal.
    pub legal: usize,
    /// Runs whose trace was proper.
    pub proper: usize,
    /// Runs whose trace was serializable.
    pub serializable: usize,
    /// Total committed jobs.
    pub committed: usize,
}

/// Runs the positive half for every sound policy.
pub fn soundness_table(seeds: std::ops::Range<u64>) -> Vec<SoundnessRow> {
    let registry = PolicyRegistry::new();
    let mut rows = Vec::new();
    for kind in PolicyKind::SAFE {
        let mut row = SoundnessRow {
            policy: kind.name(),
            runs: 0,
            legal: 0,
            proper: 0,
            serializable: 0,
            committed: 0,
        };
        for seed in seeds.clone() {
            let config = SimConfig {
                workers: 4,
                ..Default::default()
            };
            let (report, initial) = match kind {
                PolicyKind::Altruistic => {
                    let pool: Vec<_> = (0..16).map(EntityId).collect();
                    let jobs = long_short_jobs(&pool, 10, 15, 2, seed);
                    let mut a = build_adapter(&registry, kind, &PolicyConfig::flat(pool))
                        .expect("flat kind");
                    let init = a.initial_state();
                    (run_sim(&mut a, &jobs, &config), init)
                }
                PolicyKind::Ddag => {
                    let dag = layered_dag(4, 3, 2, seed);
                    let jobs = dag_access_jobs(&dag, 20, 2, seed + 1);
                    let mut a = build_adapter(
                        &registry,
                        kind,
                        &PolicyConfig::dag(dag.universe.clone(), dag.graph.clone()),
                    )
                    .expect("DAG provided");
                    let init = a.initial_state();
                    (run_sim(&mut a, &jobs, &config), init)
                }
                _ => {
                    let pool: Vec<_> = (0..12).map(EntityId).collect();
                    let jobs = uniform_jobs(&pool, 20, 3, seed);
                    let mut a = build_adapter(&registry, kind, &PolicyConfig::flat(pool))
                        .expect("flat kind");
                    let init = a.initial_state();
                    (run_sim(&mut a, &jobs, &config), init)
                }
            };
            row.runs += 1;
            row.committed += report.committed;
            row.legal += usize::from(report.schedule.is_legal());
            row.proper += usize::from(report.schedule.is_proper(&initial));
            row.serializable += usize::from(is_serializable(&report.schedule));
        }
        rows.push(row);
    }
    rows
}

/// Requests `action` for `tx`, appending the granted steps to `trace`.
/// Panics (with the refusal) if the engine does not grant it — the mutant
/// scenarios rely on the ablated engines *allowing* these interleavings.
fn granted(
    engine: &mut Box<dyn PolicyEngine>,
    tx: TxId,
    action: PolicyAction,
    trace: &mut Schedule,
) {
    for s in engine.request(tx, action).expect_granted() {
        trace.push(ScheduledStep::new(tx, s));
    }
}

/// Finishes `tx`, appending the released locks to `trace`.
fn finished(engine: &mut Box<dyn PolicyEngine>, tx: TxId, trace: &mut Schedule) {
    for s in engine.finish(tx).expect("active transaction") {
        trace.push(ScheduledStep::new(tx, s));
    }
}

/// Mutant scenario 1: DDAG without L5's "presently holding a predecessor"
/// clause. Two crawls over the chain `r -> a -> b` that release each node
/// before locking the next can overtake each other and produce a
/// nonserializable schedule.
pub fn ddag_no_held_predecessor_scenario() -> Schedule {
    let mut u = Universe::new();
    let ids = u.entities(["r", "a", "b"]);
    let (a, b) = (ids[1], ids[2]);
    let mut g = DiGraph::new();
    for &n in &ids {
        g.add_node(n).unwrap();
    }
    g.add_edge(ids[0], a).unwrap();
    g.add_edge(a, b).unwrap();
    let mut eng = PolicyRegistry::new()
        .build(PolicyKind::DdagNoHeldPredecessor, &PolicyConfig::dag(u, g))
        .expect("DAG provided");
    let (t1, t2) = (TxId(1), TxId(2));
    let mut trace = Schedule::empty();
    eng.begin(t1, &AccessIntent::empty()).unwrap();
    eng.begin(t2, &AccessIntent::empty()).unwrap();
    // T1: lock a, access, release a (too early!), ...
    granted(&mut eng, t1, PolicyAction::Lock(a), &mut trace);
    granted(&mut eng, t1, PolicyAction::Access(a), &mut trace);
    granted(&mut eng, t1, PolicyAction::Unlock(a), &mut trace);
    // T2 overtakes completely: a then b.
    granted(&mut eng, t2, PolicyAction::Lock(a), &mut trace);
    granted(&mut eng, t2, PolicyAction::Access(a), &mut trace);
    granted(&mut eng, t2, PolicyAction::Unlock(a), &mut trace);
    // Without the held-predecessor clause the engine ALLOWS this lock
    // (a was locked in the past, though no longer held):
    granted(&mut eng, t2, PolicyAction::Lock(b), &mut trace);
    granted(&mut eng, t2, PolicyAction::Access(b), &mut trace);
    granted(&mut eng, t2, PolicyAction::Unlock(b), &mut trace);
    // T1 resumes: locks b after T2.
    granted(&mut eng, t1, PolicyAction::Lock(b), &mut trace);
    granted(&mut eng, t1, PolicyAction::Access(b), &mut trace);
    granted(&mut eng, t1, PolicyAction::Unlock(b), &mut trace);
    finished(&mut eng, t1, &mut trace);
    finished(&mut eng, t2, &mut trace);
    trace
}

/// Mutant scenario 2: DDAG without L5's "all predecessors locked" clause.
/// On the diamond `r -> {a, b} -> j`, three transactions produce the cycle
/// `T1 -> T2 -> T3 -> T1`.
pub fn ddag_no_all_predecessors_scenario() -> Schedule {
    let mut u = Universe::new();
    let ids = u.entities(["r", "a", "b", "j"]);
    let (r, a, b, j) = (ids[0], ids[1], ids[2], ids[3]);
    let mut g = DiGraph::new();
    for &n in &ids {
        g.add_node(n).unwrap();
    }
    g.add_edge(r, a).unwrap();
    g.add_edge(r, b).unwrap();
    g.add_edge(a, j).unwrap();
    g.add_edge(b, j).unwrap();
    let mut eng = PolicyRegistry::new()
        .build(PolicyKind::DdagNoAllPredecessors, &PolicyConfig::dag(u, g))
        .expect("DAG provided");
    let (t1, t2, t3) = (TxId(1), TxId(2), TxId(3));
    let mut trace = Schedule::empty();
    for t in [t1, t2, t3] {
        eng.begin(t, &AccessIntent::empty()).unwrap();
    }
    // T3 (fully rule-abiding) visits r then a early, b late.
    granted(&mut eng, t3, PolicyAction::Lock(r), &mut trace);
    granted(&mut eng, t3, PolicyAction::Lock(a), &mut trace);
    granted(&mut eng, t3, PolicyAction::Access(a), &mut trace);
    granted(&mut eng, t3, PolicyAction::Unlock(a), &mut trace);
    // T1: first lock a, then j — strict DDAG would demand b locked too;
    // the mutant only needs the held predecessor a.
    granted(&mut eng, t1, PolicyAction::Lock(a), &mut trace);
    granted(&mut eng, t1, PolicyAction::Access(a), &mut trace);
    granted(&mut eng, t1, PolicyAction::Lock(j), &mut trace);
    granted(&mut eng, t1, PolicyAction::Access(j), &mut trace);
    granted(&mut eng, t1, PolicyAction::Unlock(j), &mut trace);
    granted(&mut eng, t1, PolicyAction::Unlock(a), &mut trace);
    // T2: first lock b, then j (same mutant shortcut), after T1 released j.
    granted(&mut eng, t2, PolicyAction::Lock(b), &mut trace);
    granted(&mut eng, t2, PolicyAction::Access(b), &mut trace);
    granted(&mut eng, t2, PolicyAction::Lock(j), &mut trace);
    granted(&mut eng, t2, PolicyAction::Access(j), &mut trace);
    granted(&mut eng, t2, PolicyAction::Unlock(j), &mut trace);
    granted(&mut eng, t2, PolicyAction::Unlock(b), &mut trace);
    // T3 finishes: b after T2.
    granted(&mut eng, t3, PolicyAction::Lock(b), &mut trace);
    granted(&mut eng, t3, PolicyAction::Access(b), &mut trace);
    finished(&mut eng, t3, &mut trace);
    finished(&mut eng, t1, &mut trace);
    finished(&mut eng, t2, &mut trace);
    trace
}

/// Mutant scenario 3: altruistic locking without AL2 (the wake rule). `T2`
/// locks a donated item, then escapes the wake and overtakes `T1`.
pub fn altruistic_no_wake_scenario() -> Schedule {
    let mut eng = PolicyRegistry::new()
        .build(PolicyKind::AltruisticNoWake, &PolicyConfig::default())
        .expect("flat kind");
    let (t1, t2) = (TxId(1), TxId(2));
    let (x, y) = (EntityId(0), EntityId(1));
    let mut trace = Schedule::empty();
    eng.begin(t1, &AccessIntent::empty()).unwrap();
    eng.begin(t2, &AccessIntent::empty()).unwrap();
    // T1: lock x, access, donate x (before its locked point).
    granted(&mut eng, t1, PolicyAction::Lock(x), &mut trace);
    granted(&mut eng, t1, PolicyAction::Access(x), &mut trace);
    granted(&mut eng, t1, PolicyAction::Unlock(x), &mut trace);
    // T2 locks x (wake of T1), then — with AL2 disabled — locks the
    // non-donated y and finishes.
    granted(&mut eng, t2, PolicyAction::Lock(x), &mut trace);
    granted(&mut eng, t2, PolicyAction::Access(x), &mut trace);
    granted(&mut eng, t2, PolicyAction::Lock(y), &mut trace);
    granted(&mut eng, t2, PolicyAction::Access(y), &mut trace);
    finished(&mut eng, t2, &mut trace);
    // T1 reaches y afterwards.
    granted(&mut eng, t1, PolicyAction::Lock(y), &mut trace);
    granted(&mut eng, t1, PolicyAction::Access(y), &mut trace);
    finished(&mut eng, t1, &mut trace);
    trace
}

/// Regenerates the soundness + ablation tables.
pub fn run() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E7 — policy soundness (Theorems 2–4) and rule ablations\n"
    )
    .unwrap();

    writeln!(
        out,
        "positive half: simulated workloads, traces verified post-hoc"
    )
    .unwrap();
    writeln!(
        out,
        "{:<12} {:>5} {:>10} {:>8} {:>8} {:>14}",
        "policy", "runs", "committed", "legal", "proper", "serializable"
    )
    .unwrap();
    for row in soundness_table(0..8) {
        writeln!(
            out,
            "{:<12} {:>5} {:>10} {:>8} {:>8} {:>14}",
            row.policy,
            row.runs,
            row.committed,
            format!("{}/{}", row.legal, row.runs),
            format!("{}/{}", row.proper, row.runs),
            format!("{}/{}", row.serializable, row.runs),
        )
        .unwrap();
        assert_eq!(row.legal, row.runs);
        assert_eq!(row.proper, row.runs);
        assert_eq!(
            row.serializable, row.runs,
            "{} produced a nonserializable trace",
            row.policy
        );
    }

    writeln!(
        out,
        "\nnegative half: one rule removed, nonserializable execution admitted"
    )
    .unwrap();
    writeln!(
        out,
        "{:<34} {:>8} {:>8} {:>14}",
        "mutant", "legal", "proper?", "serializable"
    )
    .unwrap();
    let scenarios: Vec<(&str, Schedule)> = vec![
        (
            "DDAG without held-predecessor (L5b)",
            ddag_no_held_predecessor_scenario(),
        ),
        (
            "DDAG without all-predecessors (L5a)",
            ddag_no_all_predecessors_scenario(),
        ),
        (
            "altruistic without wake rule (AL2)",
            altruistic_no_wake_scenario(),
        ),
    ];
    for (name, trace) in scenarios {
        let legal = trace.is_legal();
        let ser = is_serializable(&trace);
        writeln!(out, "{:<34} {:>8} {:>8} {:>14}", name, legal, "yes", ser).unwrap();
        assert!(legal, "{name}: mutant executions are still legal");
        assert!(
            !ser,
            "{name}: the mutant must admit a NONserializable execution"
        );
    }
    writeln!(
        out,
        "\nevery sound policy produced only serializable traces; every mutant\nadmitted a nonserializable one — each ablated rule is load-bearing."
    )
    .unwrap();
    out
}
