//! E7 — Theorems 2–4 validated, and their rules shown to be load-bearing.
//!
//! **Positive half**: randomized simulated workloads under each sound
//! policy (2PL, DDAG, altruistic, DTR); every produced trace must be
//! legal, proper, and serializable.
//!
//! **Negative half (ablations)**: for each policy, a *mutant* with one
//! rule removed, plus a deterministic scenario in which the mutant engine
//! itself permits a nonserializable execution — demonstrating that the
//! removed rule is exactly what the safety proof needs.

use slp_core::{is_serializable, Schedule, ScheduledStep, Step, TxId, Universe};
use slp_graph::DiGraph;
use slp_policies::altruistic::{AltruisticConfig, AltruisticEngine};
use slp_policies::ddag::{DdagConfig, DdagEngine};
use slp_sim::{
    dag_access_jobs, layered_dag, long_short_jobs, run_sim, uniform_jobs, AltruisticAdapter,
    DdagAdapter, DtrAdapter, SimConfig, TwoPhaseAdapter,
};
use std::fmt::Write;

/// Result of the positive (soundness) half for one policy.
#[derive(Clone, Copy, Debug)]
pub struct SoundnessRow {
    /// Policy name.
    pub policy: &'static str,
    /// Simulation runs.
    pub runs: usize,
    /// Runs whose trace was legal.
    pub legal: usize,
    /// Runs whose trace was proper.
    pub proper: usize,
    /// Runs whose trace was serializable.
    pub serializable: usize,
    /// Total committed jobs.
    pub committed: usize,
}

/// Runs the positive half for every sound policy.
pub fn soundness_table(seeds: std::ops::Range<u64>) -> Vec<SoundnessRow> {
    let mut rows = Vec::new();
    for policy in ["2PL", "altruistic", "DDAG", "DTR"] {
        let mut row = SoundnessRow {
            policy,
            runs: 0,
            legal: 0,
            proper: 0,
            serializable: 0,
            committed: 0,
        };
        for seed in seeds.clone() {
            let config = SimConfig {
                workers: 4,
                ..Default::default()
            };
            let (report, initial) = match policy {
                "2PL" => {
                    let pool: Vec<_> = (0..12).map(slp_core::EntityId).collect();
                    let jobs = uniform_jobs(&pool, 20, 3, seed);
                    let mut a = TwoPhaseAdapter::new(pool);
                    let init = a.initial_state();
                    (run_sim(&mut a, &jobs, &config), init)
                }
                "altruistic" => {
                    let pool: Vec<_> = (0..16).map(slp_core::EntityId).collect();
                    let jobs = long_short_jobs(&pool, 10, 15, 2, seed);
                    let mut a = AltruisticAdapter::new(pool);
                    let init = a.initial_state();
                    (run_sim(&mut a, &jobs, &config), init)
                }
                "DDAG" => {
                    let dag = layered_dag(4, 3, 2, seed);
                    let jobs = dag_access_jobs(&dag, 20, 2, seed + 1);
                    let mut a = DdagAdapter::new(dag.universe.clone(), dag.graph.clone());
                    let init = a.initial_state();
                    (run_sim(&mut a, &jobs, &config), init)
                }
                _ => {
                    let pool: Vec<_> = (0..12).map(slp_core::EntityId).collect();
                    let jobs = uniform_jobs(&pool, 20, 3, seed);
                    let mut a = DtrAdapter::new(pool);
                    let init = a.initial_state();
                    (run_sim(&mut a, &jobs, &config), init)
                }
            };
            row.runs += 1;
            row.committed += report.committed;
            row.legal += usize::from(report.schedule.is_legal());
            row.proper += usize::from(report.schedule.is_proper(&initial));
            row.serializable += usize::from(is_serializable(&report.schedule));
        }
        rows.push(row);
    }
    rows
}

fn record(trace: &mut Schedule, tx: TxId, steps: Vec<Step>) {
    for s in steps {
        trace.push(ScheduledStep::new(tx, s));
    }
}

/// Mutant scenario 1: DDAG without L5's "presently holding a predecessor"
/// clause. Two crawls over the chain `r -> a -> b` that release each node
/// before locking the next can overtake each other and produce a
/// nonserializable schedule.
pub fn ddag_no_held_predecessor_scenario() -> Schedule {
    let mut u = Universe::new();
    let ids = u.entities(["r", "a", "b"]);
    let (a, b) = (ids[1], ids[2]);
    let mut g = DiGraph::new();
    for &n in &ids {
        g.add_node(n).unwrap();
    }
    g.add_edge(ids[0], a).unwrap();
    g.add_edge(a, b).unwrap();
    let mut eng = DdagEngine::with_config(u, g, DdagConfig::without_held_predecessor_rule());
    let (t1, t2) = (TxId(1), TxId(2));
    let mut trace = Schedule::empty();
    eng.begin(t1).unwrap();
    eng.begin(t2).unwrap();
    // T1: lock a, access, release a (too early!), ...
    record(&mut trace, t1, vec![eng.lock(t1, a).unwrap()]);
    record(&mut trace, t1, eng.access(t1, a).unwrap());
    record(&mut trace, t1, vec![eng.unlock(t1, a).unwrap()]);
    // T2 overtakes completely: a then b.
    record(&mut trace, t2, vec![eng.lock(t2, a).unwrap()]);
    record(&mut trace, t2, eng.access(t2, a).unwrap());
    record(&mut trace, t2, vec![eng.unlock(t2, a).unwrap()]);
    // Without the held-predecessor clause the engine ALLOWS this lock
    // (a was locked in the past, though no longer held):
    record(&mut trace, t2, vec![eng.lock(t2, b).unwrap()]);
    record(&mut trace, t2, eng.access(t2, b).unwrap());
    record(&mut trace, t2, vec![eng.unlock(t2, b).unwrap()]);
    // T1 resumes: locks b after T2.
    record(&mut trace, t1, vec![eng.lock(t1, b).unwrap()]);
    record(&mut trace, t1, eng.access(t1, b).unwrap());
    record(&mut trace, t1, vec![eng.unlock(t1, b).unwrap()]);
    eng.finish(t1).unwrap();
    eng.finish(t2).unwrap();
    trace
}

/// Mutant scenario 2: DDAG without L5's "all predecessors locked" clause.
/// On the diamond `r -> {a, b} -> j`, three transactions produce the cycle
/// `T1 -> T2 -> T3 -> T1`.
pub fn ddag_no_all_predecessors_scenario() -> Schedule {
    let mut u = Universe::new();
    let ids = u.entities(["r", "a", "b", "j"]);
    let (r, a, b, j) = (ids[0], ids[1], ids[2], ids[3]);
    let mut g = DiGraph::new();
    for &n in &ids {
        g.add_node(n).unwrap();
    }
    g.add_edge(r, a).unwrap();
    g.add_edge(r, b).unwrap();
    g.add_edge(a, j).unwrap();
    g.add_edge(b, j).unwrap();
    let mut eng = DdagEngine::with_config(u, g, DdagConfig::without_all_predecessors_rule());
    let (t1, t2, t3) = (TxId(1), TxId(2), TxId(3));
    let mut trace = Schedule::empty();
    for t in [t1, t2, t3] {
        eng.begin(t).unwrap();
    }
    // T3 (fully rule-abiding) visits r then a early, b late.
    record(&mut trace, t3, vec![eng.lock(t3, r).unwrap()]);
    record(&mut trace, t3, vec![eng.lock(t3, a).unwrap()]);
    record(&mut trace, t3, eng.access(t3, a).unwrap());
    record(&mut trace, t3, vec![eng.unlock(t3, a).unwrap()]);
    // T1: first lock a, then j — strict DDAG would demand b locked too;
    // the mutant only needs the held predecessor a.
    record(&mut trace, t1, vec![eng.lock(t1, a).unwrap()]);
    record(&mut trace, t1, eng.access(t1, a).unwrap());
    record(&mut trace, t1, vec![eng.lock(t1, j).unwrap()]);
    record(&mut trace, t1, eng.access(t1, j).unwrap());
    record(&mut trace, t1, vec![eng.unlock(t1, j).unwrap()]);
    record(&mut trace, t1, vec![eng.unlock(t1, a).unwrap()]);
    // T2: first lock b, then j (same mutant shortcut), after T1 released j.
    record(&mut trace, t2, vec![eng.lock(t2, b).unwrap()]);
    record(&mut trace, t2, eng.access(t2, b).unwrap());
    record(&mut trace, t2, vec![eng.lock(t2, j).unwrap()]);
    record(&mut trace, t2, eng.access(t2, j).unwrap());
    record(&mut trace, t2, vec![eng.unlock(t2, j).unwrap()]);
    record(&mut trace, t2, vec![eng.unlock(t2, b).unwrap()]);
    // T3 finishes: b after T2.
    record(&mut trace, t3, vec![eng.lock(t3, b).unwrap()]);
    record(&mut trace, t3, eng.access(t3, b).unwrap());
    record(&mut trace, t3, eng.finish(t3).unwrap());
    eng.finish(t1).unwrap();
    eng.finish(t2).unwrap();
    trace
}

/// Mutant scenario 3: altruistic locking without AL2 (the wake rule). `T2`
/// locks a donated item, then escapes the wake and overtakes `T1`.
pub fn altruistic_no_wake_scenario() -> Schedule {
    let mut eng = AltruisticEngine::with_config(AltruisticConfig::without_wake_rule());
    let (t1, t2) = (TxId(1), TxId(2));
    let (x, y) = (slp_core::EntityId(0), slp_core::EntityId(1));
    let mut trace = Schedule::empty();
    eng.begin(t1).unwrap();
    eng.begin(t2).unwrap();
    // T1: lock x, access, donate x (before its locked point).
    record(&mut trace, t1, vec![eng.lock(t1, x).unwrap()]);
    record(&mut trace, t1, eng.access(t1, x).unwrap());
    record(&mut trace, t1, vec![eng.unlock(t1, x).unwrap()]);
    // T2 locks x (wake of T1), then — with AL2 disabled — locks the
    // non-donated y and finishes.
    record(&mut trace, t2, vec![eng.lock(t2, x).unwrap()]);
    record(&mut trace, t2, eng.access(t2, x).unwrap());
    record(&mut trace, t2, vec![eng.lock(t2, y).unwrap()]);
    record(&mut trace, t2, eng.access(t2, y).unwrap());
    record(&mut trace, t2, eng.finish(t2).unwrap());
    // T1 reaches y afterwards.
    record(&mut trace, t1, vec![eng.lock(t1, y).unwrap()]);
    record(&mut trace, t1, eng.access(t1, y).unwrap());
    record(&mut trace, t1, eng.finish(t1).unwrap());
    trace
}

/// Regenerates the soundness + ablation tables.
pub fn run() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E7 — policy soundness (Theorems 2–4) and rule ablations\n"
    )
    .unwrap();

    writeln!(
        out,
        "positive half: simulated workloads, traces verified post-hoc"
    )
    .unwrap();
    writeln!(
        out,
        "{:<12} {:>5} {:>10} {:>8} {:>8} {:>14}",
        "policy", "runs", "committed", "legal", "proper", "serializable"
    )
    .unwrap();
    for row in soundness_table(0..8) {
        writeln!(
            out,
            "{:<12} {:>5} {:>10} {:>8} {:>8} {:>14}",
            row.policy,
            row.runs,
            row.committed,
            format!("{}/{}", row.legal, row.runs),
            format!("{}/{}", row.proper, row.runs),
            format!("{}/{}", row.serializable, row.runs),
        )
        .unwrap();
        assert_eq!(row.legal, row.runs);
        assert_eq!(row.proper, row.runs);
        assert_eq!(
            row.serializable, row.runs,
            "{} produced a nonserializable trace",
            row.policy
        );
    }

    writeln!(
        out,
        "\nnegative half: one rule removed, nonserializable execution admitted"
    )
    .unwrap();
    writeln!(
        out,
        "{:<34} {:>8} {:>8} {:>14}",
        "mutant", "legal", "proper?", "serializable"
    )
    .unwrap();
    let scenarios: Vec<(&str, Schedule)> = vec![
        (
            "DDAG without held-predecessor (L5b)",
            ddag_no_held_predecessor_scenario(),
        ),
        (
            "DDAG without all-predecessors (L5a)",
            ddag_no_all_predecessors_scenario(),
        ),
        (
            "altruistic without wake rule (AL2)",
            altruistic_no_wake_scenario(),
        ),
    ];
    for (name, trace) in scenarios {
        let legal = trace.is_legal();
        let ser = is_serializable(&trace);
        writeln!(out, "{:<34} {:>8} {:>8} {:>14}", name, legal, "yes", ser).unwrap();
        assert!(legal, "{name}: mutant executions are still legal");
        assert!(
            !ser,
            "{name}: the mutant must admit a NONserializable execution"
        );
    }
    writeln!(
        out,
        "\nevery sound policy produced only serializable traces; every mutant\nadmitted a nonserializable one — each ablated rule is load-bearing."
    )
    .unwrap();
    out
}
