//! E4 — Fig. 4: the altruistic locking walkthrough.
//!
//! `T1` is long-lived over items 1, 2, 3. Once it donates item 1, `T2`
//! locks it and enters `T1`'s wake: until `T1` reaches its locked point,
//! `T2` may lock only items `T1` has donated (rule AL2). When `T1` locks
//! item 3 (its locked point), the wake dissolves.

use slp_core::display::render_schedule;
use slp_core::{EntityId, Schedule, ScheduledStep, TxId};
use slp_policies::altruistic::{AltruisticEngine, AltruisticViolation};
use std::fmt::Write;

/// Regenerates the Fig. 4 walkthrough.
pub fn run() -> String {
    let mut out = String::new();
    writeln!(out, "E4 — Fig. 4: altruistic locking (exclusive locks)\n").unwrap();
    let mut eng = AltruisticEngine::new();
    let (t1, t2) = (TxId(1), TxId(2));
    let items: Vec<EntityId> = (1..=4).map(EntityId).collect();
    let (i1, i2, i3, i4) = (items[0], items[1], items[2], items[3]);
    // Align entity ids 0..=4 with names so the rendering reads like Fig. 4.
    let mut universe = slp_core::Universe::new();
    for i in 0..=4 {
        universe.entity(&format!("{i}"));
    }

    let mut trace = Schedule::empty();
    let push = |tx: TxId, steps: Vec<slp_core::Step>, trace: &mut Schedule| {
        for s in steps {
            trace.push(ScheduledStep::new(tx, s));
        }
    };

    eng.begin(t1).unwrap();
    eng.begin(t2).unwrap();
    push(t1, vec![eng.lock(t1, i1).unwrap()], &mut trace);
    push(t1, eng.access(t1, i1).unwrap(), &mut trace);
    push(t1, vec![eng.lock(t1, i2).unwrap()], &mut trace);
    push(t1, vec![eng.unlock(t1, i1).unwrap()], &mut trace);
    writeln!(out, "T1 locks 1, accesses it, locks 2, and donates item 1").unwrap();

    push(t2, vec![eng.lock(t2, i1).unwrap()], &mut trace);
    push(t2, eng.access(t2, i1).unwrap(), &mut trace);
    assert!(eng.in_wake_of(t2, t1));
    writeln!(out, "T2 locks item 1 -> T2 is in the wake of T1").unwrap();

    match eng.check_lock(t2, i4) {
        Err(AltruisticViolation::OutsideWake { item, .. }) => {
            writeln!(
                out,
                "AL2: T2 may not lock item {} — it is in T1's wake and item {} was\nnot donated by T1",
                item.0, item.0
            )
            .unwrap();
        }
        other => panic!("expected AL2 violation, got {other:?}"),
    }

    push(t1, eng.access(t1, i2).unwrap(), &mut trace);
    push(t1, vec![eng.unlock(t1, i2).unwrap()], &mut trace);
    push(t2, vec![eng.lock(t2, i2).unwrap()], &mut trace);
    push(t2, eng.access(t2, i2).unwrap(), &mut trace);
    writeln!(
        out,
        "T1 donates item 2 as well; T2 (fully in the wake) takes it"
    )
    .unwrap();

    push(t1, vec![eng.lock(t1, i3).unwrap()], &mut trace);
    eng.declare_locked_point(t1).unwrap();
    assert!(!eng.in_wake_of(t2, t1));
    writeln!(
        out,
        "T1 locks item 3 — its locked point: T2 is no longer in the wake"
    )
    .unwrap();

    push(t2, vec![eng.lock(t2, i4).unwrap()], &mut trace);
    push(t2, eng.access(t2, i4).unwrap(), &mut trace);
    writeln!(out, "T2 now locks item 4 freely").unwrap();

    push(t1, eng.access(t1, i3).unwrap(), &mut trace);
    push(t1, eng.finish(t1).unwrap(), &mut trace);
    push(t2, eng.finish(t2).unwrap(), &mut trace);

    writeln!(out, "\nthe complete schedule:").unwrap();
    write!(out, "{}", render_schedule(&trace, &universe)).unwrap();
    assert!(trace.is_legal());
    assert!(
        slp_core::is_serializable(&trace),
        "altruistic schedules are serializable (Theorem 3)"
    );
    let order = slp_core::serializability::serialization_order(&trace).unwrap();
    writeln!(
        out,
        "\nlegal ✓  serializable ✓ — equivalent serial order: {order:?}"
    )
    .unwrap();
    writeln!(
        out,
        "note: T2 ran entirely in T1's wake, so it serializes AFTER T1 even\nthough T1 was still running — the altruism that helps long transactions."
    )
    .unwrap();
    out
}
