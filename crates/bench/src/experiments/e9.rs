//! E9 — the \[CHMS94\] substitution: quantitative policy comparison.
//!
//! The paper's companion study evaluated the DDAG policy's transaction
//! facility on a knowledge-base management system. This experiment
//! regenerates the comparison *shape* on the discrete-event simulator
//! (DESIGN.md §5): who wins, by roughly what factor, and where the
//! crossovers are — across multiprogramming level, transaction length,
//! structural-update mix, and (section d) a large-contention regime.
//!
//! Every policy is selected by [`PolicyKind`] and constructed through the
//! [`PolicyRegistry`] — no engine is hand-wired.

use slp_core::{is_serializable, EntityId};
use slp_policies::{PolicyConfig, PolicyKind, PolicyRegistry};
use slp_sim::{
    build_adapter, dag_access_jobs, dag_mixed_jobs, deep_dag_jobs, hot_cold_jobs, layered_dag,
    long_short_jobs, run_sim, uniform_jobs, SimConfig, SimReport,
};
use std::fmt::Write;

/// The flat-pool config over entity ids `0..n`.
fn flat_pool(n: u32) -> PolicyConfig {
    PolicyConfig::flat((0..n).map(EntityId).collect())
}

/// E9a: throughput and response vs multiprogramming level on a shared
/// 3-target workload (flat pool for 2PL/altruistic/DTR; layered DAG for
/// DDAG). Reports come back in [2PL, altruistic, DTR, DDAG] order.
pub fn mpl_sweep(mpls: &[usize], seed: u64) -> Vec<(usize, Vec<SimReport>)> {
    let registry = PolicyRegistry::new();
    let mut rows = Vec::new();
    for &mpl in mpls {
        let config = SimConfig {
            workers: mpl,
            ..Default::default()
        };
        let mut reports = Vec::new();

        let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
        let jobs = uniform_jobs(&pool, 60, 3, seed);
        for kind in [
            PolicyKind::TwoPhase,
            PolicyKind::Altruistic,
            PolicyKind::Dtr,
        ] {
            let mut adapter = build_adapter(&registry, kind, &flat_pool(24)).expect("flat kind");
            reports.push(run_sim(&mut adapter, &jobs, &config));
        }

        let dag = layered_dag(4, 6, 2, seed);
        let dag_jobs = dag_access_jobs(&dag, 60, 2, seed);
        let mut ddag = build_adapter(
            &registry,
            PolicyKind::Ddag,
            &PolicyConfig::dag(dag.universe.clone(), dag.graph.clone()),
        )
        .expect("DAG provided");
        reports.push(run_sim(&mut ddag, &dag_jobs, &config));

        rows.push((mpl, reports));
    }
    rows
}

/// E9b: the altruistic-locking story — mean short-transaction response as
/// the long scan grows.
pub fn scan_length_sweep(lengths: &[usize], seed: u64) -> Vec<(usize, SimReport, SimReport)> {
    let registry = PolicyRegistry::new();
    let mut rows = Vec::new();
    for &len in lengths {
        let pool: Vec<EntityId> = (0..32).map(EntityId).collect();
        let jobs = long_short_jobs(&pool, len, 30, 2, seed);
        let config = SimConfig {
            workers: 6,
            ..Default::default()
        };
        let mut two_phase =
            build_adapter(&registry, PolicyKind::TwoPhase, &flat_pool(32)).expect("flat");
        let r_2pl = run_sim(&mut two_phase, &jobs, &config);
        let mut altruistic =
            build_adapter(&registry, PolicyKind::Altruistic, &flat_pool(32)).expect("flat");
        let r_alt = run_sim(&mut altruistic, &jobs, &config);
        rows.push((len, r_2pl, r_alt));
    }
    rows
}

/// E9c: DDAG under structural churn — abort rate and throughput as the
/// share of insert jobs grows.
pub fn insert_mix_sweep(probs: &[f64], seed: u64) -> Vec<(f64, SimReport)> {
    let registry = PolicyRegistry::new();
    let mut rows = Vec::new();
    for &p in probs {
        let dag = layered_dag(4, 5, 2, seed);
        let mut adapter = build_adapter(
            &registry,
            PolicyKind::Ddag,
            &PolicyConfig::dag(dag.universe.clone(), dag.graph.clone()),
        )
        .expect("DAG provided");
        let jobs = {
            let mut intern = |name: &str| adapter.intern(name).expect("DDAG interns");
            dag_mixed_jobs(&dag, 60, 2, p, &mut intern, seed)
        };
        let config = SimConfig {
            workers: 6,
            ..Default::default()
        };
        let report = run_sim(&mut adapter, &jobs, &config);
        rows.push((p, report));
    }
    rows
}

/// E9d: the large-contention regime (the ROADMAP "simulator-side scale"
/// item): `jobs` hot-set jobs over a 48-entity pool whose touches
/// concentrate on 6 hot entities (2PL / altruistic / DTR), and `jobs`
/// deep-layer traversals on a 6-layer DAG whose dominator regions
/// overlap near the root (DDAG). Every engine's hot path — lock queues,
/// wake bookkeeping, dominator closures, abort/restart — runs at a
/// contention level the small E9a/b/c workloads never reach. Reports come
/// back in [2PL, altruistic, DTR, DDAG] order.
pub fn large_contention(jobs: usize, seed: u64) -> Vec<SimReport> {
    let registry = PolicyRegistry::new();
    let config = SimConfig {
        workers: 8,
        ..Default::default()
    };
    let mut reports = Vec::new();

    let pool: Vec<EntityId> = (0..48).map(EntityId).collect();
    let flat_jobs = hot_cold_jobs(&pool, jobs, 3, 6, 0.8, seed);
    for kind in [
        PolicyKind::TwoPhase,
        PolicyKind::Altruistic,
        PolicyKind::Dtr,
    ] {
        let mut adapter = build_adapter(&registry, kind, &flat_pool(48)).expect("flat kind");
        reports.push(run_sim(&mut adapter, &flat_jobs, &config));
    }

    let dag = layered_dag(6, 5, 2, seed);
    let deep_jobs = deep_dag_jobs(&dag, jobs, 2, seed + 1);
    let mut ddag = build_adapter(
        &registry,
        PolicyKind::Ddag,
        &PolicyConfig::dag(dag.universe.clone(), dag.graph.clone()),
    )
    .expect("DAG provided");
    reports.push(run_sim(&mut ddag, &deep_jobs, &config));
    reports
}

/// Regenerates the E9 performance tables.
pub fn run() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E9 — policy performance comparison ([CHMS94] substitution)\n"
    )
    .unwrap();

    writeln!(
        out,
        "(a) throughput (jobs/kilotick) and mean response vs multiprogramming level"
    )
    .unwrap();
    writeln!(
        out,
        "{:<5} | {:>22} | {:>22} | {:>22} | {:>22}",
        "MPL", "2PL  thr    resp", "altruistic thr  resp", "DTR  thr    resp", "DDAG thr    resp"
    )
    .unwrap();
    for (mpl, reports) in mpl_sweep(&[1, 2, 4, 8], 17) {
        write!(out, "{mpl:<5}").unwrap();
        for r in &reports {
            write!(
                out,
                " | {:>10.2} {:>11.1}",
                r.throughput(),
                r.mean_response()
            )
            .unwrap();
            assert!(!r.timed_out, "{} timed out at MPL {mpl}", r.policy);
            assert!(
                r.committed == 60,
                "{} committed {} != 60",
                r.policy,
                r.committed
            );
        }
        writeln!(out).unwrap();
    }

    writeln!(
        out,
        "\n(b) long scan + short transactions: 2PL vs altruistic"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "scan len", "2PL mksp", "alt mksp", "2PL resp", "alt resp", "2PL aborts", "alt aborts"
    )
    .unwrap();
    let mut altruistic_won_makespan = 0;
    let lengths = [4, 8, 16, 24];
    for (len, r_2pl, r_alt) in scan_length_sweep(&lengths, 23) {
        writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>10.1} {:>10.1} {:>12} {:>12}",
            len,
            r_2pl.makespan,
            r_alt.makespan,
            r_2pl.mean_response(),
            r_alt.mean_response(),
            r_2pl.deadlock_aborts + r_2pl.policy_aborts,
            r_alt.deadlock_aborts + r_alt.policy_aborts,
        )
        .unwrap();
        if r_alt.makespan < r_2pl.makespan {
            altruistic_won_makespan += 1;
        }
    }
    assert!(
        altruistic_won_makespan >= lengths.len() - 1,
        "altruistic locking must finish the mixed workload faster as scans grow"
    );

    writeln!(out, "\n(c) DDAG under structural churn (insert-job share)").unwrap();
    writeln!(
        out,
        "{:<12} {:>10} {:>14} {:>12} {:>12}",
        "insert mix", "committed", "policy aborts", "throughput", "mean resp"
    )
    .unwrap();
    for (p, r) in insert_mix_sweep(&[0.0, 0.1, 0.25, 0.5], 29) {
        writeln!(
            out,
            "{:<12.2} {:>10} {:>14} {:>12.2} {:>12.1}",
            p,
            r.committed,
            r.policy_aborts,
            r.throughput(),
            r.mean_response(),
        )
        .unwrap();
        assert_eq!(r.committed, 60, "all jobs must eventually commit");
    }

    writeln!(
        out,
        "\n(d) large contention: 120 hot-set jobs (48 entities, 6 hot) /\n    120 deep-layer traversals (6-layer DAG), MPL 8, via the registry"
    )
    .unwrap();
    writeln!(
        out,
        "{:<12} {:>9} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "policy", "committed", "waits", "aborts", "makespan", "throughput", "mean resp"
    )
    .unwrap();
    for r in large_contention(120, 31) {
        writeln!(
            out,
            "{:<12} {:>9} {:>8} {:>8} {:>10} {:>12.2} {:>12.1}",
            r.policy,
            r.committed,
            r.lock_waits,
            r.policy_aborts + r.deadlock_aborts,
            r.makespan,
            r.throughput(),
            r.mean_response(),
        )
        .unwrap();
        assert!(
            !r.timed_out,
            "{} timed out under large contention",
            r.policy
        );
        assert_eq!(r.committed, 120, "{}: every job must commit", r.policy);
        assert!(
            r.lock_waits > 0,
            "{}: a contention workload must produce waits",
            r.policy
        );
        assert!(r.schedule.is_legal(), "{}: illegal trace", r.policy);
        assert!(
            is_serializable(&r.schedule),
            "{}: NONSERIALIZABLE trace under contention",
            r.policy
        );
    }

    writeln!(
        out,
        "\nshape notes: altruistic locking finishes the mixed workload faster than\n2PL and the gap grows with scan length (short transactions flow through\nthe scan's wake instead of queueing behind it); its per-job response at\nlong scans shows the cost of rule AL2's restrictiveness (aborted wake\nescapes), exactly the trade-off [SGMS94] and Section 5 discuss. DDAG\nabsorbs structural churn with abort/replan rather than blocking, and\nunder the (d) hot-set regime every policy is wait-dominated while every\ntrace still verifies serializable. Every cell was built through the\npolicy registry."
    )
    .unwrap();
    out
}
