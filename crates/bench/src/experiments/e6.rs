//! E6 — Theorem 1 cross-validation.
//!
//! On randomized small locked transaction systems, the exhaustive
//! explorer (ground truth) and the canonical-schedule search must agree:
//! *unsafe ⇔ a canonical witness exists*. The table also reports the work
//! each decider performed, showing what the theorem's structure buys.

use slp_verifier::{
    find_canonical_witness, random_system, verify_safety, CanonicalBudget, GenParams, SearchBudget,
};
use std::fmt::Write;

/// One row of the agreement table.
#[derive(Clone, Copy, Debug, Default)]
pub struct AgreementRow {
    /// Systems checked.
    pub systems: usize,
    /// Safe verdicts.
    pub safe: usize,
    /// Unsafe verdicts.
    pub unsafe_: usize,
    /// Verdict disagreements (must be zero).
    pub disagreements: usize,
    /// Mean states the exhaustive search visited.
    pub mean_states: f64,
    /// Mean candidates the canonical search enumerated.
    pub mean_candidates: f64,
}

/// Runs one batch of seeds under `params`.
pub fn agreement_batch(params: GenParams, seeds: std::ops::Range<u64>) -> AgreementRow {
    let mut row = AgreementRow::default();
    let mut states = 0usize;
    let mut candidates = 0usize;
    for seed in seeds {
        let system = random_system(params, seed);
        let exhaustive = verify_safety(&system, SearchBudget::default());
        let canonical = find_canonical_witness(&system, CanonicalBudget::default());
        row.systems += 1;
        states += exhaustive.stats().states;
        candidates += canonical.stats().candidates;
        match (exhaustive.is_unsafe(), canonical.witness().is_some()) {
            (true, true) => row.unsafe_ += 1,
            (false, false) => row.safe += 1,
            _ => row.disagreements += 1,
        }
    }
    row.mean_states = states as f64 / row.systems as f64;
    row.mean_candidates = candidates as f64 / row.systems as f64;
    row
}

/// Regenerates the Theorem 1 agreement table.
pub fn run() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E6 — Theorem 1: exhaustive search vs canonical search\n"
    )
    .unwrap();
    writeln!(
        out,
        "{:<26} {:>8} {:>6} {:>8} {:>10} {:>12} {:>14}",
        "system family", "systems", "safe", "unsafe", "disagree", "mean states", "mean candidates"
    )
    .unwrap();

    let families: Vec<(&str, GenParams, std::ops::Range<u64>)> = vec![
        ("3 tx, mixed", GenParams::default(), 0..40),
        (
            "3 tx, structural-heavy",
            GenParams {
                structural_prob: 0.5,
                ..GenParams::default()
            },
            100..140,
        ),
        (
            "2 tx, long",
            GenParams {
                transactions: 2,
                sessions_per_tx: 3,
                ..GenParams::default()
            },
            200..240,
        ),
        (
            "4 tx, short",
            GenParams {
                transactions: 4,
                sessions_per_tx: 1,
                ..GenParams::default()
            },
            300..330,
        ),
        (
            "all two-phase (control)",
            GenParams {
                two_phase_prob: 1.0,
                ..GenParams::default()
            },
            400..430,
        ),
    ];

    let mut total_disagreements = 0;
    for (name, params, seeds) in families {
        let row = agreement_batch(params, seeds);
        total_disagreements += row.disagreements;
        writeln!(
            out,
            "{:<26} {:>8} {:>6} {:>8} {:>10} {:>12.0} {:>14.0}",
            name,
            row.systems,
            row.safe,
            row.unsafe_,
            row.disagreements,
            row.mean_states,
            row.mean_candidates
        )
        .unwrap();
        if name.contains("two-phase") {
            assert_eq!(row.unsafe_, 0, "2PL systems are always safe (condition 1)");
        }
    }
    assert_eq!(
        total_disagreements, 0,
        "Theorem 1 must hold on every system"
    );
    writeln!(
        out,
        "\nzero disagreements — a locked transaction system admits a legal, proper,\nnonserializable schedule iff it admits a canonical one (Theorem 1)."
    )
    .unwrap();
    out
}
