//! E0 — the Section 2 running example: proper vs improper interleavings of
//! `T1 = (I a)(I b)(W c)(I d)` and `T2 = (R a)(D b)(I c)` on the initially
//! empty database.

use slp_core::display::render_schedule;
use slp_core::{Schedule, StructuralState, SystemBuilder, TransactionSystem, TxId};
use std::fmt::Write;

fn system() -> TransactionSystem {
    let mut b = SystemBuilder::new();
    b.tx(1)
        .insert("a")
        .insert("b")
        .write("c")
        .insert("d")
        .finish();
    b.tx(2).read("a").delete("b").insert("c").finish();
    b.build()
}

/// The paper's *proper* interleaving: `(I a)(I b)(R a)(D b)(I c)(W c)(I d)`.
pub fn proper_schedule(system: &TransactionSystem) -> Schedule {
    Schedule::interleave(
        system.transactions(),
        &[
            TxId(1),
            TxId(1),
            TxId(2),
            TxId(2),
            TxId(2),
            TxId(1),
            TxId(1),
        ],
    )
    .expect("valid interleaving")
}

/// The paper's *improper* interleaving, which runs `(W c)` before `(I c)`.
pub fn improper_schedule(system: &TransactionSystem) -> Schedule {
    Schedule::interleave(
        system.transactions(),
        &[
            TxId(1),
            TxId(1),
            TxId(1),
            TxId(2),
            TxId(2),
            TxId(2),
            TxId(1),
        ],
    )
    .expect("valid interleaving")
}

/// Regenerates the Section 2 example.
pub fn run() -> String {
    let system = system();
    let g0 = StructuralState::empty();
    let mut out = String::new();
    writeln!(
        out,
        "E0 — Section 2: proper vs improper interleavings (empty initial DB)\n"
    )
    .unwrap();

    let proper = proper_schedule(&system);
    writeln!(out, "interleaving 1:").unwrap();
    write!(out, "{}", render_schedule(&proper, system.universe())).unwrap();
    let verdict = proper.check_proper(&g0);
    writeln!(out, "=> proper: {}", verdict.is_ok()).unwrap();
    assert!(
        verdict.is_ok(),
        "paper's proper interleaving must check out"
    );

    let improper = improper_schedule(&system);
    writeln!(out, "\ninterleaving 2:").unwrap();
    write!(out, "{}", render_schedule(&improper, system.universe())).unwrap();
    match improper.check_proper(&g0) {
        Ok(_) => panic!("paper's improper interleaving must fail"),
        Err(v) => writeln!(out, "=> improper: {v}").unwrap(),
    }

    // Neither transaction alone is proper — "execution of either
    // transaction by itself would not be proper".
    for t in system.transactions() {
        let alone = Schedule::serial([t]);
        writeln!(out, "\n{} alone: proper = {}", t.id, alone.is_proper(&g0)).unwrap();
        assert!(!alone.is_proper(&g0));
    }
    out
}
