//! E2 — Fig. 2: why the static chordless-cycle characterization fails for
//! dynamic databases.
//!
//! Three transactions in a circular insert-dependency: `T1` inserts `a`
//! (which `T2` needs), `T2` inserts `b` (which `T3` needs), `T3` inserts
//! `c` (which `T1` needs). Then:
//!
//! * a proper, legal, **nonserializable** 3-transaction schedule `Sp`
//!   exists;
//! * the interaction graph has ≥ 2 conflicting step pairs between every
//!   two transactions, so its only chordless cycles have two nodes;
//! * **no** complete schedule of only two of the three transactions is
//!   proper (one of the two would access an entity that never exists);
//!
//! hence restricting attention to chordless-cycle subsystems (sound for
//! static databases) would wrongly pronounce the system safe.

use slp_core::display::render_schedule;
use slp_core::{
    is_serializable, InteractionGraph, Schedule, SerializationGraph, SystemBuilder,
    TransactionSystem, TxId,
};
use slp_verifier::{verify_safety, SearchBudget};
use std::fmt::Write;

/// The Fig. 2 transaction system (initially empty database).
pub fn fig2_system() -> TransactionSystem {
    let mut b = SystemBuilder::new();
    b.tx(1)
        .lx("a")
        .insert("a")
        .ux("a")
        .lx("c")
        .read("c")
        .ux("c")
        .finish();
    b.tx(2)
        .lx("a")
        .read("a")
        .ux("a")
        .lx("b")
        .insert("b")
        .ux("b")
        .finish();
    b.tx(3)
        .lx("b")
        .read("b")
        .ux("b")
        .lx("c")
        .insert("c")
        .ux("c")
        .finish();
    b.build()
}

/// The proper, legal, nonserializable schedule `Sp`.
pub fn sp(system: &TransactionSystem) -> Schedule {
    let (t1, t2, t3) = (TxId(1), TxId(2), TxId(3));
    Schedule::interleave(
        system.transactions(),
        &[
            t1, t1, t1, // (LX a)(I a)(UX a)
            t2, t2, t2, t2, t2, t2, // all of T2
            t3, t3, t3, t3, t3, t3, // all of T3
            t1, t1, t1, // (LX c)(R c)(UX c)
        ],
    )
    .expect("valid interleaving")
}

/// Regenerates the Fig. 2 analysis.
pub fn run() -> String {
    let system = fig2_system();
    let g0 = system.initial_state();
    let mut out = String::new();
    writeln!(
        out,
        "E2 — Fig. 2: a proper schedule the static characterization misses\n"
    )
    .unwrap();

    let sp = sp(&system);
    writeln!(out, "the schedule Sp:").unwrap();
    write!(out, "{}", render_schedule(&sp, system.universe())).unwrap();
    assert!(sp.is_legal(), "Sp is legal");
    assert!(sp.is_proper(g0), "Sp is proper");
    assert!(!is_serializable(&sp), "Sp is nonserializable");
    let d = SerializationGraph::of(&sp);
    writeln!(out, "\nlegal ✓  proper ✓  serializable ✗ — {d}").unwrap();
    writeln!(out, "cycle: {:?}", d.find_cycle().expect("cycle exists")).unwrap();

    // Interaction graph analysis.
    let ig = InteractionGraph::of(system.transactions());
    writeln!(out, "\n{ig}").unwrap();
    let cycles = ig.chordless_cycles();
    writeln!(out, "chordless cycles: {cycles:?}").unwrap();
    assert!(
        cycles.iter().all(|c| c.len() == 2),
        "only two-node chordless cycles (parallel edges everywhere)"
    );

    // No 2-transaction subsystem admits any proper complete schedule, so a
    // chordless-cycle-restricted analysis would find nothing and declare
    // the system safe...
    writeln!(
        out,
        "\nper-pair analysis (the static method would stop here):"
    )
    .unwrap();
    let ids = system.ids();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let pair = vec![
                system.get(ids[i]).unwrap().clone(),
                system.get(ids[j]).unwrap().clone(),
            ];
            let sub = slp_core::TransactionSystem::new(system.universe().clone(), g0.clone(), pair);
            let verdict = verify_safety(&sub, SearchBudget::default());
            writeln!(
                out,
                "  {{{}, {}}}: unsafe = {} (no proper nonserializable completion exists)",
                ids[i],
                ids[j],
                verdict.is_unsafe()
            )
            .unwrap();
            assert!(
                verdict.is_safe(),
                "every 2-transaction subsystem is (vacuously) safe"
            );
        }
    }

    // ... but the full system is unsafe.
    let verdict = verify_safety(&system, SearchBudget::default());
    assert!(verdict.is_unsafe(), "the 3-transaction system is unsafe");
    writeln!(
        out,
        "\nfull 3-transaction system: unsafe = {} — the schedule above is the witness\nthe chordless-cycle restriction would have missed (hence Theorem 1's more\ncomplex characterization).",
        verdict.is_unsafe()
    )
    .unwrap();
    out
}
