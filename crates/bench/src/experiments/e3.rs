//! E3 — Fig. 3: the DDAG policy walkthrough.
//!
//! Database: the chain `1 -> 2 -> 3 -> 4`. `T1` starts at node 2, locks 3
//! and 4, and releases early; `T2` follows in its wake. When `T1` instead
//! inserts the edge `(2, 4)`, node 2 becomes a predecessor of 4 in the
//! *current* graph, so rule L5 blocks `T2`'s lock of 4 — `T2` must abort
//! and restart from node 2.

use slp_core::display::render_schedule;
use slp_core::{EntityId, Schedule, ScheduledStep, TxId, Universe};
use slp_graph::DiGraph;
use slp_policies::ddag::{DdagEngine, DdagViolation};
use std::fmt::Write;

/// Builds the Fig. 3 chain and engine.
pub fn fig3_engine() -> (DdagEngine, Vec<EntityId>) {
    let mut u = Universe::new();
    let ids = u.entities(["1", "2", "3", "4"]);
    let mut g = DiGraph::new();
    for &n in &ids {
        g.add_node(n).unwrap();
    }
    g.add_edge(ids[0], ids[1]).unwrap();
    g.add_edge(ids[1], ids[2]).unwrap();
    g.add_edge(ids[2], ids[3]).unwrap();
    (DdagEngine::new(u, g), ids)
}

/// Regenerates the Fig. 3 walkthrough.
pub fn run() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E3 — Fig. 3: the DDAG policy on the chain 1 -> 2 -> 3 -> 4\n"
    )
    .unwrap();

    // Part 1: the interleaving without the edge insert — T2 follows T1.
    let (mut eng, ids) = fig3_engine();
    let (n2, n3, n4) = (ids[1], ids[2], ids[3]);
    let (t1, t2) = (TxId(1), TxId(2));
    let mut trace = Schedule::empty();
    let log = |tx: TxId, steps: Vec<slp_core::Step>, trace: &mut Schedule| {
        for s in steps {
            trace.push(ScheduledStep::new(tx, s));
        }
    };
    eng.begin(t1).unwrap();
    log(t1, vec![eng.lock(t1, n2).unwrap()], &mut trace); // L4
    log(t1, eng.access(t1, n2).unwrap(), &mut trace);
    log(t1, vec![eng.lock(t1, n3).unwrap()], &mut trace); // L5
    log(t1, vec![eng.lock(t1, n4).unwrap()], &mut trace); // L5
    log(t1, vec![eng.unlock(t1, n3).unwrap()], &mut trace);
    eng.begin(t2).unwrap();
    log(t2, vec![eng.lock(t2, n3).unwrap()], &mut trace);
    log(t2, eng.access(t2, n3).unwrap(), &mut trace);
    log(t1, vec![eng.unlock(t1, n4).unwrap()], &mut trace);
    log(t2, vec![eng.lock(t2, n4).unwrap()], &mut trace);
    log(t2, eng.access(t2, n4).unwrap(), &mut trace);
    log(t1, eng.finish(t1).unwrap(), &mut trace);
    log(t2, eng.finish(t2).unwrap(), &mut trace);
    writeln!(
        out,
        "without the edge insert — T2 follows T1 down the chain:"
    )
    .unwrap();
    write!(out, "{}", render_schedule(&trace, eng.universe())).unwrap();
    assert!(trace.is_legal());
    assert!(slp_core::is_serializable(&trace));
    writeln!(out, "trace: legal ✓ serializable ✓\n").unwrap();

    // Part 2: T1 inserts edge (2, 4); T2 must abort.
    let (mut eng, ids) = fig3_engine();
    let (n2, n3, n4) = (ids[1], ids[2], ids[3]);
    eng.begin(t1).unwrap();
    eng.lock(t1, n2).unwrap();
    eng.lock(t1, n3).unwrap();
    eng.lock(t1, n4).unwrap();
    eng.unlock(t1, n3).unwrap();
    let edge_steps = eng.insert_edge(t1, n2, n4).unwrap();
    writeln!(
        out,
        "with T1 inserting edge (2,4) while holding 2 and 4 (rule L1):"
    )
    .unwrap();
    writeln!(
        out,
        "  T1 emits {} steps for the edge entity",
        edge_steps.len()
    )
    .unwrap();
    eng.begin(t2).unwrap();
    eng.lock(t2, n3).unwrap();
    eng.unlock(t1, n4).unwrap();
    match eng.check_lock(t2, n4) {
        Err(DdagViolation::PredecessorsNotLocked(tx, n)) => {
            writeln!(
                out,
                "  {tx} cannot lock node {}: node 2 is now a predecessor of 4 in the\n  current graph (L5 refers to the PRESENT state) and T2 never locked it",
                eng.universe().name(n)
            )
            .unwrap();
        }
        other => panic!("expected L5 violation, got {other:?}"),
    }
    let released = eng.abort(t2);
    writeln!(
        out,
        "  T2 aborts (releases {} lock) and must restart from node 2",
        released.len()
    )
    .unwrap();
    eng.begin(TxId(3)).unwrap();
    match eng.check_lock(TxId(3), n2) {
        Err(DdagViolation::LockConflict(_, holder)) => {
            writeln!(out, "  restarted T2 waits for node 2 (held by {holder})").unwrap();
        }
        other => panic!("expected lock conflict, got {other:?}"),
    }
    eng.finish(t1).unwrap();
    assert!(eng.lock(TxId(3), n2).is_ok());
    writeln!(
        out,
        "  after T1 finishes, the restarted T2 proceeds from node 2 ✓"
    )
    .unwrap();
    assert!(eng.is_rooted_dag(), "graph stays a rooted DAG throughout");
    out
}
