//! E1 — Fig. 1: the shapes of serializability graphs of canonical
//! schedules.
//!
//! (a) *Static* databases (Yannakakis): `D(S')` of a canonical schedule is
//! a **simple path** `T'1 -> … -> T'k`, closed into a cycle by the single
//! back edge created when `Tc = T1` locks `A*`.
//!
//! (b) *Dynamic* databases (this paper): `D(S')` need not be a simple
//! path — it can have **multiple sources and multiple sinks**, and `Tc`
//! need not be first (properness may depend on entities inserted by
//! earlier transactions).

use slp_core::canonical::CanonicalWitness;
use slp_core::{
    Schedule, ScheduledStep, SerializationGraph, SystemBuilder, TransactionSystem, TxId,
};
use std::fmt::Write;

/// The static-shape system: a chain of conflicts `T1 -> T2 -> T3`, with
/// `Tc = T1` closing the cycle on `A*`.
pub fn static_shape_system() -> (TransactionSystem, CanonicalWitness) {
    let mut b = SystemBuilder::new();
    b.exists("a1");
    b.exists("a2");
    b.exists("astar");
    // Tc = T1: unlocks a1, later locks A*.
    b.tx(1)
        .lx("a1")
        .write("a1")
        .ux("a1")
        .lx("astar")
        .write("astar")
        .ux("astar")
        .finish();
    // T2: carries the conflict chain from a1 to a2.
    b.tx(2)
        .lx("a1")
        .write("a1")
        .lx("a2")
        .write("a2")
        .ux("a1")
        .ux("a2")
        .finish();
    // T3: the sink — locks and releases A* in a conflicting (exclusive) mode.
    b.tx(3)
        .lx("a2")
        .write("a2")
        .lx("astar")
        .write("astar")
        .ux("a2")
        .ux("astar")
        .finish();
    let system = b.build();

    let t1 = system.get(TxId(1)).unwrap().clone();
    let t2 = system.get(TxId(2)).unwrap().clone();
    let t3 = system.get(TxId(3)).unwrap().clone();
    let mut ext: Vec<ScheduledStep> = Vec::new();
    ext.extend(
        t1.steps[..3]
            .iter()
            .map(|&s| ScheduledStep::new(TxId(1), s)),
    );
    ext.extend(t2.steps.iter().map(|&s| ScheduledStep::new(TxId(2), s)));
    ext.extend(t3.steps.iter().map(|&s| ScheduledStep::new(TxId(3), s)));
    ext.extend(
        t1.steps[3..]
            .iter()
            .map(|&s| ScheduledStep::new(TxId(1), s)),
    );
    let a_star = system.universe().lookup("astar").unwrap();
    let witness = CanonicalWitness {
        tc: TxId(1),
        a_star,
        lock_pos: 3,
        order: vec![
            (TxId(1), 3),
            (TxId(2), t2.steps.len()),
            (TxId(3), t3.steps.len()),
        ],
        extension: Schedule::from_steps(ext),
    };
    (system, witness)
}

/// The dynamic-shape system: `Tc = T2` (not first — it reads the entity
/// `b` that `T1` inserts), and two shared-mode readers `T3`, `T4` are both
/// sinks of `D(S')`.
pub fn dynamic_shape_system() -> (TransactionSystem, CanonicalWitness) {
    let mut b = SystemBuilder::new();
    b.exists("astar");
    // T1: inserts b (so Tc's prefix is only proper after T1 runs).
    b.tx(1).lx("b").insert("b").ux("b").finish();
    // Tc = T2: writes b, releases it, then locks A* exclusively.
    b.tx(2)
        .lx("b")
        .write("b")
        .ux("b")
        .lx("astar")
        .write("astar")
        .ux("astar")
        .finish();
    // T3, T4: read b (conflict with T2's write) and share-lock A*.
    b.tx(3)
        .ls("b")
        .read("b")
        .us("b")
        .ls("astar")
        .read("astar")
        .us("astar")
        .finish();
    b.tx(4)
        .ls("b")
        .read("b")
        .us("b")
        .ls("astar")
        .read("astar")
        .us("astar")
        .finish();
    let system = b.build();

    let t1 = system.get(TxId(1)).unwrap().clone();
    let t2 = system.get(TxId(2)).unwrap().clone();
    let t3 = system.get(TxId(3)).unwrap().clone();
    let t4 = system.get(TxId(4)).unwrap().clone();
    let mut ext: Vec<ScheduledStep> = Vec::new();
    ext.extend(t1.steps.iter().map(|&s| ScheduledStep::new(TxId(1), s)));
    ext.extend(
        t2.steps[..3]
            .iter()
            .map(|&s| ScheduledStep::new(TxId(2), s)),
    );
    ext.extend(t3.steps.iter().map(|&s| ScheduledStep::new(TxId(3), s)));
    ext.extend(t4.steps.iter().map(|&s| ScheduledStep::new(TxId(4), s)));
    ext.extend(
        t2.steps[3..]
            .iter()
            .map(|&s| ScheduledStep::new(TxId(2), s)),
    );
    let a_star = system.universe().lookup("astar").unwrap();
    let witness = CanonicalWitness {
        tc: TxId(2),
        a_star,
        lock_pos: 3,
        order: vec![
            (TxId(1), t1.steps.len()),
            (TxId(2), 3),
            (TxId(3), t3.steps.len()),
            (TxId(4), t4.steps.len()),
        ],
        extension: Schedule::from_steps(ext),
    };
    (system, witness)
}

/// Regenerates Fig. 1.
pub fn run() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E1 — Fig. 1: serializability graphs of canonical schedules\n"
    )
    .unwrap();

    // (a) static shape.
    let (system, witness) = static_shape_system();
    witness
        .verify(&system)
        .expect("static-shape witness must verify");
    let s_prime = witness.serial_prefix(&system);
    let d_prime = SerializationGraph::of(&s_prime);
    writeln!(out, "(a) static database shape — D(S') before Tc locks A*:").unwrap();
    writeln!(out, "    {d_prime}").unwrap();
    assert!(
        d_prime.is_simple_path_with_back_edge(),
        "static shape is a simple path"
    );
    let d_closed = SerializationGraph::of(&witness.extension);
    writeln!(out, "    after Tc locks A*: {d_closed}").unwrap();
    assert!(
        d_closed.is_simple_path_with_back_edge(),
        "closed by a single back edge"
    );
    assert!(!d_closed.is_acyclic());
    writeln!(
        out,
        "    => simple path T1' -> T2' -> T3' closed by the back edge (Fig. 1a)\n"
    )
    .unwrap();

    // (b) dynamic shape.
    let (system, witness) = dynamic_shape_system();
    witness
        .verify(&system)
        .expect("dynamic-shape witness must verify");
    let s_prime = witness.serial_prefix(&system);
    let d_prime = SerializationGraph::of(&s_prime);
    writeln!(
        out,
        "(b) dynamic database shape — D(S') before Tc locks A*:"
    )
    .unwrap();
    writeln!(out, "    {d_prime}").unwrap();
    let sinks = d_prime.sinks();
    writeln!(
        out,
        "    sinks: {sinks:?} (multiple, via shared locks on A*)"
    )
    .unwrap();
    assert_eq!(sinks.len(), 2, "dynamic shape has multiple sinks");
    assert!(
        !d_prime.is_simple_path_with_back_edge(),
        "not a simple path"
    );
    assert_ne!(
        witness.order[0].0, witness.tc,
        "Tc is not the first transaction"
    );
    let d_closed = SerializationGraph::of(&witness.extension);
    writeln!(out, "    after Tc locks A*: {d_closed}").unwrap();
    assert!(!d_closed.is_acyclic());
    writeln!(
        out,
        "    => Tc = {} is not first (T1's insert makes its prefix proper), and\n       both sinks close back edges to Tc (Fig. 1b)",
        witness.tc
    )
    .unwrap();
    out
}
