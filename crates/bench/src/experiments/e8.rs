//! E8 — Lemmas 1 and 2 as executable invariants.
//!
//! On randomized legal & proper schedules:
//!
//! * **Lemma 1**: transposing two adjacent steps of different transactions
//!   that do not conflict preserves legality, properness, and `D(S)`;
//! * **Lemma 2**: `move(S, S', T')` of a transaction that is a sink of
//!   `D(S')` preserves legality, properness, and `D(S)`.

use slp_core::transform::{move_to_back, transpose};
use slp_core::{Schedule, SerializationGraph, TransactionSystem};
use slp_verifier::{complete_schedule_randomized, random_system, GenParams, SearchBudget};
use std::fmt::Write;

/// Statistics from one invariant sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct LemmaStats {
    /// Schedules examined.
    pub schedules: usize,
    /// Lemma 1 transpositions checked.
    pub transpositions: usize,
    /// Lemma 2 moves checked.
    pub moves: usize,
    /// Invariant violations (must be zero).
    pub violations: usize,
}

fn random_legal_proper_schedule(seed: u64) -> Option<(TransactionSystem, Schedule)> {
    // Alternate between a value-only corpus (every interleaving of every
    // system completes, giving dense transposition coverage) and the
    // default dynamic corpus (inserts/deletes exercise the properness leg
    // of the lemmas; systems whose transactions are structurally
    // incompatible simply yield no full schedule and are skipped).
    let params = if seed.is_multiple_of(2) {
        GenParams {
            transactions: 3,
            sessions_per_tx: 2,
            structural_prob: 0.0,
            presence_prob: 1.0,
            ..GenParams::default()
        }
    } else {
        GenParams {
            transactions: 3,
            sessions_per_tx: 2,
            ..GenParams::default()
        }
    };
    let system = random_system(params, seed);
    let schedule =
        complete_schedule_randomized(&system, &Schedule::empty(), SearchBudget::default(), seed)?;
    Some((system, schedule))
}

/// Sweeps the two lemmas across seeds.
pub fn lemma_sweep(seeds: std::ops::Range<u64>) -> LemmaStats {
    let mut stats = LemmaStats::default();
    for seed in seeds {
        let Some((system, schedule)) = random_legal_proper_schedule(seed) else {
            continue;
        };
        let g0 = system.initial_state();
        debug_assert!(schedule.is_legal() && schedule.is_proper(g0));
        stats.schedules += 1;
        let d_before = SerializationGraph::of(&schedule);

        // Lemma 1: every admissible adjacent transposition.
        for pos in 0..schedule.len().saturating_sub(1) {
            let Ok(swapped) = transpose(&schedule, pos) else {
                continue;
            };
            stats.transpositions += 1;
            let ok = swapped.is_legal()
                && swapped.is_proper(g0)
                && SerializationGraph::of(&swapped) == d_before;
            if !ok {
                stats.violations += 1;
            }
        }

        // Lemma 2: for each prefix length and each sink of D(prefix).
        for prefix_len in 1..=schedule.len() {
            let prefix = schedule.prefix(prefix_len);
            let d_prefix = SerializationGraph::of(&prefix);
            for sink in d_prefix.sinks() {
                stats.moves += 1;
                let moved = move_to_back(&schedule, prefix_len, sink);
                let ok = moved.is_legal()
                    && moved.is_proper(g0)
                    && SerializationGraph::of(&moved) == d_before;
                if !ok {
                    stats.violations += 1;
                }
            }
        }
    }
    stats
}

/// Regenerates the Lemma 1/2 invariance table.
pub fn run() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E8 — Lemmas 1–2: schedule transformations preserve legality,\n     properness, and D(S)\n"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>16} {:>10} {:>12}",
        "seeds", "schedules", "transpositions", "moves", "violations"
    )
    .unwrap();
    let stats = lemma_sweep(0..60);
    writeln!(
        out,
        "{:<10} {:>10} {:>16} {:>10} {:>12}",
        "0..60", stats.schedules, stats.transpositions, stats.moves, stats.violations
    )
    .unwrap();
    assert!(stats.schedules >= 30, "enough schedules must be generated");
    assert!(
        stats.transpositions > 100,
        "enough transpositions must be exercised"
    );
    assert!(stats.moves > 100, "enough moves must be exercised");
    assert_eq!(
        stats.violations, 0,
        "Lemmas 1–2 must hold on every instance"
    );
    writeln!(
        out,
        "\nzero violations across every admissible transposition (Lemma 1) and\nevery sink move (Lemma 2) — the proof machinery of Theorem 1 is sound\non randomized inputs."
    )
    .unwrap();
    out
}
