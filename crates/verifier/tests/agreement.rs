//! Cross-validation of Theorem 1 (experiment E6, test form).
//!
//! On randomized small locked transaction systems, the exhaustive explorer
//! (ground truth) and the canonical-schedule search (Theorem 1) must reach
//! the same verdict: a legal & proper nonserializable schedule exists iff
//! a canonical witness exists.

use slp_verifier::{
    find_canonical_witness, random_system, verify_safety, verify_safety_reference, CanonicalBudget,
    GenParams, SearchBudget,
};

fn check_agreement(params: GenParams, seeds: std::ops::Range<u64>) -> (usize, usize) {
    let mut safe = 0;
    let mut unsafe_ = 0;
    for seed in seeds {
        let system = random_system(params, seed);
        let exhaustive = verify_safety(&system, SearchBudget::default());
        let canonical = find_canonical_witness(&system, CanonicalBudget::default());
        match (exhaustive.is_unsafe(), canonical.witness()) {
            (true, Some(w)) => {
                unsafe_ += 1;
                assert_eq!(w.verify(&system), Ok(()), "seed {seed}: witness must verify");
                assert!(
                    !slp_core::is_serializable(&w.extension),
                    "seed {seed}: canonical extension must be nonserializable"
                );
            }
            (false, None) => safe += 1,
            (ex, can) => panic!(
                "seed {seed}: Theorem 1 violated — exhaustive says unsafe={ex}, canonical witness present={}",
                can.is_some()
            ),
        }
    }
    (safe, unsafe_)
}

#[test]
fn theorem1_agreement_small_systems() {
    let (safe, unsafe_) = check_agreement(GenParams::default(), 0..60);
    // The generator must exercise both outcomes for the test to mean much.
    assert!(safe > 0, "no safe system generated");
    assert!(unsafe_ > 0, "no unsafe system generated");
}

#[test]
fn theorem1_agreement_more_structural_ops() {
    let params = GenParams {
        structural_prob: 0.5,
        ..GenParams::default()
    };
    let (safe, unsafe_) = check_agreement(params, 100..140);
    assert!(safe + unsafe_ == 40);
}

#[test]
fn theorem1_agreement_two_transactions() {
    let params = GenParams {
        transactions: 2,
        sessions_per_tx: 3,
        ..GenParams::default()
    };
    let (safe, unsafe_) = check_agreement(params, 200..260);
    assert!(safe + unsafe_ == 60);
    assert!(unsafe_ > 0, "two-transaction unsafe systems should exist");
}

/// The optimized apply/undo explorer must agree with the retained
/// clone-per-node reference explorer — not just on the verdict, but on
/// the witness and on every search statistic except `undo_ops` (the
/// reference clones instead of undoing), since both visit candidates in
/// the same dense order over the same memoized state space.
fn check_explorer_agreement(system: &slp_core::TransactionSystem, label: &str) {
    let budget = SearchBudget::default();
    let optimized = verify_safety(system, budget);
    let reference = verify_safety_reference(system, budget);
    assert_eq!(
        optimized.is_safe(),
        reference.is_safe(),
        "{label}: safety verdicts disagree (optimized {optimized:?}, reference {reference:?})"
    );
    assert_eq!(
        optimized.witness(),
        reference.witness(),
        "{label}: witnesses disagree"
    );
    let (o, r) = (optimized.stats(), reference.stats());
    assert_eq!(
        (o.states, o.memo_hits, o.completions),
        (r.states, r.memo_hits, r.completions),
        "{label}: search shapes disagree"
    );
    assert!(
        o.undo_ops > 0 || o.states <= 1,
        "{label}: optimized explorer did not backtrack via undo"
    );
    assert_eq!(r.undo_ops, 0, "{label}: reference explorer must not undo");
}

#[test]
fn optimized_explorer_matches_reference_on_random_systems() {
    // 120 systems across three generator regimes (≥ 100 overall), chosen
    // to exercise safe, unsafe, structural-heavy, and shared-lock cases.
    let regimes = [
        (GenParams::default(), 0..60u64),
        (
            GenParams {
                structural_prob: 0.6,
                ..GenParams::default()
            },
            500..530,
        ),
        (
            GenParams {
                transactions: 4,
                sessions_per_tx: 2,
                shared_lock_prob: 0.3,
                ..GenParams::default()
            },
            700..730,
        ),
    ];
    let mut checked = 0;
    for (params, seeds) in regimes {
        for seed in seeds {
            let system = random_system(params, seed);
            check_explorer_agreement(&system, &format!("seed {seed}"));
            checked += 1;
        }
    }
    assert!(
        checked >= 100,
        "agreement corpus shrank to {checked} systems"
    );
}

#[test]
fn optimized_explorer_matches_reference_on_fixed_systems() {
    use slp_core::SystemBuilder;
    // The classic safe/unsafe pairs plus a dynamic-database system whose
    // properness windows prune most interleavings.
    let mut b = SystemBuilder::new();
    b.exists("x");
    b.exists("y");
    b.tx(1)
        .lx("x")
        .write("x")
        .lx("y")
        .write("y")
        .ux("x")
        .ux("y")
        .finish();
    b.tx(2)
        .lx("x")
        .write("x")
        .lx("y")
        .write("y")
        .ux("y")
        .ux("x")
        .finish();
    check_explorer_agreement(&b.build(), "2PL pair");

    let mut b = SystemBuilder::new();
    b.exists("x");
    b.exists("y");
    b.tx(1)
        .lx("x")
        .write("x")
        .ux("x")
        .lx("y")
        .write("y")
        .ux("y")
        .finish();
    b.tx(2)
        .lx("x")
        .write("x")
        .ux("x")
        .lx("y")
        .write("y")
        .ux("y")
        .finish();
    check_explorer_agreement(&b.build(), "short-lock pair");

    let mut b = SystemBuilder::new();
    b.tx(1)
        .lx("a")
        .insert("a")
        .ux("a")
        .lx("b")
        .insert("b")
        .ux("b")
        .finish();
    b.tx(2).lx("a").read("a").delete("a").ux("a").finish();
    b.tx(3).lx("b").read("b").ux("b").finish();
    check_explorer_agreement(&b.build(), "dynamic windows");

    // Zero-step transaction alongside an unsafe pair: the incremental
    // started/finished counters must not let the empty transaction mask an
    // unfinished started one (regression: the empty transaction was
    // pre-counted as finished, accepting incomplete witnesses).
    let mut b = SystemBuilder::new();
    b.exists("x");
    b.exists("y");
    b.tx(1).finish();
    b.tx(2)
        .lx("x")
        .write("x")
        .ux("x")
        .lx("y")
        .write("y")
        .ux("y")
        .finish();
    b.tx(3)
        .lx("x")
        .write("x")
        .ux("x")
        .lx("y")
        .write("y")
        .ux("y")
        .finish();
    check_explorer_agreement(&b.build(), "zero-step transaction");
}

#[test]
fn all_two_phase_systems_are_safe() {
    let params = GenParams {
        two_phase_prob: 1.0,
        ..GenParams::default()
    };
    for seed in 300..340 {
        let system = random_system(params, seed);
        assert!(
            system.transactions().iter().all(|t| t.is_two_phase()),
            "generator must honor two_phase_prob = 1"
        );
        let verdict = verify_safety(&system, SearchBudget::default());
        assert!(verdict.is_safe(), "seed {seed}: 2PL system must be safe");
    }
}
