//! Cross-validation of Theorem 1 (experiment E6, test form).
//!
//! On randomized small locked transaction systems, the exhaustive explorer
//! (ground truth) and the canonical-schedule search (Theorem 1) must reach
//! the same verdict: a legal & proper nonserializable schedule exists iff
//! a canonical witness exists.

use slp_verifier::{
    find_canonical_witness, random_system, verify_safety, CanonicalBudget, GenParams,
    SearchBudget,
};

fn check_agreement(params: GenParams, seeds: std::ops::Range<u64>) -> (usize, usize) {
    let mut safe = 0;
    let mut unsafe_ = 0;
    for seed in seeds {
        let system = random_system(params, seed);
        let exhaustive = verify_safety(&system, SearchBudget::default());
        let canonical = find_canonical_witness(&system, CanonicalBudget::default());
        match (exhaustive.is_unsafe(), canonical.witness()) {
            (true, Some(w)) => {
                unsafe_ += 1;
                assert_eq!(w.verify(&system), Ok(()), "seed {seed}: witness must verify");
                assert!(
                    !slp_core::is_serializable(&w.extension),
                    "seed {seed}: canonical extension must be nonserializable"
                );
            }
            (false, None) => safe += 1,
            (ex, can) => panic!(
                "seed {seed}: Theorem 1 violated — exhaustive says unsafe={ex}, canonical witness present={}",
                can.is_some()
            ),
        }
    }
    (safe, unsafe_)
}

#[test]
fn theorem1_agreement_small_systems() {
    let (safe, unsafe_) = check_agreement(GenParams::default(), 0..60);
    // The generator must exercise both outcomes for the test to mean much.
    assert!(safe > 0, "no safe system generated");
    assert!(unsafe_ > 0, "no unsafe system generated");
}

#[test]
fn theorem1_agreement_more_structural_ops() {
    let params = GenParams { structural_prob: 0.5, ..GenParams::default() };
    let (safe, unsafe_) = check_agreement(params, 100..140);
    assert!(safe + unsafe_ == 40);
}

#[test]
fn theorem1_agreement_two_transactions() {
    let params = GenParams { transactions: 2, sessions_per_tx: 3, ..GenParams::default() };
    let (safe, unsafe_) = check_agreement(params, 200..260);
    assert!(safe + unsafe_ == 60);
    assert!(unsafe_ > 0, "two-transaction unsafe systems should exist");
}

#[test]
fn all_two_phase_systems_are_safe() {
    let params = GenParams { two_phase_prob: 1.0, ..GenParams::default() };
    for seed in 300..340 {
        let system = random_system(params, seed);
        assert!(
            system.transactions().iter().all(|t| t.is_two_phase()),
            "generator must honor two_phase_prob = 1"
        );
        let verdict = verify_safety(&system, SearchBudget::default());
        assert!(verdict.is_safe(), "seed {seed}: 2PL system must be safe");
    }
}
