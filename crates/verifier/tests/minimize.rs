//! Direct coverage for `slp_verifier::minimize` (previously exercised only
//! through `tests/canonical_theorem.rs`): unit tests on hand-built
//! witnesses plus seeded property tests over explorer-found witnesses.
//!
//! The contract under test: [`minimize_witness`] returns a schedule that is
//! still legal, still proper for the same initial state, still
//! **non**serializable, never longer than the input, keeps at least two
//! participants, only ever *removes whole transactions* (every surviving
//! projection is unchanged), and is a fixpoint (minimizing twice changes
//! nothing).

use proptest::prelude::*;
use slp_core::{is_serializable, EntityId, Schedule, ScheduledStep, Step, StructuralState, TxId};
use slp_verifier::{minimize_witness, random_system, verify_safety, GenParams, SearchBudget};

fn e(i: u32) -> EntityId {
    EntityId(i)
}

fn t(i: u32) -> TxId {
    TxId(i)
}

/// The classic 2-transaction write cycle on x, y — already minimal.
fn core_cycle(x: EntityId, y: EntityId) -> Vec<ScheduledStep> {
    vec![
        ScheduledStep::new(t(1), Step::lock_exclusive(x)),
        ScheduledStep::new(t(1), Step::write(x)),
        ScheduledStep::new(t(1), Step::unlock_exclusive(x)),
        ScheduledStep::new(t(2), Step::lock_exclusive(x)),
        ScheduledStep::new(t(2), Step::write(x)),
        ScheduledStep::new(t(2), Step::lock_exclusive(y)),
        ScheduledStep::new(t(2), Step::write(y)),
        ScheduledStep::new(t(2), Step::unlock_exclusive(x)),
        ScheduledStep::new(t(2), Step::unlock_exclusive(y)),
        ScheduledStep::new(t(1), Step::lock_exclusive(y)),
        ScheduledStep::new(t(1), Step::write(y)),
        ScheduledStep::new(t(1), Step::unlock_exclusive(y)),
    ]
}

#[test]
fn strips_multiple_layers_of_noise_transactions() {
    // Three unrelated readers interleaved around the core cycle: the
    // minimizer must peel all of them, in whatever order its greedy loop
    // tries, and land exactly on {T1, T2}.
    let g0 = StructuralState::from_entities([e(0), e(1), e(7), e(8), e(9)]);
    let mut steps = vec![
        ScheduledStep::new(t(3), Step::lock_shared(e(7))),
        ScheduledStep::new(t(4), Step::lock_shared(e(8))),
        ScheduledStep::new(t(3), Step::read(e(7))),
    ];
    steps.extend(core_cycle(e(0), e(1)));
    steps.extend([
        ScheduledStep::new(t(5), Step::lock_shared(e(9))),
        ScheduledStep::new(t(4), Step::read(e(8))),
        ScheduledStep::new(t(5), Step::read(e(9))),
        ScheduledStep::new(t(5), Step::unlock_shared(e(9))),
        ScheduledStep::new(t(4), Step::unlock_shared(e(8))),
        ScheduledStep::new(t(3), Step::unlock_shared(e(7))),
    ]);
    let w = Schedule::from_steps(steps);
    assert!(!is_serializable(&w));
    let min = minimize_witness(&w, &g0);
    let mut parts = min.participants();
    parts.sort_unstable();
    assert_eq!(parts, vec![t(1), t(2)]);
    assert!(!is_serializable(&min));
    assert!(min.is_legal());
    assert!(min.is_proper(&g0));
}

#[test]
fn keeps_noise_transactions_that_carry_the_cycle() {
    // A 3-transaction chain cycle (T1 → T2 → T3 → T1 in the conflict
    // graph): no single transaction can be dropped without the remainder
    // becoming serializable, so minimization must return it unchanged.
    let g0 = StructuralState::from_entities([e(0), e(1), e(2)]);
    let session = |tx: TxId, ent: EntityId| {
        [
            ScheduledStep::new(tx, Step::lock_exclusive(ent)),
            ScheduledStep::new(tx, Step::write(ent)),
            ScheduledStep::new(tx, Step::unlock_exclusive(ent)),
        ]
    };
    let mut steps = Vec::new();
    // T1: x then (later) z.  T2: x after T1, then y.  T3: y after T2,
    // then z before T1 — cycle T1→T2→T3→T1.
    steps.extend(session(t(1), e(0)));
    steps.extend(session(t(2), e(0)));
    steps.extend(session(t(2), e(1)));
    steps.extend(session(t(3), e(1)));
    steps.extend(session(t(3), e(2)));
    steps.extend(session(t(1), e(2)));
    let w = Schedule::from_steps(steps);
    assert!(!is_serializable(&w));
    let min = minimize_witness(&w, &g0);
    assert_eq!(min, w, "an irreducible witness must survive unchanged");
}

#[test]
fn properness_constrains_what_can_be_dropped() {
    // T3 inserts the entity the T1/T2 cycle runs on: dropping T3 would
    // leave the remainder improper (writes on an absent entity), so the
    // minimizer must keep it even though it is not part of the cycle.
    let g0 = StructuralState::from_entities([e(1)]);
    let mut steps = vec![
        ScheduledStep::new(t(3), Step::lock_exclusive(e(0))),
        ScheduledStep::new(t(3), Step::insert(e(0))),
        ScheduledStep::new(t(3), Step::unlock_exclusive(e(0))),
    ];
    steps.extend(core_cycle(e(0), e(1)));
    let w = Schedule::from_steps(steps);
    assert!(w.is_proper(&g0), "witness itself must be proper");
    assert!(!is_serializable(&w));
    let min = minimize_witness(&w, &g0);
    assert!(
        min.participants().contains(&t(3)),
        "dropping the inserter would make the schedule improper"
    );
    assert!(min.is_proper(&g0));
    assert!(!is_serializable(&min));
}

#[test]
fn explorer_witness_sweep_is_not_vacuous() {
    // Guard the property tests against silently testing nothing: the
    // default generator parameters must keep producing unsafe systems,
    // and minimization must actually shrink some of their witnesses.
    let mut witnesses = 0usize;
    let mut shrunk = 0usize;
    for seed in 0..60u64 {
        let system = random_system(GenParams::default(), seed);
        if let Some(w) = verify_safety(&system, SearchBudget::default()).witness() {
            witnesses += 1;
            let min = minimize_witness(w, system.initial_state());
            if min.participants().len() < w.participants().len() {
                shrunk += 1;
            }
        }
    }
    assert!(
        witnesses >= 5,
        "only {witnesses} unsafe systems in 60 seeds"
    );
    assert!(
        shrunk >= 1,
        "no witness lost a transaction across {witnesses} minimizations — \
         the minimizer (or the sweep) is not doing real work"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Explorer-found witnesses from seeded random systems: minimization
    /// preserves every invariant that makes the result a counterexample,
    /// only removes whole transactions, and is idempotent.
    #[test]
    fn minimized_explorer_witnesses_keep_the_contract(seed in 0u64..400) {
        let system = random_system(GenParams::default(), seed);
        let verdict = verify_safety(&system, SearchBudget::default());
        if let Some(w) = verdict.witness() {
            let g0 = system.initial_state();
            let min = minimize_witness(w, g0);
            // Still a counterexample.
            prop_assert!(min.is_legal());
            prop_assert!(min.is_proper(g0));
            prop_assert!(!is_serializable(&min));
            // Never longer, never below two participants.
            prop_assert!(min.len() <= w.len());
            let parts = min.participants();
            prop_assert!(parts.len() >= 2);
            prop_assert!(parts.len() <= w.participants().len());
            // Whole-transaction removal only: surviving projections are
            // untouched, and every participant came from the original.
            for tx in &parts {
                prop_assert_eq!(min.projection(*tx), w.projection(*tx));
                prop_assert!(w.participants().contains(tx));
            }
            // Fixpoint: a second pass finds nothing more to drop.
            prop_assert_eq!(minimize_witness(&min, g0), min);
        }
    }

    /// On *serializable* schedules (not witnesses at all) the minimizer
    /// must be the identity: its loop only accepts candidates that stay
    /// nonserializable, and a serializable input admits none.
    #[test]
    fn serializable_inputs_pass_through_unchanged(seed in 0u64..120) {
        let system = random_system(GenParams::default(), seed);
        // A serial schedule of every transaction is always serializable.
        let serial = Schedule::serial(system.transactions());
        if serial.is_legal() && serial.is_proper(system.initial_state()) {
            let out = minimize_witness(&serial, system.initial_state());
            prop_assert_eq!(out, serial);
        }
    }
}
