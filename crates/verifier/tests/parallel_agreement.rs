//! Differential harness for the work-stealing parallel safety verifier.
//!
//! The parallel explorer re-implements the sequential apply/undo DFS over
//! shared state (task queue, sharded memo, early-cancel), which is exactly
//! the kind of rewrite that breeds silent divergence. This suite locks the
//! two down:
//!
//! * **Verdict agreement** on 155+ seeded [`random_system`] instances
//!   spanning the `k <= 11` (u128 edge masks, packed memo keys) and the
//!   new `k > 11` (words edge sets, wide memo keys) regimes.
//! * **Witness validity**: every parallel witness replays through the
//!   independent one-shot predicates *and* through
//!   [`complete_schedule`]'s simulator-driven prefix replay, and is
//!   nonserializable.
//! * **Determinism**: repeated runs across thread counts {1, 2, 4, 8}
//!   return a stable verdict — the canary for memo races, lost wakeups,
//!   and early-cancel bugs.
//!
//! The differential thread count honors `SLP_VERIFIER_THREADS` (set by the
//! CI matrix); the determinism stress always sweeps its fixed ladder.

use slp_verifier::{
    complete_schedule, random_system, verify_safety, GenParams, ParallelVerifier, SearchBudget,
    Verdict,
};

/// Thread count for the differential runs: `SLP_VERIFIER_THREADS` or 4.
fn par_threads() -> usize {
    match std::env::var("SLP_VERIFIER_THREADS") {
        Ok(v) => v
            .parse()
            .expect("SLP_VERIFIER_THREADS must be a positive integer"),
        Err(_) => 4,
    }
}

/// Checks one system: sequential and parallel verdicts must agree, neither
/// may exhaust its budget, and an unsafe parallel witness must replay to a
/// nonserializable complete schedule via the reference completion search.
fn check_system(
    system: &slp_core::TransactionSystem,
    verifier: &ParallelVerifier,
    label: &str,
) -> bool {
    let budget = SearchBudget::default();
    let sequential = verify_safety(system, budget);
    let parallel = verifier.verify(system, budget);
    assert!(
        !matches!(sequential, Verdict::Exhausted(_)),
        "{label}: sequential search exhausted its budget — corpus system too large"
    );
    assert!(
        !matches!(parallel, Verdict::Exhausted(_)),
        "{label}: parallel search exhausted its budget — corpus system too large"
    );
    assert_eq!(
        sequential.is_unsafe(),
        parallel.is_unsafe(),
        "{label}: verdicts disagree (sequential {sequential:?}, parallel {parallel:?})"
    );
    if let Some(witness) = parallel.witness() {
        assert!(witness.is_legal(), "{label}: parallel witness illegal");
        assert!(
            witness.is_proper(system.initial_state()),
            "{label}: parallel witness improper"
        );
        assert!(
            !slp_core::is_serializable(witness),
            "{label}: parallel witness serializable"
        );
        let parts: Vec<_> = witness
            .participants()
            .iter()
            .map(|&id| system.get(id).expect("participant").clone())
            .collect();
        assert!(
            witness.is_complete_schedule_of(&parts),
            "{label}: parallel witness incomplete over its participants"
        );
        // Replay through the sequential explorer's completion search: the
        // witness must be accepted as a complete legal & proper schedule
        // of the system (the search re-applies it step by step through an
        // independent simulator instance).
        let replayed = complete_schedule(system, witness, budget)
            .unwrap_or_else(|| panic!("{label}: parallel witness failed prefix replay"));
        assert!(replayed.has_prefix(witness), "{label}: replay lost prefix");
        assert!(
            !slp_core::is_serializable(&replayed),
            "{label}: replayed completion serializable"
        );
    }
    parallel.is_unsafe()
}

/// The differential corpus: five generator regimes, 155 systems total,
/// with the last two in the wide (`k > 11`) regime the `EdgeSet` words
/// representation unlocked.
fn corpus() -> Vec<(GenParams, std::ops::Range<u64>, &'static str, bool)> {
    vec![
        (GenParams::default(), 0..60, "default 3tx", false),
        (
            GenParams {
                structural_prob: 0.6,
                ..GenParams::default()
            },
            500..530,
            "structural-heavy",
            false,
        ),
        (
            GenParams {
                transactions: 4,
                sessions_per_tx: 2,
                shared_lock_prob: 0.3,
                ..GenParams::default()
            },
            700..730,
            "4tx shared-light",
            false,
        ),
        (
            GenParams {
                transactions: 2,
                sessions_per_tx: 2,
                padding_txs: 10,
                ..GenParams::default()
            },
            900..920,
            "wide k=12",
            true,
        ),
        (
            GenParams {
                transactions: 3,
                sessions_per_tx: 1,
                padding_txs: 10,
                ..GenParams::default()
            },
            1000..1015,
            "wide k=13",
            true,
        ),
    ]
}

#[test]
fn parallel_agrees_with_sequential_on_150_plus_systems() {
    let verifier = ParallelVerifier::new(par_threads());
    let mut checked = 0;
    let mut unsafe_seen = 0;
    let mut wide_checked = 0;
    for (params, seeds, name, wide) in corpus() {
        for seed in seeds {
            let system = random_system(params, seed);
            if wide {
                assert!(
                    system.ids().len() > 11,
                    "{name}: expected the k > 11 regime"
                );
                wide_checked += 1;
            }
            if check_system(&system, &verifier, &format!("{name}, seed {seed}")) {
                unsafe_seen += 1;
            }
            checked += 1;
        }
    }
    assert!(checked >= 150, "differential corpus shrank to {checked}");
    assert!(wide_checked >= 30, "wide regime shrank to {wide_checked}");
    assert!(unsafe_seen > 0, "corpus never produced an unsafe system");
    assert!(unsafe_seen < checked, "corpus never produced a safe system");
}

/// `k = 17` exceeds the position-packing bound too, pushing both searches
/// onto `Vec<u16>`-keyed memo tables. Built directly so the padding
/// transactions contend on one entity and the state space stays tiny.
#[test]
fn wide_positions_regime_k17_agrees() {
    use slp_core::SystemBuilder;
    let mut b = SystemBuilder::new();
    b.exists("x");
    b.exists("y");
    for t in 1..=2 {
        b.tx(t)
            .lx("x")
            .write("x")
            .ux("x")
            .lx("y")
            .write("y")
            .ux("y")
            .finish();
    }
    for t in 3..=17 {
        b.tx(t).lx("q").finish();
    }
    let system = b.build();
    assert_eq!(system.ids().len(), 17);
    let verifier = ParallelVerifier::new(par_threads());
    assert!(check_system(&system, &verifier, "k=17 short-lock"));
}

/// Determinism stress: the verdict (not the witness schedule or the
/// statistics) must be stable across 10 repeated runs at every thread
/// count in {1, 2, 4, 8} — racy memoization, lost wakeups, or broken
/// early-cancel would show up as a flipped verdict here.
#[test]
fn verdict_is_deterministic_across_runs_and_thread_counts() {
    let systems: Vec<(String, slp_core::TransactionSystem)> = (0..6u64)
        .map(|seed| {
            (
                format!("default seed {seed}"),
                random_system(GenParams::default(), seed),
            )
        })
        .chain((0..2u64).map(|seed| {
            let params = GenParams {
                transactions: 2,
                sessions_per_tx: 1,
                padding_txs: 10,
                ..GenParams::default()
            };
            (
                format!("wide seed {seed}"),
                random_system(params, 40 + seed),
            )
        }))
        .collect();
    let budget = SearchBudget::default();
    for (label, system) in &systems {
        let expected = verify_safety(system, budget).is_unsafe();
        for threads in [1usize, 2, 4, 8] {
            let verifier = ParallelVerifier::new(threads);
            for run in 0..10 {
                let verdict = verifier.verify(system, budget);
                assert!(
                    !matches!(verdict, Verdict::Exhausted(_)),
                    "{label}: budget exhausted at {threads} threads"
                );
                assert_eq!(
                    verdict.is_unsafe(),
                    expected,
                    "{label}: verdict flipped at {threads} threads, run {run}"
                );
            }
        }
    }
}

/// The `k = 16` promise from the issue, end-to-end through the *parallel*
/// verifier as well (the sequential arm lives in the explorer's unit
/// tests): wide edge sets, packed positions, shared sharded memo. Two
/// fixed systems pin both verdict directions; one generated system with
/// fully independent padding exercises the combinatorially larger space.
#[test]
fn sixteen_transactions_verify_in_parallel() {
    use slp_core::SystemBuilder;
    let verifier = ParallelVerifier::new(par_threads());
    // Safe and unsafe fixed systems: a 2PL / short-lock pair plus 14
    // single-step transactions contending on one entity (tiny space).
    for (two_phase, expect_unsafe) in [(true, false), (false, true)] {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        for t in 1..=2 {
            let tx = b.tx(t);
            if two_phase {
                tx.lx("x")
                    .write("x")
                    .lx("y")
                    .write("y")
                    .ux("x")
                    .ux("y")
                    .finish();
            } else {
                tx.lx("x")
                    .write("x")
                    .ux("x")
                    .lx("y")
                    .write("y")
                    .ux("y")
                    .finish();
            }
        }
        for t in 3..=16 {
            b.tx(t).lx("p").finish();
        }
        let system = b.build();
        assert_eq!(system.ids().len(), 16);
        let label = format!("fixed k=16 (2pl={two_phase})");
        assert_eq!(check_system(&system, &verifier, &label), expect_unsafe);
    }
    // Generated arm: 2^14 independent padding interleavings on top of a
    // real two-transaction core.
    let params = GenParams {
        transactions: 2,
        sessions_per_tx: 1,
        padding_txs: 14,
        ..GenParams::default()
    };
    let system = random_system(params, 7);
    assert_eq!(system.ids().len(), 16);
    check_system(&system, &verifier, "generated k=16 seed 7");
}
