//! Differential harness for the work-stealing parallel safety verifier.
//!
//! The parallel explorer re-implements the sequential apply/undo DFS over
//! shared state (task queue, lock-free memo table, early-cancel), which is
//! the kind of rewrite that breeds silent divergence. This suite locks the
//! two down:
//!
//! * **Verdict agreement** on 155+ seeded [`random_system`] instances
//!   spanning the `k <= 11` (u128 edge masks, packed memo keys) and the
//!   new `k > 11` (words edge sets, wide memo keys) regimes.
//! * **Witness validity**: every parallel witness replays through the
//!   independent one-shot predicates *and* through
//!   [`complete_schedule`]'s simulator-driven prefix replay, and is
//!   nonserializable.
//! * **Determinism**: repeated runs across thread counts {1, 2, 4, 8}
//!   return a stable verdict — the canary for memo races, lost wakeups,
//!   and early-cancel bugs.
//! * **Memo storm**: many workers hammering concurrent `probe_or_intern`
//!   on overlapping key sets against the lock-free
//!   [`slp_verifier::memo::AtomicWordTable`] directly, asserting
//!   interned-id stability (same value → same id across workers) and no
//!   lost inserts.
//!
//! The differential thread count honors `SLP_VERIFIER_THREADS` (set by the
//! CI matrix); the determinism stress always sweeps its fixed ladder.

use slp_verifier::{
    complete_schedule, random_system, verify_safety, GenParams, ParallelVerifier, SearchBudget,
    Verdict,
};

/// Thread count for the differential runs: `SLP_VERIFIER_THREADS` or 4.
fn par_threads() -> usize {
    match std::env::var("SLP_VERIFIER_THREADS") {
        Ok(v) => v
            .parse()
            .expect("SLP_VERIFIER_THREADS must be a positive integer"),
        Err(_) => 4,
    }
}

/// Checks one system: sequential and parallel verdicts must agree, neither
/// may exhaust its budget, and an unsafe parallel witness must replay to a
/// nonserializable complete schedule via the reference completion search.
fn check_system(
    system: &slp_core::TransactionSystem,
    verifier: &ParallelVerifier,
    label: &str,
) -> bool {
    let budget = SearchBudget::default();
    let sequential = verify_safety(system, budget);
    let parallel = verifier.verify(system, budget);
    assert!(
        !matches!(sequential, Verdict::Exhausted(_)),
        "{label}: sequential search exhausted its budget — corpus system too large"
    );
    assert!(
        !matches!(parallel, Verdict::Exhausted(_)),
        "{label}: parallel search exhausted its budget — corpus system too large"
    );
    assert_eq!(
        sequential.is_unsafe(),
        parallel.is_unsafe(),
        "{label}: verdicts disagree (sequential {sequential:?}, parallel {parallel:?})"
    );
    if let Some(witness) = parallel.witness() {
        assert!(witness.is_legal(), "{label}: parallel witness illegal");
        assert!(
            witness.is_proper(system.initial_state()),
            "{label}: parallel witness improper"
        );
        assert!(
            !slp_core::is_serializable(witness),
            "{label}: parallel witness serializable"
        );
        let parts: Vec<_> = witness
            .participants()
            .iter()
            .map(|&id| system.get(id).expect("participant").clone())
            .collect();
        assert!(
            witness.is_complete_schedule_of(&parts),
            "{label}: parallel witness incomplete over its participants"
        );
        // Replay through the sequential explorer's completion search: the
        // witness must be accepted as a complete legal & proper schedule
        // of the system (the search re-applies it step by step through an
        // independent simulator instance).
        let replayed = complete_schedule(system, witness, budget)
            .unwrap_or_else(|| panic!("{label}: parallel witness failed prefix replay"));
        assert!(replayed.has_prefix(witness), "{label}: replay lost prefix");
        assert!(
            !slp_core::is_serializable(&replayed),
            "{label}: replayed completion serializable"
        );
    }
    parallel.is_unsafe()
}

/// The differential corpus: five generator regimes, 155 systems total,
/// with the last two in the wide (`k > 11`) regime the `EdgeSet` words
/// representation unlocked.
fn corpus() -> Vec<(GenParams, std::ops::Range<u64>, &'static str, bool)> {
    vec![
        (GenParams::default(), 0..60, "default 3tx", false),
        (
            GenParams {
                structural_prob: 0.6,
                ..GenParams::default()
            },
            500..530,
            "structural-heavy",
            false,
        ),
        (
            GenParams {
                transactions: 4,
                sessions_per_tx: 2,
                shared_lock_prob: 0.3,
                ..GenParams::default()
            },
            700..730,
            "4tx shared-light",
            false,
        ),
        (
            GenParams {
                transactions: 2,
                sessions_per_tx: 2,
                padding_txs: 10,
                ..GenParams::default()
            },
            900..920,
            "wide k=12",
            true,
        ),
        (
            GenParams {
                transactions: 3,
                sessions_per_tx: 1,
                padding_txs: 10,
                ..GenParams::default()
            },
            1000..1015,
            "wide k=13",
            true,
        ),
    ]
}

#[test]
fn parallel_agrees_with_sequential_on_150_plus_systems() {
    let verifier = ParallelVerifier::new(par_threads());
    let mut checked = 0;
    let mut unsafe_seen = 0;
    let mut wide_checked = 0;
    for (params, seeds, name, wide) in corpus() {
        for seed in seeds {
            let system = random_system(params, seed);
            if wide {
                assert!(
                    system.ids().len() > 11,
                    "{name}: expected the k > 11 regime"
                );
                wide_checked += 1;
            }
            if check_system(&system, &verifier, &format!("{name}, seed {seed}")) {
                unsafe_seen += 1;
            }
            checked += 1;
        }
    }
    assert!(checked >= 150, "differential corpus shrank to {checked}");
    assert!(wide_checked >= 30, "wide regime shrank to {wide_checked}");
    assert!(unsafe_seen > 0, "corpus never produced an unsafe system");
    assert!(unsafe_seen < checked, "corpus never produced a safe system");
}

/// `k = 17` exceeds the position-packing bound too, pushing both searches
/// onto `Vec<u16>`-keyed memo tables. Built directly so the padding
/// transactions contend on one entity and the state space stays tiny.
#[test]
fn wide_positions_regime_k17_agrees() {
    use slp_core::SystemBuilder;
    let mut b = SystemBuilder::new();
    b.exists("x");
    b.exists("y");
    for t in 1..=2 {
        b.tx(t)
            .lx("x")
            .write("x")
            .ux("x")
            .lx("y")
            .write("y")
            .ux("y")
            .finish();
    }
    for t in 3..=17 {
        b.tx(t).lx("q").finish();
    }
    let system = b.build();
    assert_eq!(system.ids().len(), 17);
    let verifier = ParallelVerifier::new(par_threads());
    assert!(check_system(&system, &verifier, "k=17 short-lock"));
}

/// Determinism stress: the verdict (not the witness schedule or the
/// statistics) must be stable across 10 repeated runs at every thread
/// count in {1, 2, 4, 8} — racy memoization, lost wakeups, or broken
/// early-cancel would show up as a flipped verdict here.
#[test]
fn verdict_is_deterministic_across_runs_and_thread_counts() {
    let systems: Vec<(String, slp_core::TransactionSystem)> = (0..6u64)
        .map(|seed| {
            (
                format!("default seed {seed}"),
                random_system(GenParams::default(), seed),
            )
        })
        .chain((0..2u64).map(|seed| {
            let params = GenParams {
                transactions: 2,
                sessions_per_tx: 1,
                padding_txs: 10,
                ..GenParams::default()
            };
            (
                format!("wide seed {seed}"),
                random_system(params, 40 + seed),
            )
        }))
        .collect();
    let budget = SearchBudget::default();
    for (label, system) in &systems {
        let expected = verify_safety(system, budget).is_unsafe();
        for threads in [1usize, 2, 4, 8] {
            let verifier = ParallelVerifier::new(threads);
            for run in 0..10 {
                let verdict = verifier.verify(system, budget);
                assert!(
                    !matches!(verdict, Verdict::Exhausted(_)),
                    "{label}: budget exhausted at {threads} threads"
                );
                assert_eq!(
                    verdict.is_unsafe(),
                    expected,
                    "{label}: verdict flipped at {threads} threads, run {run}"
                );
            }
        }
    }
}

/// Memo storm: 8 workers hammer concurrent `probe_or_intern` on heavily
/// overlapping key sets (every worker walks the full key list, each in a
/// different order, twice). The lock-free table must assign **one stable
/// id per distinct key** no matter which worker's CAS wins, lose no
/// insert, and answer read-only probes consistently afterwards — the
/// direct unit-level guarantee behind the shared-memo soundness the
/// differential suites check end-to-end.
#[test]
fn memo_storm_probe_or_intern_is_stable_and_lossless() {
    use slp_verifier::memo::AtomicWordTable;
    const KEYS: usize = 6000; // overflows the first slot + entry segments
    const WORKERS: usize = 8;
    let width = 3;
    let table = AtomicWordTable::new(width);
    // Overlapping keys with adversarially similar words (low entropy in
    // the high word, sequential low word).
    let keys: Vec<[u64; 3]> = (0..KEYS as u64)
        .map(|i| [i, i.wrapping_mul(0x9e37_79b9), i % 7])
        .collect();
    let per_worker_ids: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let table = &table;
                let keys = &keys;
                scope.spawn(move || {
                    let mut ids = vec![u64::MAX; keys.len()];
                    // A different stride per worker scrambles the visit
                    // order, maximizing same-key CAS races; each stride is
                    // coprime with KEYS so every worker covers every key.
                    let stride = [1, 7, 11, 13, 17, 19, 23, 29][w];
                    for round in 0..2 {
                        for j in 0..keys.len() {
                            let idx = (j * stride + round * 17) % keys.len();
                            let (id, _) = table.probe_or_intern(&keys[idx]);
                            if ids[idx] == u64::MAX {
                                ids[idx] = id;
                            } else {
                                assert_eq!(
                                    ids[idx], id,
                                    "worker {w}: key {idx} changed id between rounds"
                                );
                            }
                        }
                    }
                    ids
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Same value → same id across workers.
    for w in 1..WORKERS {
        assert_eq!(
            per_worker_ids[0], per_worker_ids[w],
            "worker {w} disagrees on interned ids"
        );
    }
    // No lost inserts, stable under read-only probes, ids distinct.
    let mut seen = std::collections::HashSet::new();
    for (idx, key) in keys.iter().enumerate() {
        let id = table.probe(key).unwrap_or_else(|| panic!("key {idx} lost"));
        assert_eq!(id, per_worker_ids[0][idx], "probe id drifted for key {idx}");
        assert!(seen.insert(id), "id {id} assigned to two keys");
    }
    // Never-inserted keys must not false-positive.
    for i in 0..KEYS as u64 {
        assert_eq!(table.probe(&[i, i, i.wrapping_add(1)]), None);
    }
    // Claims may exceed published entries only by lost same-key races.
    assert!(table.claimed_entries() >= KEYS as u64);
}

/// The `k = 16` promise from the issue, end-to-end through the *parallel*
/// verifier as well (the sequential arm lives in the explorer's unit
/// tests): wide edge sets, packed positions, shared lock-free memo. Two
/// fixed systems pin both verdict directions; one generated system with
/// fully independent padding exercises the combinatorially larger space.
#[test]
fn sixteen_transactions_verify_in_parallel() {
    use slp_core::SystemBuilder;
    let verifier = ParallelVerifier::new(par_threads());
    // Safe and unsafe fixed systems: a 2PL / short-lock pair plus 14
    // single-step transactions contending on one entity (tiny space).
    for (two_phase, expect_unsafe) in [(true, false), (false, true)] {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        for t in 1..=2 {
            let tx = b.tx(t);
            if two_phase {
                tx.lx("x")
                    .write("x")
                    .lx("y")
                    .write("y")
                    .ux("x")
                    .ux("y")
                    .finish();
            } else {
                tx.lx("x")
                    .write("x")
                    .ux("x")
                    .lx("y")
                    .write("y")
                    .ux("y")
                    .finish();
            }
        }
        for t in 3..=16 {
            b.tx(t).lx("p").finish();
        }
        let system = b.build();
        assert_eq!(system.ids().len(), 16);
        let label = format!("fixed k=16 (2pl={two_phase})");
        assert_eq!(check_system(&system, &verifier, &label), expect_unsafe);
    }
    // Generated arm: 2^14 independent padding interleavings on top of a
    // real two-transaction core.
    let params = GenParams {
        transactions: 2,
        sessions_per_tx: 1,
        padding_txs: 14,
        ..GenParams::default()
    };
    let system = random_system(params, 7);
    assert_eq!(system.ids().len(), 16);
    check_system(&system, &verifier, "generated k=16 seed 7");
}
