//! Counterexample minimization.
//!
//! Witnesses found by the exhaustive explorer can involve more transactions
//! than necessary. [`minimize_witness`] greedily drops whole transactions
//! while the schedule stays a complete, legal, proper, nonserializable
//! schedule of the remaining subsystem — yielding the small witnesses the
//! paper's figures show.

use slp_core::{is_serializable, Schedule, StructuralState, TxId};

/// Removes as many transactions as possible from `witness` while it remains
/// legal, proper (for `g0`), and nonserializable. Returns the reduced
/// schedule (complete over its remaining participants by construction,
/// since whole transactions are removed).
pub fn minimize_witness(witness: &Schedule, g0: &StructuralState) -> Schedule {
    let mut current = witness.clone();
    loop {
        let mut improved = false;
        for tx in current.participants() {
            let candidate = drop_transaction(&current, tx);
            if candidate.participants().len() >= 2
                && candidate.is_legal()
                && candidate.is_proper(g0)
                && !is_serializable(&candidate)
            {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// The schedule with every step of `tx` removed.
fn drop_transaction(s: &Schedule, tx: TxId) -> Schedule {
    s.steps().iter().copied().filter(|st| st.tx != tx).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{EntityId, ScheduledStep, Step};

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    /// A 3-transaction witness where T3 is irrelevant noise.
    fn padded_witness() -> Schedule {
        Schedule::from_steps(vec![
            // T3: unrelated read on its own entity.
            ScheduledStep::new(t(3), Step::lock_shared(e(9))),
            ScheduledStep::new(t(3), Step::read(e(9))),
            // T1 and T2 form the classic cross cycle on x, y.
            ScheduledStep::new(t(1), Step::lock_exclusive(e(0))),
            ScheduledStep::new(t(1), Step::write(e(0))),
            ScheduledStep::new(t(1), Step::unlock_exclusive(e(0))),
            ScheduledStep::new(t(2), Step::lock_exclusive(e(0))),
            ScheduledStep::new(t(2), Step::write(e(0))),
            ScheduledStep::new(t(2), Step::lock_exclusive(e(1))),
            ScheduledStep::new(t(2), Step::write(e(1))),
            ScheduledStep::new(t(2), Step::unlock_exclusive(e(0))),
            ScheduledStep::new(t(2), Step::unlock_exclusive(e(1))),
            ScheduledStep::new(t(1), Step::lock_exclusive(e(1))),
            ScheduledStep::new(t(1), Step::write(e(1))),
            ScheduledStep::new(t(1), Step::unlock_exclusive(e(1))),
            ScheduledStep::new(t(3), Step::unlock_shared(e(9))),
        ])
    }

    #[test]
    fn drops_irrelevant_transactions() {
        let g0 = StructuralState::from_entities([e(0), e(1), e(9)]);
        let w = padded_witness();
        assert!(!is_serializable(&w));
        let min = minimize_witness(&w, &g0);
        assert_eq!(min.participants().len(), 2);
        assert!(!is_serializable(&min));
        assert!(min.is_legal());
        assert!(min.is_proper(&g0));
        assert!(!min.participants().contains(&t(3)));
    }

    #[test]
    fn already_minimal_witness_is_unchanged() {
        let g0 = StructuralState::from_entities([e(0), e(1), e(9)]);
        let w = padded_witness();
        let min = minimize_witness(&w, &g0);
        let min2 = minimize_witness(&min, &g0);
        assert_eq!(min, min2);
    }

    #[test]
    fn never_reduces_below_two_transactions() {
        let g0 = StructuralState::from_entities([e(0)]);
        // A serializable 2-tx schedule: minimizer must keep >= 2 parts and
        // will simply return it unchanged (nothing improves).
        let s = Schedule::from_steps(vec![
            ScheduledStep::new(t(1), Step::read(e(0))),
            ScheduledStep::new(t(2), Step::read(e(0))),
        ]);
        let min = minimize_witness(&s, &g0);
        assert_eq!(min, s);
    }
}
