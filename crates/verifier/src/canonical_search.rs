//! Search for canonical nonserializable schedules — the operational form
//! of Theorem 1.
//!
//! Instead of exploring *all* interleavings, this search enumerates only
//! the highly structured candidates the theorem quantifies over:
//!
//! 1. a culprit `Tc` and a lock step `(L A*)` preceded by some unlock
//!    (condition 1);
//! 2. a subset of other transactions with one prefix each, executed
//!    **serially** in some order (so the candidate partial schedules are
//!    serial — the whole point of the theorem);
//! 3. a cheap check of condition 2a (every sink of `D(S')` unlocks `A*` in
//!    a conflicting mode);
//! 4. a completion search for condition 2b (delegated to
//!    [`crate::explorer::complete_schedule`]).
//!
//! By Theorem 1, this search finds a witness **iff** the system is unsafe —
//! experiment E6 cross-validates exactly that against the exhaustive
//! explorer on randomized systems.

use crate::explorer::{complete_schedule, SearchBudget};
use slp_core::canonical::CanonicalWitness;
use slp_core::{
    ConflictIndex, EdgeSet, Operation, Schedule, ScheduleSimulator, ScheduledStep,
    TransactionSystem, TxId,
};
use std::fmt;

/// Budget for the canonical search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CanonicalBudget {
    /// Maximum number of candidate serial prefixes to test.
    pub max_candidates: usize,
    /// Budget for each condition-2b completion search.
    pub completion: SearchBudget,
}

impl Default for CanonicalBudget {
    fn default() -> Self {
        CanonicalBudget {
            max_candidates: 500_000,
            completion: SearchBudget {
                max_states: 200_000,
                use_memo: true,
            },
        }
    }
}

/// Statistics of a canonical search run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CanonicalStats {
    /// Serial candidates enumerated.
    pub candidates: usize,
    /// Candidates surviving conditions 1 + 2a (completion attempted).
    pub completions_tried: usize,
}

impl fmt::Display for CanonicalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} candidates, {} completions tried",
            self.candidates, self.completions_tried
        )
    }
}

/// The outcome of a canonical search.
#[derive(Clone, Debug)]
pub enum CanonicalOutcome {
    /// No canonical witness exists (within budget): by Theorem 1 the
    /// system is safe.
    NoWitness(CanonicalStats),
    /// A canonical witness was found: the system is unsafe.
    Witness {
        /// The verified certificate.
        witness: CanonicalWitness,
        /// Search statistics.
        stats: CanonicalStats,
    },
    /// The candidate budget was exhausted.
    Exhausted(CanonicalStats),
}

impl CanonicalOutcome {
    /// The witness, if found.
    pub fn witness(&self) -> Option<&CanonicalWitness> {
        match self {
            CanonicalOutcome::Witness { witness, .. } => Some(witness),
            _ => None,
        }
    }

    /// The run's statistics.
    pub fn stats(&self) -> CanonicalStats {
        match self {
            CanonicalOutcome::NoWitness(s)
            | CanonicalOutcome::Exhausted(s)
            | CanonicalOutcome::Witness { stats: s, .. } => *s,
        }
    }
}

/// All permutations of `items` (small inputs only).
fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest = items.to_vec();
        let x = rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x.clone());
            out.push(p);
        }
    }
    out
}

/// Enumerates subsets of `items` in order of increasing size (excluding the
/// empty set handled by the caller as needed).
fn subsets<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = (0..(1usize << items.len()))
        .map(|mask| {
            items
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, x)| x.clone())
                .collect()
        })
        .collect();
    out.sort_by_key(Vec::len);
    out
}

/// Searches for a canonical nonserializable schedule of `system`.
pub fn find_canonical_witness(
    system: &TransactionSystem,
    budget: CanonicalBudget,
) -> CanonicalOutcome {
    let mut stats = CanonicalStats::default();
    let ids = system.ids();

    for &tc_id in &ids {
        let tc = system.get(tc_id).expect("listed");
        for lock_pos in tc.lock_positions() {
            // Condition 1: Tc must have unlocked something earlier.
            if !tc.unlocked_anything_by(lock_pos) {
                continue;
            }
            let a_star = tc.steps[lock_pos].entity;
            let Operation::Lock(tc_mode) = tc.steps[lock_pos].op else {
                continue;
            };
            // At-most-once: Tc must not have locked A* in its prefix.
            if tc.steps[..lock_pos]
                .iter()
                .any(|s| s.is_lock() && s.entity == a_star)
            {
                continue;
            }
            let others: Vec<TxId> = ids.iter().copied().filter(|&t| t != tc_id).collect();
            for subset in subsets(&others) {
                if subset.is_empty() {
                    continue; // k > 1 required
                }
                // Prefix-length choices per subset member. A useful prefix
                // for a potential sink must reach past an unlock of A*; we
                // enumerate all nonempty prefixes and let 2a filter.
                let lens: Vec<Vec<usize>> = subset
                    .iter()
                    .map(|&t| (1..=system.get(t).expect("listed").len()).collect())
                    .collect();
                let mut combo = vec![0usize; subset.len()];
                loop {
                    let prefix_lens: Vec<(TxId, usize)> = subset
                        .iter()
                        .zip(&combo)
                        .map(|(&t, &ci)| {
                            (t, lens[subset.iter().position(|&x| x == t).unwrap()][ci])
                        })
                        .collect();
                    // Orders: permutations of subset ∪ {tc}.
                    let mut participants: Vec<(TxId, usize)> = prefix_lens.clone();
                    participants.push((tc_id, lock_pos));
                    for order in permutations(&participants) {
                        stats.candidates += 1;
                        if stats.candidates > budget.max_candidates {
                            return CanonicalOutcome::Exhausted(stats);
                        }
                        if let Some(witness) = try_candidate(
                            system, tc_id, a_star, lock_pos, tc_mode, &order, budget, &mut stats,
                        ) {
                            return CanonicalOutcome::Witness { witness, stats };
                        }
                    }
                    // Advance the mixed-radix prefix-length counter.
                    let mut i = 0;
                    loop {
                        if i == combo.len() {
                            break;
                        }
                        combo[i] += 1;
                        if combo[i] < lens[i].len() {
                            break;
                        }
                        combo[i] = 0;
                        i += 1;
                    }
                    if i == combo.len() {
                        break;
                    }
                }
            }
        }
    }
    CanonicalOutcome::NoWitness(stats)
}

#[allow(clippy::too_many_arguments)]
fn try_candidate(
    system: &TransactionSystem,
    tc_id: TxId,
    a_star: slp_core::EntityId,
    lock_pos: usize,
    tc_mode: slp_core::LockMode,
    order: &[(TxId, usize)],
    budget: CanonicalBudget,
    stats: &mut CanonicalStats,
) -> Option<CanonicalWitness> {
    // Build S' incrementally: one simulator pass checks legality and
    // properness together (instead of two full re-scans of the serial
    // schedule), while a ConflictIndex accumulates the D(S')-edge set —
    // the same apply-side machinery the exhaustive explorer drives. The
    // EdgeSet picks its own representation from k, so candidates of any
    // width take this one path (the old k > 11 SerializationGraph fallback
    // is gone).
    let k = order.len();
    let mut sim = ScheduleSimulator::new(system.initial_state().clone());
    let mut index = ConflictIndex::new(k);
    let mut edges = EdgeSet::empty(k);
    let mut s_prime = Schedule::empty();
    for (oi, &(id, len)) in order.iter().enumerate() {
        let t = system.get(id).expect("listed");
        for &step in &t.steps[..len] {
            if sim.apply(id, &step).is_err() {
                return None; // S' illegal or improper
            }
            if let Some(d) = index.edge_delta(oi, &step) {
                edges.union_with(&d);
            }
            index.push(oi, step);
            s_prime.push(ScheduledStep::new(id, step));
        }
    }
    // Condition 2a. Every order member has a nonempty prefix, so the dense
    // order position is the edge-set row; a sink is a row with no
    // out-edges.
    let sinks: Vec<TxId> = (0..k)
        .filter(|&oi| !edges.has_out_edges(oi))
        .map(|oi| order[oi].0)
        .collect();
    for sink in sinks {
        let (_, plen) = order.iter().find(|&&(id, _)| id == sink)?;
        let t = system.get(sink).expect("listed");
        let prefix = &t.steps[..*plen];
        let locked_conflicting = prefix.iter().any(|s| {
            matches!(s.op, Operation::Lock(m) if s.entity == a_star && !m.compatible_with(tc_mode))
        });
        let unlocked = prefix.iter().any(|s| s.is_unlock() && s.entity == a_star);
        let still_held = t.holds_lock_at(*plen, a_star).is_some();
        if !(locked_conflicting && unlocked && !still_held) {
            return None;
        }
    }
    // Condition 2b: completion search.
    stats.completions_tried += 1;
    let extension = complete_schedule(system, &s_prime, budget.completion)?;
    let witness = CanonicalWitness {
        tc: tc_id,
        a_star,
        lock_pos,
        order: order.to_vec(),
        extension,
    };
    // Final sanity: the certificate must verify.
    witness.verify(system).ok()?;
    Some(witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::verify_safety;
    use slp_core::SystemBuilder;

    fn short_lock_system() -> TransactionSystem {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        b.tx(1)
            .lx("x")
            .write("x")
            .ux("x")
            .lx("y")
            .write("y")
            .ux("y")
            .finish();
        b.tx(2)
            .lx("x")
            .write("x")
            .ux("x")
            .lx("y")
            .write("y")
            .ux("y")
            .finish();
        b.build()
    }

    fn two_phase_system() -> TransactionSystem {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        b.tx(1)
            .lx("x")
            .write("x")
            .lx("y")
            .write("y")
            .ux("x")
            .ux("y")
            .finish();
        b.tx(2)
            .lx("y")
            .write("y")
            .lx("x")
            .write("x")
            .ux("y")
            .ux("x")
            .finish();
        b.build()
    }

    #[test]
    fn unsafe_system_yields_verified_witness() {
        let system = short_lock_system();
        let outcome = find_canonical_witness(&system, CanonicalBudget::default());
        let witness = outcome
            .witness()
            .expect("unsafe system has a canonical witness");
        assert_eq!(witness.verify(&system), Ok(()));
        // The theorem's "if" direction: the extension is nonserializable.
        assert!(!slp_core::is_serializable(&witness.extension));
    }

    #[test]
    fn safe_system_yields_no_witness() {
        let outcome = find_canonical_witness(&two_phase_system(), CanonicalBudget::default());
        assert!(outcome.witness().is_none());
        assert!(matches!(outcome, CanonicalOutcome::NoWitness(_)));
    }

    #[test]
    fn agrees_with_exhaustive_search_on_fixed_systems() {
        for (system, expect_unsafe) in [(short_lock_system(), true), (two_phase_system(), false)] {
            let exhaustive = verify_safety(&system, Default::default());
            let canonical = find_canonical_witness(&system, CanonicalBudget::default());
            assert_eq!(exhaustive.is_unsafe(), expect_unsafe);
            assert_eq!(canonical.witness().is_some(), expect_unsafe);
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let outcome = find_canonical_witness(
            &short_lock_system(),
            CanonicalBudget {
                max_candidates: 1,
                completion: Default::default(),
            },
        );
        assert!(matches!(
            outcome,
            CanonicalOutcome::Exhausted(_) | CanonicalOutcome::Witness { .. }
        ));
    }

    #[test]
    fn two_phase_culprits_are_never_candidates() {
        // A system where every transaction is two-phase generates zero
        // completion attempts (condition 1 filters everything).
        let outcome = find_canonical_witness(&two_phase_system(), CanonicalBudget::default());
        assert_eq!(outcome.stats().completions_tried, 0);
    }

    #[test]
    fn permutation_and_subset_helpers() {
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations::<u32>(&[]).len(), 1);
        let subs = subsets(&[1, 2]);
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0], Vec::<i32>::new());
        assert_eq!(subs.last().unwrap().len(), 2);
    }
}
