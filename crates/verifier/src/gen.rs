//! Randomized locked-transaction-system generation (experiment E6).
//!
//! The cross-validation of Theorem 1 needs a stream of *small, valid, but
//! adversarial* systems: well-formed locked transactions (lock discipline
//! intact) that are deliberately **not** all two-phase, over a dynamic
//! database (some entities initially absent, some inserted/deleted). The
//! exhaustive explorer and the canonical search must then agree on every
//! one of them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slp_core::{
    DataOp, EntityId, LockMode, Step, StructuralState, SystemBuilder, TransactionSystem,
};

/// Parameters for system generation.
#[derive(Clone, Copy, Debug)]
pub struct GenParams {
    /// Number of transactions (keep ≤ 4 for exhaustive verification).
    pub transactions: usize,
    /// Number of distinct entities.
    pub entities: usize,
    /// Target number of *lock sessions* per transaction (each session
    /// locks one entity, performs 1–2 data ops, and unlocks it somewhere
    /// later).
    pub sessions_per_tx: usize,
    /// Probability that a session performs a structural (`I`/`D`) rather
    /// than value (`R`/`W`) operation.
    pub structural_prob: f64,
    /// Probability that a transaction is generated two-phase (unlocks only
    /// at the end). Lower values produce more unsafe systems.
    pub two_phase_prob: f64,
    /// Probability that each entity exists in the initial structural
    /// state. With 1.0 and `structural_prob` 0.0, systems are purely
    /// read/write and every interleaving is proper.
    pub presence_prob: f64,
    /// Probability that a read-only lock session uses a shared lock.
    /// Set to 0.0 to generate exclusive-only systems (Section 3.3).
    pub shared_lock_prob: f64,
    /// Number of extra *padding* transactions appended after the main
    /// ones: each is a single exclusive lock step (never released) on a
    /// padding-only entity shared by at most one other padding
    /// transaction. Padding never touches main-transaction entities and
    /// never produces a `D(S)` edge (a pair's second locker is blocked
    /// forever), so it cannot change the safety verdict — but it widens
    /// the dense transaction index space at only ~3 reachable position
    /// combinations per pair. This is how the differential tests generate
    /// the `k > 11` regime — wide edge sets and memo keys — without an
    /// intractable state space.
    pub padding_txs: usize,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            transactions: 3,
            entities: 3,
            sessions_per_tx: 2,
            structural_prob: 0.2,
            two_phase_prob: 0.3,
            presence_prob: 0.5,
            shared_lock_prob: 0.7,
            padding_txs: 0,
        }
    }
}

/// Generates a random valid locked transaction system from a seed.
/// Deterministic: the same seed and parameters yield the same system.
pub fn random_system(params: GenParams, seed: u64) -> TransactionSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SystemBuilder::new();
    let names: Vec<String> = (0..params.entities).map(|i| format!("e{i}")).collect();
    let entity_ids: Vec<EntityId> = names.iter().map(|n| b.entity(n)).collect();
    // Initial structural state: each entity exists with presence_prob.
    let mut exists = vec![false; params.entities];
    for (i, name) in names.iter().enumerate() {
        if rng.random_bool(params.presence_prob) {
            b.exists(name);
            exists[i] = true;
        }
    }

    for tx_num in 0..params.transactions {
        let two_phase = rng.random_bool(params.two_phase_prob);
        let mut steps: Vec<Step> = Vec::new();
        let mut available: Vec<usize> = (0..params.entities).collect();
        let mut deferred_unlocks: Vec<Step> = Vec::new();
        // Track this transaction's view of entity presence so its own
        // serial execution is structurally consistent.
        let mut present = exists.clone();

        for _ in 0..params.sessions_per_tx {
            if available.is_empty() {
                break;
            }
            let pick = rng.random_range(0..available.len());
            let ei = available.swap_remove(pick);
            let e = entity_ids[ei];
            let structural = rng.random_bool(params.structural_prob);
            let ops: Vec<DataOp> = if structural {
                if present[ei] {
                    present[ei] = false;
                    vec![DataOp::Delete]
                } else {
                    present[ei] = true;
                    vec![DataOp::Insert]
                }
            } else if !present[ei] {
                // Cannot read/write an absent entity in this tx's view;
                // insert it instead.
                present[ei] = true;
                vec![DataOp::Insert]
            } else if rng.random_bool(0.5) {
                vec![DataOp::Read]
            } else if rng.random_bool(0.5) {
                vec![DataOp::Write]
            } else {
                vec![DataOp::Read, DataOp::Write]
            };
            let mode = if ops.iter().all(|&o| o == DataOp::Read)
                && params.shared_lock_prob > 0.0
                && rng.random_bool(params.shared_lock_prob)
            {
                LockMode::Shared
            } else {
                LockMode::Exclusive
            };
            steps.push(Step::lock(mode, e));
            for op in ops {
                steps.push(Step::new(op, e));
            }
            if two_phase {
                deferred_unlocks.push(Step::unlock(mode, e));
            } else {
                steps.push(Step::unlock(mode, e));
            }
        }
        steps.extend(deferred_unlocks);
        b.add_transaction(slp_core::LockedTransaction::new(
            slp_core::TxId(tx_num as u32 + 1),
            steps,
        ));
    }
    for p in 0..params.padding_txs {
        let e = b.entity(&format!("pad{}", p / 2));
        b.add_transaction(slp_core::LockedTransaction::new(
            slp_core::TxId((params.transactions + p) as u32 + 1),
            vec![Step::lock(LockMode::Exclusive, e)],
        ));
    }
    b.build()
}

/// Convenience: the initial structural state of a generated system.
pub fn initial_state(system: &TransactionSystem) -> &StructuralState {
    system.initial_state()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_systems_are_valid() {
        for seed in 0..200 {
            let system = random_system(GenParams::default(), seed);
            assert!(
                system.validate().is_ok(),
                "seed {seed} generated an invalid transaction"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_system(GenParams::default(), 42);
        let b = random_system(GenParams::default(), 42);
        assert_eq!(a.transactions(), b.transactions());
        assert_eq!(a.initial_state(), b.initial_state());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_system(GenParams::default(), 1);
        let b = random_system(GenParams::default(), 2);
        // Not a hard guarantee per pair, but these two seeds do differ.
        assert!(a.transactions() != b.transactions() || a.initial_state() != b.initial_state());
    }

    #[test]
    fn non_two_phase_transactions_occur() {
        let mut any_non_2pl = false;
        for seed in 0..50 {
            let system = random_system(GenParams::default(), seed);
            if system.transactions().iter().any(|t| !t.is_two_phase()) {
                any_non_2pl = true;
                break;
            }
        }
        assert!(
            any_non_2pl,
            "generator never produced a non-2PL transaction"
        );
    }

    #[test]
    fn padding_txs_widen_k_without_conflicts() {
        let params = GenParams {
            transactions: 2,
            padding_txs: 10,
            ..GenParams::default()
        };
        for seed in 0..20 {
            let system = random_system(params, seed);
            assert_eq!(system.transactions().len(), 12);
            assert!(system.validate().is_ok(), "seed {seed}");
            // Padding transactions are single lock steps on entities no
            // main transaction touches and at most one *other* padding
            // transaction shares.
            let (main, pads) = system.transactions().split_at(2);
            for p in pads {
                assert_eq!(p.len(), 1);
                assert!(p.steps[0].is_lock());
                let e = p.steps[0].entity;
                for m in main {
                    assert!(
                        m.steps.iter().all(|s| s.entity != e),
                        "padding entity shared with main {}",
                        m.id
                    );
                }
                let sharers = pads
                    .iter()
                    .filter(|q| q.id != p.id && q.steps[0].entity == e)
                    .count();
                assert!(sharers <= 1, "padding entity shared {sharers} ways");
            }
        }
    }

    #[test]
    fn own_serial_execution_is_proper() {
        // Each transaction alone, run from the initial state, is proper
        // (the generator tracks its view of presence).
        for seed in 0..100 {
            let system = random_system(GenParams::default(), seed);
            for t in system.transactions() {
                let s = slp_core::Schedule::serial([t]);
                assert!(
                    s.is_proper(system.initial_state()),
                    "seed {seed}, {}: serial execution improper",
                    t.id
                );
            }
        }
    }
}
