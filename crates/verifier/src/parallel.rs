//! Work-stealing parallel safety verification.
//!
//! [`verify_safety_parallel`] decides the same question as
//! [`crate::explorer::verify_safety`] — *does a legal, proper,
//! nonserializable complete schedule exist?* — by running the apply/undo
//! DFS on a fixed pool of `std::thread` workers (the vendored
//! [`workpool`] shim; no crates.io access) that cooperate through three
//! pieces of shared state:
//!
//! * **A task queue of subtree roots.** A task is the *path* (dense
//!   transaction indices) from the empty schedule to a search node; the
//!   receiving worker replays it through its private simulator /
//!   [`ConflictIndex`] / [`EdgeSet`] and explores the subtree. Work
//!   *stealing* is donation-based: whenever a worker is about to descend
//!   into a sibling subtree while other workers sit idle, it pushes the
//!   sibling as a task instead of recursing — the first worker starts at
//!   the root and the frontier fans out on demand, so no static
//!   partitioning is needed and skewed subtrees rebalance automatically.
//! * **A sharded memo table.** The visited-state set is split across
//!   `MEMO_SHARDS` `Mutex<FxHashSet>` shards keyed by key hash, so
//!   concurrent probes rarely contend. Sharing it across workers preserves
//!   the sequential search's pruning: a state fully explored by *any*
//!   worker is skipped by all. Soundness is unchanged — entries are only
//!   inserted for subtrees explored to exhaustion with no witness, and a
//!   frame whose children were donated or truncated (cancel/budget)
//!   inserts nothing, so a memo hit always means "no witness below".
//! * **An early-cancel flag.** The first worker to reach a
//!   nonserializable completion records it and flips an `AtomicBool`;
//!   every worker polls the flag once per node and unwinds.
//!
//! # What is (and is not) deterministic
//!
//! With an ample budget the **verdict** is deterministic and identical to
//! the sequential explorer's: the task queue partitions the search space
//! exactly (every donated subtree is explored before termination), so a
//! witness is found iff one exists. The *witness schedule* and the search
//! statistics may vary run to run — which subtree reaches a witness first
//! is a race, and memo-race duplication can revisit states. When the
//! budget trips, `Exhausted` frontiers are likewise race-dependent.
//! `verifier/tests/parallel_agreement.rs` locks the verdict guarantees
//! down differentially, across seeds, thread counts, and repeated runs.

use crate::explorer::{PositionBook, SearchBudget, SearchStats, Verdict};
use rustc_hash::{FxHashSet, FxHasher};
use slp_core::{
    pack_positions, ConflictIndex, EdgeSet, LockedTransaction, Schedule, ScheduleSimulator,
    ScheduledStep, TransactionSystem, TxId,
};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use workpool::{PoolJob, ThreadPool};

/// Shards of the shared memo table. A power of two well above any sane
/// worker count, so concurrent probes mostly land on distinct mutexes.
const MEMO_SHARDS: usize = 64;

/// Workers flush their *consumed* state counts into the shared total (and
/// check it against the budget) every this many nodes — one atomic RMW
/// per chunk instead of per node. Exhaustion triggers only when states
/// actually visited reach `max_states`, so a search that fits its budget
/// can never spuriously report `Exhausted`; the cost is overshoot — up to
/// `threads * STATE_CHUNK` states may be visited past the limit before
/// every worker notices. Budgets smaller than the chunk are flushed at
/// budget granularity, keeping tiny-budget exhaustion prompt.
const STATE_CHUNK: usize = 256;

/// A hash-sharded concurrent set: `contains`/`insert` lock only the shard
/// the key hashes to.
struct Sharded<K> {
    shards: Vec<Mutex<FxHashSet<K>>>,
}

impl<K: Hash + Eq> Sharded<K> {
    fn new() -> Self {
        Sharded {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(FxHashSet::default()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<FxHashSet<K>> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // Shard on the HIGH hash bits: the inner hash table derives its
        // bucket index from the low bits, so sharding on those would give
        // every key in a shard the same low 6 bits and cluster them onto
        // every 64th bucket.
        &self.shards[(h.finish() >> 58) as usize % MEMO_SHARDS]
    }

    fn contains(&self, key: &K) -> bool {
        self.shard(key).lock().expect("memo shard").contains(key)
    }

    fn insert(&self, key: K) {
        self.shard(&key).lock().expect("memo shard").insert(key);
    }
}

/// A hash-sharded concurrent interner: same value → same `u64` id across
/// all workers (the id is assigned under the value's shard lock, and ids
/// from different shards never collide — shard index is folded into the
/// id). [`ShardedInterner::get`] borrows the probe value, so probing an
/// already-seen `EdgeSet` or position vector allocates nothing; a value
/// is cloned exactly once, by the first worker to insert it.
struct ShardedInterner<K> {
    shards: Vec<Mutex<rustc_hash::FxHashMap<K, u64>>>,
}

impl<K: Hash + Eq> ShardedInterner<K> {
    fn new() -> Self {
        ShardedInterner {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(rustc_hash::FxHashMap::default()))
                .collect(),
        }
    }

    fn shard_of<Q: Hash + ?Sized>(&self, value: &Q) -> usize {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        (h.finish() >> 58) as usize % MEMO_SHARDS
    }

    /// The id of `value` if any worker ever interned it. Allocation-free.
    fn get<Q>(&self, value: &Q) -> Option<u64>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let i = self.shard_of(value);
        self.shards[i]
            .lock()
            .expect("interner shard")
            .get(value)
            .copied()
    }

    /// Interns `value`, cloning it only on first sight (across workers).
    fn intern<Q>(&self, value: &Q) -> u64
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        let i = self.shard_of(value);
        let mut shard = self.shards[i].lock().expect("interner shard");
        if let Some(&id) = shard.get(value) {
            return id;
        }
        // Globally unique: the per-shard sequence number composed with the
        // shard index (ids from distinct shards occupy distinct residues).
        let id = (shard.len() as u64) * MEMO_SHARDS as u64 + i as u64;
        shard.insert(value.to_owned(), id);
        id
    }
}

/// The shared visited-state set, with the same three key shapes as the
/// sequential [`crate::explorer`] memo (see its `Memo` docs). The shape
/// selection and key construction deliberately mirror that type — change
/// them in lockstep, or the two searches' pruning (and the differential
/// tests comparing them) will diverge. Wide keys intern their `EdgeSet` /
/// position-vector halves, so probes are allocation-free here too.
enum SharedMemo {
    Packed(Sharded<(u128, u128)>),
    PackedEdges {
        set: Sharded<(u128, u64)>,
        edges: ShardedInterner<EdgeSet>,
    },
    Wide {
        set: Sharded<(u64, u64)>,
        positions: ShardedInterner<Vec<u16>>,
        edges: ShardedInterner<EdgeSet>,
    },
}

impl SharedMemo {
    fn for_system(packable: bool, small_edges: bool) -> SharedMemo {
        match (packable, small_edges) {
            (true, true) => SharedMemo::Packed(Sharded::new()),
            (true, false) => SharedMemo::PackedEdges {
                set: Sharded::new(),
                edges: ShardedInterner::new(),
            },
            (false, _) => SharedMemo::Wide {
                set: Sharded::new(),
                positions: ShardedInterner::new(),
                edges: ShardedInterner::new(),
            },
        }
    }

    fn contains(&self, packed: u128, positions: &[u16], edges: &EdgeSet) -> bool {
        match self {
            SharedMemo::Packed(s) => {
                s.contains(&(packed, edges.as_small_mask().expect("small edges")))
            }
            // An un-interned value was never part of an inserted key, so
            // the memo cannot contain the state: answer without cloning.
            // (A racing insert between the interner probe and the set
            // probe only turns a hit into a miss — duplicated work, never
            // missed pruning soundness.)
            SharedMemo::PackedEdges { set, edges: ids } => {
                ids.get(edges).is_some_and(|e| set.contains(&(packed, e)))
            }
            SharedMemo::Wide {
                set,
                positions: pos_ids,
                edges: edge_ids,
            } => match (pos_ids.get(positions), edge_ids.get(edges)) {
                (Some(p), Some(e)) => set.contains(&(p, e)),
                _ => false,
            },
        }
    }

    fn insert(&self, packed: u128, positions: &[u16], edges: &EdgeSet) {
        match self {
            SharedMemo::Packed(s) => {
                s.insert((packed, edges.as_small_mask().expect("small edges")));
            }
            SharedMemo::PackedEdges { set, edges: ids } => {
                let e = ids.intern(edges);
                set.insert((packed, e));
            }
            SharedMemo::Wide {
                set,
                positions: pos_ids,
                edges: edge_ids,
            } => {
                let p = pos_ids.intern(positions);
                let e = edge_ids.intern(edges);
                set.insert((p, e));
            }
        }
    }
}

/// A subtree of the search space: the dense-index path from the empty
/// schedule to its root node. Compact to donate, cheap to replay
/// (`O(path)` step applications).
struct Task {
    path: Vec<u32>,
}

struct TaskQueue {
    tasks: Vec<Task>,
    /// Tasks enqueued or currently being executed; the search space is
    /// covered exactly when this reaches zero.
    pending: usize,
}

/// All state shared by the workers of one verification run.
struct VerifyJob {
    system: TransactionSystem,
    ids: Vec<TxId>,
    /// Template position bookkeeping (zeroed counters) cloned by each
    /// worker — the packability bound is thereby derived in exactly one
    /// place, `PositionBook::new`, for both explorers.
    book: PositionBook,
    k: usize,
    budget: SearchBudget,
    memo: SharedMemo,
    queue: Mutex<TaskQueue>,
    task_cv: Condvar,
    /// Workers currently parked waiting for a task — the donation signal.
    idle: AtomicUsize,
    /// Set when the run should stop — witness found or budget exhausted
    /// (never cleared): all workers unwind and drain.
    cancel: AtomicBool,
    budget_hit: AtomicBool,
    /// Search states consumed across all workers, flushed in chunks (see
    /// [`STATE_CHUNK`]); compared against `budget.max_states`.
    states_counted: AtomicUsize,
    witness: Mutex<Option<Schedule>>,
    // Aggregated statistics, flushed once per worker at the end.
    states: AtomicUsize,
    memo_hits: AtomicUsize,
    completions: AtomicUsize,
    undo_ops: AtomicUsize,
}

impl VerifyJob {
    fn new(system: TransactionSystem, budget: SearchBudget) -> Self {
        let ids = system.ids();
        let lens: Vec<u16> = ids
            .iter()
            .map(|&id| system.get(id).expect("listed id").len() as u16)
            .collect();
        let k = ids.len();
        let book = PositionBook::new(lens);
        let small_edges = k <= ConflictIndex::MAX_TXS;
        let memo = SharedMemo::for_system(book.packable, small_edges);
        VerifyJob {
            system,
            ids,
            book,
            k,
            budget,
            memo,
            queue: Mutex::new(TaskQueue {
                tasks: vec![Task { path: Vec::new() }],
                pending: 1,
            }),
            task_cv: Condvar::new(),
            idle: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            budget_hit: AtomicBool::new(false),
            states_counted: AtomicUsize::new(0),
            witness: Mutex::new(None),
            states: AtomicUsize::new(0),
            memo_hits: AtomicUsize::new(0),
            completions: AtomicUsize::new(0),
            undo_ops: AtomicUsize::new(0),
        }
    }

    fn stats(&self) -> SearchStats {
        SearchStats {
            states: self.states.load(Ordering::SeqCst),
            memo_hits: self.memo_hits.load(Ordering::SeqCst),
            completions: self.completions.load(Ordering::SeqCst),
            undo_ops: self.undo_ops.load(Ordering::SeqCst),
        }
    }
}

impl PoolJob for VerifyJob {
    fn run(&self, _worker: usize) {
        Worker::new(self).run();
    }
}

/// Outcome of one worker's exploration of a subtree node.
enum Dfs {
    /// A witness was found (already recorded on the job).
    Found,
    /// Fully explored by this worker: no witness below; memoizable.
    NotFound,
    /// Some children were donated to other workers: no witness found
    /// *here*, but the frame is not fully explored by this worker, so
    /// neither it nor its ancestors may be memoized.
    Donated,
    /// Unwound early (cancel or budget): nothing may be memoized.
    Pruned,
}

/// One worker's private search state, rebuilt per task by path replay.
struct Worker<'j> {
    job: &'j VerifyJob,
    txs: Vec<&'j LockedTransaction>,
    positions: Vec<u16>,
    /// Dense-index path to the current node — the donation currency.
    path: Vec<u32>,
    /// Position bookkeeping (packed memo-key word, started/finished) —
    /// the same [`PositionBook`] the sequential explorer maintains.
    book: PositionBook,
    sim: ScheduleSimulator,
    schedule: Schedule,
    index: ConflictIndex,
    edges: EdgeSet,
    stats: SearchStats,
    /// States visited since the last flush into `VerifyJob::states_counted`.
    unflushed: usize,
}

impl<'j> Worker<'j> {
    fn new(job: &'j VerifyJob) -> Self {
        let txs = job
            .ids
            .iter()
            .map(|&id| job.system.get(id).expect("listed id"))
            .collect();
        Worker {
            job,
            txs,
            positions: vec![0; job.k],
            path: Vec::new(),
            book: job.book.clone(),
            sim: ScheduleSimulator::new(job.system.initial_state().clone()),
            schedule: Schedule::empty(),
            index: ConflictIndex::new(job.k),
            edges: EdgeSet::empty(job.k),
            stats: SearchStats::default(),
            unflushed: 0,
        }
    }

    /// Flushes this worker's unflushed state count into the shared total,
    /// returning the updated total.
    fn flush_states(&mut self) -> usize {
        let total = self
            .job
            .states_counted
            .fetch_add(self.unflushed, Ordering::Relaxed)
            + self.unflushed;
        self.unflushed = 0;
        total
    }

    fn memo_contains(&mut self) -> bool {
        self.job
            .memo
            .contains(self.book.packed, &self.positions, &self.edges)
    }

    fn memo_insert(&mut self) {
        self.job
            .memo
            .insert(self.book.packed, &self.positions, &self.edges);
    }

    fn run(&mut self) {
        while let Some(task) = self.next_task() {
            self.run_task(task);
            self.flush_states();
            let mut q = self.job.queue.lock().expect("task queue");
            q.pending -= 1;
            if q.pending == 0 {
                drop(q);
                self.job.task_cv.notify_all();
            }
        }
        // Flush private statistics into the shared totals.
        self.job
            .states
            .fetch_add(self.stats.states, Ordering::SeqCst);
        self.job
            .memo_hits
            .fetch_add(self.stats.memo_hits, Ordering::SeqCst);
        self.job
            .completions
            .fetch_add(self.stats.completions, Ordering::SeqCst);
        self.job
            .undo_ops
            .fetch_add(self.stats.undo_ops, Ordering::SeqCst);
    }

    /// Pops a task, parking on the condvar while the queue is empty but
    /// other workers still hold pending tasks (which they may split).
    /// Returns `None` when the space is covered or the run is cancelled.
    fn next_task(&self) -> Option<Task> {
        let mut q = self.job.queue.lock().expect("task queue");
        loop {
            if self.job.cancel.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(t) = q.tasks.pop() {
                return Some(t);
            }
            if q.pending == 0 {
                return None;
            }
            self.job.idle.fetch_add(1, Ordering::Relaxed);
            q = self.job.task_cv.wait(q).expect("task queue");
            self.job.idle.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Replays `task`'s path from the empty schedule, then explores the
    /// subtree rooted there.
    fn run_task(&mut self, task: Task) {
        let job = self.job;
        self.positions.fill(0);
        self.book.reset();
        self.sim = ScheduleSimulator::new(job.system.initial_state().clone());
        self.schedule = Schedule::empty();
        self.index = ConflictIndex::new(job.k);
        self.edges = EdgeSet::empty(job.k);
        self.path = task.path;
        for pi in 0..self.path.len() {
            let i = self.path[pi] as usize;
            let id = job.ids[i];
            let step = self.txs[i].steps[self.positions[i] as usize];
            if let Some(d) = self.index.edge_delta(i, &step) {
                self.edges.union_with(&d);
            }
            self.index.push(i, step);
            self.sim
                .apply(id, &step)
                .expect("donated paths are legal and proper by construction");
            self.schedule.push(ScheduledStep::new(id, step));
            self.book.take(&mut self.positions, i);
        }
        debug_assert!(
            !job.book.packable || Some(self.book.packed) == pack_positions(&self.positions),
            "incrementally maintained packed key diverged from pack_positions"
        );
        // The node may have been memoized between donation and pickup by a
        // worker that reached the same (positions, edges) state elsewhere.
        if job.budget.use_memo && !self.path.is_empty() && self.memo_contains() {
            self.stats.memo_hits += 1;
            return;
        }
        if let Dfs::NotFound = self.dfs() {
            // Mirror of the sequential parent's post-recursion insert: the
            // subtree root is now fully explored with no witness.
            if job.budget.use_memo && !self.path.is_empty() {
                self.memo_insert();
            }
        }
    }

    /// Records the first witness found and cancels all workers.
    fn offer_witness(&self) {
        {
            let mut w = self.job.witness.lock().expect("witness slot");
            if w.is_none() {
                *w = Some(self.schedule.clone());
            }
        }
        self.cancel_all();
    }

    /// Stops the whole search: used on witness discovery and on budget
    /// exhaustion (the verdict is picked from the witness slot and the
    /// `budget_hit` flag, not from `cancel`).
    ///
    /// The cancel flag is published and broadcast **while holding the
    /// queue mutex**: `next_task` checks the flag under that same mutex
    /// before parking, so publishing outside it could slot a store +
    /// `notify_all` into the window between a worker's flag check and its
    /// `wait` — a lost wakeup that would park the worker forever (queued
    /// tasks orphaned by cancellation keep `pending > 0`, so no later
    /// notification would come).
    fn cancel_all(&self) {
        let _q = self.job.queue.lock().expect("task queue");
        self.job.cancel.store(true, Ordering::SeqCst);
        self.job.task_cv.notify_all();
    }

    fn dfs(&mut self) -> Dfs {
        let job = self.job;
        if job.cancel.load(Ordering::Relaxed) {
            return Dfs::Pruned;
        }
        self.stats.states += 1;
        self.unflushed += 1;
        if self.unflushed >= STATE_CHUNK.min(job.budget.max_states.max(1)) {
            // Strictly greater: a search space of exactly `max_states`
            // states completes (the sequential explorer only exhausts when
            // it attempts state `max_states + 1`).
            if self.flush_states() > job.budget.max_states {
                job.budget_hit.store(true, Ordering::SeqCst);
                // Cancel the whole run so queued tasks are abandoned
                // instead of each being explored up to its own flush
                // boundary, keeping post-exhaustion overshoot bounded.
                self.cancel_all();
                return Dfs::Pruned;
            }
        }

        if self.book.started == self.book.finished && self.book.started > 0 {
            self.stats.completions += 1;
            if self.edges.has_cycle() {
                self.offer_witness();
                return Dfs::Found;
            }
        }

        let mut donated_any = false;
        let mut explored_locally = false;
        let mut pruned = false;
        for i in 0..job.k {
            let id = job.ids[i];
            let pos = self.positions[i] as usize;
            let Some(&step) = self.txs[i].steps.get(pos) else {
                continue;
            };
            // Empty deltas — the common case — are `None` end to end, so
            // they skip the apply/undo pair and every allocation.
            let added = self
                .index
                .edge_delta(i, &step)
                .map(|delta| self.edges.apply(&delta));
            self.book.take(&mut self.positions, i);
            // Memo probe before the legality gate, exactly as in the
            // sequential explorer (see its comment for the soundness
            // argument — it holds across workers because the simulator
            // state is a function of positions alone).
            if job.budget.use_memo && self.memo_contains() {
                self.stats.memo_hits += 1;
                self.book.untake(&mut self.positions, i);
                if let Some(a) = &added {
                    self.edges.undo(a);
                }
                continue;
            }
            // Donation ("stealing" from the donor's side): once this node
            // has one locally explored child, viable siblings go to idle
            // workers instead of being explored here.
            if explored_locally
                && job.idle.load(Ordering::Relaxed) > 0
                && self.sim.check(id, &step).is_ok()
            {
                let mut child = self.path.clone();
                child.push(i as u32);
                {
                    let mut q = job.queue.lock().expect("task queue");
                    q.pending += 1;
                    q.tasks.push(Task { path: child });
                }
                job.task_cv.notify_one();
                donated_any = true;
                self.book.untake(&mut self.positions, i);
                if let Some(a) = &added {
                    self.edges.undo(a);
                }
                continue;
            }
            let Ok(token) = self.sim.apply_undoable(id, &step) else {
                self.book.untake(&mut self.positions, i);
                if let Some(a) = &added {
                    self.edges.undo(a);
                }
                continue;
            };
            self.schedule.push(ScheduledStep::new(id, step));
            self.path.push(i as u32);
            self.index.push(i, step);
            let result = self.dfs();
            self.index.pop();
            self.path.pop();
            self.schedule.pop();
            self.sim.undo(token);
            self.stats.undo_ops += 1;
            match result {
                Dfs::Found => {
                    self.book.untake(&mut self.positions, i);
                    if let Some(a) = &added {
                        self.edges.undo(a);
                    }
                    return Dfs::Found;
                }
                Dfs::NotFound => {
                    explored_locally = true;
                    if job.budget.use_memo {
                        self.memo_insert();
                    }
                }
                Dfs::Donated => {
                    explored_locally = true;
                    donated_any = true;
                }
                Dfs::Pruned => {
                    pruned = true;
                }
            }
            self.book.untake(&mut self.positions, i);
            if let Some(a) = &added {
                self.edges.undo(a);
            }
            if pruned {
                break;
            }
        }
        if pruned {
            Dfs::Pruned
        } else if donated_any {
            Dfs::Donated
        } else {
            Dfs::NotFound
        }
    }
}

/// A reusable parallel safety verifier: a fixed thread pool plus the
/// dispatch logic. Building one pins the thread-spawn cost up front;
/// [`verify`](ParallelVerifier::verify) then costs one condvar round-trip
/// per call, which is what lets benchmarks measure search speedup rather
/// than thread-creation latency.
pub struct ParallelVerifier {
    pool: ThreadPool,
}

impl ParallelVerifier {
    /// A verifier over `threads` pooled workers (at least one).
    pub fn new(threads: usize) -> Self {
        ParallelVerifier {
            pool: ThreadPool::new(threads),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Decides safety of `system` exactly like
    /// [`crate::explorer::verify_safety`], in parallel. The verdict is
    /// identical to the sequential explorer's whenever neither run trips
    /// the budget; see the module docs for the determinism contract.
    pub fn verify(&self, system: &TransactionSystem, budget: SearchBudget) -> Verdict {
        let job = Arc::new(VerifyJob::new(system.clone(), budget));
        self.pool.run(job.clone());
        let stats = job.stats();
        let witness = job.witness.lock().expect("witness slot").take();
        match witness {
            Some(witness) => Verdict::Unsafe { witness, stats },
            None if job.budget_hit.load(Ordering::SeqCst) => Verdict::Exhausted(stats),
            None => Verdict::Safe(stats),
        }
    }
}

/// One-shot convenience over [`ParallelVerifier`]: spawns a pool of
/// `threads` workers, verifies, and tears the pool down. Callers verifying
/// many systems should hold a [`ParallelVerifier`] instead.
pub fn verify_safety_parallel(
    system: &TransactionSystem,
    budget: SearchBudget,
    threads: usize,
) -> Verdict {
    ParallelVerifier::new(threads).verify(system, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::verify_safety;
    use slp_core::SystemBuilder;

    fn two_phase_system() -> TransactionSystem {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        b.tx(1)
            .lx("x")
            .write("x")
            .lx("y")
            .write("y")
            .ux("x")
            .ux("y")
            .finish();
        b.tx(2)
            .lx("x")
            .write("x")
            .lx("y")
            .write("y")
            .ux("y")
            .ux("x")
            .finish();
        b.build()
    }

    fn short_lock_system() -> TransactionSystem {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        for t in 1..=2 {
            b.tx(t)
                .lx("x")
                .write("x")
                .ux("x")
                .lx("y")
                .write("y")
                .ux("y")
                .finish();
        }
        b.build()
    }

    #[test]
    fn parallel_verdicts_match_sequential_on_classic_pairs() {
        for threads in [1, 2, 4] {
            let verifier = ParallelVerifier::new(threads);
            assert!(verifier
                .verify(&two_phase_system(), SearchBudget::default())
                .is_safe());
            let v = verifier.verify(&short_lock_system(), SearchBudget::default());
            let w = v.witness().expect("unsafe").clone();
            assert!(w.is_legal());
            assert!(w.is_proper(short_lock_system().initial_state()));
            assert!(!slp_core::is_serializable(&w));
        }
    }

    #[test]
    fn verifier_is_reusable_across_systems() {
        let verifier = ParallelVerifier::new(2);
        for _ in 0..5 {
            assert!(verifier
                .verify(&two_phase_system(), SearchBudget::default())
                .is_safe());
            assert!(verifier
                .verify(&short_lock_system(), SearchBudget::default())
                .is_unsafe());
        }
    }

    #[test]
    fn empty_and_tiny_systems() {
        let verifier = ParallelVerifier::new(4);
        let empty = SystemBuilder::new().build();
        assert!(verifier.verify(&empty, SearchBudget::default()).is_safe());
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.tx(1).lx("x").write("x").ux("x").finish();
        assert!(verifier
            .verify(&b.build(), SearchBudget::default())
            .is_safe());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let verdict = verify_safety_parallel(
            &two_phase_system(),
            SearchBudget {
                max_states: 3,
                ..Default::default()
            },
            2,
        );
        assert!(matches!(verdict, Verdict::Exhausted(_)), "{verdict:?}");
    }

    #[test]
    fn budget_that_fits_never_reports_exhausted() {
        // Exhaustion is keyed on *consumed* states, so a search whose true
        // state count fits the budget must never spuriously report
        // Exhausted, no matter how workers interleave.
        let system = two_phase_system();
        let true_states = verify_safety(&system, SearchBudget::default())
            .stats()
            .states;
        let verifier = ParallelVerifier::new(4);
        // 4x headroom absorbs memo-race duplication; the single-thread
        // exact-fit budget has no duplication and must complete too (the
        // sequential explorer only exhausts attempting state max + 1).
        let budget = SearchBudget {
            max_states: 4 * true_states,
            ..Default::default()
        };
        for run in 0..20 {
            let verdict = verifier.verify(&system, budget);
            assert!(verdict.is_safe(), "run {run}: {verdict:?}");
        }
        let exact = SearchBudget {
            max_states: true_states,
            ..Default::default()
        };
        let single = ParallelVerifier::new(1);
        let verdict = single.verify(&system, exact);
        assert!(verdict.is_safe(), "exact-fit budget: {verdict:?}");
    }

    #[test]
    fn parallel_states_stay_in_the_sequential_ballpark() {
        // Memo races may duplicate a little work, but sharing the table
        // must keep the parallel search from degenerating to memo-less
        // exponential blowup.
        let system = two_phase_system();
        let seq = verify_safety(&system, SearchBudget::default());
        let par = verify_safety_parallel(&system, SearchBudget::default(), 4);
        assert!(par.is_safe());
        assert!(
            par.stats().states <= 10 * seq.stats().states.max(1),
            "parallel visited {} states vs sequential {}",
            par.stats().states,
            seq.stats().states
        );
    }
}
