//! Work-stealing parallel safety verification on a lock-free memo core.
//!
//! [`verify_safety_parallel`] decides the same question as
//! [`crate::explorer::verify_safety`] — *does a legal, proper,
//! nonserializable complete schedule exist?* — by running the apply/undo
//! DFS on a fixed pool of `std::thread` workers (the vendored
//! [`workpool`] shim; no crates.io access) that cooperate through three
//! pieces of shared state:
//!
//! * **A task queue of subtree roots** ([`workpool::DonationQueue`]). A
//!   task is the *path* (dense transaction indices) from the empty
//!   schedule to a search node; the receiving worker replays it through
//!   its private simulator / [`ConflictIndex`] / [`EdgeSet`] and explores
//!   the subtree. Work *stealing* is donation-based: whenever a worker is
//!   about to descend into sibling subtrees while other workers sit idle,
//!   it donates the siblings as tasks instead of recursing. Donations are
//!   **batched**: viable siblings of one node accumulate in a private
//!   buffer and are pushed in chunks (`DONATE_BATCH`, plus a flush
//!   before any local descent and at node end) — one queue lock and one
//!   wakeup per chunk instead of one per subtree.
//! * **A lock-free shared memo.** The visited-state set is a single
//!   [`crate::memo::AtomicWordTable`]: every memo key — packed or wide
//!   positions, `u128`-mask or words edges — is encoded by the shared
//!   [`crate::memo::KeyShape`] codec into a fixed-width `[u64]` word
//!   string and probed/inserted with atomic loads and a CAS. There are
//!   **no mutexes on the search hot path**, and a wide (`k > 11`) key
//!   performs exactly **one** synchronized probe-or-intern operation —
//!   the previous design sharded `Mutex<FxHashSet>` tables and interned
//!   each wide key half behind its own shard lock, so a wide probe took
//!   two locks and every probe paid lock traffic. Sharing the table
//!   across workers preserves the sequential search's pruning: a state
//!   fully explored by *any* worker is skipped by all. Soundness is
//!   unchanged — entries are only inserted for subtrees explored to
//!   exhaustion with no witness, and a frame whose children were donated
//!   or truncated (cancel/budget) inserts nothing, so a memo hit always
//!   means "no witness below".
//! * **An early-cancel flag** (inside the queue). The first worker to
//!   reach a nonserializable completion records it and cancels; every
//!   worker polls the flag once per node and unwinds.
//!
//! In front of the shared table, each worker keeps a **private L1
//! memo** — literally the sequential explorer's `Memo` shape
//! (`FxHashSet`-backed, identical per-probe cost), built fresh per
//! verify run and dropped with it (memo entries are system-specific, so
//! nothing could soundly carry over; a per-run local also pins no memory
//! in pool threads between runs).
//! The L1 is the worker's *primary* memo: states this worker explored or
//! already confirmed shared-hits are answered with zero synchronization,
//! so only first-sight probes and inserts ever reach the shared table.
//! The L1 only caches *positive* facts (state fully explored), which are
//! immutable, so it can never un-soundly prune. A single-worker pool's L1
//! is total — every probe its search could repeat is answered privately —
//! so the shared table is not even built at `threads == 1`: the memo path
//! degenerates to exactly the sequential explorer's, and the measured
//! single-thread pool overhead is dispatch + task-loop cost alone.
//!
//! # What is (and is not) deterministic
//!
//! With an ample budget the **verdict** is deterministic and identical to
//! the sequential explorer's: the task queue partitions the search space
//! exactly (every donated subtree is explored before termination), so a
//! witness is found iff one exists. The *witness schedule* and the search
//! statistics may vary run to run — which subtree reaches a witness first
//! is a race, and memo-race duplication can revisit states. When the
//! budget trips, `Exhausted` frontiers are likewise race-dependent.
//! `verifier/tests/parallel_agreement.rs` locks the verdict guarantees
//! down differentially (155+ systems, thread counts 1–8, repeated runs),
//! and its memo-storm stress hammers the table's probe-or-intern from
//! many threads to pin id stability and lost-insert freedom.

use crate::explorer::{Memo, PositionBook, SearchBudget, SearchStats, Verdict};
use crate::memo::{AtomicWordTable, KeyShape};
use slp_core::{
    pack_positions, ConflictIndex, EdgeSet, LockedTransaction, Schedule, ScheduleSimulator,
    ScheduledStep, TransactionSystem, TxId,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use workpool::{DonationQueue, PoolJob, ThreadPool};

/// Workers flush their *consumed* state counts into the shared total (and
/// check it against the budget) every this many nodes — one atomic RMW
/// per chunk instead of per node. Exhaustion triggers only when states
/// actually visited reach `max_states`, so a search that fits its budget
/// can never spuriously report `Exhausted`; the cost is overshoot — up to
/// `threads * STATE_CHUNK` states may be visited past the limit before
/// every worker notices. Budgets smaller than the chunk are flushed at
/// budget granularity, keeping tiny-budget exhaustion prompt.
const STATE_CHUNK: usize = 256;

/// Donated sibling subtrees accumulate in a worker-private buffer and are
/// flushed to the queue in chunks of this size (and, regardless of fill,
/// before the worker descends locally and at node end) — batching the
/// lock/notify cost of donation.
const DONATE_BATCH: usize = 8;

/// The shared visited-state set: the [`KeyShape`] codec (shared with the
/// sequential explorer, so the two searches' keys cannot drift apart)
/// over one lock-free [`AtomicWordTable`]. Only built for pools of more
/// than one worker — a single worker's L1 memo is already total, so the
/// shared table would have no reader.
struct SharedMemo {
    shape: KeyShape,
    table: Option<AtomicWordTable>,
}

impl SharedMemo {
    fn for_system(packable: bool, k: usize, small_edges: bool, share: bool) -> SharedMemo {
        let shape = KeyShape::new(packable, k, small_edges);
        let table = share.then(|| AtomicWordTable::new(shape.width().max(1)));
        SharedMemo { shape, table }
    }
}

/// A subtree of the search space: the dense-index path from the empty
/// schedule to its root node. Compact to donate, cheap to replay
/// (`O(path)` step applications).
struct Task {
    path: Vec<u32>,
}

/// All state shared by the workers of one verification run.
struct VerifyJob {
    system: TransactionSystem,
    ids: Vec<TxId>,
    /// Template position bookkeeping (zeroed counters) cloned by each
    /// worker — the packability bound is thereby derived in exactly one
    /// place, `PositionBook::new`, for both explorers.
    book: PositionBook,
    k: usize,
    /// Whether edge sets use the `u128` representation (cached for the
    /// workers' L1 memo construction).
    small_edges: bool,
    budget: SearchBudget,
    memo: SharedMemo,
    queue: DonationQueue<Task>,
    budget_hit: AtomicBool,
    /// Search states consumed across all workers, flushed in chunks (see
    /// [`STATE_CHUNK`]); compared against `budget.max_states`.
    states_counted: AtomicUsize,
    witness: Mutex<Option<Schedule>>,
    // Aggregated statistics, flushed once per worker at the end.
    states: AtomicUsize,
    memo_hits: AtomicUsize,
    completions: AtomicUsize,
    undo_ops: AtomicUsize,
}

impl VerifyJob {
    fn new(system: TransactionSystem, budget: SearchBudget, share: bool) -> Self {
        let ids = system.ids();
        let lens: Vec<u16> = ids
            .iter()
            .map(|&id| system.get(id).expect("listed id").len() as u16)
            .collect();
        let k = ids.len();
        let book = PositionBook::new(lens);
        let small_edges = k <= ConflictIndex::MAX_TXS;
        let memo = SharedMemo::for_system(book.packable, k, small_edges, share);
        let queue = DonationQueue::new();
        queue.push_batch(&mut vec![Task { path: Vec::new() }]);
        VerifyJob {
            system,
            ids,
            book,
            k,
            small_edges,
            budget,
            memo,
            queue,
            budget_hit: AtomicBool::new(false),
            states_counted: AtomicUsize::new(0),
            witness: Mutex::new(None),
            states: AtomicUsize::new(0),
            memo_hits: AtomicUsize::new(0),
            completions: AtomicUsize::new(0),
            undo_ops: AtomicUsize::new(0),
        }
    }

    fn stats(&self) -> SearchStats {
        SearchStats {
            states: self.states.load(Ordering::SeqCst),
            memo_hits: self.memo_hits.load(Ordering::SeqCst),
            completions: self.completions.load(Ordering::SeqCst),
            undo_ops: self.undo_ops.load(Ordering::SeqCst),
        }
    }
}

impl PoolJob for VerifyJob {
    fn run(&self, _worker: usize) {
        // One fresh L1 per worker per run, dropped when the run ends: a
        // worker's run is the L1's only consumer (states are
        // system-specific, so nothing could soundly survive into another
        // verify), and a plain local keeps no memory pinned afterwards.
        let mut l1 = Memo::for_system(self.book.packable, self.small_edges);
        Worker::new(self, &mut l1).run();
    }
}

/// Outcome of one worker's exploration of a subtree node.
enum Dfs {
    /// A witness was found (already recorded on the job).
    Found,
    /// Fully explored by this worker: no witness below; memoizable.
    NotFound,
    /// Some children were donated to other workers: no witness found
    /// *here*, but the frame is not fully explored by this worker, so
    /// neither it nor its ancestors may be memoized.
    Donated,
    /// Unwound early (cancel or budget): nothing may be memoized.
    Pruned,
}

/// One worker's private search state, rebuilt per task by path replay.
struct Worker<'j> {
    job: &'j VerifyJob,
    txs: Vec<&'j LockedTransaction>,
    positions: Vec<u16>,
    /// Dense-index path to the current node — the donation currency.
    path: Vec<u32>,
    /// Position bookkeeping (packed memo-key word, started/finished) —
    /// the same [`PositionBook`] the sequential explorer maintains.
    book: PositionBook,
    sim: ScheduleSimulator,
    schedule: Schedule,
    index: ConflictIndex,
    edges: EdgeSet,
    /// Reusable encode buffer for shared-table keys (no allocation per
    /// probe).
    scratch: Box<[u64]>,
    /// Sibling subtrees awaiting a batched donation flush.
    donate_buf: Vec<Task>,
    /// This worker's private L1 memo — the worker's *primary* memo, in
    /// the sequential explorer's own shape, fresh per run.
    l1: &'j mut Memo,
    stats: SearchStats,
    /// States visited since the last flush into `VerifyJob::states_counted`.
    unflushed: usize,
    /// Precomputed flush granularity (`STATE_CHUNK` capped by the budget).
    flush_chunk: usize,
}

impl<'j> Worker<'j> {
    fn new(job: &'j VerifyJob, l1: &'j mut Memo) -> Self {
        let txs = job
            .ids
            .iter()
            .map(|&id| job.system.get(id).expect("listed id"))
            .collect();
        Worker {
            job,
            txs,
            positions: vec![0; job.k],
            path: Vec::new(),
            book: job.book.clone(),
            sim: ScheduleSimulator::new(job.system.initial_state().clone()),
            schedule: Schedule::empty(),
            index: ConflictIndex::new(job.k),
            edges: EdgeSet::empty(job.k),
            scratch: job.memo.shape.scratch(),
            donate_buf: Vec::new(),
            l1,
            stats: SearchStats::default(),
            unflushed: 0,
            flush_chunk: STATE_CHUNK.min(job.budget.max_states.max(1)),
        }
    }

    /// Flushes this worker's unflushed state count into the shared total,
    /// returning the updated total.
    fn flush_states(&mut self) -> usize {
        let total = self
            .job
            .states_counted
            .fetch_add(self.unflushed, Ordering::Relaxed)
            + self.unflushed;
        self.unflushed = 0;
        total
    }

    /// Probes the current (positions, edges) state: the private L1 first
    /// (sequential-explorer cost, no synchronization), then — only when a
    /// shared table exists, i.e. the pool has >1 worker — one synchronized
    /// probe of the lock-free table, recording shared hits into the L1 so
    /// repeat probes never reach the table again.
    fn memo_contains(&mut self) -> bool {
        if self
            .l1
            .contains(self.book.packed, &self.positions, &self.edges)
        {
            return true;
        }
        let Some(table) = &self.job.memo.table else {
            return false;
        };
        self.job.memo.shape.encode(
            &mut self.scratch,
            self.book.packed,
            &self.positions,
            &self.edges,
        );
        let hit = table.contains(&self.scratch);
        if hit {
            self.l1
                .insert(self.book.packed, &self.positions, &self.edges);
        }
        hit
    }

    /// Records the current state as fully explored: into the private L1,
    /// and — when the pool shares — via exactly one synchronized
    /// probe-or-intern on the lock-free table so every other worker can
    /// prune it.
    fn memo_insert(&mut self) {
        self.l1
            .insert(self.book.packed, &self.positions, &self.edges);
        if let Some(table) = &self.job.memo.table {
            self.job.memo.shape.encode(
                &mut self.scratch,
                self.book.packed,
                &self.positions,
                &self.edges,
            );
            table.probe_or_intern(&self.scratch);
        }
    }

    /// Pushes the buffered donated subtrees in one queue operation.
    #[inline]
    fn flush_donations(&mut self) {
        if !self.donate_buf.is_empty() {
            self.job.queue.push_batch(&mut self.donate_buf);
        }
    }

    fn run(&mut self) {
        while let Some(task) = self.job.queue.pop() {
            self.run_task(task);
            debug_assert!(
                self.donate_buf.is_empty(),
                "donations must flush by node end"
            );
            self.flush_states();
            self.job.queue.complete();
        }
        // Flush private statistics into the shared totals.
        self.job
            .states
            .fetch_add(self.stats.states, Ordering::SeqCst);
        self.job
            .memo_hits
            .fetch_add(self.stats.memo_hits, Ordering::SeqCst);
        self.job
            .completions
            .fetch_add(self.stats.completions, Ordering::SeqCst);
        self.job
            .undo_ops
            .fetch_add(self.stats.undo_ops, Ordering::SeqCst);
    }

    /// Replays `task`'s path from the empty schedule, then explores the
    /// subtree rooted there.
    fn run_task(&mut self, task: Task) {
        let job = self.job;
        self.positions.fill(0);
        self.book.reset();
        self.sim = ScheduleSimulator::new(job.system.initial_state().clone());
        self.schedule = Schedule::empty();
        self.index = ConflictIndex::new(job.k);
        self.edges = EdgeSet::empty(job.k);
        self.path = task.path;
        for pi in 0..self.path.len() {
            let i = self.path[pi] as usize;
            let id = job.ids[i];
            let step = self.txs[i].steps[self.positions[i] as usize];
            if let Some(d) = self.index.edge_delta(i, &step) {
                self.edges.union_with(&d);
            }
            self.index.push(i, step);
            self.sim
                .apply(id, &step)
                .expect("donated paths are legal and proper by construction");
            self.schedule.push(ScheduledStep::new(id, step));
            self.book.take(&mut self.positions, i);
        }
        debug_assert!(
            !job.book.packable || Some(self.book.packed) == pack_positions(&self.positions),
            "incrementally maintained packed key diverged from pack_positions"
        );
        // The node may have been memoized between donation and pickup by a
        // worker that reached the same (positions, edges) state elsewhere.
        if job.budget.use_memo && !self.path.is_empty() && self.memo_contains() {
            self.stats.memo_hits += 1;
            return;
        }
        if let Dfs::NotFound = self.dfs() {
            // Mirror of the sequential parent's post-recursion insert: the
            // subtree root is now fully explored with no witness.
            if job.budget.use_memo && !self.path.is_empty() {
                self.memo_insert();
            }
        }
    }

    /// Records the first witness found and cancels all workers.
    fn offer_witness(&self) {
        {
            let mut w = self.job.witness.lock().expect("witness slot");
            if w.is_none() {
                *w = Some(self.schedule.clone());
            }
        }
        self.job.queue.cancel();
    }

    fn dfs(&mut self) -> Dfs {
        let job = self.job;
        if job.queue.is_cancelled() {
            return Dfs::Pruned;
        }
        self.stats.states += 1;
        self.unflushed += 1;
        if self.unflushed >= self.flush_chunk {
            // Strictly greater: a search space of exactly `max_states`
            // states completes (the sequential explorer only exhausts when
            // it attempts state `max_states + 1`).
            if self.flush_states() > job.budget.max_states {
                job.budget_hit.store(true, Ordering::SeqCst);
                // Cancel the whole run so queued tasks are abandoned
                // instead of each being explored up to its own flush
                // boundary, keeping post-exhaustion overshoot bounded.
                job.queue.cancel();
                return Dfs::Pruned;
            }
        }

        if self.book.started == self.book.finished && self.book.started > 0 {
            self.stats.completions += 1;
            if self.edges.has_cycle() {
                self.offer_witness();
                return Dfs::Found;
            }
        }

        let mut donated_any = false;
        let mut explored_locally = false;
        let mut pruned = false;
        for i in 0..job.k {
            let id = job.ids[i];
            let pos = self.positions[i] as usize;
            let Some(&step) = self.txs[i].steps.get(pos) else {
                continue;
            };
            // Empty deltas — the common case — are `None` end to end, so
            // they skip the apply/undo pair and every allocation.
            let added = self
                .index
                .edge_delta(i, &step)
                .map(|delta| self.edges.apply(&delta));
            self.book.take(&mut self.positions, i);
            // Memo probe before the legality gate, exactly as in the
            // sequential explorer (see its comment for the soundness
            // argument — it holds across workers because the simulator
            // state is a function of positions alone).
            if job.budget.use_memo && self.memo_contains() {
                self.stats.memo_hits += 1;
                self.book.untake(&mut self.positions, i);
                if let Some(a) = &added {
                    self.edges.undo(a);
                }
                continue;
            }
            // Donation ("stealing" from the donor's side): once this node
            // has one locally explored child, viable siblings go to the
            // batch buffer for idle workers instead of being explored
            // here; the buffer flushes in chunks, before any local
            // descent, and at node end.
            if explored_locally && job.queue.idle_workers() > 0 && self.sim.check(id, &step).is_ok()
            {
                let mut child = self.path.clone();
                child.push(i as u32);
                self.donate_buf.push(Task { path: child });
                donated_any = true;
                if self.donate_buf.len() >= DONATE_BATCH {
                    self.flush_donations();
                }
                self.book.untake(&mut self.positions, i);
                if let Some(a) = &added {
                    self.edges.undo(a);
                }
                continue;
            }
            let Ok(token) = self.sim.apply_undoable(id, &step) else {
                self.book.untake(&mut self.positions, i);
                if let Some(a) = &added {
                    self.edges.undo(a);
                }
                continue;
            };
            // About to explore locally: donated siblings must reach the
            // queue first, or idle workers would starve for the whole
            // descent.
            self.flush_donations();
            self.schedule.push(ScheduledStep::new(id, step));
            self.path.push(i as u32);
            self.index.push(i, step);
            let result = self.dfs();
            self.index.pop();
            self.path.pop();
            self.schedule.pop();
            self.sim.undo(token);
            self.stats.undo_ops += 1;
            match result {
                Dfs::Found => {
                    self.book.untake(&mut self.positions, i);
                    if let Some(a) = &added {
                        self.edges.undo(a);
                    }
                    return Dfs::Found;
                }
                Dfs::NotFound => {
                    explored_locally = true;
                    if job.budget.use_memo {
                        self.memo_insert();
                    }
                }
                Dfs::Donated => {
                    explored_locally = true;
                    donated_any = true;
                }
                Dfs::Pruned => {
                    pruned = true;
                }
            }
            self.book.untake(&mut self.positions, i);
            if let Some(a) = &added {
                self.edges.undo(a);
            }
            if pruned {
                break;
            }
        }
        self.flush_donations();
        if pruned {
            Dfs::Pruned
        } else if donated_any {
            Dfs::Donated
        } else {
            Dfs::NotFound
        }
    }
}

/// A reusable parallel safety verifier: a fixed thread pool plus the
/// dispatch logic. Building one pins the thread-spawn cost up front;
/// [`verify`](ParallelVerifier::verify) then costs one condvar round-trip
/// per call, which is what lets benchmarks measure search speedup rather
/// than thread-creation latency.
pub struct ParallelVerifier {
    pool: ThreadPool,
}

impl ParallelVerifier {
    /// A verifier over `threads` pooled workers (at least one).
    pub fn new(threads: usize) -> Self {
        ParallelVerifier {
            pool: ThreadPool::new(threads),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Decides safety of `system` exactly like
    /// [`crate::explorer::verify_safety`], in parallel. The verdict is
    /// identical to the sequential explorer's whenever neither run trips
    /// the budget; see the module docs for the determinism contract.
    pub fn verify(&self, system: &TransactionSystem, budget: SearchBudget) -> Verdict {
        let share = self.pool.threads() > 1;
        let job = Arc::new(VerifyJob::new(system.clone(), budget, share));
        self.pool.run(job.clone());
        let stats = job.stats();
        let witness = job.witness.lock().expect("witness slot").take();
        match witness {
            Some(witness) => Verdict::Unsafe { witness, stats },
            None if job.budget_hit.load(Ordering::SeqCst) => Verdict::Exhausted(stats),
            None => Verdict::Safe(stats),
        }
    }
}

/// One-shot convenience over [`ParallelVerifier`]: spawns a pool of
/// `threads` workers, verifies, and tears the pool down. Callers verifying
/// many systems should hold a [`ParallelVerifier`] instead.
pub fn verify_safety_parallel(
    system: &TransactionSystem,
    budget: SearchBudget,
    threads: usize,
) -> Verdict {
    ParallelVerifier::new(threads).verify(system, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::verify_safety;
    use slp_core::SystemBuilder;

    fn two_phase_system() -> TransactionSystem {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        b.tx(1)
            .lx("x")
            .write("x")
            .lx("y")
            .write("y")
            .ux("x")
            .ux("y")
            .finish();
        b.tx(2)
            .lx("x")
            .write("x")
            .lx("y")
            .write("y")
            .ux("y")
            .ux("x")
            .finish();
        b.build()
    }

    fn short_lock_system() -> TransactionSystem {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        for t in 1..=2 {
            b.tx(t)
                .lx("x")
                .write("x")
                .ux("x")
                .lx("y")
                .write("y")
                .ux("y")
                .finish();
        }
        b.build()
    }

    #[test]
    fn parallel_verdicts_match_sequential_on_classic_pairs() {
        for threads in [1, 2, 4] {
            let verifier = ParallelVerifier::new(threads);
            assert!(verifier
                .verify(&two_phase_system(), SearchBudget::default())
                .is_safe());
            let v = verifier.verify(&short_lock_system(), SearchBudget::default());
            let w = v.witness().expect("unsafe").clone();
            assert!(w.is_legal());
            assert!(w.is_proper(short_lock_system().initial_state()));
            assert!(!slp_core::is_serializable(&w));
        }
    }

    #[test]
    fn verifier_is_reusable_across_systems() {
        let verifier = ParallelVerifier::new(2);
        for _ in 0..5 {
            assert!(verifier
                .verify(&two_phase_system(), SearchBudget::default())
                .is_safe());
            assert!(verifier
                .verify(&short_lock_system(), SearchBudget::default())
                .is_unsafe());
        }
    }

    #[test]
    fn empty_and_tiny_systems() {
        let verifier = ParallelVerifier::new(4);
        let empty = SystemBuilder::new().build();
        assert!(verifier.verify(&empty, SearchBudget::default()).is_safe());
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.tx(1).lx("x").write("x").ux("x").finish();
        assert!(verifier
            .verify(&b.build(), SearchBudget::default())
            .is_safe());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let verdict = verify_safety_parallel(
            &two_phase_system(),
            SearchBudget {
                max_states: 3,
                ..Default::default()
            },
            2,
        );
        assert!(matches!(verdict, Verdict::Exhausted(_)), "{verdict:?}");
    }

    #[test]
    fn budget_that_fits_never_reports_exhausted() {
        // Exhaustion is keyed on *consumed* states, so a search whose true
        // state count fits the budget must never spuriously report
        // Exhausted, no matter how workers interleave.
        let system = two_phase_system();
        let true_states = verify_safety(&system, SearchBudget::default())
            .stats()
            .states;
        let verifier = ParallelVerifier::new(4);
        // 4x headroom absorbs memo-race duplication; the single-thread
        // exact-fit budget has no duplication and must complete too (the
        // sequential explorer only exhausts attempting state max + 1).
        let budget = SearchBudget {
            max_states: 4 * true_states,
            ..Default::default()
        };
        for run in 0..20 {
            let verdict = verifier.verify(&system, budget);
            assert!(verdict.is_safe(), "run {run}: {verdict:?}");
        }
        let exact = SearchBudget {
            max_states: true_states,
            ..Default::default()
        };
        let single = ParallelVerifier::new(1);
        let verdict = single.verify(&system, exact);
        assert!(verdict.is_safe(), "exact-fit budget: {verdict:?}");
    }

    #[test]
    fn parallel_states_stay_in_the_sequential_ballpark() {
        // Memo races may duplicate a little work, but sharing the table
        // must keep the parallel search from degenerating to memo-less
        // exponential blowup.
        let system = two_phase_system();
        let seq = verify_safety(&system, SearchBudget::default());
        let par = verify_safety_parallel(&system, SearchBudget::default(), 4);
        assert!(par.is_safe());
        assert!(
            par.stats().states <= 10 * seq.stats().states.max(1),
            "parallel visited {} states vs sequential {}",
            par.stats().states,
            seq.stats().states
        );
    }

    #[test]
    fn l1_memo_state_does_not_leak_across_runs() {
        // Back-to-back verifies on the same pooled threads with different
        // systems of the same key width: stale L1 entries from run 1 must
        // not prune run 2 (each run builds its workers fresh L1s).
        let verifier = ParallelVerifier::new(2);
        for _ in 0..10 {
            assert!(verifier
                .verify(&two_phase_system(), SearchBudget::default())
                .is_safe());
            assert!(verifier
                .verify(&short_lock_system(), SearchBudget::default())
                .is_unsafe());
        }
    }
}
