//! Memo-key codec and memo tables shared by the sequential and parallel
//! explorers.
//!
//! Both explorers memoize search states keyed on (positions, `D(S)`
//! edges). Positions may or may not bit-pack into a `u128` and edge sets
//! may be `u128` masks or `[u64]` words, which used to mean *four* memo
//! key shapes spread over two near-duplicate interner types (the
//! sequential `Interner` and the parallel `ShardedInterner`), with wide
//! (`k > 11`) keys paying one synchronized structure per key *half*. This
//! module keeps one implementation of each concern:
//!
//! * The **parallel shared memo** encodes every key through [`KeyShape`]
//!   into a **fixed-width `[u64]` word string** (the width is a function
//!   of the system alone), probed and interned in one
//!   [`AtomicWordTable`] — a **lock-free** open-addressing table of
//!   `AtomicU64` slots. Probes are one atomic load per non-colliding
//!   slot; inserts are a CAS; there are no mutexes anywhere, and a wide
//!   key touches exactly one synchronized structure (the old sharded
//!   design took two shard locks per wide probe).
//! * The **sequential explorer** (and the parallel workers' private L1,
//!   which reuses its `Memo` type) keeps interned *sub*-keys through the
//!   single crate-private `Interner` below: hit-heavy memo traffic wants small
//!   `(u128, u32)` set keys, not 100+-byte word-string compares — an
//!   all-flat-words sequential memo was tried and measured ~25% slower
//!   on the wide k = 13 bench. No synchronization, one interner type,
//!   same probe-or-intern contract as the table.
//!
//! # `AtomicWordTable` layout
//!
//! Three pieces, all append-only (memo entries are never deleted — the
//! property every correctness argument below leans on):
//!
//! * **Slot segments** — a chain of `AtomicU64` arrays of 4×-growing
//!   capacity: segment 0 eagerly allocated (kept `OnceLock`-free on the
//!   hot path), spill segments created on demand through `OnceLock`
//!   (amortized growth; no stop-the-world rehash, no relocation of
//!   published slots — probes of old entries never observe movement). A
//!   slot is `0` when empty, else packs a 16-bit **hash fingerprint**
//!   with the 48-bit entry reference (+1, so occupied slots are nonzero).
//! * **Entry segments** — the full key words, in chained fixed-capacity
//!   `AtomicU64` arrays of doubling entry counts. An inserter claims an
//!   entry index with one `fetch_add`, writes the words (plain atomic
//!   stores — the entry is private until published), then publishes it by
//!   CAS-ing the slot with `Release`; readers load the slot with `Acquire`
//!   before touching entry words, so the words are always visible.
//! * **Probe walk** — linear probing, at most [`PROBE_LIMIT`] slots per
//!   segment, segments visited strictly in creation order. Slots fill
//!   monotonically (no deletions), so the walk is deterministic enough to
//!   make interned ids stable:
//!
//! ## Id stability (same value → same id, across threads)
//!
//! Two racing `probe_or_intern` calls for the same key walk the same slot
//! sequence. Both stop at the first empty slot (every earlier slot was
//! compared and rejected); one CAS wins, the loser re-reads the slot,
//! finds the winner's entry, compares equal, and returns the winner's id.
//! A key spills to segment `s + 1` only when its whole probe window in
//! segment `s` is occupied by other keys — and since slots never empty,
//! that is permanent: no later insert of the key can land in segment `s`,
//! so the "first matching entry in walk order" is unique and immutable.
//! The loser's already-claimed entry is abandoned (a few words of storage;
//! bounded by actual CAS races, not by table size).
//!
//! A read-only [`AtomicWordTable::probe`] that observes an empty slot may
//! miss a *concurrent* insert — for the memo that only turns a hit into a
//! miss (duplicated search work, never unsound pruning); callers that need
//! the id use `probe_or_intern`, which retries through the CAS path.
//!
//! This module is `pub` so the memo-storm stress test and the
//! `memo_contention` microbenchmark can drive the table directly; it is
//! not a stable API surface.

use rustc_hash::FxHasher;
use slp_core::EdgeSet;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Maximum slots examined per segment before a key spills to the next
/// segment. This is also what bounds the *steady-state* cost of probing
/// a saturated segment: segments fill until windows exhaust (there is no
/// other gate — that keeps insert placement deterministic, see the id
/// stability argument), so keys resident in later segments pay up to
/// this many loads per earlier segment on every probe. Keep it small.
pub const PROBE_LIMIT: usize = 12;

/// Slot count of the first table segment (`2^13` — covers searches up to
/// a few thousand memoized states without ever chaining).
const FIRST_SLOT_BITS: u32 = 13;

/// Slot segments grow 4× per link (not 2×): saturated segments cost
/// every later-resident key a probe window on every probe, so the chain
/// must stay short even for budget-sized searches.
const SLOT_GROWTH_BITS: u32 = 2;

/// Entry count of the first entry segment (doubles per segment; entries
/// are reached by direct indexing, so entry-chain length is irrelevant
/// to probe cost).
const FIRST_ENTRY_CAP: u64 = 1 << 10;

/// Segment-chain length. The capacity schedules address ~10^10+ entries
/// — far beyond any search budget; hitting the end is a bug.
const SEGMENTS: usize = 24;

/// Low 48 bits of a slot: the entry reference (+1).
const REF_MASK: u64 = (1 << 48) - 1;

/// Interns values behind dense `u32` ids so compound memo keys stay
/// fixed-size and — the part that matters on hit-heavy memo traffic —
/// *small*: the sequential explorer's wide-key memo set compares 24-byte
/// `(u128, u32)` keys instead of 100+-byte encoded word strings. Probes
/// borrow the value (`FxHashMap::get` with a borrowed key), so looking up
/// an already-seen `EdgeSet` or position vector allocates nothing; a
/// value is cloned exactly once, on first interning.
///
/// This is the **sequential twin** of
/// [`AtomicWordTable::probe_or_intern`] — one key-interning API for both
/// explorers (the old `ShardedInterner`, the parallel near-duplicate of
/// this type, is gone: the parallel memo interns whole keys in the
/// lock-free table, one synchronized op per key).
pub(crate) struct Interner<K> {
    ids: rustc_hash::FxHashMap<K, u32>,
}

impl<K: std::hash::Hash + Eq> Interner<K> {
    pub(crate) fn new() -> Self {
        Interner {
            ids: rustc_hash::FxHashMap::default(),
        }
    }

    /// The id of `value` if it was ever interned. Allocation-free.
    pub(crate) fn get<Q>(&self, value: &Q) -> Option<u32>
    where
        K: std::borrow::Borrow<Q>,
        Q: std::hash::Hash + Eq + ?Sized,
    {
        self.ids.get(value).copied()
    }

    /// Finds `value`'s id, interning it (one clone) on first sight — the
    /// combined probe-or-intern entry point, matching the concurrent
    /// table's contract: same value → same id, ids dense from 0.
    pub(crate) fn probe_or_intern<Q>(&mut self, value: &Q) -> u32
    where
        K: std::borrow::Borrow<Q>,
        Q: std::hash::Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        if let Some(&id) = self.ids.get(value) {
            return id;
        }
        let id = u32::try_from(self.ids.len()).expect("fewer than 2^32 interned values");
        self.ids.insert(value.to_owned(), id);
        id
    }
}

/// The fixed word-encoding of one search's memo keys: `positions` then
/// `D(S)` edges, both as `u64` words. The widths are functions of the
/// system alone (`k`, packability, edge representation), so every key of
/// one search is the same length and the encoding is injective — which is
/// what lets a flat word table back the parallel verifier's shared memo
/// for every key shape.
#[derive(Clone, Copy, Debug)]
pub struct KeyShape {
    packable: bool,
    pos_words: usize,
    edge_words: usize,
}

impl KeyShape {
    /// The shape for a system of `k` transactions: `packable` as decided
    /// by `PositionBook` (k ≤ 16, all |T| ≤ 255), `small_edges` as decided
    /// by the explorer (`u128` edge masks vs `[u64]` words).
    pub fn new(packable: bool, k: usize, small_edges: bool) -> Self {
        KeyShape {
            packable,
            pos_words: if packable { 2 } else { k.div_ceil(4) },
            edge_words: if small_edges {
                2
            } else {
                EdgeSet::encoded_len(k)
            },
        }
    }

    /// Total words per encoded key.
    pub fn width(&self) -> usize {
        self.pos_words + self.edge_words
    }

    /// Encodes one key into `out`, whose length must equal
    /// [`width`](KeyShape::width) — callers keep one preallocated scratch
    /// slice, so per-probe encoding is plain stores with no length
    /// bookkeeping or capacity checks. `packed` is the incrementally
    /// maintained `pack_positions` word and is used iff the shape is
    /// packable; otherwise `positions` is packed four `u16`s per word.
    #[inline]
    pub fn encode(&self, out: &mut [u64], packed: u128, positions: &[u16], edges: &EdgeSet) {
        debug_assert_eq!(out.len(), self.width(), "scratch width drifted");
        if self.packable {
            out[0] = packed as u64;
            out[1] = (packed >> 64) as u64;
        } else {
            for (w, chunk) in out[..self.pos_words].iter_mut().zip(positions.chunks(4)) {
                let mut v = 0u64;
                for (j, &p) in chunk.iter().enumerate() {
                    v |= (p as u64) << (16 * j);
                }
                *w = v;
            }
        }
        edges.store_words(&mut out[self.pos_words..]);
    }

    /// A zeroed scratch buffer of the right width for
    /// [`encode`](KeyShape::encode).
    pub fn scratch(&self) -> Box<[u64]> {
        vec![0u64; self.width()].into_boxed_slice()
    }
}

/// Fx-folds the key words. The fingerprint takes the top 16 bits and the
/// slot index starts at bit 16, skipping Fx's weakly mixed low bits and
/// keeping the two decorrelated.
#[inline]
fn hash_words(key: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &w in key {
        h.write_u64(w);
    }
    h.finish()
}

/// A lock-free concurrent set-and-interner of fixed-width `u64` word
/// strings: the parallel verifier's shared memo core. See the module docs
/// for the layout and the id-stability argument.
pub struct AtomicWordTable {
    width: usize,
    /// Spill slot segments (4×-growing capacity, see [`tail_slot_cap`]).
    /// Segment 0, allocated eagerly: the hot path reaches slots and
    /// entries through plain field loads, no `OnceLock` check.
    slots0: Box<[AtomicU64]>,
    entries0: Box<[AtomicU64]>,
    /// Spill segments `1..`, created on demand; slot segments grow 4×
    /// per link ([`tail_slot_cap`]), entry segments 2× ([`entry_loc`]).
    slots_tail: [OnceLock<Box<[AtomicU64]>>; SEGMENTS - 1],
    entries_tail: [OnceLock<Box<[AtomicU64]>>; SEGMENTS - 1],
    /// Next unclaimed entry index (claims may outnumber published entries
    /// by the number of lost same-key CAS races).
    next_entry: AtomicU64,
}

/// Outcome of walking one slot segment's probe window.
enum Walk {
    /// Entry found: the key is published under this id.
    Found(u64),
    /// An empty slot terminated the walk: the key is in no segment
    /// (inserts fill the first empty slot of the ordered walk).
    Empty,
    /// The whole window is occupied by other keys: continue in the next
    /// segment.
    Exhausted,
}

impl AtomicWordTable {
    /// An empty table over `width`-word keys. The first slot/entry
    /// segments are allocated eagerly (a few tens of KB); spill segments
    /// materialize on demand.
    pub fn new(width: usize) -> Self {
        assert!(width >= 1, "keys must be at least one word");
        AtomicWordTable {
            width,
            slots0: zeroed(1 << FIRST_SLOT_BITS),
            entries0: zeroed(FIRST_ENTRY_CAP as usize * width),
            slots_tail: std::array::from_fn(|_| OnceLock::new()),
            entries_tail: std::array::from_fn(|_| OnceLock::new()),
            next_entry: AtomicU64::new(0),
        }
    }

    /// The key width this table was built for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Upper bound on interned entries: claims, including the few
    /// abandoned by lost same-key races. (Exposed for tests/benches; the
    /// verifier tracks its statistics separately.)
    pub fn claimed_entries(&self) -> u64 {
        self.next_entry.load(Ordering::Relaxed)
    }

    /// Walks `seg`'s probe window for `key`, read-only.
    #[inline]
    fn walk(&self, seg: &[AtomicU64], h: u64, fp: u64, key: &[u64]) -> Walk {
        let mask = seg.len() - 1;
        let mut idx = ((h >> 16) as usize) & mask;
        for _ in 0..PROBE_LIMIT.min(seg.len()) {
            let s = seg[idx].load(Ordering::Acquire);
            if s == 0 {
                return Walk::Empty;
            }
            if s >> 48 == fp {
                let id = (s & REF_MASK) - 1;
                if self.entry_eq(id, key) {
                    return Walk::Found(id);
                }
            }
            idx = (idx + 1) & mask;
        }
        Walk::Exhausted
    }

    /// Read-only membership probe: the id of `key` if it is published.
    /// One atomic load per examined slot, no allocation, no writes. May
    /// miss a concurrent in-flight insert (see module docs).
    #[inline]
    pub fn probe(&self, key: &[u64]) -> Option<u64> {
        debug_assert_eq!(key.len(), self.width);
        let h = hash_words(key);
        let fp = h >> 48;
        match self.walk(&self.slots0, h, fp, key) {
            Walk::Found(id) => Some(id),
            Walk::Empty => None,
            Walk::Exhausted => self.probe_tail(h, fp, key),
        }
    }

    /// Continues a read-only probe through the spill segments.
    #[cold]
    fn probe_tail(&self, h: u64, fp: u64, key: &[u64]) -> Option<u64> {
        for slot_seg in &self.slots_tail {
            let seg = slot_seg.get()?;
            match self.walk(seg, h, fp, key) {
                Walk::Found(id) => return Some(id),
                Walk::Empty => return None,
                Walk::Exhausted => {}
            }
        }
        None
    }

    /// Whether `key` is published. See [`AtomicWordTable::probe`].
    #[inline]
    pub fn contains(&self, key: &[u64]) -> bool {
        self.probe(key).is_some()
    }

    /// Walks `seg`'s probe window trying to find-or-insert `key`,
    /// CAS-claiming the first empty slot. `claimed` carries the entry
    /// reference across CAS retries (and segments) so a race never claims
    /// twice. `None` means the window is exhausted: continue next segment.
    #[inline]
    fn intern_walk(
        &self,
        seg: &[AtomicU64],
        h: u64,
        fp: u64,
        key: &[u64],
        claimed: &mut Option<u64>,
    ) -> Option<(u64, bool)> {
        let mask = seg.len() - 1;
        let mut idx = ((h >> 16) as usize) & mask;
        let mut examined = 0;
        let limit = PROBE_LIMIT.min(seg.len());
        while examined < limit {
            let s = seg[idx].load(Ordering::Acquire);
            if s == 0 {
                let id = match *claimed {
                    Some(id) => id,
                    None => {
                        let id = self.claim_entry(key);
                        *claimed = Some(id);
                        id
                    }
                };
                match seg[idx].compare_exchange(
                    0,
                    (fp << 48) | (id + 1),
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Some((id, true)),
                    // Lost the slot: re-read it without advancing — the
                    // winner may have published this very key.
                    Err(_) => continue,
                }
            }
            if s >> 48 == fp {
                let id = (s & REF_MASK) - 1;
                if self.entry_eq(id, key) {
                    return Some((id, false));
                }
            }
            idx = (idx + 1) & mask;
            examined += 1;
        }
        None
    }

    /// Finds `key`'s entry, inserting it if absent: returns the stable id
    /// and whether this call published it. Lock-free — the only blocking
    /// is `OnceLock` initialization when a new spill segment must be
    /// allocated (amortized: segment capacities double).
    #[inline]
    pub fn probe_or_intern(&self, key: &[u64]) -> (u64, bool) {
        debug_assert_eq!(key.len(), self.width);
        let h = hash_words(key);
        let fp = h >> 48;
        let mut claimed = None;
        if let Some(r) = self.intern_walk(&self.slots0, h, fp, key, &mut claimed) {
            return r;
        }
        self.intern_tail(h, fp, key, claimed)
    }

    /// Continues an insert through the spill segments, creating them as
    /// the walk needs them.
    #[cold]
    fn intern_tail(&self, h: u64, fp: u64, key: &[u64], mut claimed: Option<u64>) -> (u64, bool) {
        for (ti, slot_seg) in self.slots_tail.iter().enumerate() {
            let seg = slot_seg.get_or_init(|| zeroed(tail_slot_cap(ti)));
            if let Some(r) = self.intern_walk(seg, h, fp, key, &mut claimed) {
                return r;
            }
        }
        unreachable!("AtomicWordTable: {SEGMENTS} growing segments saturated")
    }

    /// Convenience: insert ignoring the id.
    pub fn insert(&self, key: &[u64]) {
        self.probe_or_intern(key);
    }

    /// Claims the next entry index and writes `key`'s words into it. The
    /// entry is private (invisible to probes) until a slot CAS publishes
    /// its reference with `Release`.
    fn claim_entry(&self, key: &[u64]) -> u64 {
        let id = self.next_entry.fetch_add(1, Ordering::Relaxed);
        let words = if id < FIRST_ENTRY_CAP {
            &self.entries0[id as usize * self.width..]
        } else {
            let (si, off) = entry_loc(id);
            assert!(si < SEGMENTS, "AtomicWordTable: entry segments saturated");
            let seg = self.entries_tail[si - 1].get_or_init(|| {
                let cap = (FIRST_ENTRY_CAP as usize) << si;
                zeroed(cap * self.width)
            });
            &seg[off * self.width..]
        };
        for (slot, &w) in words.iter().zip(key) {
            slot.store(w, Ordering::Relaxed);
        }
        id
    }

    /// Whether published entry `id` holds exactly `key`. Plain atomic
    /// loads: visibility is guaranteed by the `Acquire` slot load that
    /// produced `id` pairing with the publisher's `Release` CAS.
    #[inline]
    fn entry_eq(&self, id: u64, key: &[u64]) -> bool {
        let words = if id < FIRST_ENTRY_CAP {
            &self.entries0[id as usize * self.width..]
        } else {
            let (si, off) = entry_loc(id);
            let seg = self.entries_tail[si - 1]
                .get()
                .expect("published entry's segment exists");
            &seg[off * self.width..]
        };
        key.iter()
            .zip(words)
            .all(|(&w, slot)| slot.load(Ordering::Relaxed) == w)
    }
}

/// A zero-initialized boxed `AtomicU64` array.
fn zeroed(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

/// Slot capacity of tail segment `ti` (segment `ti + 1` overall) under
/// the 4×-growth schedule.
fn tail_slot_cap(ti: usize) -> usize {
    1usize << (FIRST_SLOT_BITS + SLOT_GROWTH_BITS * (ti as u32 + 1))
}

/// Maps an entry index to (segment, offset-within-segment) under the
/// doubling schedule: segment `i` holds `FIRST_ENTRY_CAP << i` entries
/// starting at `FIRST_ENTRY_CAP * (2^i - 1)`.
#[inline]
fn entry_loc(id: u64) -> (usize, usize) {
    let q = id / FIRST_ENTRY_CAP;
    let si = (q + 1).ilog2() as usize;
    let base = FIRST_ENTRY_CAP * ((1u64 << si) - 1);
    (si, (id - base) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_loc_tracks_doubling_segments() {
        assert_eq!(entry_loc(0), (0, 0));
        assert_eq!(
            entry_loc(FIRST_ENTRY_CAP - 1),
            (0, FIRST_ENTRY_CAP as usize - 1)
        );
        assert_eq!(entry_loc(FIRST_ENTRY_CAP), (1, 0));
        assert_eq!(
            entry_loc(3 * FIRST_ENTRY_CAP - 1),
            (1, 2 * FIRST_ENTRY_CAP as usize - 1)
        );
        assert_eq!(entry_loc(3 * FIRST_ENTRY_CAP), (2, 0));
    }

    #[test]
    fn probe_or_intern_round_trips() {
        let t = AtomicWordTable::new(3);
        assert_eq!(t.probe(&[1, 2, 3]), None);
        let (a, fresh) = t.probe_or_intern(&[1, 2, 3]);
        assert!(fresh);
        let (b, fresh) = t.probe_or_intern(&[1, 2, 3]);
        assert!(!fresh);
        assert_eq!(a, b);
        assert_eq!(t.probe(&[1, 2, 3]), Some(a));
        assert_eq!(t.probe(&[1, 2, 4]), None);
        let (c, _) = t.probe_or_intern(&[1, 2, 4]);
        assert_ne!(a, c);
    }

    #[test]
    fn grows_past_the_first_segments() {
        // Enough keys to overflow the first slot and entry segments.
        let t = AtomicWordTable::new(1);
        let n = 10_000u64;
        let ids: Vec<u64> = (0..n).map(|i| t.probe_or_intern(&[i]).0).collect();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(t.probe(&[i as u64]), Some(id), "key {i} lost");
            assert_eq!(
                t.probe_or_intern(&[i as u64]),
                (id, false),
                "key {i} re-interned"
            );
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n as usize, "ids must be distinct");
    }

    #[test]
    fn key_shape_widths() {
        // Packed positions + small edges: 2 + 2.
        assert_eq!(KeyShape::new(true, 4, true).width(), 4);
        // Packed positions + wide edges (k = 13): 2 + 13.
        assert_eq!(KeyShape::new(true, 13, false).width(), 15);
        // Wide positions (k = 17): ceil(17/4) + 17.
        assert_eq!(KeyShape::new(false, 17, false).width(), 5 + 17);
    }

    #[test]
    fn key_shape_encoding_is_injective_on_samples() {
        use slp_core::EdgeSet;
        let shape = KeyShape::new(false, 17, false);
        let mut seen = std::collections::HashSet::new();
        let mut buf = shape.scratch();
        for a in 0..4u16 {
            for b in 0..4u16 {
                let mut positions = vec![0u16; 17];
                positions[0] = a;
                positions[16] = b;
                for edge in 0..2 {
                    let mut edges = EdgeSet::empty(17);
                    if edge == 1 {
                        edges.insert(0, 16);
                    }
                    shape.encode(&mut buf, 0, &positions, &edges);
                    assert!(seen.insert(buf.clone()), "collision at {a},{b},{edge}");
                }
            }
        }
    }
}
