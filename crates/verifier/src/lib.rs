//! # slp-verifier — safety verification for locked transaction systems
//!
//! Two independent deciders for the paper's central question, *is this
//! locked transaction system safe?* (every legal & proper schedule
//! serializable):
//!
//! * [`explorer::verify_safety`] — **exhaustive**: memoized DFS over all
//!   legal & proper interleavings, looking for a nonserializable complete
//!   schedule. Ground truth for small systems.
//! * [`canonical_search::find_canonical_witness`] — **Theorem 1**: only
//!   canonical candidates are enumerated (a serial execution of prefixes
//!   plus a culprit lock step satisfying conditions 1, 2a, 2b). Correct by
//!   the paper's main theorem; experiment E6 cross-validates the two
//!   deciders on randomized systems.
//!
//! The exhaustive decider also runs **in parallel**:
//! [`parallel::verify_safety_parallel`] spreads the same apply/undo DFS
//! over a work-stealing thread pool with batched work donation,
//! per-worker L1 memos (the sequential explorer's own memo shape), a
//! **lock-free** shared memo table ([`memo::AtomicWordTable`] keyed
//! through the [`memo::KeyShape`] codec), and early cancellation;
//! `verifier/tests/parallel_agreement.rs` pins its verdicts to the
//! sequential explorer's differentially.
//!
//! Supporting modules: [`minimize`] (witness shrinking), [`gen`] (seeded
//! random system generation), and [`mod@reference`] — the retained
//! clone-per-node explorer, kept as the agreement oracle for the
//! optimized apply/undo DFS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical_search;
pub mod explorer;
pub mod gen;
pub mod memo;
pub mod minimize;
pub mod parallel;
pub mod reference;

pub use canonical_search::{find_canonical_witness, CanonicalBudget, CanonicalOutcome};
pub use explorer::{
    complete_schedule, complete_schedule_randomized, verify_safety, SearchBudget, SearchStats,
    Verdict,
};
pub use gen::{random_system, GenParams};
pub use minimize::minimize_witness;
pub use parallel::{verify_safety_parallel, ParallelVerifier};
pub use reference::verify_safety_reference;
