//! Exhaustive exploration of the legal-and-proper schedule space of a
//! locked transaction system.
//!
//! The safety question ("is every legal and proper schedule serializable?")
//! is decided for small systems by depth-first search over interleavings.
//! Soundness of the memoization: two search states with the same
//! per-transaction positions admit exactly the same *futures* (legality and
//! properness of a suffix depend only on positions), but may differ in the
//! serializability graph accumulated so far — so the memo key is the pair
//! (positions, `D(S)`-edge bitmask). Completion searches accept any
//! completion regardless of `D(S)`, so there the memo keys on positions
//! alone.
//!
//! # Search-loop design: apply/undo, not clone
//!
//! The DFS allocates **nothing per node** on its hot path:
//!
//! * **One simulator, mutated in place.** Instead of `sim.clone()` per
//!   branch, each candidate step is applied through
//!   [`ScheduleSimulator::apply_undoable`], which returns a compact
//!   [`slp_core::UndoToken`]; on backtrack the token is passed to
//!   [`ScheduleSimulator::undo`], restoring the simulator bit-for-bit
//!   (LIFO discipline). [`SearchStats::undo_ops`] counts these reversals.
//! * **O(1) schedule backtracking** via [`Schedule::pop`].
//! * **Incremental conflict edges.** A [`slp_core::ConflictIndex`] keeps
//!   per-entity accessor lists keyed by dense transaction indices, so the
//!   `D(S)`-edge delta of a candidate step scans only that entity's prior
//!   accessors instead of the whole schedule. The accumulated edge set is
//!   **one** [`slp_core::EdgeSet`] mutated in place through its
//!   `apply`/`undo` pair, mirroring the simulator discipline.
//! * **Packed memo keys.** Positions are bit-packed 8 bits per transaction
//!   into a `u128` (maintained incrementally, definitionally equal to
//!   [`slp_core::pack_positions`]), and probed alongside the `u128` edge
//!   mask in an `FxHashSet<(u128, u128)>` — no allocation per probe.
//!   Systems exceeding a bound degrade gracefully instead of failing:
//!   positions beyond the pack bound (more than 16 transactions or a
//!   transaction longer than 255 steps) fall back to interned `Vec<u16>`
//!   key halves, and edge sets beyond
//!   [`slp_core::ConflictIndex::MAX_TXS`] (11) transactions fall back to
//!   interned [`slp_core::EdgeSet`] words (`crate::memo::Interner`, the
//!   sequential twin of the parallel table's probe-or-intern). Probes
//!   stay allocation-free — a value is cloned once, on first insertion —
//!   and the old hard `k <= 11` panic became "any `k` verifies; the
//!   state space is the only limit".
//!
//! The pre-optimization clone-per-node DFS is retained verbatim in
//! [`crate::reference`] as the agreement baseline; `verifier_bench`'s
//! `dfs_throughput` group tracks the speedup. [`crate::parallel`] runs this
//! same search as a work-stealing fleet over per-worker L1 memos and a
//! shared lock-free word table;
//! `verifier/tests/parallel_agreement.rs` locks the two to identical
//! verdicts.
//!
//! The randomized corpus-generation mode ([`complete_schedule_randomized`])
//! shuffles the candidate order at each node, which allocates the shuffled
//! order vector; only that mode pays the allocation.

use crate::memo::Interner;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rustc_hash::FxHashSet;
use slp_core::{
    ConflictIndex, EdgeSet, Schedule, ScheduleSimulator, ScheduledStep, TransactionSystem, TxId,
};
use std::fmt;

/// Re-exported for the retained reference explorer, which keeps raw `u128`
/// masks (it predates [`EdgeSet`] and is kept byte-for-byte faithful).
pub(crate) use slp_core::mask_has_cycle;

/// Limits on the search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SearchBudget {
    /// Maximum number of search states to visit before giving up.
    pub max_states: usize,
    /// Whether to memoize fully explored (positions, D-edges) states.
    /// Disabling turns the search into a plain DFS — exposed for the
    /// memoization ablation in `verifier_bench`.
    pub use_memo: bool,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_states: 2_000_000,
            use_memo: true,
        }
    }
}

/// Statistics from a search run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SearchStats {
    /// Search states visited.
    pub states: usize,
    /// Memoization hits (states skipped).
    pub memo_hits: usize,
    /// Complete schedules reached.
    pub completions: usize,
    /// Steps reversed while backtracking (apply/undo DFS only; the
    /// reference explorer clones instead and reports 0).
    pub undo_ops: usize,
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} memo hits, {} completions, {} undos",
            self.states, self.memo_hits, self.completions, self.undo_ops
        )
    }
}

/// The verdict of a safety check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Every legal and proper schedule is serializable.
    Safe(SearchStats),
    /// A legal, proper, nonserializable complete schedule exists.
    Unsafe {
        /// The counterexample schedule.
        witness: Schedule,
        /// Search statistics.
        stats: SearchStats,
    },
    /// The budget was exhausted before the space was covered.
    Exhausted(SearchStats),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, Verdict::Safe(_))
    }

    /// Whether the verdict is [`Verdict::Unsafe`].
    pub fn is_unsafe(&self) -> bool {
        matches!(self, Verdict::Unsafe { .. })
    }

    /// The counterexample, if unsafe.
    pub fn witness(&self) -> Option<&Schedule> {
        match self {
            Verdict::Unsafe { witness, .. } => Some(witness),
            _ => None,
        }
    }

    /// The statistics of the run.
    pub fn stats(&self) -> SearchStats {
        match self {
            Verdict::Safe(s) | Verdict::Exhausted(s) | Verdict::Unsafe { stats: s, .. } => *s,
        }
    }
}

/// The visited-state set, keyed on (positions, `D(S)` edges). Two key
/// shapes:
///
/// * `Packed` — positions bit-packed into a `u128` **and** edges in
///   [`EdgeSet`]'s `u128` representation: one `(u128, u128)` probe, no
///   allocation. This is every system exhaustive search can realistically
///   cover.
/// * `PackedEdges` — positions still pack (k ≤ 16, steps ≤ 255) but edges
///   are words (k > 11): edge sets are interned through the shared
///   [`Interner`] (the sequential twin of the parallel table's
///   probe-or-intern — one key-interning API across explorers), so keys
///   are small `(u128, u32)` pairs, probes are allocation-free, and the
///   hit-heavy memo set never compares 100+-byte word strings.
/// * `Wide` — positions exceed the pack bound too: both halves interned,
///   `(u32, u32)` keys, allocation-free probes.
///
/// The parallel explorer's *shared* memo instead encodes whole keys into
/// the lock-free word table (one synchronized op per probe); this enum
/// doubles as the parallel workers' private L1 memo, which is what
/// guarantees the L1's per-probe cost equals the sequential explorer's.
pub(crate) enum Memo {
    Packed(FxHashSet<(u128, u128)>),
    PackedEdges {
        set: FxHashSet<(u128, u32)>,
        edges: Interner<EdgeSet>,
    },
    Wide {
        set: FxHashSet<(u32, u32)>,
        positions: Interner<Vec<u16>>,
        edges: Interner<EdgeSet>,
    },
}

impl Memo {
    /// Picks the key shape for a system of `k` transactions whose
    /// positions do (not) pack, with `small_edges` saying whether edge
    /// sets use the `u128` representation.
    pub(crate) fn for_system(packable: bool, small_edges: bool) -> Memo {
        match (packable, small_edges) {
            (true, true) => Memo::Packed(FxHashSet::default()),
            (true, false) => Memo::PackedEdges {
                set: FxHashSet::default(),
                edges: Interner::new(),
            },
            (false, _) => Memo::Wide {
                set: FxHashSet::default(),
                positions: Interner::new(),
                edges: Interner::new(),
            },
        }
    }

    pub(crate) fn contains(&self, packed: u128, positions: &[u16], edges: &EdgeSet) -> bool {
        match self {
            Memo::Packed(set) => {
                set.contains(&(packed, edges.as_small_mask().expect("small edges")))
            }
            // An un-interned value was never part of an inserted key, so
            // the memo cannot contain the state: answer without cloning.
            Memo::PackedEdges { set, edges: ids } => {
                ids.get(edges).is_some_and(|e| set.contains(&(packed, e)))
            }
            Memo::Wide {
                set,
                positions: pos_ids,
                edges: edge_ids,
            } => match (pos_ids.get(positions), edge_ids.get(edges)) {
                (Some(p), Some(e)) => set.contains(&(p, e)),
                _ => false,
            },
        }
    }

    pub(crate) fn insert(&mut self, packed: u128, positions: &[u16], edges: &EdgeSet) {
        match self {
            Memo::Packed(set) => {
                set.insert((packed, edges.as_small_mask().expect("small edges")));
            }
            Memo::PackedEdges { set, edges: ids } => {
                let e = ids.probe_or_intern(edges);
                set.insert((packed, e));
            }
            Memo::Wide {
                set,
                positions: pos_ids,
                edges: edge_ids,
            } => {
                let p = pos_ids.probe_or_intern(positions);
                let e = edge_ids.probe_or_intern(edges);
                set.insert((p, e));
            }
        }
    }
}

/// Incrementally maintained per-position bookkeeping, shared by the
/// sequential [`Search`] and the parallel explorer's workers so the two
/// searches cannot drift apart on it:
///
/// * `packed` — positions bit-packed 8 bits per transaction (the position
///   half of the fast-path memo key, definitionally equal to
///   [`slp_core::pack_positions`]), maintained only when `packable` (k ≤
///   16, all |T| ≤ 255) so wide systems never shift out of range;
/// * `started` / `finished` — how many transactions have taken at least
///   one step resp. run to completion, so acceptance checks need no O(k)
///   scan per node. Zero-length transactions are excluded from **both**
///   counters: they can never start, and pre-counting them as finished
///   would let `started == finished` accept nodes where a started
///   transaction is still mid-flight.
#[derive(Clone)]
pub(crate) struct PositionBook {
    /// Per-transaction step counts, densely indexed.
    pub(crate) lens: Vec<u16>,
    pub(crate) packable: bool,
    pub(crate) packed: u128,
    pub(crate) started: usize,
    pub(crate) finished: usize,
}

impl PositionBook {
    pub(crate) fn new(lens: Vec<u16>) -> Self {
        let packable = lens.len() <= 16 && lens.iter().all(|&l| l <= u8::MAX as u16);
        PositionBook {
            lens,
            packable,
            packed: 0,
            started: 0,
            finished: 0,
        }
    }

    /// Back to the all-zero-positions state (the parallel workers reuse
    /// one book across task replays).
    pub(crate) fn reset(&mut self) {
        self.packed = 0;
        self.started = 0;
        self.finished = 0;
    }

    /// Advances dense transaction `i` by one step: positions, the packed
    /// word, and the started/finished counters, all O(1).
    pub(crate) fn take(&mut self, positions: &mut [u16], i: usize) {
        positions[i] += 1;
        if self.packable {
            self.packed += 1u128 << (8 * i);
        }
        if positions[i] == 1 {
            self.started += 1;
        }
        if positions[i] == self.lens[i] {
            self.finished += 1;
        }
    }

    /// Reverses [`take`](PositionBook::take) for dense transaction `i`.
    pub(crate) fn untake(&mut self, positions: &mut [u16], i: usize) {
        if positions[i] == self.lens[i] {
            self.finished -= 1;
        }
        if positions[i] == 1 {
            self.started -= 1;
        }
        if self.packable {
            self.packed -= 1u128 << (8 * i);
        }
        positions[i] -= 1;
    }
}

struct Search<'a> {
    budget: SearchBudget,
    stats: SearchStats,
    /// Transactions in dense-index order (index `i` ↔ `ids[i]`).
    ids: Vec<TxId>,
    txs: Vec<&'a slp_core::LockedTransaction>,
    memo: Memo,
    /// Position bookkeeping (packed memo-key word, started/finished).
    book: PositionBook,
    /// Number of zero-length transactions (trivially complete; they only
    /// matter for the require_all acceptance mode).
    zero_len: usize,
    /// `D(S)`-edge tracking: present iff the acceptance predicate inspects
    /// edges (`want_cycle`), absent for plain completion searches.
    index: Option<ConflictIndex>,
    /// Search goal: when all started transactions have finished, accept if
    /// the accumulated `D(S)` edge mask satisfies this predicate.
    want_cycle: bool,
    /// When set, candidate transactions are tried in a shuffled order at
    /// each node, so the first completion found is a *random interleaved*
    /// schedule rather than a serial one.
    rng: Option<StdRng>,
    /// When true, acceptance requires *every* transaction of the system to
    /// have run to completion (not just the started subset).
    require_all: bool,
}

/// Outcome of the internal DFS.
enum Dfs {
    Found(Schedule),
    NotFound,
    BudgetExhausted,
}

impl<'a> Search<'a> {
    fn new(system: &'a TransactionSystem, budget: SearchBudget, want_cycle: bool) -> Self {
        let ids = system.ids();
        let txs: Vec<_> = ids
            .iter()
            .map(|&id| system.get(id).expect("listed id"))
            .collect();
        let lens: Vec<u16> = txs.iter().map(|t| t.len() as u16).collect();
        let k = ids.len();
        let zero_len = lens.iter().filter(|&&l| l == 0).count();
        let book = PositionBook::new(lens);
        // Completion searches never accumulate edges, so their keys always
        // qualify for the small-edge shape.
        let small_edges = !want_cycle || k <= ConflictIndex::MAX_TXS;
        let memo = Memo::for_system(book.packable, small_edges);
        let index = want_cycle.then(|| ConflictIndex::new(k));
        Search {
            budget,
            stats: SearchStats::default(),
            ids,
            txs,
            memo,
            book,
            zero_len,
            index,
            want_cycle,
            rng: None,
            require_all: false,
        }
    }

    fn dfs(
        &mut self,
        positions: &mut [u16],
        sim: &mut ScheduleSimulator,
        schedule: &mut Schedule,
        edges: &mut EdgeSet,
    ) -> Dfs {
        if self.stats.states >= self.budget.max_states {
            return Dfs::BudgetExhausted;
        }
        self.stats.states += 1;

        // Acceptance: every *started* transaction has run to completion
        // (or, in require_all mode, every transaction of the system) —
        // read off the incrementally maintained counters in O(1).
        let k = self.ids.len();
        let all_started_finished = if self.require_all {
            self.book.finished + self.zero_len == k
        } else {
            self.book.started == self.book.finished
        };
        if all_started_finished && self.book.started > 0 {
            self.stats.completions += 1;
            let accept = if self.want_cycle {
                edges.has_cycle()
            } else {
                true
            };
            if accept {
                return Dfs::Found(schedule.clone());
            }
        }

        // The deterministic search iterates candidates in dense order with
        // no per-node allocation; only the randomized corpus generator
        // materializes (and shuffles) an order vector.
        let shuffled: Option<Vec<usize>> = self.rng.as_mut().map(|rng| {
            let mut order: Vec<usize> = (0..k).collect();
            order.shuffle(rng);
            order
        });
        let mut budget_hit = false;
        for idx in 0..k {
            let i = shuffled.as_ref().map_or(idx, |order| order[idx]);
            let id = self.ids[i];
            let pos = positions[i] as usize;
            let Some(&step) = self.txs[i].steps.get(pos) else {
                continue;
            };
            // OR the candidate's edge delta into the running set; `added`
            // records the genuinely new edges so the backtrack can clear
            // exactly those (the edge-set half of the apply/undo trail).
            // Empty deltas — the common case — are `None` end to end, so
            // they skip the apply/undo pair and every allocation.
            let added = self
                .index
                .as_ref()
                .and_then(|index| index.edge_delta(i, &step))
                .map(|delta| edges.apply(&delta));
            // Memo probe before the legality/properness gate: the
            // simulator state is a function of `positions`, so a memoized
            // successor state was necessarily reached by applying this very
            // step legally — an illegal candidate can never hit.
            self.book.take(positions, i);
            if self.budget.use_memo && self.memo.contains(self.book.packed, positions, edges) {
                self.stats.memo_hits += 1;
                self.book.untake(positions, i);
                if let Some(a) = &added {
                    edges.undo(a);
                }
                continue;
            }
            // Legality + properness gate and application in one pass
            // (apply_undoable checks, then mutates only on success).
            let Ok(token) = sim.apply_undoable(id, &step) else {
                self.book.untake(positions, i);
                if let Some(a) = &added {
                    edges.undo(a);
                }
                continue;
            };
            schedule.push(ScheduledStep::new(id, step));
            if let Some(index) = &mut self.index {
                index.push(i, step);
            }
            let result = self.dfs(positions, sim, schedule, edges);
            if let Some(index) = &mut self.index {
                index.pop();
            }
            schedule.pop();
            sim.undo(token);
            self.stats.undo_ops += 1;
            match result {
                Dfs::Found(s) => {
                    self.book.untake(positions, i);
                    if let Some(a) = &added {
                        edges.undo(a);
                    }
                    return Dfs::Found(s);
                }
                // Only fully explored subtrees may be memoized.
                Dfs::NotFound => {
                    if self.budget.use_memo {
                        self.memo.insert(self.book.packed, positions, edges);
                    }
                }
                Dfs::BudgetExhausted => {
                    budget_hit = true;
                }
            }
            self.book.untake(positions, i);
            if let Some(a) = &added {
                edges.undo(a);
            }
            if budget_hit {
                break;
            }
        }
        if budget_hit {
            Dfs::BudgetExhausted
        } else {
            Dfs::NotFound
        }
    }
}

/// Decides safety of `system` by exhaustive search: looks for a complete
/// (over the started subset), legal, proper, nonserializable schedule.
pub fn verify_safety(system: &TransactionSystem, budget: SearchBudget) -> Verdict {
    let mut search = Search::new(system, budget, true);
    let mut positions = vec![0u16; search.ids.len()];
    let mut sim = ScheduleSimulator::new(system.initial_state().clone());
    let mut schedule = Schedule::empty();
    let mut edges = EdgeSet::empty(search.ids.len());
    match search.dfs(&mut positions, &mut sim, &mut schedule, &mut edges) {
        Dfs::Found(witness) => Verdict::Unsafe {
            witness,
            stats: search.stats,
        },
        Dfs::NotFound => Verdict::Safe(search.stats),
        Dfs::BudgetExhausted => Verdict::Exhausted(search.stats),
    }
}

/// Extends a legal & proper partial schedule `prefix` of `system` to any
/// complete legal & proper schedule (additional transactions may be
/// started). Returns `None` if no completion exists within budget.
pub fn complete_schedule(
    system: &TransactionSystem,
    prefix: &Schedule,
    budget: SearchBudget,
) -> Option<Schedule> {
    complete_with(system, prefix, budget, None)
}

/// Like [`complete_schedule`], but explores interleavings in a seeded
/// random order and requires **every** transaction of the system to run to
/// completion — the first schedule found is therefore a random interleaved
/// legal & proper schedule of the whole system (the corpus generator for
/// the Lemma 1–2 experiments).
pub fn complete_schedule_randomized(
    system: &TransactionSystem,
    prefix: &Schedule,
    budget: SearchBudget,
    seed: u64,
) -> Option<Schedule> {
    complete_with(system, prefix, budget, Some(seed))
}

fn complete_with(
    system: &TransactionSystem,
    prefix: &Schedule,
    budget: SearchBudget,
    seed: Option<u64>,
) -> Option<Schedule> {
    let mut search = Search::new(system, budget, false);
    search.rng = seed.map(StdRng::seed_from_u64);
    search.require_all = seed.is_some();
    let mut positions = vec![0u16; search.ids.len()];
    let mut sim = ScheduleSimulator::new(system.initial_state().clone());
    let mut schedule = Schedule::empty();
    for s in prefix.steps() {
        let i = search.ids.iter().position(|&t| t == s.tx)?;
        let tx = system.get(s.tx)?;
        if tx.steps.get(positions[i] as usize) != Some(&s.step) {
            return None; // not a partial schedule of the system
        }
        sim.apply(s.tx, &s.step).ok()?;
        schedule.push(*s);
        search.book.take(&mut positions, i);
    }
    debug_assert!(
        !search.book.packable || Some(search.book.packed) == slp_core::pack_positions(&positions),
        "incrementally maintained packed key diverged from pack_positions"
    );
    // Completion searches accept any completion regardless of `D(S)`, so
    // the edge set stays empty (and zero-width).
    let mut edges = EdgeSet::empty(0);
    match search.dfs(&mut positions, &mut sim, &mut schedule, &mut edges) {
        Dfs::Found(s) => Some(s),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::SystemBuilder;

    /// Two 2PL transactions: safe.
    fn two_phase_system() -> TransactionSystem {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        b.tx(1)
            .lx("x")
            .write("x")
            .lx("y")
            .write("y")
            .ux("x")
            .ux("y")
            .finish();
        b.tx(2)
            .lx("x")
            .write("x")
            .lx("y")
            .write("y")
            .ux("y")
            .ux("x")
            .finish();
        b.build()
    }

    /// Classic non-2PL pair: unsafe.
    fn short_lock_system() -> TransactionSystem {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        b.tx(1)
            .lx("x")
            .write("x")
            .ux("x")
            .lx("y")
            .write("y")
            .ux("y")
            .finish();
        b.tx(2)
            .lx("x")
            .write("x")
            .ux("x")
            .lx("y")
            .write("y")
            .ux("y")
            .finish();
        b.build()
    }

    #[test]
    fn two_phase_pair_is_safe() {
        let verdict = verify_safety(&two_phase_system(), SearchBudget::default());
        assert!(verdict.is_safe(), "{verdict:?}");
        assert!(verdict.stats().states > 0);
        assert!(
            verdict.stats().undo_ops > 0,
            "apply/undo DFS must backtrack via undo"
        );
    }

    #[test]
    fn short_lock_pair_is_unsafe_with_valid_witness() {
        let system = short_lock_system();
        let verdict = verify_safety(&system, SearchBudget::default());
        let witness = verdict.witness().expect("unsafe").clone();
        assert!(witness.is_legal());
        assert!(witness.is_proper(system.initial_state()));
        assert!(!slp_core::is_serializable(&witness));
        // The witness is complete over its participants.
        let parts: Vec<_> = witness
            .participants()
            .iter()
            .map(|&id| system.get(id).unwrap().clone())
            .collect();
        assert!(witness.is_complete_schedule_of(&parts));
    }

    #[test]
    fn single_transaction_system_is_safe() {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.tx(1).lx("x").write("x").ux("x").finish();
        let verdict = verify_safety(&b.build(), SearchBudget::default());
        assert!(verdict.is_safe());
    }

    #[test]
    fn empty_system_is_safe() {
        let b = SystemBuilder::new();
        let verdict = verify_safety(&b.build(), SearchBudget::default());
        assert!(verdict.is_safe());
    }

    #[test]
    fn properness_prunes_impossible_interleavings() {
        // T2 can only run between T1's insert and delete; all complete
        // schedules are serializable because T2's window forces an order.
        let mut b = SystemBuilder::new();
        b.tx(1).lx("a").insert("a").ux("a").finish();
        b.tx(2).lx("a").read("a").ux("a").finish();
        let system = b.build();
        let verdict = verify_safety(&system, SearchBudget::default());
        assert!(verdict.is_safe());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let verdict = verify_safety(
            &two_phase_system(),
            SearchBudget {
                max_states: 3,
                ..Default::default()
            },
        );
        assert!(matches!(verdict, Verdict::Exhausted(_)));
    }

    #[test]
    fn completion_of_empty_prefix_exists() {
        let system = two_phase_system();
        let s = complete_schedule(&system, &Schedule::empty(), SearchBudget::default());
        let s = s.expect("completion exists");
        assert!(s.is_legal());
        assert!(s.is_proper(system.initial_state()));
    }

    #[test]
    fn completion_respects_prefix() {
        let system = short_lock_system();
        // Prefix: T1 does (LX x)(W x)(UX x).
        let t1 = system.get(TxId(1)).unwrap().clone();
        let prefix = Schedule::from_steps(
            t1.steps[..3]
                .iter()
                .map(|&s| ScheduledStep::new(TxId(1), s))
                .collect(),
        );
        let s = complete_schedule(&system, &prefix, SearchBudget::default()).unwrap();
        assert!(s.has_prefix(&prefix));
        assert!(s.is_legal());
        assert!(s.is_proper(system.initial_state()));
    }

    #[test]
    fn bogus_prefix_is_rejected() {
        let system = two_phase_system();
        let bogus = Schedule::from_steps(vec![ScheduledStep::new(
            TxId(1),
            slp_core::Step::write(slp_core::EntityId(0)), // T1 starts with LX x
        )]);
        assert_eq!(
            complete_schedule(&system, &bogus, SearchBudget::default()),
            None
        );
    }

    /// A 16-transaction system verifies exhaustively end-to-end — both
    /// verdict directions. Before the [`EdgeSet`] words representation,
    /// `ConflictIndex::new(16)` panicked and exhaustive safety search was
    /// hard-capped at 11 transactions.
    #[test]
    fn sixteen_transaction_system_verifies_end_to_end() {
        // Safe arm: a 2PL pair on x (so real D(S) edges flow through the
        // wide edge sets) plus 14 single-step transactions contending on
        // one shared entity p — whoever locks p first holds it forever,
        // which keeps the state space tiny at k = 16.
        let mut b = SystemBuilder::new();
        b.exists("x");
        for t in 1..=2 {
            b.tx(t).lx("x").write("x").ux("x").finish();
        }
        for t in 3..=16 {
            b.tx(t).lx("p").finish();
        }
        let safe = b.build();
        assert_eq!(safe.ids().len(), 16);
        let verdict = verify_safety(&safe, SearchBudget::default());
        assert!(verdict.is_safe(), "{verdict:?}");

        // Unsafe arm: the classic short-lock pair under the same padding;
        // the wide-representation cycle check must still fire.
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        for t in 1..=2 {
            b.tx(t)
                .lx("x")
                .write("x")
                .ux("x")
                .lx("y")
                .write("y")
                .ux("y")
                .finish();
        }
        for t in 3..=16 {
            b.tx(t).lx("p").finish();
        }
        let unsafe_ = b.build();
        let verdict = verify_safety(&unsafe_, SearchBudget::default());
        let witness = verdict.witness().expect("unsafe at k = 16").clone();
        assert!(witness.is_legal());
        assert!(witness.is_proper(unsafe_.initial_state()));
        assert!(!slp_core::is_serializable(&witness));
    }

    #[test]
    fn mask_cycle_detection() {
        // 3 nodes, edges 0->1, 1->2: acyclic.
        let k = 3;
        let edge = |i: usize, j: usize| 1u128 << (i * k + j);
        assert!(!mask_has_cycle(edge(0, 1) | edge(1, 2), k));
        assert!(mask_has_cycle(edge(0, 1) | edge(1, 2) | edge(2, 0), k));
        assert!(mask_has_cycle(edge(0, 1) | edge(1, 0), k));
        assert!(!mask_has_cycle(0, k));
    }

    #[test]
    fn randomized_completions_vary_with_seed_but_stay_valid() {
        let system = two_phase_system();
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..8 {
            let s = complete_schedule_randomized(
                &system,
                &Schedule::empty(),
                SearchBudget::default(),
                seed,
            )
            .expect("completion exists");
            assert!(s.is_legal());
            assert!(s.is_proper(system.initial_state()));
            let all: Vec<_> = system.transactions().to_vec();
            assert!(s.is_complete_schedule_of(&all));
            distinct.insert(format!("{s}"));
        }
        assert!(
            distinct.len() > 1,
            "seeds should produce different interleavings"
        );
    }
}
