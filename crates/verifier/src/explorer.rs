//! Exhaustive exploration of the legal-and-proper schedule space of a
//! locked transaction system.
//!
//! The safety question ("is every legal and proper schedule serializable?")
//! is decided for small systems by depth-first search over interleavings.
//! Soundness of the memoization: two search states with the same
//! per-transaction positions admit exactly the same *futures* (legality and
//! properness of a suffix depend only on positions), but may differ in the
//! serializability graph accumulated so far — so the memo key is the pair
//! (positions, `D(S)`-edge bitmask).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use slp_core::{Schedule, ScheduleSimulator, ScheduledStep, TransactionSystem, TxId};
use std::collections::HashSet;
use std::fmt;

/// Limits on the search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SearchBudget {
    /// Maximum number of search states to visit before giving up.
    pub max_states: usize,
    /// Whether to memoize fully explored (positions, D-edges) states.
    /// Disabling turns the search into a plain DFS — exposed for the
    /// memoization ablation in `verifier_bench`.
    pub use_memo: bool,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget { max_states: 2_000_000, use_memo: true }
    }
}

/// Statistics from a search run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SearchStats {
    /// Search states visited.
    pub states: usize,
    /// Memoization hits (states skipped).
    pub memo_hits: usize,
    /// Complete schedules reached.
    pub completions: usize,
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} memo hits, {} completions",
            self.states, self.memo_hits, self.completions
        )
    }
}

/// The verdict of a safety check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Every legal and proper schedule is serializable.
    Safe(SearchStats),
    /// A legal, proper, nonserializable complete schedule exists.
    Unsafe {
        /// The counterexample schedule.
        witness: Schedule,
        /// Search statistics.
        stats: SearchStats,
    },
    /// The budget was exhausted before the space was covered.
    Exhausted(SearchStats),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, Verdict::Safe(_))
    }

    /// Whether the verdict is [`Verdict::Unsafe`].
    pub fn is_unsafe(&self) -> bool {
        matches!(self, Verdict::Unsafe { .. })
    }

    /// The counterexample, if unsafe.
    pub fn witness(&self) -> Option<&Schedule> {
        match self {
            Verdict::Unsafe { witness, .. } => Some(witness),
            _ => None,
        }
    }

    /// The statistics of the run.
    pub fn stats(&self) -> SearchStats {
        match self {
            Verdict::Safe(s) | Verdict::Exhausted(s) | Verdict::Unsafe { stats: s, .. } => *s,
        }
    }
}

/// Whether the edge bitmask over `k` nodes contains a cycle (transitive
/// closure; bit `i * k + j` encodes edge `i -> j`).
fn mask_has_cycle(mask: u128, k: usize) -> bool {
    let mut reach = mask;
    // Floyd–Warshall on bits.
    for via in 0..k {
        for i in 0..k {
            if reach & (1u128 << (i * k + via)) != 0 {
                for j in 0..k {
                    if reach & (1u128 << (via * k + j)) != 0 {
                        reach |= 1u128 << (i * k + j);
                    }
                }
            }
        }
    }
    (0..k).any(|i| reach & (1u128 << (i * k + i)) != 0)
}

struct Search<'a> {
    system: &'a TransactionSystem,
    ids: Vec<TxId>,
    budget: SearchBudget,
    stats: SearchStats,
    memo: HashSet<(Vec<u16>, u128)>,
    /// Search goal: when all started transactions have finished, accept if
    /// the accumulated `D(S)` edge mask satisfies this predicate.
    want_cycle: bool,
    /// When set, candidate transactions are tried in a shuffled order at
    /// each node, so the first completion found is a *random interleaved*
    /// schedule rather than a serial one.
    rng: Option<StdRng>,
    /// When true, acceptance requires *every* transaction of the system to
    /// have run to completion (not just the started subset).
    require_all: bool,
}

/// Outcome of the internal DFS.
enum Dfs {
    Found(Schedule),
    NotFound,
    BudgetExhausted,
}

impl<'a> Search<'a> {
    fn new(system: &'a TransactionSystem, budget: SearchBudget, want_cycle: bool) -> Self {
        Search {
            system,
            ids: system.ids(),
            budget,
            stats: SearchStats::default(),
            memo: HashSet::new(),
            want_cycle,
            rng: None,
            require_all: false,
        }
    }

    /// Recomputes the conflict edges the next step of `tx_idx` adds against
    /// all earlier steps in the schedule.
    fn new_edges(&self, schedule: &Schedule, step: &ScheduledStep) -> u128 {
        let k = self.ids.len();
        let to = self.ids.iter().position(|&t| t == step.tx).expect("known tx");
        let mut mask = 0u128;
        for prior in schedule.steps() {
            if prior.tx != step.tx && prior.step.conflicts_with(&step.step) {
                let from = self.ids.iter().position(|&t| t == prior.tx).expect("known tx");
                mask |= 1u128 << (from * k + to);
            }
        }
        mask
    }

    fn dfs(
        &mut self,
        positions: &mut Vec<u16>,
        sim: &ScheduleSimulator,
        schedule: &mut Schedule,
        edges: u128,
    ) -> Dfs {
        if self.stats.states >= self.budget.max_states {
            return Dfs::BudgetExhausted;
        }
        self.stats.states += 1;

        // Acceptance: every *started* transaction has run to completion
        // (or, in require_all mode, every transaction of the system).
        let k = self.ids.len();
        let all_started_finished = self.ids.iter().enumerate().all(|(i, &id)| {
            let len = self.system.get(id).expect("known tx").len() as u16;
            (positions[i] == 0 && !self.require_all) || positions[i] == len
        });
        let started_any = positions.iter().any(|&p| p > 0);
        if all_started_finished && started_any {
            self.stats.completions += 1;
            let accept = if self.want_cycle { mask_has_cycle(edges, k) } else { true };
            if accept {
                return Dfs::Found(schedule.clone());
            }
        }

        let mut budget_hit = false;
        let mut try_order: Vec<usize> = (0..k).collect();
        if let Some(rng) = &mut self.rng {
            try_order.shuffle(rng);
        }
        for i in try_order {
            let id = self.ids[i];
            let tx = self.system.get(id).expect("known tx");
            let pos = positions[i] as usize;
            let Some(&step) = tx.steps.get(pos) else { continue };
            // Legality + properness gate.
            if sim.check(id, &step).is_err() {
                continue;
            }
            let sstep = ScheduledStep::new(id, step);
            let next_edges = edges | self.new_edges(schedule, &sstep);
            positions[i] += 1;
            let key = (positions.clone(), next_edges);
            if self.budget.use_memo && self.memo.contains(&key) {
                self.stats.memo_hits += 1;
                positions[i] -= 1;
                continue;
            }
            let mut next_sim = sim.clone();
            next_sim.apply(id, &step).expect("checked");
            schedule.push(sstep);
            let result = self.dfs(positions, &next_sim, schedule, next_edges);
            schedule_pop(schedule);
            positions[i] -= 1;
            match result {
                Dfs::Found(s) => return Dfs::Found(s),
                // Only fully explored subtrees may be memoized.
                Dfs::NotFound => {
                    if self.budget.use_memo {
                        self.memo.insert(key);
                    }
                }
                Dfs::BudgetExhausted => {
                    budget_hit = true;
                    break;
                }
            }
        }
        if budget_hit {
            Dfs::BudgetExhausted
        } else {
            Dfs::NotFound
        }
    }
}

fn schedule_pop(s: &mut Schedule) {
    let mut steps = s.steps().to_vec();
    steps.pop();
    *s = Schedule::from_steps(steps);
}

/// Decides safety of `system` by exhaustive search: looks for a complete
/// (over the started subset), legal, proper, nonserializable schedule.
pub fn verify_safety(system: &TransactionSystem, budget: SearchBudget) -> Verdict {
    let mut search = Search::new(system, budget, true);
    let mut positions = vec![0u16; search.ids.len()];
    let sim = ScheduleSimulator::new(system.initial_state().clone());
    let mut schedule = Schedule::empty();
    match search.dfs(&mut positions, &sim, &mut schedule, 0) {
        Dfs::Found(witness) => Verdict::Unsafe { witness, stats: search.stats },
        Dfs::NotFound => Verdict::Safe(search.stats),
        Dfs::BudgetExhausted => Verdict::Exhausted(search.stats),
    }
}

/// Extends a legal & proper partial schedule `prefix` of `system` to any
/// complete legal & proper schedule (additional transactions may be
/// started). Returns `None` if no completion exists within budget.
pub fn complete_schedule(
    system: &TransactionSystem,
    prefix: &Schedule,
    budget: SearchBudget,
) -> Option<Schedule> {
    complete_with(system, prefix, budget, None)
}

/// Like [`complete_schedule`], but explores interleavings in a seeded
/// random order and requires **every** transaction of the system to run to
/// completion — the first schedule found is therefore a random interleaved
/// legal & proper schedule of the whole system (the corpus generator for
/// the Lemma 1–2 experiments).
pub fn complete_schedule_randomized(
    system: &TransactionSystem,
    prefix: &Schedule,
    budget: SearchBudget,
    seed: u64,
) -> Option<Schedule> {
    complete_with(system, prefix, budget, Some(seed))
}

fn complete_with(
    system: &TransactionSystem,
    prefix: &Schedule,
    budget: SearchBudget,
    seed: Option<u64>,
) -> Option<Schedule> {
    let mut search = Search::new(system, budget, false);
    search.rng = seed.map(StdRng::seed_from_u64);
    search.require_all = seed.is_some();
    let mut positions = vec![0u16; search.ids.len()];
    let mut sim = ScheduleSimulator::new(system.initial_state().clone());
    let mut schedule = Schedule::empty();
    let mut edges = 0u128;
    for s in prefix.steps() {
        let i = search.ids.iter().position(|&t| t == s.tx)?;
        let tx = system.get(s.tx)?;
        if tx.steps.get(positions[i] as usize) != Some(&s.step) {
            return None; // not a partial schedule of the system
        }
        sim.apply(s.tx, &s.step).ok()?;
        edges |= search.new_edges(&schedule, s);
        schedule.push(*s);
        positions[i] += 1;
    }
    match search.dfs(&mut positions, &sim, &mut schedule, edges) {
        Dfs::Found(s) => Some(s),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::SystemBuilder;

    /// Two 2PL transactions: safe.
    fn two_phase_system() -> TransactionSystem {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        b.tx(1).lx("x").write("x").lx("y").write("y").ux("x").ux("y").finish();
        b.tx(2).lx("x").write("x").lx("y").write("y").ux("y").ux("x").finish();
        b.build()
    }

    /// Classic non-2PL pair: unsafe.
    fn short_lock_system() -> TransactionSystem {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        b.tx(1).lx("x").write("x").ux("x").lx("y").write("y").ux("y").finish();
        b.tx(2).lx("x").write("x").ux("x").lx("y").write("y").ux("y").finish();
        b.build()
    }

    #[test]
    fn two_phase_pair_is_safe() {
        let verdict = verify_safety(&two_phase_system(), SearchBudget::default());
        assert!(verdict.is_safe(), "{verdict:?}");
        assert!(verdict.stats().states > 0);
    }

    #[test]
    fn short_lock_pair_is_unsafe_with_valid_witness() {
        let system = short_lock_system();
        let verdict = verify_safety(&system, SearchBudget::default());
        let witness = verdict.witness().expect("unsafe").clone();
        assert!(witness.is_legal());
        assert!(witness.is_proper(system.initial_state()));
        assert!(!slp_core::is_serializable(&witness));
        // The witness is complete over its participants.
        let parts: Vec<_> = witness
            .participants()
            .iter()
            .map(|&id| system.get(id).unwrap().clone())
            .collect();
        assert!(witness.is_complete_schedule_of(&parts));
    }

    #[test]
    fn single_transaction_system_is_safe() {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.tx(1).lx("x").write("x").ux("x").finish();
        let verdict = verify_safety(&b.build(), SearchBudget::default());
        assert!(verdict.is_safe());
    }

    #[test]
    fn empty_system_is_safe() {
        let b = SystemBuilder::new();
        let verdict = verify_safety(&b.build(), SearchBudget::default());
        assert!(verdict.is_safe());
    }

    #[test]
    fn properness_prunes_impossible_interleavings() {
        // T2 can only run between T1's insert and delete; all complete
        // schedules are serializable because T2's window forces an order.
        let mut b = SystemBuilder::new();
        b.tx(1).lx("a").insert("a").ux("a").finish();
        b.tx(2).lx("a").read("a").ux("a").finish();
        let system = b.build();
        let verdict = verify_safety(&system, SearchBudget::default());
        assert!(verdict.is_safe());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let verdict = verify_safety(&two_phase_system(), SearchBudget { max_states: 3, ..Default::default() });
        assert!(matches!(verdict, Verdict::Exhausted(_)));
    }

    #[test]
    fn completion_of_empty_prefix_exists() {
        let system = two_phase_system();
        let s = complete_schedule(&system, &Schedule::empty(), SearchBudget::default());
        let s = s.expect("completion exists");
        assert!(s.is_legal());
        assert!(s.is_proper(system.initial_state()));
    }

    #[test]
    fn completion_respects_prefix() {
        let system = short_lock_system();
        // Prefix: T1 does (LX x)(W x)(UX x).
        let t1 = system.get(TxId(1)).unwrap().clone();
        let prefix = Schedule::from_steps(
            t1.steps[..3]
                .iter()
                .map(|&s| ScheduledStep::new(TxId(1), s))
                .collect(),
        );
        let s = complete_schedule(&system, &prefix, SearchBudget::default()).unwrap();
        assert!(s.has_prefix(&prefix));
        assert!(s.is_legal());
        assert!(s.is_proper(system.initial_state()));
    }

    #[test]
    fn bogus_prefix_is_rejected() {
        let system = two_phase_system();
        let bogus = Schedule::from_steps(vec![ScheduledStep::new(
            TxId(1),
            slp_core::Step::write(slp_core::EntityId(0)), // T1 starts with LX x
        )]);
        assert_eq!(complete_schedule(&system, &bogus, SearchBudget::default()), None);
    }

    #[test]
    fn mask_cycle_detection() {
        // 3 nodes, edges 0->1, 1->2: acyclic.
        let k = 3;
        let edge = |i: usize, j: usize| 1u128 << (i * k + j);
        assert!(!mask_has_cycle(edge(0, 1) | edge(1, 2), k));
        assert!(mask_has_cycle(edge(0, 1) | edge(1, 2) | edge(2, 0), k));
        assert!(mask_has_cycle(edge(0, 1) | edge(1, 0), k));
        assert!(!mask_has_cycle(0, k));
    }
}
