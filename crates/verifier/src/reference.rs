//! The pre-optimization exhaustive explorer, retained as an oracle.
//!
//! This is the clone-per-node DFS the apply/undo explorer in
//! [`crate::explorer`] replaced: it clones the whole [`ScheduleSimulator`]
//! at every expansion, rebuilds the schedule vector on every backtrack,
//! rescans the entire schedule per candidate step to compute conflict
//! edges, and keys its memo table on freshly allocated `Vec<u16>`
//! position vectors. It is deliberately **not** optimized further —
//! its value is that it is small, obviously faithful to the definition,
//! and independent of the optimized search's undo/index machinery, which
//! makes it the agreement baseline for `verifier/tests/agreement.rs` and
//! the "naive-clone" arm of `verifier_bench`'s `dfs_throughput` group.
//!
//! Both explorers visit candidate transactions in the same dense order, so
//! on agreement they return *identical* verdicts, witnesses included.

use crate::explorer::{SearchBudget, SearchStats, Verdict};
use slp_core::{Schedule, ScheduleSimulator, ScheduledStep, TransactionSystem, TxId};
use std::collections::HashSet;

struct NaiveSearch<'a> {
    system: &'a TransactionSystem,
    ids: Vec<TxId>,
    budget: SearchBudget,
    stats: SearchStats,
    memo: HashSet<(Vec<u16>, u128)>,
}

enum Dfs {
    Found(Schedule),
    NotFound,
    BudgetExhausted,
}

impl<'a> NaiveSearch<'a> {
    /// Recomputes the conflict edges the next step of `step.tx` adds
    /// against all earlier steps by scanning the whole schedule.
    fn new_edges(&self, schedule: &Schedule, step: &ScheduledStep) -> u128 {
        let k = self.ids.len();
        let to = self
            .ids
            .iter()
            .position(|&t| t == step.tx)
            .expect("known tx");
        let mut mask = 0u128;
        for prior in schedule.steps() {
            if prior.tx != step.tx && prior.step.conflicts_with(&step.step) {
                let from = self
                    .ids
                    .iter()
                    .position(|&t| t == prior.tx)
                    .expect("known tx");
                mask |= 1u128 << (from * k + to);
            }
        }
        mask
    }

    fn dfs(
        &mut self,
        positions: &mut Vec<u16>,
        sim: &ScheduleSimulator,
        schedule: &mut Schedule,
        edges: u128,
    ) -> Dfs {
        if self.stats.states >= self.budget.max_states {
            return Dfs::BudgetExhausted;
        }
        self.stats.states += 1;

        let k = self.ids.len();
        let all_started_finished = self.ids.iter().enumerate().all(|(i, &id)| {
            let len = self.system.get(id).expect("known tx").len() as u16;
            positions[i] == 0 || positions[i] == len
        });
        let started_any = positions.iter().any(|&p| p > 0);
        if all_started_finished && started_any {
            self.stats.completions += 1;
            if crate::explorer::mask_has_cycle(edges, k) {
                return Dfs::Found(schedule.clone());
            }
        }

        let mut budget_hit = false;
        for i in 0..k {
            let id = self.ids[i];
            let tx = self.system.get(id).expect("known tx");
            let pos = positions[i] as usize;
            let Some(&step) = tx.steps.get(pos) else {
                continue;
            };
            if sim.check(id, &step).is_err() {
                continue;
            }
            let sstep = ScheduledStep::new(id, step);
            let next_edges = edges | self.new_edges(schedule, &sstep);
            positions[i] += 1;
            let key = (positions.clone(), next_edges);
            if self.budget.use_memo && self.memo.contains(&key) {
                self.stats.memo_hits += 1;
                positions[i] -= 1;
                continue;
            }
            let mut next_sim = sim.clone();
            next_sim.apply(id, &step).expect("checked");
            schedule.push(sstep);
            let result = self.dfs(positions, &next_sim, schedule, next_edges);
            schedule_pop(schedule);
            positions[i] -= 1;
            match result {
                Dfs::Found(s) => return Dfs::Found(s),
                Dfs::NotFound => {
                    if self.budget.use_memo {
                        self.memo.insert(key);
                    }
                }
                Dfs::BudgetExhausted => {
                    budget_hit = true;
                    break;
                }
            }
        }
        if budget_hit {
            Dfs::BudgetExhausted
        } else {
            Dfs::NotFound
        }
    }
}

/// The O(n)-per-backtrack schedule rebuild the optimized explorer's
/// [`Schedule::pop`] replaced, kept verbatim for fidelity.
fn schedule_pop(s: &mut Schedule) {
    let mut steps = s.steps().to_vec();
    steps.pop();
    *s = Schedule::from_steps(steps);
}

/// Decides safety of `system` exactly like
/// [`verify_safety`](crate::explorer::verify_safety), using the retained
/// clone-per-node reference DFS. Slow; use only as an oracle.
///
/// # Panics
///
/// If the system has more than [`slp_core::ConflictIndex::MAX_TXS`] (11)
/// transactions: the oracle is kept byte-for-byte at its pre-`EdgeSet`
/// state, so its raw `u128` edge masks still carry the old hard cap that
/// the production explorers have since lifted. Wide-`k` cross-checks use
/// the sequential [`verify_safety`](crate::explorer::verify_safety)
/// instead (see `verifier/tests/parallel_agreement.rs`).
pub fn verify_safety_reference(system: &TransactionSystem, budget: SearchBudget) -> Verdict {
    assert!(
        system.ids().len() <= slp_core::ConflictIndex::MAX_TXS,
        "the reference oracle's u128 edge masks address at most {} transactions, got {}",
        slp_core::ConflictIndex::MAX_TXS,
        system.ids().len()
    );
    let mut search = NaiveSearch {
        system,
        ids: system.ids(),
        budget,
        stats: SearchStats::default(),
        memo: HashSet::new(),
    };
    let mut positions = vec![0u16; search.ids.len()];
    let sim = ScheduleSimulator::new(system.initial_state().clone());
    let mut schedule = Schedule::empty();
    match search.dfs(&mut positions, &sim, &mut schedule, 0) {
        Dfs::Found(witness) => Verdict::Unsafe {
            witness,
            stats: search.stats,
        },
        Dfs::NotFound => Verdict::Safe(search.stats),
        Dfs::BudgetExhausted => Verdict::Exhausted(search.stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::SystemBuilder;

    #[test]
    fn reference_explorer_decides_the_classic_pairs() {
        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        b.tx(1)
            .lx("x")
            .write("x")
            .lx("y")
            .write("y")
            .ux("x")
            .ux("y")
            .finish();
        b.tx(2)
            .lx("x")
            .write("x")
            .lx("y")
            .write("y")
            .ux("y")
            .ux("x")
            .finish();
        assert!(verify_safety_reference(&b.build(), SearchBudget::default()).is_safe());

        let mut b = SystemBuilder::new();
        b.exists("x");
        b.exists("y");
        b.tx(1)
            .lx("x")
            .write("x")
            .ux("x")
            .lx("y")
            .write("y")
            .ux("y")
            .finish();
        b.tx(2)
            .lx("x")
            .write("x")
            .ux("x")
            .lx("y")
            .write("y")
            .ux("y")
            .finish();
        assert!(verify_safety_reference(&b.build(), SearchBudget::default()).is_unsafe());
    }
}
