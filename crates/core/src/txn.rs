//! Transactions and locked transactions (Section 2).
//!
//! A *transaction* is a finite sequence of data steps over `O × U`. A
//! *locked transaction* additionally contains lock/unlock steps and must be
//! *well formed*: every `INSERT`/`DELETE`/`WRITE` on an entity happens while
//! the transaction holds an exclusive lock on it, and every `READ` while it
//! holds a shared or exclusive lock. The paper further assumes a transaction
//! locks each entity **at most once** (a policy permitting relocking is
//! trivially unsafe).

use crate::entity::EntityId;
use crate::ops::{LockMode, Operation};
use crate::step::Step;
use std::collections::HashMap;
use std::fmt;

/// A compact transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u32);

impl TxId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A violation of locked-transaction discipline, found by
/// [`LockedTransaction::validate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnViolation {
    /// A data step executed without the required lock being held.
    NotWellFormed {
        /// Index of the offending step within the transaction.
        pos: usize,
        /// The lock mode the step requires.
        required: LockMode,
    },
    /// The transaction locked an entity it was already holding a lock on,
    /// or locked an entity for the second time (the paper's at-most-once
    /// assumption).
    RelockedEntity {
        /// Index of the second lock step.
        pos: usize,
    },
    /// An unlock step for an entity/mode the transaction does not hold.
    UnlockNotHeld {
        /// Index of the offending unlock step.
        pos: usize,
    },
}

impl fmt::Display for TxnViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnViolation::NotWellFormed { pos, required } => write!(
                f,
                "step {pos} performs a data operation without holding the required {required} lock"
            ),
            TxnViolation::RelockedEntity { pos } => {
                write!(
                    f,
                    "step {pos} locks an entity the transaction already locked"
                )
            }
            TxnViolation::UnlockNotHeld { pos } => {
                write!(
                    f,
                    "step {pos} unlocks an entity/mode the transaction does not hold"
                )
            }
        }
    }
}

impl std::error::Error for TxnViolation {}

/// An (unlocked) transaction: a finite sequence of data steps.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Transaction {
    /// The transaction's identifier.
    pub id: TxId,
    /// The data steps, in program order.
    pub steps: Vec<Step>,
}

impl Transaction {
    /// Creates a transaction. All steps must be data steps.
    ///
    /// # Panics
    ///
    /// Panics if any step is a lock or unlock step.
    pub fn new(id: TxId, steps: Vec<Step>) -> Self {
        assert!(
            steps.iter().all(Step::is_data),
            "unlocked transactions contain only data steps"
        );
        Transaction { id, steps }
    }

    /// The set of entities this transaction operates on, in first-use order.
    pub fn entities(&self) -> Vec<EntityId> {
        let mut seen = Vec::new();
        for s in &self.steps {
            if !seen.contains(&s.entity) {
                seen.push(s.entity);
            }
        }
        seen
    }
}

/// A locked transaction: a finite sequence over `O_L × U`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LockedTransaction {
    /// The transaction's identifier.
    pub id: TxId,
    /// The steps, in program order.
    pub steps: Vec<Step>,
}

impl LockedTransaction {
    /// Creates a locked transaction without validating it; call
    /// [`validate`](Self::validate) to check well-formedness.
    pub fn new(id: TxId, steps: Vec<Step>) -> Self {
        LockedTransaction { id, steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the transaction has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The mode in which the transaction holds a lock on `entity` after
    /// executing its first `prefix_len` steps, if any.
    ///
    /// Per the paper: `T` holds an exclusive (shared) lock on `A` in prefix
    /// `T'` if there is an `(LX A)` (`(LS A)`) step in `T'` not followed in
    /// `T'` by a matching unlock.
    pub fn holds_lock_at(&self, prefix_len: usize, entity: EntityId) -> Option<LockMode> {
        let mut held = None;
        for step in &self.steps[..prefix_len.min(self.steps.len())] {
            if step.entity != entity {
                continue;
            }
            match step.op {
                Operation::Lock(m) => held = Some(m),
                Operation::Unlock(m) if held == Some(m) => held = None,
                _ => {}
            }
        }
        held
    }

    /// All locks held after the first `prefix_len` steps.
    pub fn held_locks_at(&self, prefix_len: usize) -> HashMap<EntityId, LockMode> {
        let mut held = HashMap::new();
        for step in &self.steps[..prefix_len.min(self.steps.len())] {
            match step.op {
                Operation::Lock(m) => {
                    held.insert(step.entity, m);
                }
                Operation::Unlock(m) if held.get(&step.entity) == Some(&m) => {
                    held.remove(&step.entity);
                }
                Operation::Unlock(_) => {}
                _ => {}
            }
        }
        held
    }

    /// Validates lock discipline: well-formedness, at-most-once locking,
    /// and unlock-only-what-you-hold. Returns the first violation.
    pub fn validate(&self) -> Result<(), TxnViolation> {
        let mut held: HashMap<EntityId, LockMode> = HashMap::new();
        let mut ever_locked: Vec<EntityId> = Vec::new();
        for (pos, step) in self.steps.iter().enumerate() {
            match step.op {
                Operation::Lock(mode) => {
                    if held.contains_key(&step.entity) || ever_locked.contains(&step.entity) {
                        return Err(TxnViolation::RelockedEntity { pos });
                    }
                    held.insert(step.entity, mode);
                    ever_locked.push(step.entity);
                }
                Operation::Unlock(mode) => {
                    if held.get(&step.entity) != Some(&mode) {
                        return Err(TxnViolation::UnlockNotHeld { pos });
                    }
                    held.remove(&step.entity);
                }
                Operation::Data(d) => {
                    let required = d.required_mode();
                    let ok = held
                        .get(&step.entity)
                        .is_some_and(|have| have.covers(required));
                    if !ok {
                        return Err(TxnViolation::NotWellFormed { pos, required });
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether the transaction obeys the two-phase rule: no lock step after
    /// any unlock step.
    pub fn is_two_phase(&self) -> bool {
        let first_unlock = self.steps.iter().position(Step::is_unlock);
        match first_unlock {
            None => true,
            Some(u) => self.steps[u..].iter().all(|s| !s.is_lock()),
        }
    }

    /// The index of the *locked point*: the step at which the transaction
    /// acquires its last lock (`None` if it never locks). Used by the
    /// altruistic locking policy (Section 5).
    pub fn locked_point(&self) -> Option<usize> {
        self.steps.iter().rposition(Step::is_lock)
    }

    /// The data-step projection: the unlocked transaction `T` such that this
    /// locked transaction is one of the ways of locking `T` (`P(T, T̄)`).
    pub fn unlocked(&self) -> Transaction {
        Transaction::new(
            self.id,
            self.steps.iter().copied().filter(Step::is_data).collect(),
        )
    }

    /// Positions of all lock steps, in order.
    pub fn lock_positions(&self) -> Vec<usize> {
        (0..self.steps.len())
            .filter(|&i| self.steps[i].is_lock())
            .collect()
    }

    /// The entities the transaction ever locks, in lock order.
    pub fn locked_entities(&self) -> Vec<EntityId> {
        self.steps
            .iter()
            .filter(|s| s.is_lock())
            .map(|s| s.entity)
            .collect()
    }

    /// Whether the prefix of length `prefix_len` contains an unlock step.
    pub fn unlocked_anything_by(&self, prefix_len: usize) -> bool {
        self.steps[..prefix_len.min(self.steps.len())]
            .iter()
            .any(Step::is_unlock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn tx(steps: Vec<Step>) -> LockedTransaction {
        LockedTransaction::new(TxId(0), steps)
    }

    #[test]
    fn well_formed_read_under_shared_lock() {
        let t = tx(vec![
            Step::lock_shared(e(0)),
            Step::read(e(0)),
            Step::unlock_shared(e(0)),
        ]);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn write_requires_exclusive_lock() {
        let t = tx(vec![
            Step::lock_shared(e(0)),
            Step::write(e(0)),
            Step::unlock_shared(e(0)),
        ]);
        assert_eq!(
            t.validate(),
            Err(TxnViolation::NotWellFormed {
                pos: 1,
                required: LockMode::Exclusive
            })
        );
    }

    #[test]
    fn insert_requires_lock_before_entity_exists() {
        // A transaction must lock an entity before inserting it even though
        // the entity does not yet exist in the database.
        let ok = tx(vec![
            Step::lock_exclusive(e(0)),
            Step::insert(e(0)),
            Step::unlock_exclusive(e(0)),
        ]);
        assert_eq!(ok.validate(), Ok(()));
        let bad = tx(vec![Step::insert(e(0))]);
        assert!(matches!(
            bad.validate(),
            Err(TxnViolation::NotWellFormed { pos: 0, .. })
        ));
    }

    #[test]
    fn exclusive_lock_covers_reads() {
        let t = tx(vec![
            Step::lock_exclusive(e(0)),
            Step::read(e(0)),
            Step::write(e(0)),
            Step::unlock_exclusive(e(0)),
        ]);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn relocking_is_rejected_even_after_unlock() {
        let t = tx(vec![
            Step::lock_exclusive(e(0)),
            Step::unlock_exclusive(e(0)),
            Step::lock_exclusive(e(0)),
        ]);
        assert_eq!(t.validate(), Err(TxnViolation::RelockedEntity { pos: 2 }));
    }

    #[test]
    fn unlock_mode_must_match() {
        let t = tx(vec![Step::lock_shared(e(0)), Step::unlock_exclusive(e(0))]);
        assert_eq!(t.validate(), Err(TxnViolation::UnlockNotHeld { pos: 1 }));
    }

    #[test]
    fn unlock_without_lock_is_rejected() {
        let t = tx(vec![Step::unlock_shared(e(0))]);
        assert_eq!(t.validate(), Err(TxnViolation::UnlockNotHeld { pos: 0 }));
    }

    #[test]
    fn two_phase_detection() {
        let two_phase = tx(vec![
            Step::lock_exclusive(e(0)),
            Step::lock_exclusive(e(1)),
            Step::write(e(0)),
            Step::unlock_exclusive(e(0)),
            Step::unlock_exclusive(e(1)),
        ]);
        assert!(two_phase.is_two_phase());
        let not_two_phase = tx(vec![
            Step::lock_exclusive(e(0)),
            Step::unlock_exclusive(e(0)),
            Step::lock_exclusive(e(1)),
            Step::unlock_exclusive(e(1)),
        ]);
        assert!(!not_two_phase.is_two_phase());
    }

    #[test]
    fn locked_point_is_last_lock() {
        let t = tx(vec![
            Step::lock_exclusive(e(0)),
            Step::write(e(0)),
            Step::unlock_exclusive(e(0)),
            Step::lock_exclusive(e(1)),
            Step::unlock_exclusive(e(1)),
        ]);
        assert_eq!(t.locked_point(), Some(3));
        assert_eq!(tx(vec![]).locked_point(), None);
    }

    #[test]
    fn holds_lock_respects_prefix() {
        let t = tx(vec![
            Step::lock_exclusive(e(0)),
            Step::write(e(0)),
            Step::unlock_exclusive(e(0)),
        ]);
        assert_eq!(t.holds_lock_at(0, e(0)), None);
        assert_eq!(t.holds_lock_at(1, e(0)), Some(LockMode::Exclusive));
        assert_eq!(t.holds_lock_at(2, e(0)), Some(LockMode::Exclusive));
        assert_eq!(t.holds_lock_at(3, e(0)), None);
        // Prefix lengths beyond the transaction are clamped.
        assert_eq!(t.holds_lock_at(99, e(0)), None);
    }

    #[test]
    fn unlocked_projection_drops_lock_steps() {
        let t = tx(vec![
            Step::lock_exclusive(e(0)),
            Step::insert(e(0)),
            Step::unlock_exclusive(e(0)),
        ]);
        assert_eq!(t.unlocked().steps, vec![Step::insert(e(0))]);
    }

    #[test]
    fn unlocked_anything_by_prefix() {
        let t = tx(vec![
            Step::lock_exclusive(e(0)),
            Step::unlock_exclusive(e(0)),
            Step::lock_exclusive(e(1)),
        ]);
        assert!(!t.unlocked_anything_by(1));
        assert!(t.unlocked_anything_by(2));
    }

    #[test]
    #[should_panic(expected = "only data steps")]
    fn unlocked_transactions_reject_lock_steps() {
        let _ = Transaction::new(TxId(0), vec![Step::lock_shared(e(0))]);
    }

    #[test]
    fn entities_in_first_use_order() {
        let t = Transaction::new(
            TxId(1),
            vec![Step::read(e(2)), Step::write(e(0)), Step::read(e(2))],
        );
        assert_eq!(t.entities(), vec![e(2), e(0)]);
    }
}
