//! Steps: pairs `(operation, entity)` — the atomic unit of transactions and
//! schedules (Section 2).

use crate::entity::EntityId;
use crate::ops::{DataOp, LockMode, Operation};
use std::fmt;

/// A step `(a, e)`: operation `a` applied to entity `e`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Step {
    /// The operation.
    pub op: Operation,
    /// The entity it operates on.
    pub entity: EntityId,
}

impl Step {
    /// Creates a step.
    #[inline]
    pub fn new(op: impl Into<Operation>, entity: EntityId) -> Self {
        Step {
            op: op.into(),
            entity,
        }
    }

    /// `(R e)`
    pub fn read(e: EntityId) -> Self {
        Step::new(DataOp::Read, e)
    }

    /// `(W e)`
    pub fn write(e: EntityId) -> Self {
        Step::new(DataOp::Write, e)
    }

    /// `(I e)`
    pub fn insert(e: EntityId) -> Self {
        Step::new(DataOp::Insert, e)
    }

    /// `(D e)`
    pub fn delete(e: EntityId) -> Self {
        Step::new(DataOp::Delete, e)
    }

    /// `(LS e)`
    pub fn lock_shared(e: EntityId) -> Self {
        Step::new(Operation::Lock(LockMode::Shared), e)
    }

    /// `(LX e)`
    pub fn lock_exclusive(e: EntityId) -> Self {
        Step::new(Operation::Lock(LockMode::Exclusive), e)
    }

    /// `(L e)` in the given mode.
    pub fn lock(mode: LockMode, e: EntityId) -> Self {
        Step::new(Operation::Lock(mode), e)
    }

    /// `(US e)`
    pub fn unlock_shared(e: EntityId) -> Self {
        Step::new(Operation::Unlock(LockMode::Shared), e)
    }

    /// `(UX e)`
    pub fn unlock_exclusive(e: EntityId) -> Self {
        Step::new(Operation::Unlock(LockMode::Exclusive), e)
    }

    /// `(U e)` in the given mode.
    pub fn unlock(mode: LockMode, e: EntityId) -> Self {
        Step::new(Operation::Unlock(mode), e)
    }

    /// Whether the two steps conflict: same entity and not both operations
    /// benign (`{R, LS, US}`).
    #[inline]
    pub fn conflicts_with(&self, other: &Step) -> bool {
        self.entity == other.entity && !(self.op.is_benign() && other.op.is_benign())
    }

    /// Whether this is a data step.
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self.op, Operation::Data(_))
    }

    /// Whether this is a lock step.
    #[inline]
    pub fn is_lock(&self) -> bool {
        self.op.is_lock()
    }

    /// Whether this is an unlock step.
    #[inline]
    pub fn is_unlock(&self) -> bool {
        self.op.is_unlock()
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {})", self.op, self.entity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn conflict_requires_common_entity() {
        assert!(!Step::write(e(0)).conflicts_with(&Step::write(e(1))));
        assert!(Step::write(e(0)).conflicts_with(&Step::write(e(0))));
    }

    #[test]
    fn reads_and_shared_locks_do_not_conflict() {
        let a = e(0);
        assert!(!Step::read(a).conflicts_with(&Step::read(a)));
        assert!(!Step::read(a).conflicts_with(&Step::lock_shared(a)));
        assert!(!Step::lock_shared(a).conflicts_with(&Step::unlock_shared(a)));
    }

    #[test]
    fn any_non_benign_pair_on_same_entity_conflicts() {
        let a = e(0);
        assert!(Step::read(a).conflicts_with(&Step::write(a)));
        assert!(Step::insert(a).conflicts_with(&Step::delete(a)));
        assert!(Step::lock_exclusive(a).conflicts_with(&Step::lock_shared(a)));
        assert!(Step::lock_exclusive(a).conflicts_with(&Step::lock_exclusive(a)));
        assert!(Step::unlock_exclusive(a).conflicts_with(&Step::read(a)));
    }

    #[test]
    fn conflict_is_symmetric() {
        let a = e(0);
        let cases = [
            (Step::read(a), Step::write(a)),
            (Step::lock_shared(a), Step::lock_exclusive(a)),
            (Step::insert(a), Step::unlock_shared(a)),
        ];
        for (s, t) in cases {
            assert_eq!(s.conflicts_with(&t), t.conflicts_with(&s));
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Step::insert(e(1)).to_string(), "(I e1)");
        assert_eq!(Step::lock_exclusive(e(2)).to_string(), "(LX e2)");
    }
}
