//! Binary codecs for the model types that cross a durability boundary:
//! sequence-stamped [`ScheduledStep`]s, [`StructuralState`] snapshots, and
//! lock-table entries.
//!
//! These are the *payload* codecs of the write-ahead log (`slp-durability`
//! frames them with length + checksum); they live in `slp-core` because the
//! encoding is part of the model types' contract — a recovered step must be
//! bit-for-bit the step that executed, and the round-trip tests here pin
//! that without dragging log machinery into the core crate.
//!
//! Encoding conventions: all integers little-endian, no padding, no
//! self-description — framing, versioning, and integrity are the log's job.
//! Every decoder is total: malformed bytes return a [`WireError`], never
//! panic, because the decoders' one production caller is crash recovery,
//! where the input is by definition untrusted.

use crate::entity::EntityId;
use crate::ops::{DataOp, LockMode, Operation};
use crate::schedule::ScheduledStep;
use crate::state::StructuralState;
use crate::step::Step;
use crate::txn::TxId;
use std::fmt;

/// Why a decode failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes the buffer still had.
        have: usize,
    },
    /// An operation byte outside the eight known tags.
    BadOpTag(u8),
    /// A lock-mode byte outside the two known tags.
    BadModeTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated: needed {needed} bytes, have {have}")
            }
            WireError::BadOpTag(t) => write!(f, "unknown operation tag {t:#04x}"),
            WireError::BadModeTag(t) => write!(f, "unknown lock-mode tag {t:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encoded size of one locked stamped step: stamp (8) + tx (4) + entity
/// (4) + op (1). Snapshot reads are [`SNAPSHOT_STEP_BYTES`] instead; the
/// step codec is streaming, so mixed batches decode without a fixed width.
pub const STAMPED_STEP_BYTES: usize = 17;

/// Encoded size of one stamped snapshot read: [`STAMPED_STEP_BYTES`] plus
/// the observed writer (4).
pub const SNAPSHOT_STEP_BYTES: usize = STAMPED_STEP_BYTES + 4;

/// The tag marking a snapshot read (a read that bypassed the lock service
/// and observed a specific version). Not an [`Operation`] tag — the record
/// carries an extra trailing `u32` naming the observed writer, with
/// `u32::MAX` standing for "observed the initial value" (no real
/// transaction ever gets id `u32::MAX`).
pub const SNAPSHOT_READ_TAG: u8 = 8;

/// The `u32` encoding of "observed the initial value" in a snapshot-read
/// record.
const OBSERVED_NONE: u32 = u32::MAX;

/// Encoded size of one lock-table entry: entity (4) + tx (4) + mode (1).
pub const LOCK_ENTRY_BYTES: usize = 9;

/// One lock-table entry as it crosses the durability boundary.
pub type LockEntry = (EntityId, TxId, LockMode);

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` little-endian, returning the remaining buffer.
pub fn get_u32(buf: &[u8]) -> Result<(u32, &[u8]), WireError> {
    let (head, rest) = split(buf, 4)?;
    Ok((u32::from_le_bytes(head.try_into().expect("4 bytes")), rest))
}

/// Reads a `u64` little-endian, returning the remaining buffer.
pub fn get_u64(buf: &[u8]) -> Result<(u64, &[u8]), WireError> {
    let (head, rest) = split(buf, 8)?;
    Ok((u64::from_le_bytes(head.try_into().expect("8 bytes")), rest))
}

fn split(buf: &[u8], n: usize) -> Result<(&[u8], &[u8]), WireError> {
    if buf.len() < n {
        return Err(WireError::Truncated {
            needed: n,
            have: buf.len(),
        });
    }
    Ok(buf.split_at(n))
}

/// The one-byte operation tag (stable across versions; new operations get
/// new tags, existing tags are never reused).
pub fn op_tag(op: Operation) -> u8 {
    match op {
        Operation::Data(DataOp::Read) => 0,
        Operation::Data(DataOp::Write) => 1,
        Operation::Data(DataOp::Insert) => 2,
        Operation::Data(DataOp::Delete) => 3,
        Operation::Lock(LockMode::Shared) => 4,
        Operation::Lock(LockMode::Exclusive) => 5,
        Operation::Unlock(LockMode::Shared) => 6,
        Operation::Unlock(LockMode::Exclusive) => 7,
    }
}

/// Decodes an operation tag.
pub fn op_from_tag(tag: u8) -> Result<Operation, WireError> {
    Ok(match tag {
        0 => Operation::Data(DataOp::Read),
        1 => Operation::Data(DataOp::Write),
        2 => Operation::Data(DataOp::Insert),
        3 => Operation::Data(DataOp::Delete),
        4 => Operation::Lock(LockMode::Shared),
        5 => Operation::Lock(LockMode::Exclusive),
        6 => Operation::Unlock(LockMode::Shared),
        7 => Operation::Unlock(LockMode::Exclusive),
        t => return Err(WireError::BadOpTag(t)),
    })
}

/// Encodes one sequence-stamped scheduled step ([`STAMPED_STEP_BYTES`],
/// or [`SNAPSHOT_STEP_BYTES`] for a snapshot read).
pub fn put_stamped_step(out: &mut Vec<u8>, stamp: u64, s: &ScheduledStep) {
    put_u64(out, stamp);
    put_u32(out, s.tx.0);
    put_u32(out, s.step.entity.0);
    match s.via {
        crate::schedule::Access::Locked => out.push(op_tag(s.step.op)),
        crate::schedule::Access::Snapshot { observed } => {
            out.push(SNAPSHOT_READ_TAG);
            put_u32(out, observed.map_or(OBSERVED_NONE, |w| w.0));
        }
    }
}

/// Decodes one sequence-stamped scheduled step.
pub fn get_stamped_step(buf: &[u8]) -> Result<((u64, ScheduledStep), &[u8]), WireError> {
    let (stamp, buf) = get_u64(buf)?;
    let (tx, buf) = get_u32(buf)?;
    let (entity, buf) = get_u32(buf)?;
    let (&tag, buf) = buf
        .split_first()
        .ok_or(WireError::Truncated { needed: 1, have: 0 })?;
    if tag == SNAPSHOT_READ_TAG {
        let (observed, buf) = get_u32(buf)?;
        let observed = (observed != OBSERVED_NONE).then_some(TxId(observed));
        return Ok((
            (
                stamp,
                ScheduledStep::snapshot_read(TxId(tx), EntityId(entity), observed),
            ),
            buf,
        ));
    }
    let op = op_from_tag(tag)?;
    Ok((
        (
            stamp,
            ScheduledStep::new(TxId(tx), Step::new(op, EntityId(entity))),
        ),
        buf,
    ))
}

/// Encodes a structural state as an id-sorted entity list (count + ids).
/// The sorted order makes the encoding canonical: equal states encode to
/// equal bytes, which is what lets recovery compare snapshots bitwise.
pub fn put_state(out: &mut Vec<u8>, state: &StructuralState) {
    put_u32(out, state.len() as u32);
    for e in state.iter() {
        put_u32(out, e.0);
    }
}

/// Decodes a structural state.
pub fn get_state(buf: &[u8]) -> Result<(StructuralState, &[u8]), WireError> {
    let (count, mut buf) = get_u32(buf)?;
    let mut state = StructuralState::empty();
    for _ in 0..count {
        let (id, rest) = get_u32(buf)?;
        state.insert(EntityId(id));
        buf = rest;
    }
    Ok((state, buf))
}

/// Encodes one lock-table entry ([`LOCK_ENTRY_BYTES`]).
pub fn put_lock_entry(out: &mut Vec<u8>, entry: &LockEntry) {
    put_u32(out, entry.0 .0);
    put_u32(out, entry.1 .0);
    out.push(match entry.2 {
        LockMode::Shared => 0,
        LockMode::Exclusive => 1,
    });
}

/// Decodes one lock-table entry.
pub fn get_lock_entry(buf: &[u8]) -> Result<(LockEntry, &[u8]), WireError> {
    let (entity, buf) = get_u32(buf)?;
    let (tx, buf) = get_u32(buf)?;
    let (&tag, buf) = buf
        .split_first()
        .ok_or(WireError::Truncated { needed: 1, have: 0 })?;
    let mode = match tag {
        0 => LockMode::Shared,
        1 => LockMode::Exclusive,
        t => return Err(WireError::BadModeTag(t)),
    };
    Ok(((EntityId(entity), TxId(tx), mode), buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    #[test]
    fn op_tags_round_trip_and_are_dense() {
        let ops = [
            Operation::Data(DataOp::Read),
            Operation::Data(DataOp::Write),
            Operation::Data(DataOp::Insert),
            Operation::Data(DataOp::Delete),
            Operation::Lock(LockMode::Shared),
            Operation::Lock(LockMode::Exclusive),
            Operation::Unlock(LockMode::Shared),
            Operation::Unlock(LockMode::Exclusive),
        ];
        for (i, op) in ops.into_iter().enumerate() {
            assert_eq!(op_tag(op) as usize, i);
            assert_eq!(op_from_tag(op_tag(op)), Ok(op));
        }
        assert_eq!(op_from_tag(8), Err(WireError::BadOpTag(8)));
        assert_eq!(op_from_tag(255), Err(WireError::BadOpTag(255)));
    }

    #[test]
    fn stamped_step_round_trips_at_fixed_width() {
        let cases = [
            (0u64, ScheduledStep::new(t(1), Step::lock_exclusive(e(0)))),
            (u64::MAX, ScheduledStep::new(t(u32::MAX), Step::read(e(7)))),
            (42, ScheduledStep::new(t(9), Step::insert(e(u32::MAX)))),
        ];
        for (stamp, step) in cases {
            let mut out = Vec::new();
            put_stamped_step(&mut out, stamp, &step);
            assert_eq!(out.len(), STAMPED_STEP_BYTES);
            let ((s2, step2), rest) = get_stamped_step(&out).unwrap();
            assert_eq!((s2, step2), (stamp, step));
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn snapshot_read_round_trips_with_observed_writer() {
        let cases = [
            (7u64, ScheduledStep::snapshot_read(t(3), e(5), Some(t(2)))),
            (9, ScheduledStep::snapshot_read(t(4), e(0), None)),
        ];
        for (stamp, step) in cases {
            let mut out = Vec::new();
            put_stamped_step(&mut out, stamp, &step);
            assert_eq!(out.len(), SNAPSHOT_STEP_BYTES);
            let ((s2, step2), rest) = get_stamped_step(&out).unwrap();
            assert_eq!((s2, step2), (stamp, step));
            assert!(rest.is_empty());
        }
        // Mixed batches decode record-by-record despite the width change.
        let mut out = Vec::new();
        let batch = [
            (0u64, ScheduledStep::new(t(1), Step::write(e(2)))),
            (1, ScheduledStep::snapshot_read(t(2), e(2), Some(t(1)))),
            (2, ScheduledStep::new(t(1), Step::unlock_exclusive(e(2)))),
        ];
        for (stamp, step) in &batch {
            put_stamped_step(&mut out, *stamp, step);
        }
        let mut rest: &[u8] = &out;
        for expected in &batch {
            let (got, tail) = get_stamped_step(rest).unwrap();
            assert_eq!(got, *expected);
            rest = tail;
        }
        assert!(rest.is_empty());
        // Truncating the observed field is a decode error, not a panic.
        let mut out = Vec::new();
        put_stamped_step(
            &mut out,
            1,
            &ScheduledStep::snapshot_read(t(2), e(2), Some(t(1))),
        );
        for cut in 0..out.len() {
            assert!(get_stamped_step(&out[..cut]).is_err());
        }
    }

    #[test]
    fn truncated_inputs_report_not_panic() {
        let mut out = Vec::new();
        put_stamped_step(&mut out, 5, &ScheduledStep::new(t(1), Step::write(e(2))));
        for cut in 0..out.len() {
            assert!(
                get_stamped_step(&out[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        assert!(get_u32(&[1, 2]).is_err());
        assert!(get_u64(&[1, 2, 3, 4, 5, 6, 7]).is_err());
        assert!(get_state(&[2, 0, 0, 0, 9]).is_err()); // claims 2 ids, has 1 byte
    }

    #[test]
    fn state_codec_is_canonical_and_round_trips() {
        let state = StructuralState::from_entities([e(64), e(3), e(0), e(127)]);
        let mut a = Vec::new();
        put_state(&mut a, &state);
        // Same set inserted in a different order encodes identically.
        let mut b = Vec::new();
        put_state(
            &mut b,
            &StructuralState::from_entities([e(0), e(127), e(3), e(64)]),
        );
        assert_eq!(a, b);
        let (decoded, rest) = get_state(&a).unwrap();
        assert_eq!(decoded, state);
        assert!(rest.is_empty());
        // Empty state is 4 bytes of zero count.
        let mut empty = Vec::new();
        put_state(&mut empty, &StructuralState::empty());
        assert_eq!(empty, vec![0, 0, 0, 0]);
        assert_eq!(get_state(&empty).unwrap().0, StructuralState::empty());
    }

    #[test]
    fn lock_entry_round_trips() {
        for entry in [
            (e(0), t(1), LockMode::Shared),
            (e(u32::MAX), t(u32::MAX), LockMode::Exclusive),
        ] {
            let mut out = Vec::new();
            put_lock_entry(&mut out, &entry);
            assert_eq!(out.len(), LOCK_ENTRY_BYTES);
            let (decoded, rest) = get_lock_entry(&out).unwrap();
            assert_eq!(decoded, entry);
            assert!(rest.is_empty());
        }
        let bad = [0, 0, 0, 0, 0, 0, 0, 0, 9];
        assert_eq!(get_lock_entry(&bad), Err(WireError::BadModeTag(9)));
    }
}
