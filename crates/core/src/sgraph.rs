//! The serializability graph `D(S)` of a schedule (Section 2).
//!
//! `D(S)` has a node per transaction in `S` and an edge `(Ti, Tj)` if a step
//! of `Ti` precedes a conflicting step of `Tj` in `S`. A schedule is
//! (conflict-)serializable iff `D(S)` is acyclic \[EGLT76\]. Each edge keeps
//! a *witness* — the earliest pair of conflicting schedule positions — so
//! counterexamples can be explained.
//!
//! Two faces of the same graph live here:
//!
//! * [`SerializationGraph`] — the retained, witness-carrying batch form,
//!   built from a whole schedule; the trusted model everything else is
//!   tested against.
//! * [`EdgeSet`] + [`ConflictIndex`] — the incremental form the safety
//!   verifiers drive: dense-index edge *sets* with a `u128` fast path
//!   (k ≤ [`EdgeSet::MAX_SMALL_TXS`]) and a fixed-stride `[u64]`-words
//!   fallback for arbitrary k, maintained through an apply/undo trail and
//!   shared (by value) between the sequential explorer's memo keys and the
//!   parallel explorer's sharded memo. Before the words fallback,
//!   exhaustive safety search was hard-capped at 11 transactions.

use crate::entity::EntityId;
use crate::schedule::{Access, Schedule, ScheduledStep};
use crate::step::Step;
use crate::txn::TxId;
use rustc_hash::{FxHashMap, FxHashSet};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// An edge of the serializability graph, with its witnessing conflict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConflictEdge {
    /// The transaction whose step comes first.
    pub from: TxId,
    /// The transaction whose conflicting step comes later.
    pub to: TxId,
    /// Schedule positions `(i, j)`, `i < j`, of the earliest witnessing
    /// conflicting step pair.
    pub witness: (usize, usize),
}

impl fmt::Display for ConflictEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} (steps {} < {})",
            self.from, self.to, self.witness.0, self.witness.1
        )
    }
}

/// The serializability graph `D(S)`.
#[derive(Clone, Debug)]
pub struct SerializationGraph {
    /// Nodes in first-appearance order (this makes topological sorts and
    /// cycle reports deterministic).
    nodes: Vec<TxId>,
    /// Edge map with earliest witness per ordered pair.
    edges: BTreeMap<(TxId, TxId), (usize, usize)>,
}

/// Graph equality is *structural*: same node set (regardless of
/// first-appearance order) and same edge set. Witness positions are
/// ignored — Lemmas 1–2 conclude `D(S) = D(S̄)` even though the schedules
/// permute positions.
///
/// Comparison is allocation-free: nodes are unique per graph (they come
/// from [`Schedule::participants`]), so equal lengths plus membership of
/// every `self` node in `other` imply set equality.
impl PartialEq for SerializationGraph {
    fn eq(&self, other: &Self) -> bool {
        self.nodes.len() == other.nodes.len()
            && self.nodes.iter().all(|n| other.nodes.contains(n))
            && self.edges.len() == other.edges.len()
            && self.edges.keys().all(|k| other.edges.contains_key(k))
    }
}

impl Eq for SerializationGraph {}

impl SerializationGraph {
    /// Builds `D(S)` for a schedule.
    ///
    /// Steps conflict only when they touch the same entity, so the builder
    /// buckets steps per entity and compares within buckets. Snapshot
    /// reads, if any, are judged against the version they observed with an
    /// empty aborted set — see
    /// [`of_with_aborts`](SerializationGraph::of_with_aborts), which is
    /// what mixed traces from an aborting runtime should use.
    pub fn of(schedule: &Schedule) -> Self {
        Self::of_with_aborts(schedule, &[])
    }

    /// Builds `D(S)` for a schedule that may contain MVCC snapshot reads
    /// ([`crate::Access::Snapshot`]), given the set of transactions that
    /// aborted.
    ///
    /// Locked steps keep the paper's rule: an edge `(Ti, Tj)` whenever a
    /// step of `Ti` precedes a conflicting step of `Tj` (aborted or not —
    /// their lock steps really did order the trace). A snapshot read `r`
    /// by `R` of entity `e` is *not* ordered by trace position; it is
    /// ordered by the version it observed:
    ///
    /// * `X → R` for the observed writer `X` — the read saw `X`'s version,
    ///   so it serializes after `X`;
    /// * `R → W` for every *committed* mutator of `e` (data write, insert
    ///   or delete — lock-only traffic installs nothing) whose mutations
    ///   follow `X`'s (the read did not see them, so it serializes before
    ///   them) — writers at or before `X`'s are reached transitively
    ///   through the `W → X` write-write edges and need no direct edge;
    /// * an **aborted** writer of `e` gets no read edge at all: its
    ///   versions are invisible phantoms, and ordering a snapshot read
    ///   against them manufactures cycles that no real execution exhibits
    ///   (its trace steps still order against *locked* steps as always).
    ///
    /// With the correct visibility rule the observed writer is always
    /// committed; a broken rule (the negative control) lets `X` be
    /// in-progress, and the `X → R` edge plus `R → X` anti-dependencies
    /// from `X`'s later writes surface the dirty read as a genuine cycle.
    pub fn of_with_aborts(schedule: &Schedule, aborted: &[TxId]) -> Self {
        let aborted: FxHashSet<TxId> = aborted.iter().copied().collect();
        let nodes = schedule.participants();
        let mut edges: BTreeMap<(TxId, TxId), (usize, usize)> = BTreeMap::new();
        let mut by_entity: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        let steps = schedule.steps();
        for (i, s) in steps.iter().enumerate() {
            by_entity.entry(s.step.entity.0).or_default().push(i);
        }
        let mut add = |from: TxId, to: TxId, w: (usize, usize)| {
            // Keep the globally earliest witness pair so the result is
            // independent of bucket iteration order.
            edges
                .entry((from, to))
                .and_modify(|old| {
                    if w < *old {
                        *old = w;
                    }
                })
                .or_insert(w);
        };
        for positions in by_entity.values() {
            let (snap, normal): (Vec<usize>, Vec<usize>) =
                positions.iter().partition(|&&i| steps[i].is_snapshot());
            for (a, &i) in normal.iter().enumerate() {
                for &j in &normal[a + 1..] {
                    let (si, sj) = (&steps[i], &steps[j]);
                    if si.tx != sj.tx && si.step.conflicts_with(&sj.step) {
                        add(si.tx, sj.tx, (i, j));
                    }
                }
            }
            if snap.is_empty() {
                continue;
            }
            // Per-writer range of *mutation* positions on this entity
            // (`W`/`I`/`D` — the steps that install versions; a
            // transaction that merely exclusive-locks through leaves
            // nothing for a snapshot to miss and gets no read edge).
            // Mutations happen under exclusive locks, so distinct writers'
            // ranges are disjoint and min/max fully orders writers on the
            // entity.
            let mut strong: FxHashMap<TxId, (usize, usize)> = FxHashMap::default();
            for &j in &normal {
                let s = &steps[j];
                if s.step.op.is_mutation() {
                    strong
                        .entry(s.tx)
                        .and_modify(|r| {
                            r.0 = r.0.min(j);
                            r.1 = r.1.max(j);
                        })
                        .or_insert((j, j));
                }
            }
            for &i in &snap {
                let r = &steps[i];
                let crate::schedule::Access::Snapshot { observed } = r.via else {
                    unreachable!("partitioned as snapshot");
                };
                // Last strong position of the observed writer: the pivot
                // separating "saw it" (≤, transitive) from "missed it"
                // (>, direct anti-dependency). An observed writer absent
                // from the trace pivots at -∞: every in-trace writer's
                // version postdates what the read saw.
                let pivot = observed.and_then(|x| strong.get(&x).map(|&(_, last)| last));
                for (&w, &(first, last)) in &strong {
                    if w == r.tx {
                        continue;
                    }
                    if Some(w) == observed {
                        add(w, r.tx, (first.min(i), first.max(i)));
                        // Strong steps of the observed writer *after* the
                        // read are writes the snapshot missed (possible
                        // only when visibility exposed an in-progress
                        // writer): a real anti-dependency back into it.
                        if last > i && !aborted.contains(&w) {
                            add(r.tx, w, (i, last));
                        }
                        continue;
                    }
                    let after_pivot = pivot.is_none_or(|p| first > p);
                    if after_pivot && !aborted.contains(&w) {
                        add(r.tx, w, (first.min(i), first.max(i)));
                    }
                }
            }
        }
        SerializationGraph { nodes, edges }
    }

    /// Builds a graph from explicit parts (used by tests and by figure
    /// renderers that construct expected shapes).
    pub fn from_parts(nodes: Vec<TxId>, edges: Vec<ConflictEdge>) -> Self {
        let edges = edges
            .into_iter()
            .map(|e| ((e.from, e.to), e.witness))
            .collect();
        SerializationGraph { nodes, edges }
    }

    /// The nodes, in first-appearance order.
    pub fn nodes(&self) -> &[TxId] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all edges with witnesses.
    pub fn edges(&self) -> impl Iterator<Item = ConflictEdge> + '_ {
        self.edges
            .iter()
            .map(|(&(from, to), &witness)| ConflictEdge { from, to, witness })
    }

    /// Whether the edge `(from, to)` is present.
    pub fn has_edge(&self, from: TxId, to: TxId) -> bool {
        self.edges.contains_key(&(from, to))
    }

    /// The witness of edge `(from, to)`, if present.
    pub fn witness(&self, from: TxId, to: TxId) -> Option<(usize, usize)> {
        self.edges.get(&(from, to)).copied()
    }

    /// Successors of `tx`.
    pub fn successors(&self, tx: TxId) -> Vec<TxId> {
        self.edges
            .keys()
            .filter(|&&(f, _)| f == tx)
            .map(|&(_, t)| t)
            .collect()
    }

    /// Predecessors of `tx`.
    pub fn predecessors(&self, tx: TxId) -> Vec<TxId> {
        self.edges
            .keys()
            .filter(|&&(_, t)| t == tx)
            .map(|&(f, _)| f)
            .collect()
    }

    /// Nodes with no outgoing edge. An isolated node is both a source and a
    /// sink — this matters for Theorem 1's condition (2a), which quantifies
    /// over *all* sinks of `D(S')`.
    pub fn sinks(&self) -> Vec<TxId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| !self.edges.keys().any(|&(f, _)| f == n))
            .collect()
    }

    /// Nodes with no incoming edge.
    pub fn sources(&self) -> Vec<TxId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| !self.edges.keys().any(|&(_, t)| t == n))
            .collect()
    }

    /// Whether the graph is acyclic, i.e. the schedule is serializable.
    pub fn is_acyclic(&self) -> bool {
        self.topological_sort().is_some()
    }

    /// A topological sort of the nodes, or `None` if the graph has a cycle.
    ///
    /// Deterministic: among ready nodes, the one earliest in
    /// first-appearance order is emitted first (Kahn's algorithm with a
    /// stable ready list).
    pub fn topological_sort(&self) -> Option<Vec<TxId>> {
        let mut indegree: BTreeMap<TxId, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for &(_, to) in self.edges.keys() {
            *indegree.get_mut(&to).expect("edge endpoint is a node") += 1;
        }
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut remaining: Vec<TxId> = self.nodes.clone();
        while !remaining.is_empty() {
            let pick = remaining.iter().position(|n| indegree[n] == 0)?;
            let n = remaining.remove(pick);
            order.push(n);
            for (&(f, t), _) in self.edges.iter() {
                if f == n {
                    *indegree.get_mut(&t).expect("edge endpoint is a node") -= 1;
                }
            }
        }
        Some(order)
    }

    /// A cycle through the graph, as a node sequence `v0 -> v1 -> … -> v0`
    /// (first node repeated at the end), or `None` if acyclic.
    pub fn find_cycle(&self) -> Option<Vec<TxId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: FxHashMap<TxId, Color> =
            self.nodes.iter().map(|&n| (n, Color::White)).collect();
        let mut stack: Vec<TxId> = Vec::new();

        fn dfs(
            g: &SerializationGraph,
            n: TxId,
            color: &mut FxHashMap<TxId, Color>,
            stack: &mut Vec<TxId>,
        ) -> Option<Vec<TxId>> {
            color.insert(n, Color::Gray);
            stack.push(n);
            for m in g.successors(n) {
                match color[&m] {
                    Color::Gray => {
                        let start = stack.iter().position(|&x| x == m).expect("gray on stack");
                        let mut cycle = stack[start..].to_vec();
                        cycle.push(m);
                        return Some(cycle);
                    }
                    Color::White => {
                        if let Some(c) = dfs(g, m, color, stack) {
                            return Some(c);
                        }
                    }
                    Color::Black => {}
                }
            }
            stack.pop();
            color.insert(n, Color::Black);
            None
        }

        for &n in &self.nodes {
            if color[&n] == Color::White {
                if let Some(c) = dfs(self, n, &mut color, &mut stack) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Whether the graph is a single simple path `v0 -> v1 -> … -> vk` with
    /// no extra edges except possibly the closing back edge `vk -> v0`.
    /// This is the *static-database* canonical shape (Fig. 1a): Yannakakis'
    /// theorem yields a simple path closed by one back edge.
    pub fn is_simple_path_with_back_edge(&self) -> bool {
        let n = self.nodes.len();
        if n == 0 {
            return false;
        }
        // A simple path has exactly one source; follow unique successors.
        let sources = self.sources();
        let start =
            match sources.as_slice() {
                [s] => *s,
                [] if n >= 2 => {
                    // Fully closed cycle: every node has in/out degree 1.
                    return self.nodes.iter().all(|&v| {
                        self.successors(v).len() == 1 && self.predecessors(v).len() == 1
                    }) && self.find_cycle().is_some_and(|c| c.len() == n + 1);
                }
                _ => return false,
            };
        let mut seen = vec![start];
        let mut cur = start;
        loop {
            let succ = self.successors(cur);
            match succ.as_slice() {
                [] => break,
                [next] => {
                    if seen.contains(next) {
                        return false;
                    }
                    seen.push(*next);
                    cur = *next;
                }
                [a, b] => {
                    // Allowed only for the node that also closes back to start.
                    let next = if *a == start {
                        *b
                    } else if *b == start {
                        *a
                    } else {
                        return false;
                    };
                    if seen.contains(&next) {
                        return false;
                    }
                    seen.push(next);
                    cur = next;
                }
                _ => return false,
            }
        }
        seen.len() == n
    }
}

/// Whether the `u128` edge bitmask over `k` nodes (bit `i * k + j` encodes
/// edge `i -> j`) contains a cycle, by Floyd–Warshall transitive closure on
/// bits. This is the [`EdgeSet`] fast path, exposed directly for callers
/// that keep raw masks (the verifier's retained reference explorer).
///
/// # Panics
///
/// If `k >` [`EdgeSet::MAX_SMALL_TXS`]: bit `k * k - 1` must exist, and a
/// silently wrapped shift would alias rows and corrupt the verdict. Wider
/// graphs belong in an [`EdgeSet`].
pub fn mask_has_cycle(mask: u128, k: usize) -> bool {
    assert!(
        k <= EdgeSet::MAX_SMALL_TXS,
        "mask_has_cycle addresses at most {} nodes, got {k}",
        EdgeSet::MAX_SMALL_TXS
    );
    let mut reach = mask;
    for via in 0..k {
        for i in 0..k {
            if reach & (1u128 << (i * k + via)) != 0 {
                for j in 0..k {
                    if reach & (1u128 << (via * k + j)) != 0 {
                        reach |= 1u128 << (i * k + j);
                    }
                }
            }
        }
    }
    (0..k).any(|i| reach & (1u128 << (i * k + i)) != 0)
}

/// A growable set of `D(S)` edges over `k` dense transaction indices.
///
/// Two representations behind one interface:
///
/// * **small** — a single `u128` with bit `from * k + to`, for
///   `k <=` [`EdgeSet::MAX_SMALL_TXS`] (11, since `k * k <= 128`). All
///   operations are branch-light word arithmetic and nothing allocates;
///   this is the representation on the exhaustive verifier's hot path.
/// * **wide** — a boxed `[u64]` with a fixed per-row stride of
///   `ceil(k / 64)` words, row `from` at words
///   `from * stride .. (from + 1) * stride`, bit `to` within the row. This
///   lifts the old hard `k <= 11` cap on exhaustive safety search: any `k`
///   works, at the cost of allocating edge sets.
///
/// The representation is chosen by [`EdgeSet::empty`] from `k` alone, so
/// all edge sets of one search agree and the mixed-representation
/// operations below can simply panic (that would be a construction bug,
/// not a data-dependent condition).
///
/// # Apply/undo
///
/// The verifier's DFS keeps **one** edge set and mutates it in place,
/// mirroring its simulator discipline: [`EdgeSet::apply`] ORs a delta in
/// and returns the bits that were actually new, and [`EdgeSet::undo`]
/// clears exactly those, restoring the set bit-for-bit (LIFO order).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EdgeSet {
    repr: Repr,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Repr {
    Small {
        k: u8,
        mask: u128,
    },
    Wide {
        k: u16,
        stride: u16,
        words: Box<[u64]>,
    },
}

impl EdgeSet {
    /// Maximum `k` the `u128` fast path can address (`k * k <= 128`).
    pub const MAX_SMALL_TXS: usize = 11;

    /// The empty edge set over `k` nodes, in the representation `k` calls
    /// for (`u128` up to [`EdgeSet::MAX_SMALL_TXS`], words above).
    pub fn empty(k: usize) -> Self {
        if k <= Self::MAX_SMALL_TXS {
            EdgeSet {
                repr: Repr::Small {
                    k: k as u8,
                    mask: 0,
                },
            }
        } else {
            Self::empty_wide(k)
        }
    }

    /// The empty edge set over `k` nodes in the **words** representation
    /// regardless of `k` — the differential arm of the property tests,
    /// which cross-check the two representations on small `k`.
    pub fn empty_wide(k: usize) -> Self {
        assert!(
            k <= u16::MAX as usize,
            "EdgeSet supports at most {} nodes",
            u16::MAX
        );
        let stride = k.div_ceil(64);
        EdgeSet {
            repr: Repr::Wide {
                k: k as u16,
                stride: stride as u16,
                words: vec![0u64; k * stride].into_boxed_slice(),
            },
        }
    }

    /// The node-index capacity `k` this set was built for.
    pub fn width(&self) -> usize {
        match &self.repr {
            Repr::Small { k, .. } => *k as usize,
            Repr::Wide { k, .. } => *k as usize,
        }
    }

    /// Inserts the edge `from -> to`.
    #[inline]
    pub fn insert(&mut self, from: usize, to: usize) {
        debug_assert!(from < self.width() && to < self.width());
        match &mut self.repr {
            Repr::Small { k, mask } => *mask |= 1u128 << (from * *k as usize + to),
            Repr::Wide { stride, words, .. } => {
                words[from * *stride as usize + to / 64] |= 1u64 << (to % 64);
            }
        }
    }

    /// Whether the edge `from -> to` is present.
    #[inline]
    pub fn contains(&self, from: usize, to: usize) -> bool {
        debug_assert!(from < self.width() && to < self.width());
        match &self.repr {
            Repr::Small { k, mask } => mask & (1u128 << (from * *k as usize + to)) != 0,
            Repr::Wide { stride, words, .. } => {
                words[from * *stride as usize + to / 64] & (1u64 << (to % 64)) != 0
            }
        }
    }

    /// Whether the set has no edges.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Small { mask, .. } => *mask == 0,
            Repr::Wide { words, .. } => words.iter().all(|&w| w == 0),
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small { mask, .. } => mask.count_ones() as usize,
            Repr::Wide { words, .. } => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// ORs `other` into `self`. Panics on mismatched width or
    /// representation (a construction bug — see the type docs).
    pub fn union_with(&mut self, other: &EdgeSet) {
        match (&mut self.repr, &other.repr) {
            (Repr::Small { k, mask }, Repr::Small { k: ok, mask: om }) if k == ok => *mask |= om,
            (
                Repr::Wide { k, words, .. },
                Repr::Wide {
                    k: ok, words: ow, ..
                },
            ) if k == ok => {
                for (w, o) in words.iter_mut().zip(ow.iter()) {
                    *w |= o;
                }
            }
            _ => panic!("EdgeSet::union_with on mismatched representations"),
        }
    }

    /// ORs `delta` in and returns the edges that were **actually added**
    /// (`delta & !self`) — the undo record for [`EdgeSet::undo`].
    #[inline]
    pub fn apply(&mut self, delta: &EdgeSet) -> EdgeSet {
        match (&mut self.repr, &delta.repr) {
            (Repr::Small { k, mask }, Repr::Small { k: dk, mask: dm }) if k == dk => {
                let added = dm & !*mask;
                *mask |= dm;
                EdgeSet {
                    repr: Repr::Small { k: *k, mask: added },
                }
            }
            (
                Repr::Wide { k, stride, words },
                Repr::Wide {
                    k: dk, words: dw, ..
                },
            ) if k == dk => {
                let mut added = vec![0u64; words.len()].into_boxed_slice();
                for i in 0..words.len() {
                    added[i] = dw[i] & !words[i];
                    words[i] |= dw[i];
                }
                EdgeSet {
                    repr: Repr::Wide {
                        k: *k,
                        stride: *stride,
                        words: added,
                    },
                }
            }
            _ => panic!("EdgeSet::apply on mismatched representations"),
        }
    }

    /// Clears the edges in `added`, reversing the [`EdgeSet::apply`] that
    /// returned it. Undo records must be replayed in reverse apply order
    /// (LIFO), exactly like the simulator's `UndoToken`s.
    #[inline]
    pub fn undo(&mut self, added: &EdgeSet) {
        match (&mut self.repr, &added.repr) {
            (Repr::Small { k, mask }, Repr::Small { k: ak, mask: am }) if k == ak => {
                debug_assert_eq!(*mask & am, *am, "EdgeSet::undo of edges not present");
                *mask &= !am;
            }
            (
                Repr::Wide { k, words, .. },
                Repr::Wide {
                    k: ak, words: aw, ..
                },
            ) if k == ak => {
                for (w, a) in words.iter_mut().zip(aw.iter()) {
                    debug_assert_eq!(*w & a, *a, "EdgeSet::undo of edges not present");
                    *w &= !a;
                }
            }
            _ => panic!("EdgeSet::undo on mismatched representations"),
        }
    }

    /// Whether node `from` has any outgoing edge.
    pub fn has_out_edges(&self, from: usize) -> bool {
        debug_assert!(from < self.width());
        match &self.repr {
            Repr::Small { k, mask } => {
                let row = (mask >> (from * *k as usize)) & ((1u128 << *k) - 1);
                row != 0
            }
            Repr::Wide { stride, words, .. } => {
                let s = *stride as usize;
                words[from * s..(from + 1) * s].iter().any(|&w| w != 0)
            }
        }
    }

    /// Whether the edge set contains a cycle — the serializability test of
    /// the accumulated `D(S)`, by Floyd–Warshall transitive closure (on the
    /// `u128` directly for the small representation, row-word OR for the
    /// wide one).
    pub fn has_cycle(&self) -> bool {
        match &self.repr {
            Repr::Small { k, mask } => mask_has_cycle(*mask, *k as usize),
            Repr::Wide { k, stride, words } => {
                let (k, stride) = (*k as usize, *stride as usize);
                let mut reach = words.to_vec();
                for via in 0..k {
                    for i in 0..k {
                        if i != via && reach[i * stride + via / 64] & (1u64 << (via % 64)) != 0 {
                            for w in 0..stride {
                                let v = reach[via * stride + w];
                                reach[i * stride + w] |= v;
                            }
                        }
                    }
                }
                (0..k).any(|i| reach[i * stride + i / 64] & (1u64 << (i % 64)) != 0)
            }
        }
    }

    /// Number of `u64` words [`EdgeSet::store_words`] emits for a set over
    /// `k` nodes: 2 for the small (`u128`) representation, `stride * k` for
    /// the words one. Memo tables size their fixed-width keys off this.
    pub fn encoded_len(k: usize) -> usize {
        if k <= Self::MAX_SMALL_TXS {
            2
        } else {
            k.div_ceil(64) * k
        }
    }

    /// Writes this set's canonical `u64`-word encoding into `out` (whose
    /// length must be exactly [`EdgeSet::encoded_len`] for this set's
    /// width): the `u128` mask as (low, high) for the small
    /// representation, the raw row words for the wide one. Injective per
    /// representation — the verifier's memo tables hash and compare these
    /// words instead of the `EdgeSet` itself, so one codec serves every
    /// memo-key shape. Taking a slice (not a `Vec`) keeps the verifier's
    /// per-probe encode free of length bookkeeping and capacity checks.
    #[inline]
    pub fn store_words(&self, out: &mut [u64]) {
        match &self.repr {
            Repr::Small { mask, .. } => {
                out[0] = *mask as u64;
                out[1] = (*mask >> 64) as u64;
            }
            Repr::Wide { words, .. } => out.copy_from_slice(words),
        }
    }

    /// The raw `u128` mask, if this is the small representation — the
    /// verifier packs it into its fast-path memo keys.
    pub fn as_small_mask(&self) -> Option<u128> {
        match &self.repr {
            Repr::Small { mask, .. } => Some(*mask),
            Repr::Wide { .. } => None,
        }
    }

    /// All edges `(from, to)`, in row-major order (tests and diagnostics;
    /// not a hot path).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let k = self.width();
        let mut out = Vec::new();
        for from in 0..k {
            for to in 0..k {
                if self.contains(from, to) {
                    out.push((from, to));
                }
            }
        }
        out
    }
}

/// An incremental conflict index over a *growing-and-shrinking* schedule:
/// the engine of the verifier's apply/undo DFS.
///
/// Transactions are addressed by **dense indices** `0..k` (the caller fixes
/// the numbering, typically first-appearance order of the system's ids).
/// The index maintains, per entity, the list of steps pushed so far that
/// touched it — so the `D(S)`-edge delta of a candidate step is computed by
/// scanning only that entity's accessors, `O(accessors)`, instead of
/// rescanning the whole schedule, `O(|S|)`. Pushes and pops are `O(1)`.
///
/// Edge deltas are returned as [`EdgeSet`]s, whose representation is chosen
/// from `k`: `u128` bitmask up to [`ConflictIndex::MAX_TXS`] transactions
/// (allocation-free), fixed-stride `u64` words above — so any `k`
/// constructs and indexes; only the state space bounds the search.
#[derive(Clone, Debug, Default)]
pub struct ConflictIndex {
    k: usize,
    /// Accessor lists indexed by dense entity id (entity ids come from the
    /// `Universe` interner, so the table stays small); grown on demand.
    by_entity: Vec<Vec<(u32, Step)>>,
    /// Entities of pushed steps, in push order, so `pop` knows which
    /// per-entity list to shrink.
    trail: Vec<EntityId>,
}

impl ConflictIndex {
    /// Widest `k` addressed by the allocation-free `u128` edge
    /// representation (`k * k <= 128`). Wider systems are fully supported;
    /// their edge sets fall back to [`EdgeSet`]'s words representation.
    pub const MAX_TXS: usize = EdgeSet::MAX_SMALL_TXS;

    /// An empty index over `k` dense transaction indices — any `k`.
    pub fn new(k: usize) -> Self {
        ConflictIndex {
            k,
            by_entity: Vec::new(),
            trail: Vec::new(),
        }
    }

    /// The dense-index capacity this index was built for.
    pub fn width(&self) -> usize {
        self.k
    }

    /// Number of steps currently pushed.
    pub fn len(&self) -> usize {
        self.trail.len()
    }

    /// Whether no step is pushed.
    pub fn is_empty(&self) -> bool {
        self.trail.is_empty()
    }

    /// The `D(S)`-edge delta of appending `step` for dense transaction
    /// `to`: the edge `from -> to` for every pushed step of a different
    /// transaction `from` that conflicts with `step`. Only the accessors of
    /// `step.entity` are scanned.
    ///
    /// `None` means the delta is empty — the common case, which this way
    /// stays allocation-free even in the words representation (the set is
    /// built lazily on the first conflicting accessor).
    #[inline]
    pub fn edge_delta(&self, to: usize, step: &Step) -> Option<EdgeSet> {
        debug_assert!(to < self.k);
        let mut out: Option<EdgeSet> = None;
        if let Some(accessors) = self.by_entity.get(step.entity.index()) {
            for &(from, ref prior) in accessors {
                if from as usize != to && prior.conflicts_with(step) {
                    out.get_or_insert_with(|| EdgeSet::empty(self.k))
                        .insert(from as usize, to);
                }
            }
        }
        out
    }

    /// Records that dense transaction `tx` appended `step`.
    #[inline]
    pub fn push(&mut self, tx: usize, step: Step) {
        debug_assert!(tx < self.k);
        let slot = step.entity.index();
        if slot >= self.by_entity.len() {
            self.by_entity.resize_with(slot + 1, Vec::new);
        }
        self.by_entity[slot].push((tx as u32, step));
        self.trail.push(step.entity);
    }

    /// Unrecords the most recently pushed step (LIFO).
    #[inline]
    pub fn pop(&mut self) {
        let entity = self.trail.pop().expect("ConflictIndex::pop on empty index");
        let accessors = &mut self.by_entity[entity.index()];
        accessors.pop().expect("accessor list nonempty");
    }
}

/// A serialization-graph cycle caught by the [`IncrementalCertifier`]:
/// the closing edge's stamp plus the full cycle it completed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CertViolation {
    /// The cycle as a transaction sequence `v0 -> v1 -> … -> v0` (first
    /// node repeated at the end, matching
    /// [`SerializationGraph::find_cycle`]).
    pub cycle: Vec<TxId>,
    /// Sequence stamp of the step whose edge closed the cycle — "the run
    /// stopped being serializable *here*".
    pub stamp: u64,
}

impl fmt::Display for CertViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle at stamp {}: ", self.stamp)?;
        for (i, tx) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{tx}")?;
        }
        Ok(())
    }
}

/// Counters describing an [`IncrementalCertifier`]'s work and footprint.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CertStats {
    /// Steps observed.
    pub steps: u64,
    /// Distinct serialization-graph edges inserted (each one paid an
    /// incremental cycle check).
    pub edges: u64,
    /// Nodes removed by committed-prefix truncation.
    pub truncations: u64,
    /// Nodes retracted after a certification abort
    /// ([`IncrementalCertifier::retract`]): the victim's edges and
    /// accessor footprint were surgically removed and the run continued.
    pub retractions: u64,
    /// Transactions currently resident in the graph.
    pub live_nodes: usize,
    /// High-water mark of resident transactions — the certifier's actual
    /// memory bound over the run.
    pub peak_nodes: usize,
}

/// Per-(entity, transaction) access summary: the stamp extremes of the
/// transaction's benign (`{R, LS, US}`) and non-benign steps on the
/// entity. Edge direction against a newly observed step only asks "does a
/// conflicting access exist with a stamp below (above) the new stamp",
/// which min/max per conflict class answers exactly — so a hot entity's
/// history compresses from one entry per step to one per live
/// transaction, and the per-step scan is `O(live accessors)`, not
/// `O(steps ever taken on the entity)`.
#[derive(Clone, Copy, Debug)]
struct Accessor {
    slot: u32,
    /// `(min, max)` stamps of benign steps; [`NO_STAMPS`] when none.
    benign: (u64, u64),
    /// `(min, max)` stamps of non-benign steps; [`NO_STAMPS`] when none.
    strong: (u64, u64),
    /// `(min, max)` stamps of *mutation* steps (`W`/`I`/`D` — the subset
    /// of `strong` that installs versions); [`NO_STAMPS`] when none.
    /// Versioned-read edges consult this class: a snapshot read orders
    /// against what writers *installed*, not against their lock traffic.
    mutation: (u64, u64),
}

/// The empty stamp range: `min > max`, so `min < s` and `max > s` are both
/// false for every real stamp `s`.
const NO_STAMPS: (u64, u64) = (u64::MAX, 0);

/// Sentinel in the transaction-id → slot table: id not live.
const NO_SLOT: u32 = u32::MAX;

/// Sentinel in the transaction-id → slot table: id *was* live and has been
/// truncated or retracted. Distinguishing retirement from never-seen lets
/// a snapshot read's observed-writer lookup skip the edge to a truncated
/// writer (provably safe — truncation means no live accessor of the entity
/// predates it) instead of resurrecting a node that would never seal.
const RETIRED_SLOT: u32 = u32::MAX - 1;

/// A live snapshot reader registered against an entity: future strong
/// accesses to the entity scan this list the way they scan [`Accessor`]s.
/// A writer whose strong stamps all lie at or below `pivot` (the observed
/// version's install stamp) installed at or before the observed version and
/// is already ordered before the reader transitively; one with a strong
/// stamp above `pivot` wrote a version the reader's snapshot missed, so the
/// reader must serialize before it — once it commits (see
/// [`IncrementalCertifier::seal_with`]; the edge is parked until then).
#[derive(Clone, Copy, Debug)]
struct SnapReader {
    slot: u32,
    /// The observed writer (`None` when the read saw the initial
    /// version). Skipped by the future-writer scan: the read-time
    /// `X → R` edge already orders the pair. Held by id, not slot — the
    /// writer may truncate (and its slot recycle) while the reader is
    /// still live.
    observed: Option<TxId>,
    /// Install stamp of the observed version; `None` when the read saw
    /// the initial (pre-run) version, ordering the reader before *every*
    /// writer of the entity.
    pivot: Option<u64>,
    /// The read step's stamp (witness for parked edges).
    stamp: u64,
}

/// One snapshot read for the online certifier's explicit feed path
/// ([`IncrementalCertifier::observe_snapshot_reads`]). Workers publish
/// batches out of order, so the certifier cannot reconstruct which
/// version a read observed from arrival state — but the MVCC store knows
/// exactly, and supplies the observed writer and the version's install
/// stamp alongside the read.
#[derive(Clone, Copy, Debug)]
pub struct VersionedRead {
    /// The read step's globally dense stamp.
    pub stamp: u64,
    /// The reading transaction.
    pub tx: TxId,
    /// The entity read.
    pub entity: EntityId,
    /// The writer of the version observed; `None` when the read saw the
    /// initial (pre-run) version.
    pub observed: Option<TxId>,
    /// The observed version's install stamp; `None` for the initial
    /// version, which orders the reader before *every* writer of the
    /// entity.
    pub pivot: Option<u64>,
}

/// One batch's stamp extremes for a single entity: `(entity, benign
/// (min, max), strong (min, max))`.
type EntityGroup = (u32, (u64, u64), (u64, u64), (u64, u64));

/// Packs an ordered slot pair into the edge-set key.
#[inline]
fn edge_key(from: u32, into: u32) -> u64 {
    (u64::from(from) << 32) | u64::from(into)
}

/// A resident transaction in the incremental serialization graph.
#[derive(Clone, Debug)]
struct CertNode {
    tx: TxId,
    live: bool,
    /// No more steps will ever arrive for this transaction (it committed
    /// or aborted).
    sealed: bool,
    /// Sealed as *aborted*: its versions are permanently invisible, so
    /// parked reader → writer edges against it dissolve instead of
    /// materializing (an aborted writer orders nothing).
    aborted: bool,
    /// Outgoing edges of this node parked on still-unsealed writers
    /// (snapshot-read anti-dependencies whose direction is known but whose
    /// existence awaits the writer's outcome). A node with parked
    /// out-edges is pinned against truncation: the edge may still
    /// materialize.
    parked_out: u32,
    /// Newest stamp attributed to this transaction.
    last_stamp: u64,
    /// Live predecessor slots (edges into this node).
    preds: Vec<u32>,
    /// Live successor slots (edges out of this node).
    succs: Vec<u32>,
    /// Topological level: every edge `u -> v` maintains
    /// `level(u) < level(v)` (restored by lifting `v` and its descendants
    /// after each insert, à la Pearce–Kelly). An edge that lands forward
    /// in level order — the common case under stamp-ordered feeding —
    /// provably closes no cycle and skips the reachability search.
    level: u64,
    /// Entities this node has accessor entries under (for eager purge on
    /// truncation).
    touched: Vec<u32>,
}

impl CertNode {
    fn fresh(tx: TxId) -> Self {
        CertNode {
            tx,
            live: true,
            sealed: false,
            aborted: false,
            parked_out: 0,
            last_stamp: 0,
            preds: Vec::new(),
            succs: Vec::new(),
            level: 0,
            touched: Vec::new(),
        }
    }
}

/// An **online** serializability certifier: maintains `D(S)` incrementally
/// as sequence-stamped steps stream in, catching the first cycle at the
/// edge that closes it — no offline replay required.
///
/// Built for the runtime's feeding discipline:
///
/// * **Out-of-order arrival.** Workers publish their stamped batches after
///   dropping the engine lock, so steps arrive in arbitrary order across
///   workers even though stamps are dense. Edge *direction* is decided by
///   stamp comparison against each prior accessor of the entity, not by
///   arrival order, so the maintained graph is exactly `D(S)` of the
///   stamp-ordered schedule at every point.
/// * **Incremental cycle check.** Nodes carry topological levels (every
///   edge strictly increases level, maintained Pearce–Kelly style), so an
///   edge landing forward in level order — the common case under
///   stamp-ordered feeding — pays nothing; a backward edge pays one
///   level-bounded DFS asking whether `u` is reachable from `v`. The
///   first hit latches a [`CertViolation`] carrying the full cycle and
///   the closing stamp. No work is repeated for duplicate edges, and once latched the
///   certifier goes quiescent (the graph is kept for the autopsy).
/// * **Committed-prefix truncation.** A sealed transaction (committed or
///   aborted — both take no further steps) whose entire footprint lies
///   below the contiguous-stamp **watermark** can gain no new *incoming*
///   edge: any future arrival carries a stamp at or above the watermark,
///   hence after every step of the sealed transaction, so conflicts only
///   produce edges *out* of it. Once such a node also has no incoming
///   edges left, no cycle can ever include it, and it is removed — graph
///   *and* accessor entries — so graph state is bounded by the live
///   transaction window, not the run length ([`CertStats::peak_nodes`]).
///   The only per-run residue is the flat id → slot table (four bytes per
///   transaction ever started — dwarfed by any recorded trace).
///
/// Sequential sanity check: [`IncrementalCertifier::certify_schedule`]
/// replays a finished [`Schedule`] through the same machinery; the
/// differential suite pins its verdict to
/// [`is_serializable`](crate::serializability::is_serializable).
#[derive(Clone, Debug)]
pub struct IncrementalCertifier {
    slots: Vec<CertNode>,
    free: Vec<u32>,
    /// Live transactions' slots, indexed directly by transaction id
    /// (`NO_SLOT` when absent): the runtime allocates ids densely from a
    /// counter, so a flat table replaces a hash map on the per-attempt
    /// path. Four bytes per id ever seen — dwarfed by the recorded trace;
    /// the *graph* (nodes, edges, accessor lists) is what truncation
    /// bounds.
    by_tx: Vec<u32>,
    /// Per-entity accessor lists (live slots only — truncation purges),
    /// indexed directly by entity id: entities are interned dense, so a
    /// flat table replaces a hash map on the per-step hot path.
    accessors: Vec<Vec<Accessor>>,
    /// Per-entity live snapshot readers (same indexing as `accessors`):
    /// scanned by future strong accesses to decide reader → writer
    /// anti-dependencies against versions the reader's snapshot missed.
    snap_readers: Vec<Vec<SnapReader>>,
    /// Parked edges keyed by the *unsealed* target writer's slot: each
    /// entry is `(from slot, witness stamp)` of a snapshot reader that
    /// must precede the writer if — and only if — the writer commits.
    /// Flushed (or dissolved, on abort) by
    /// [`seal_with`](IncrementalCertifier::seal_with).
    parked: FxHashMap<u32, Vec<(u32, u64)>>,
    /// Present edges as `from << 32 | into` slot pairs: O(1) duplicate
    /// rejection regardless of node degree.
    edge_set: FxHashSet<u64>,
    /// Reused buffer for the edge candidates (with their witnessing
    /// stamps) of one observed access.
    scratch_edges: Vec<(u32, u32, u64)>,
    /// Reused buffer for one batch's per-(entity, class) stamp extremes.
    scratch_groups: Vec<EntityGroup>,
    /// Reused work list for truncation passes.
    scratch_work: Vec<u32>,
    /// Sealed nodes not yet removed: the only truncation candidates, so a
    /// pass walks this list instead of every slot. Entries go stale when
    /// their slot is recycled; passes drop them on sight.
    sealed_pending: Vec<u32>,
    /// Reused work list for level-raise cascades.
    scratch_raise: Vec<(u32, u64)>,
    /// Reused DFS stack for the incremental cycle check.
    scratch_dfs: Vec<(u32, usize)>,
    /// Contiguous-stamp watermark: every stamp `< next` has been observed.
    next_stamp: u64,
    /// Observed stamp ranges `[start, end)` at or above `next_stamp`,
    /// pending contiguity. Batches arrive with consecutive stamps, so a
    /// whole batch is one heap entry, not one per step.
    pending: BinaryHeap<Reverse<(u64, u64)>>,
    /// Epoch-stamped visited marks for the cycle-check DFS (no per-check
    /// allocation).
    visit_mark: Vec<u32>,
    visit_epoch: u32,
    violation: Option<CertViolation>,
    stats: CertStats,
}

impl Default for IncrementalCertifier {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalCertifier {
    /// An empty certifier expecting stamps from 0.
    pub fn new() -> Self {
        IncrementalCertifier {
            slots: Vec::new(),
            free: Vec::new(),
            by_tx: Vec::new(),
            accessors: Vec::new(),
            snap_readers: Vec::new(),
            parked: FxHashMap::default(),
            edge_set: FxHashSet::default(),
            scratch_edges: Vec::new(),
            scratch_groups: Vec::new(),
            scratch_work: Vec::new(),
            sealed_pending: Vec::new(),
            scratch_raise: Vec::new(),
            scratch_dfs: Vec::new(),
            next_stamp: 0,
            pending: BinaryHeap::new(),
            visit_mark: Vec::new(),
            visit_epoch: 0,
            violation: None,
            stats: CertStats::default(),
        }
    }

    /// The first cycle caught, if any. Latched: once set it never clears,
    /// and subsequent observations are no-ops beyond stamp tracking.
    pub fn violation(&self) -> Option<&CertViolation> {
        self.violation.as_ref()
    }

    /// Work and footprint counters (live/peak node counts, edges,
    /// truncations).
    pub fn stats(&self) -> CertStats {
        self.stats
    }

    /// The contiguous-stamp watermark: every stamp below it has been
    /// observed, so the committed prefix up to here is truncatable.
    pub fn watermark(&mut self) -> u64 {
        self.advance_watermark();
        self.next_stamp
    }

    /// Feeds one stamped step. Stamps must be globally unique and dense
    /// over the whole run (the runtime's atomic sequence counter
    /// guarantees this); arrival order is free.
    pub fn observe(&mut self, stamp: u64, tx: TxId, step: Step) {
        self.observe_trace(&[(stamp, ScheduledStep::new(tx, step))]);
    }

    /// Feeds a stamped batch — the runtime's unit of arrival (one
    /// worker's recorded steps, stamps strictly ascending within the
    /// batch). Maximal consecutive stamp runs are tracked as single
    /// ranges, and each run of same-transaction steps is collapsed to
    /// per-(entity, class) stamp extremes before it touches the graph:
    /// serialization edges are pairwise stamp comparisons, so the
    /// extremes derive exactly the edge set per-step feeding would, at a
    /// fraction of the accessor scans.
    pub fn observe_trace(&mut self, batch: &[(u64, ScheduledStep)]) {
        let Some(&(first, _)) = batch.first() else {
            return;
        };
        // Record observed stamps as maximal consecutive ranges.
        let (mut start, mut prev) = (first, first);
        for &(s, _) in &batch[1..] {
            debug_assert!(s > prev, "batch stamps must be ascending");
            if s == prev + 1 {
                prev = s;
            } else {
                self.pending.push(Reverse((start, prev + 1)));
                (start, prev) = (s, s);
            }
        }
        self.pending.push(Reverse((start, prev + 1)));
        self.stats.steps += batch.len() as u64;
        if self.violation.is_some() {
            return; // latched: keep the graph frozen for the autopsy
        }
        let mut i = 0;
        while i < batch.len() {
            let tx = batch[i].1.tx;
            let to = self.slot_of(tx);
            debug_assert!(
                !self.slots[to as usize].sealed,
                "step for sealed transaction {}",
                self.slots[to as usize].tx
            );
            // Summarize this transaction's run of steps: per entity, the
            // (min, max) stamps of its benign and strong accesses.
            let mut groups = std::mem::take(&mut self.scratch_groups);
            groups.clear();
            let mut j = i;
            let mut run_last = first;
            while j < batch.len() && batch[j].1.tx == tx {
                let (stamp, s) = batch[j];
                run_last = stamp;
                let entity = s.step.entity.0;
                if let Access::Snapshot { observed } = s.via {
                    // Versioned read: ordered against the entity's writers
                    // by the version it observed, never by stamp order —
                    // it must not enter the benign accessor ranges. The
                    // pivot (observed version's install stamp) is derived
                    // from the observed writer's current strong extreme,
                    // which is exact under in-stamp-order feeding (replay);
                    // the runtime's out-of-order feed supplies it
                    // explicitly via `observe_snapshot_reads`.
                    let pivot = observed.and_then(|x| self.live_slot(x)).and_then(|xs| {
                        self.accessors.get(entity as usize).and_then(|l| {
                            l.iter()
                                .find(|a| a.slot == xs && a.mutation != NO_STAMPS)
                                .map(|a| a.mutation.1)
                        })
                    });
                    self.observe_versioned_read(stamp, to, entity, observed, pivot);
                    if self.violation.is_some() {
                        break;
                    }
                    j += 1;
                    continue;
                }
                let g = match groups.iter_mut().find(|g| g.0 == entity) {
                    Some(g) => g,
                    None => {
                        groups.push((entity, NO_STAMPS, NO_STAMPS, NO_STAMPS));
                        groups.last_mut().expect("just pushed")
                    }
                };
                let class = if s.step.op.is_benign() {
                    &mut g.1
                } else {
                    &mut g.2
                };
                class.0 = class.0.min(stamp);
                class.1 = class.1.max(stamp);
                if s.step.op.is_mutation() {
                    g.3 .0 = g.3 .0.min(stamp);
                    g.3 .1 = g.3 .1.max(stamp);
                }
                j += 1;
            }
            let node = &mut self.slots[to as usize];
            node.last_stamp = node.last_stamp.max(run_last);
            for &(entity, benign, strong, mutation) in &groups {
                self.observe_access(to, entity, benign, strong, mutation);
                if self.violation.is_some() {
                    break;
                }
            }
            self.scratch_groups = groups;
            if self.violation.is_some() {
                return;
            }
            i = j;
        }
    }

    /// Feeds a batch of snapshot reads with **explicit pivots** — the
    /// runtime's feed path for read-only jobs. Workers publish batches
    /// out of order, so the certifier cannot reconstruct which version a
    /// read observed from arrival state; the MVCC store knows exactly,
    /// and passes the observed version's install stamp along. Stamps must
    /// be ascending within the batch (the read path claims a dense stamp
    /// block at snapshot capture).
    pub fn observe_snapshot_reads(&mut self, reads: &[VersionedRead]) {
        let Some(first) = reads.first() else {
            return;
        };
        let (mut start, mut prev) = (first.stamp, first.stamp);
        for r in &reads[1..] {
            debug_assert!(r.stamp > prev, "batch stamps must be ascending");
            if r.stamp == prev + 1 {
                prev = r.stamp;
            } else {
                self.pending.push(Reverse((start, prev + 1)));
                (start, prev) = (r.stamp, r.stamp);
            }
        }
        self.pending.push(Reverse((start, prev + 1)));
        self.stats.steps += reads.len() as u64;
        if self.violation.is_some() {
            return; // latched: keep the graph frozen for the autopsy
        }
        for r in reads {
            let to = self.slot_of(r.tx);
            let node = &mut self.slots[to as usize];
            node.last_stamp = node.last_stamp.max(r.stamp);
            self.observe_versioned_read(r.stamp, to, r.entity.0, r.observed, r.pivot);
            if self.violation.is_some() {
                return;
            }
        }
    }

    /// Graph maintenance for one snapshot read: the versioned analogue of
    /// [`observe_access`](Self::observe_access). A snapshot read is
    /// ordered by the *version* it observed, never by stamp order:
    ///
    /// * `X → R` for the observed writer `X` (wr-dependency). An unseen
    ///   `X` gets a node now — its steps arrive at its commit; a
    ///   *truncated* `X` needs no edge, because truncation guarantees no
    ///   live accessor of the entity predates it.
    /// * `R → W` for every writer whose *mutation* stamps lie above
    ///   `pivot` (the observed version's install stamp): its version is
    ///   one the snapshot missed, so the reader serializes before it —
    ///   **iff it commits**. Against a sealed-committed writer the edge
    ///   lands now; against a sealed-aborted one it dissolves; against an
    ///   unsealed one it parks until
    ///   [`seal_with`](Self::seal_with) learns the outcome.
    /// * Writers at or below the pivot installed at or before the
    ///   observed version and are ordered before the reader transitively
    ///   through `X`'s own ww-edges — no direct edge needed.
    ///
    /// The read is then registered in the entity's [`SnapReader`] list so
    /// *future* strong accesses perform the mirror-image scan.
    ///
    /// Writers already **truncated** take no edge in either direction.
    /// This under-approximates `D(S)` but is sound for runtime feeds: a
    /// snapshot captured after a writer's commit flip *observes* that
    /// writer, and the commit pipeline flips writers in serialization
    /// order, so an anti-dependency into a committed-and-truncated
    /// writer can never lie on a cycle — any cycle through a snapshot
    /// read must pass through a writer still unflipped at capture, which
    /// is unsealed (hence resident) when the read is fed.
    fn observe_versioned_read(
        &mut self,
        stamp: u64,
        to: u32,
        entity: u32,
        observed: Option<TxId>,
        pivot: Option<u64>,
    ) {
        if entity as usize >= self.accessors.len() {
            self.accessors.resize_with(entity as usize + 1, Vec::new);
        }
        if entity as usize >= self.snap_readers.len() {
            self.snap_readers.resize_with(entity as usize + 1, Vec::new);
        }
        let mut x_slot = NO_SLOT;
        if let Some(x) = observed {
            match self.by_tx.get(x.0 as usize).copied().unwrap_or(NO_SLOT) {
                RETIRED_SLOT => {}
                NO_SLOT => x_slot = self.slot_of(x),
                s => x_slot = s,
            }
            if x_slot != NO_SLOT {
                self.add_edge(x_slot, to, stamp);
                if self.violation.is_some() {
                    return;
                }
            }
        }
        let mut new_edges = std::mem::take(&mut self.scratch_edges);
        new_edges.clear();
        for a in &self.accessors[entity as usize] {
            if a.slot == to || a.slot == x_slot || a.mutation == NO_STAMPS {
                continue;
            }
            if pivot.is_none_or(|p| a.mutation.0 > p) {
                new_edges.push((to, a.slot, stamp));
            }
        }
        for &(from, into, w) in &new_edges {
            let writer = &self.slots[into as usize];
            if writer.sealed {
                if !writer.aborted {
                    self.add_edge(from, into, w);
                    if self.violation.is_some() {
                        break;
                    }
                }
            } else {
                self.park(from, into, w);
            }
        }
        self.scratch_edges = new_edges;
        if self.violation.is_some() {
            return;
        }
        let list = &mut self.snap_readers[entity as usize];
        if !list.iter().any(|r| r.slot == to) {
            list.push(SnapReader {
                slot: to,
                observed,
                pivot,
                stamp,
            });
            let node = &mut self.slots[to as usize];
            if !node.touched.contains(&entity) {
                node.touched.push(entity);
            }
        }
    }

    /// Parks the edge `from → into` until `into`'s outcome is known,
    /// pinning `from` against truncation meanwhile.
    fn park(&mut self, from: u32, into: u32, stamp: u64) {
        self.parked.entry(into).or_default().push((from, stamp));
        self.slots[from as usize].parked_out += 1;
    }

    /// The slot of a currently resident transaction (`None` when never
    /// seen, truncated, or retracted).
    fn live_slot(&self, tx: TxId) -> Option<u32> {
        match self.by_tx.get(tx.0 as usize).copied() {
            Some(s) if s != NO_SLOT && s != RETIRED_SLOT => Some(s),
            _ => None,
        }
    }

    /// Graph maintenance for one transaction's access summary on one
    /// entity: edge deltas against the entity's other accessor summaries,
    /// then the summary folded into this transaction's own. `my_benign` /
    /// `my_strong` / `my_mutation` are the (min, max) stamps of the new
    /// accesses per conflict class ([`NO_STAMPS`] when the class is
    /// empty); mutations are the version-installing subset of the strong
    /// class.
    fn observe_access(
        &mut self,
        to: u32,
        entity: u32,
        my_benign: (u64, u64),
        my_strong: (u64, u64),
        my_mutation: (u64, u64),
    ) {
        if entity as usize >= self.accessors.len() {
            self.accessors.resize_with(entity as usize + 1, Vec::new);
        }
        // Edges against every other transaction that touched the entity,
        // directed by stamp order (collected first: edge insertion needs
        // `&mut self`). A prior access conflicts with my strong stamps
        // whatever its class, and with my benign stamps only when it is
        // strong; an edge exists iff a conflicting stamp lies on the
        // matching side of mine, which the class extremes answer exactly.
        // Already-present edges are rejected here, before they cost an
        // insertion attempt. Each candidate carries the stamp of mine
        // that witnessed it (for the violation report).
        let mut new_edges = std::mem::take(&mut self.scratch_edges);
        new_edges.clear();
        for a in &self.accessors[entity as usize] {
            if a.slot == to {
                continue;
            }
            let fwd_strong = a.strong.0.min(a.benign.0) < my_strong.1;
            if (fwd_strong || a.strong.0 < my_benign.1)
                && !self.edge_set.contains(&edge_key(a.slot, to))
            {
                let w = if fwd_strong { my_strong.1 } else { my_benign.1 };
                new_edges.push((a.slot, to, w));
            }
            let rev_strong = a.strong.1.max(a.benign.1) > my_strong.0;
            if (rev_strong || a.strong.1 > my_benign.0)
                && !self.edge_set.contains(&edge_key(to, a.slot))
            {
                let w = if rev_strong { my_strong.0 } else { my_benign.0 };
                new_edges.push((to, a.slot, w));
            }
        }
        for &(from, into, stamp) in &new_edges {
            self.add_edge(from, into, stamp);
            if self.violation.is_some() {
                break;
            }
        }
        self.scratch_edges = new_edges;
        if self.violation.is_some() {
            return;
        }
        // Fold the summary into the transaction's accessor entry.
        let list = &mut self.accessors[entity as usize];
        match list.iter_mut().find(|a| a.slot == to) {
            Some(a) => {
                a.benign = (a.benign.0.min(my_benign.0), a.benign.1.max(my_benign.1));
                a.strong = (a.strong.0.min(my_strong.0), a.strong.1.max(my_strong.1));
                a.mutation = (
                    a.mutation.0.min(my_mutation.0),
                    a.mutation.1.max(my_mutation.1),
                );
            }
            None => {
                list.push(Accessor {
                    slot: to,
                    benign: my_benign,
                    strong: my_strong,
                    mutation: my_mutation,
                });
                self.slots[to as usize].touched.push(entity);
            }
        }
        // Mirror-image of the versioned-read scan: my *mutations* may
        // have installed versions a live snapshot reader's snapshot
        // missed, so the reader precedes me — iff I commit. My seal is
        // still ahead (steps precede seals), so the edge always parks.
        // Lock-only traffic installs nothing and takes no edge; the
        // observed writer is skipped: its read-time `X → R` edge
        // already orders the pair.
        if my_mutation != NO_STAMPS && (entity as usize) < self.snap_readers.len() {
            let my_tx = self.slots[to as usize].tx;
            let mut parks = std::mem::take(&mut self.scratch_edges);
            parks.clear();
            for r in &self.snap_readers[entity as usize] {
                if r.slot == to || r.observed == Some(my_tx) {
                    continue;
                }
                if r.pivot.is_none_or(|p| my_mutation.0 > p) {
                    parks.push((r.slot, to, r.stamp));
                }
            }
            for &(from, into, stamp) in &parks {
                self.park(from, into, stamp);
            }
            self.scratch_edges = parks;
        }
    }

    /// Declares that `tx` will take no more steps and **committed**.
    /// Equivalent to [`seal_with`](Self::seal_with)`(tx, false)`; callers
    /// whose transactions can abort must say so, or parked snapshot-read
    /// edges against them will wrongly materialize.
    pub fn seal(&mut self, tx: TxId) {
        self.seal_with(tx, false);
    }

    /// Declares that `tx` will take no more steps, with its outcome
    /// (aborted transactions' recorded unlocks are part of the trace and
    /// its graph, they just stop growing — but their *versions* are
    /// permanently invisible, so parked reader → writer edges against
    /// them dissolve instead of materializing). Triggers a truncation
    /// pass.
    pub fn seal_with(&mut self, tx: TxId, aborted: bool) {
        if let Some(slot) = self.live_slot(tx) {
            let node = &mut self.slots[slot as usize];
            node.sealed = true;
            node.aborted = aborted;
            self.sealed_pending.push(slot);
            if let Some(list) = self.parked.remove(&slot) {
                for (from, stamp) in list {
                    self.slots[from as usize].parked_out -= 1;
                    if !aborted && self.violation.is_none() {
                        self.add_edge(from, slot, stamp);
                    }
                }
            }
        }
        self.truncate();
    }

    /// Surgically removes a live transaction from the graph — the
    /// certification-abort recovery path (strict mode): the victim's
    /// status-table entry flips to aborted, its versions become
    /// invisible, its recorded steps order nothing, and the run
    /// continues without it. Drops the victim's edges in both
    /// directions, its accessor and snapshot-reader footprint, and its
    /// parked edges in both roles; clears the violation latch when the
    /// victim appears in the latched cycle. Returns `false` when `tx` is
    /// not resident.
    pub fn retract(&mut self, tx: TxId) -> bool {
        let Some(slot) = self.live_slot(tx) else {
            return false;
        };
        let preds = std::mem::take(&mut self.slots[slot as usize].preds);
        for p in preds {
            self.edge_set.remove(&edge_key(p, slot));
            let succs = &mut self.slots[p as usize].succs;
            if let Some(i) = succs.iter().position(|&s| s == slot) {
                succs.swap_remove(i);
            }
        }
        let succs = std::mem::take(&mut self.slots[slot as usize].succs);
        for t in succs {
            self.edge_set.remove(&edge_key(slot, t));
            let preds = &mut self.slots[t as usize].preds;
            if let Some(i) = preds.iter().position(|&p| p == slot) {
                preds.swap_remove(i);
            }
            self.sealed_pending.push(t); // may have just become prunable
        }
        let touched = std::mem::take(&mut self.slots[slot as usize].touched);
        for e in touched {
            self.accessors[e as usize].retain(|a| a.slot != slot);
            if (e as usize) < self.snap_readers.len() {
                self.snap_readers[e as usize].retain(|r| r.slot != slot);
            }
        }
        if let Some(list) = self.parked.remove(&slot) {
            for (from, _) in list {
                self.slots[from as usize].parked_out -= 1;
            }
        }
        if self.slots[slot as usize].parked_out > 0 {
            for list in self.parked.values_mut() {
                list.retain(|&(from, _)| from != slot);
            }
            self.slots[slot as usize].parked_out = 0;
        }
        let node = &mut self.slots[slot as usize];
        node.live = false;
        node.sealed = true;
        self.by_tx[node.tx.0 as usize] = RETIRED_SLOT;
        self.free.push(slot);
        self.stats.retractions += 1;
        self.stats.live_nodes -= 1;
        if let Some(v) = &self.violation {
            if v.cycle.contains(&tx) {
                self.violation = None;
            }
        }
        self.truncate();
        true
    }

    /// Removes every sealed transaction whose footprint lies wholly below
    /// the contiguous-stamp watermark and which has no incoming edges —
    /// provably cycle-free forever (see the type docs). Runs automatically
    /// on every [`seal`](IncrementalCertifier::seal); exposed so tests can
    /// force truncation at arbitrary points and check the verdict is
    /// unaffected. A no-op after a violation latched.
    pub fn truncate(&mut self) {
        if self.violation.is_some() {
            return;
        }
        self.advance_watermark();
        // Only sealed nodes can be prunable, so the candidate set is the
        // sealed-pending list; `remove` feeds cascade candidates (preds
        // freed by a removal) back into the same work list.
        let mut work = std::mem::take(&mut self.sealed_pending);
        let mut keep = std::mem::take(&mut self.scratch_work);
        keep.clear();
        while let Some(s) = work.pop() {
            if self.prunable(s) {
                self.remove(s, &mut work);
            } else {
                let n = &self.slots[s as usize];
                if n.live && n.sealed {
                    keep.push(s); // still waiting on preds or the watermark
                }
                // Anything else is a stale or duplicate entry — drop it.
            }
        }
        self.sealed_pending = keep;
        self.scratch_work = work;
    }

    fn advance_watermark(&mut self) {
        while let Some(&Reverse((s, e))) = self.pending.peek() {
            if s > self.next_stamp {
                break;
            }
            self.pending.pop();
            self.next_stamp = self.next_stamp.max(e);
        }
    }

    fn prunable(&self, s: u32) -> bool {
        let n = &self.slots[s as usize];
        n.live
            && n.sealed
            && n.preds.is_empty()
            && n.parked_out == 0
            && n.last_stamp < self.next_stamp
    }

    /// Removes node `s`, cleaning both edge directions and its accessor
    /// entries, and queues successors that just became prunable.
    fn remove(&mut self, s: u32, work: &mut Vec<u32>) {
        let mut i = 0;
        while let Some(&t) = self.slots[s as usize].succs.get(i) {
            self.edge_set.remove(&edge_key(s, t));
            let preds = &mut self.slots[t as usize].preds;
            let pos = preds
                .iter()
                .position(|&p| p == s)
                .expect("edge recorded in both directions");
            preds.swap_remove(pos);
            if self.prunable(t) {
                work.push(t);
            }
            i += 1;
        }
        let mut i = 0;
        while let Some(&e) = self.slots[s as usize].touched.get(i) {
            self.accessors[e as usize].retain(|a| a.slot != s);
            if (e as usize) < self.snap_readers.len() {
                self.snap_readers[e as usize].retain(|r| r.slot != s);
            }
            i += 1;
        }
        let node = &mut self.slots[s as usize];
        node.live = false;
        self.by_tx[node.tx.0 as usize] = RETIRED_SLOT;
        self.free.push(s);
        self.stats.truncations += 1;
        self.stats.live_nodes -= 1;
    }

    fn slot_of(&mut self, tx: TxId) -> u32 {
        if tx.0 as usize >= self.by_tx.len() {
            self.by_tx.resize(tx.0 as usize + 1, NO_SLOT);
        } else if self.by_tx[tx.0 as usize] != NO_SLOT {
            let s = self.by_tx[tx.0 as usize];
            debug_assert!(s != RETIRED_SLOT, "step for retired transaction {tx}");
            if s != RETIRED_SLOT {
                return s;
            }
        }
        let slot = match self.free.pop() {
            Some(s) => {
                // Reset in place: the recycled node's edge and footprint
                // vectors keep their capacity, so steady-state slot churn
                // does not touch the allocator.
                let node = &mut self.slots[s as usize];
                node.tx = tx;
                node.sealed = false;
                node.aborted = false;
                node.parked_out = 0;
                node.live = true;
                node.last_stamp = 0;
                node.level = 0;
                node.succs.clear();
                node.preds.clear();
                node.touched.clear();
                s
            }
            None => {
                assert!(
                    self.slots.len() < u32::MAX as usize,
                    "certifier slot space exhausted"
                );
                self.slots.push(CertNode::fresh(tx));
                self.visit_mark.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        self.by_tx[tx.0 as usize] = slot;
        self.stats.live_nodes += 1;
        self.stats.peak_nodes = self.stats.peak_nodes.max(self.stats.live_nodes);
        slot
    }

    /// Inserts edge `from -> into` (dedup against existing edges) and runs
    /// the incremental cycle check: is `from` reachable back from `into`?
    ///
    /// The level invariant (every edge strictly increases `level`) makes
    /// the check cheap: an edge landing forward in level order cannot
    /// close a cycle and pays nothing; a backward edge pays one DFS
    /// bounded to levels below `from`'s, after which `into` and its
    /// descendants are lifted to restore the invariant.
    fn add_edge(&mut self, from: u32, into: u32, stamp: u64) {
        if !self.edge_set.insert(edge_key(from, into)) {
            return;
        }
        self.slots[from as usize].succs.push(into);
        self.slots[into as usize].preds.push(from);
        self.stats.edges += 1;
        let (from_level, into_level) = (
            self.slots[from as usize].level,
            self.slots[into as usize].level,
        );
        if from_level < into_level {
            return; // level order already holds — no cycle possible
        }
        // A cycle needs a pre-existing path into -> … -> from, along which
        // levels strictly increase — possible only from a strictly lower
        // starting level.
        if into_level < from_level {
            if let Some(path) = self.path(into, from) {
                // path = into -> … -> from; the new edge closes
                // from -> into.
                let mut cycle: Vec<TxId> = Vec::with_capacity(path.len() + 1);
                cycle.push(self.slots[from as usize].tx);
                cycle.extend(path.iter().map(|&s| self.slots[s as usize].tx));
                // `path` ends at `from`, so the closing repeat is already
                // there.
                self.violation = Some(CertViolation { cycle, stamp });
                return;
            }
        }
        // No cycle: lift `into` above `from`, cascading along successors
        // whose levels the lift overtakes.
        let mut raise = std::mem::take(&mut self.scratch_raise);
        raise.clear();
        raise.push((into, from_level + 1));
        while let Some((n, min)) = raise.pop() {
            if self.slots[n as usize].level >= min {
                continue;
            }
            self.slots[n as usize].level = min;
            let mut i = 0;
            while let Some(&m) = self.slots[n as usize].succs.get(i) {
                raise.push((m, min + 1));
                i += 1;
            }
        }
        self.scratch_raise = raise;
    }

    /// DFS for a path `start -> … -> target` along successor edges;
    /// epoch-marked visited set, no allocation beyond the reused stack.
    /// Pruned by the level invariant: intermediates on any such path have
    /// levels strictly below `target`'s.
    fn path(&mut self, start: u32, target: u32) -> Option<Vec<u32>> {
        self.visit_epoch = self.visit_epoch.wrapping_add(1);
        if self.visit_epoch == 0 {
            self.visit_mark.iter_mut().for_each(|m| *m = 0);
            self.visit_epoch = 1;
        }
        let epoch = self.visit_epoch;
        let bound = self.slots[target as usize].level;
        // Stack of (node, next successor index to try); the node column is
        // the current path.
        let mut stack = std::mem::take(&mut self.scratch_dfs);
        stack.clear();
        stack.push((start, 0));
        self.visit_mark[start as usize] = epoch;
        if start == target {
            self.scratch_dfs = stack;
            return Some(vec![start]);
        }
        let mut found = None;
        'dfs: while let Some(&(n, i)) = stack.last() {
            match self.slots[n as usize].succs.get(i) {
                None => {
                    stack.pop();
                }
                Some(&m) => {
                    stack.last_mut().expect("nonempty").1 += 1;
                    if m == target {
                        let mut path: Vec<u32> = stack.iter().map(|&(s, _)| s).collect();
                        path.push(target);
                        found = Some(path);
                        break 'dfs;
                    }
                    if self.visit_mark[m as usize] != epoch && self.slots[m as usize].level < bound
                    {
                        self.visit_mark[m as usize] = epoch;
                        stack.push((m, 0));
                    }
                }
            }
        }
        self.scratch_dfs = stack;
        found
    }

    /// Replays a finished schedule through the incremental machinery:
    /// steps observed in order (stamp = position), each transaction sealed
    /// at its last step so truncation runs exactly as it would online.
    /// Returns the first caught cycle, or `None` — by construction the
    /// same verdict as
    /// [`is_serializable`](crate::serializability::is_serializable).
    pub fn certify_schedule(schedule: &Schedule) -> Option<CertViolation> {
        Self::certify_schedule_with_aborts(schedule, &[])
    }

    /// [`certify_schedule`](Self::certify_schedule) for a trace from an
    /// aborting runtime: each transaction seals with its outcome, so
    /// parked snapshot-read edges against `aborted` writers dissolve
    /// exactly as the online path dissolves them (mirrors
    /// [`SerializationGraph::of_with_aborts`]).
    pub fn certify_schedule_with_aborts(
        schedule: &Schedule,
        aborted: &[TxId],
    ) -> Option<CertViolation> {
        let steps = schedule.steps();
        let mut last: FxHashMap<TxId, usize> = FxHashMap::default();
        for (i, s) in steps.iter().enumerate() {
            last.insert(s.tx, i);
        }
        let mut cert = IncrementalCertifier::new();
        for (i, s) in steps.iter().enumerate() {
            cert.observe_trace(&[(i as u64, *s)]);
            if cert.violation().is_some() {
                break;
            }
            if last[&s.tx] == i {
                cert.seal_with(s.tx, aborted.contains(&s.tx));
            }
        }
        cert.violation.take()
    }
}

impl fmt::Display for SerializationGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D(S): nodes {{")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}, edges {{")?;
        for (i, e) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} -> {}", e.from, e.to)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;
    use crate::schedule::ScheduledStep;
    use crate::step::Step;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn sched(steps: Vec<(u32, Step)>) -> Schedule {
        Schedule::from_steps(
            steps
                .into_iter()
                .map(|(i, s)| ScheduledStep::new(t(i), s))
                .collect(),
        )
    }

    #[test]
    fn conflicting_steps_create_edge_with_witness() {
        let s = sched(vec![(1, Step::write(e(0))), (2, Step::read(e(0)))]);
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(t(1), t(2)));
        assert!(!g.has_edge(t(2), t(1)));
        assert_eq!(g.witness(t(1), t(2)), Some((0, 1)));
    }

    #[test]
    fn non_conflicting_steps_create_no_edge() {
        let s = sched(vec![(1, Step::read(e(0))), (2, Step::read(e(0)))]);
        let g = SerializationGraph::of(&s);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 2);
        // Both isolated nodes are sources and sinks.
        assert_eq!(g.sinks(), vec![t(1), t(2)]);
        assert_eq!(g.sources(), vec![t(1), t(2)]);
    }

    #[test]
    fn classic_two_transaction_cycle() {
        // T1 writes a then b; T2 writes b then a, interleaved to cross.
        let s = sched(vec![
            (1, Step::write(e(0))),
            (2, Step::write(e(1))),
            (1, Step::write(e(1))),
            (2, Step::write(e(0))),
        ]);
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(t(1), t(2)));
        assert!(g.has_edge(t(2), t(1)));
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 3); // a -> b -> a
    }

    #[test]
    fn earliest_witness_is_kept() {
        let s = sched(vec![
            (1, Step::write(e(0))),
            (2, Step::write(e(0))),
            (1, Step::write(e(1))), // note: also 1->2? no, position 2 is after 1's? t1 again
            (2, Step::write(e(1))),
        ]);
        let g = SerializationGraph::of(&s);
        assert_eq!(g.witness(t(1), t(2)), Some((0, 1)));
    }

    #[test]
    fn topological_sort_respects_edges_and_is_stable() {
        let s = sched(vec![
            (3, Step::write(e(0))),
            (1, Step::write(e(0))),
            (1, Step::write(e(1))),
            (2, Step::write(e(1))),
        ]);
        let g = SerializationGraph::of(&s);
        let order = g.topological_sort().unwrap();
        assert_eq!(order, vec![t(3), t(1), t(2)]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn sinks_and_sources_of_a_path() {
        let g = SerializationGraph::from_parts(
            vec![t(1), t(2), t(3)],
            vec![
                ConflictEdge {
                    from: t(1),
                    to: t(2),
                    witness: (0, 1),
                },
                ConflictEdge {
                    from: t(2),
                    to: t(3),
                    witness: (1, 2),
                },
            ],
        );
        assert_eq!(g.sources(), vec![t(1)]);
        assert_eq!(g.sinks(), vec![t(3)]);
        assert!(g.is_simple_path_with_back_edge());
    }

    #[test]
    fn path_closed_by_back_edge_is_recognized() {
        let g = SerializationGraph::from_parts(
            vec![t(1), t(2), t(3)],
            vec![
                ConflictEdge {
                    from: t(1),
                    to: t(2),
                    witness: (0, 1),
                },
                ConflictEdge {
                    from: t(2),
                    to: t(3),
                    witness: (1, 2),
                },
                ConflictEdge {
                    from: t(3),
                    to: t(1),
                    witness: (2, 3),
                },
            ],
        );
        assert!(!g.is_acyclic());
        assert!(g.is_simple_path_with_back_edge());
    }

    #[test]
    fn branching_graph_is_not_a_simple_path() {
        let g = SerializationGraph::from_parts(
            vec![t(1), t(2), t(3)],
            vec![
                ConflictEdge {
                    from: t(1),
                    to: t(2),
                    witness: (0, 1),
                },
                ConflictEdge {
                    from: t(1),
                    to: t(3),
                    witness: (0, 2),
                },
            ],
        );
        assert!(!g.is_simple_path_with_back_edge());
        assert_eq!(g.sinks(), vec![t(2), t(3)]);
    }

    #[test]
    fn lock_steps_participate_in_conflicts() {
        // Two exclusive locks on the same entity by different transactions
        // conflict; this is what closes the cycle in canonical schedules.
        let s = sched(vec![
            (1, Step::lock_exclusive(e(0))),
            (1, Step::unlock_exclusive(e(0))),
            (2, Step::lock_exclusive(e(0))),
        ]);
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(t(1), t(2)));
    }

    /// The incremental index must agree with `SerializationGraph::of` on
    /// the edge set of every prefix of a schedule, through pushes and pops.
    #[test]
    fn conflict_index_matches_batch_graph() {
        let ids = [t(1), t(2), t(3)];
        let steps = vec![
            (1, Step::write(e(0))),
            (2, Step::read(e(0))),
            (3, Step::lock_exclusive(e(1))),
            (3, Step::write(e(1))),
            (3, Step::unlock_exclusive(e(1))),
            (1, Step::lock_exclusive(e(1))),
            (2, Step::write(e(0))),
            (1, Step::write(e(1))),
        ];
        let k = ids.len();
        let dense = |tx: TxId| ids.iter().position(|&x| x == tx).unwrap();
        let set_of = |s: &Schedule| {
            let g = SerializationGraph::of(s);
            let mut set = EdgeSet::empty(k);
            for edge in g.edges() {
                set.insert(dense(edge.from), dense(edge.to));
            }
            set
        };
        let mut index = ConflictIndex::new(k);
        let mut schedule = Schedule::empty();
        let mut set = EdgeSet::empty(k);
        let mut set_trail = vec![set.clone()];
        for &(tx, step) in &steps {
            let to = dense(t(tx));
            if let Some(d) = index.edge_delta(to, &step) {
                set.union_with(&d);
            }
            index.push(to, step);
            schedule.push(ScheduledStep::new(t(tx), step));
            assert_eq!(set, set_of(&schedule), "prefix {}", schedule.len());
            set_trail.push(set.clone());
        }
        // Pop everything back; edge_delta must keep agreeing with the
        // batch graph of the shrunk schedule.
        while schedule.pop().is_some() {
            index.pop();
            set_trail.pop();
            let expect = set_trail.last().unwrap();
            assert_eq!(
                expect,
                &set_of(&schedule),
                "after pop to {}",
                schedule.len()
            );
            assert_eq!(index.len(), schedule.len());
        }
        assert!(index.is_empty());
    }

    #[test]
    fn conflict_index_delta_ignores_same_transaction_and_other_entities() {
        let mut index = ConflictIndex::new(2);
        index.push(0, Step::write(e(0)));
        // Same transaction: no edge (and no allocation — None).
        assert!(index.edge_delta(0, &Step::write(e(0))).is_none());
        // Different entity: no edge.
        assert!(index.edge_delta(1, &Step::write(e(1))).is_none());
        // Conflicting access by the other transaction: edge 0 -> 1.
        let delta = index.edge_delta(1, &Step::read(e(0))).expect("conflict");
        assert_eq!(delta.edges(), vec![(0, 1)]);
    }

    /// Wide-`k` construction is a first-class path: indices above the
    /// `u128` bound build, produce words-backed deltas, and agree with the
    /// batch graph (regression: `ConflictIndex::new` used to panic here).
    #[test]
    fn conflict_index_supports_wide_k() {
        let k = ConflictIndex::MAX_TXS + 5; // 16
        let mut index = ConflictIndex::new(k);
        assert_eq!(index.width(), k);
        for i in 0..k {
            index.push(i, Step::write(e(0)));
        }
        // A write by a fresh view of transaction 0: conflicts with every
        // *other* transaction's write.
        let delta = index.edge_delta(0, &Step::write(e(0))).expect("conflicts");
        assert!(delta.as_small_mask().is_none(), "k > 11 must use words");
        assert_eq!(delta.len(), k - 1);
        for from in 1..k {
            assert!(delta.contains(from, 0));
        }
    }

    #[test]
    fn edgeset_apply_undo_round_trip_both_reprs() {
        for k in [3usize, 13] {
            let mut set = if k <= EdgeSet::MAX_SMALL_TXS {
                EdgeSet::empty(k)
            } else {
                EdgeSet::empty_wide(k)
            };
            let mut d1 = EdgeSet::empty(k);
            d1.insert(0, 1);
            d1.insert(1, 2);
            let mut d2 = EdgeSet::empty(k);
            d2.insert(1, 2); // overlaps d1: must not be double-counted
            d2.insert(2, 0);
            let empty = set.clone();
            let a1 = set.apply(&d1);
            let after_d1 = set.clone();
            assert_eq!(a1.len(), 2);
            let a2 = set.apply(&d2);
            assert_eq!(a2.len(), 1, "overlap with d1 must not re-add (1,2)");
            assert!(set.has_cycle(), "0->1->2->0 closes a cycle (k = {k})");
            set.undo(&a2);
            assert_eq!(set, after_d1);
            assert!(!set.has_cycle());
            set.undo(&a1);
            assert_eq!(set, empty);
            assert!(set.is_empty());
        }
    }

    #[test]
    fn edgeset_wide_cycle_detection_spans_word_boundaries() {
        // k = 70 forces a 2-word stride; route a cycle through node 69 so
        // both words of a row carry bits.
        let k = 70;
        let mut set = EdgeSet::empty(k);
        assert!(set.as_small_mask().is_none());
        set.insert(0, 69);
        set.insert(69, 5);
        assert!(!set.has_cycle());
        assert!(set.has_out_edges(69));
        assert!(!set.has_out_edges(5));
        set.insert(5, 0);
        assert!(set.has_cycle());
        assert_eq!(set.edges(), vec![(0, 69), (5, 0), (69, 5)]);
    }

    /// Replaying whole schedules through the incremental certifier must
    /// agree with the batch checker, and flag the cycle at the position
    /// where the prefix first becomes nonserializable.
    #[test]
    fn certifier_agrees_with_batch_checker() {
        use crate::serializability::is_serializable;
        let serializable = sched(vec![
            (1, Step::write(e(0))),
            (1, Step::write(e(1))),
            (2, Step::write(e(0))),
            (2, Step::write(e(1))),
        ]);
        assert!(is_serializable(&serializable));
        assert_eq!(IncrementalCertifier::certify_schedule(&serializable), None);

        let crossed = sched(vec![
            (1, Step::write(e(0))),
            (2, Step::write(e(1))),
            (1, Step::write(e(1))), // 2 -> 1
            (2, Step::write(e(0))), // 1 -> 2: closes the cycle HERE
        ]);
        assert!(!is_serializable(&crossed));
        let v = IncrementalCertifier::certify_schedule(&crossed).expect("cycle");
        assert_eq!(v.stamp, 3, "flagged at the closing edge");
        assert_eq!(v.cycle.first(), v.cycle.last());
        assert!(v.cycle.contains(&t(1)) && v.cycle.contains(&t(2)));
    }

    /// Out-of-order arrival (the runtime's feeding reality) must build the
    /// same graph: edge direction follows stamps, not arrival order.
    #[test]
    fn certifier_handles_out_of_order_stamps() {
        let steps = [
            (0u64, 1u32, Step::write(e(0))),
            (1, 2, Step::write(e(1))),
            (2, 1, Step::write(e(1))),
            (3, 2, Step::write(e(0))),
        ];
        // Feed in a scrambled order; verdict must match in-order feeding.
        for order in [[3usize, 0, 2, 1], [1, 3, 0, 2], [0, 1, 2, 3]] {
            let mut cert = IncrementalCertifier::new();
            for &i in &order {
                let (stamp, tx, step) = steps[i];
                cert.observe(stamp, t(tx), step);
            }
            let v = cert.violation().expect("crossed writes cycle");
            assert!(v.cycle.contains(&t(1)) && v.cycle.contains(&t(2)));
        }
    }

    /// Truncation must not change any verdict, and must actually bound the
    /// resident graph: a long chain of disjoint committed transactions
    /// stays at O(1) live nodes.
    #[test]
    fn certifier_truncation_bounds_memory_and_keeps_verdicts() {
        let mut cert = IncrementalCertifier::new();
        let mut stamp = 0u64;
        for i in 0..1000u32 {
            let tx = t(i + 1);
            // Every transaction conflicts with the previous one on a
            // shared entity: a 1000-node path in D(S) without truncation.
            cert.observe(stamp, tx, Step::write(e(i)));
            stamp += 1;
            cert.observe(stamp, tx, Step::write(e(i + 1)));
            stamp += 1;
            cert.seal(tx);
        }
        assert!(cert.violation().is_none());
        let stats = cert.stats();
        assert_eq!(stats.steps, 2000);
        assert!(
            stats.peak_nodes <= 3,
            "chain must truncate as it commits, peak was {}",
            stats.peak_nodes
        );
        assert_eq!(stats.truncations, 1000);
        assert_eq!(stats.live_nodes, 0);
        assert_eq!(cert.watermark(), 2000);
    }

    /// A sealed transaction must NOT be pruned while a straggler below the
    /// watermark could still add an incoming edge — and once the straggler
    /// arrives, the cycle it closes is still caught.
    #[test]
    fn certifier_holds_unwatermarked_nodes_for_stragglers() {
        let mut cert = IncrementalCertifier::new();
        // Stamps 1..=2: T2 writes e0 then e1, commits. Stamp 0 (T1's
        // write of e1 that *precedes* T2's) is still in flight.
        cert.observe(1, t(2), Step::write(e(1)));
        cert.observe(2, t(2), Step::write(e(0)));
        cert.seal(t(2));
        cert.truncate();
        assert_eq!(
            cert.stats().truncations,
            0,
            "stamp 0 unseen: T2 must stay resident"
        );
        // The straggler: T1 wrote e1 before T2 (edge 1 -> 2) …
        cert.observe(0, t(1), Step::write(e(1)));
        // … and now writes e0 after T2 (edge 2 -> 1): cycle.
        cert.observe(3, t(1), Step::write(e(0)));
        let v = cert.violation().expect("straggler closes the cycle");
        assert_eq!(v.stamp, 3);
    }

    /// Sealing is what makes nodes eligible — an unsealed (still running)
    /// transaction is never pruned even when fully below the watermark.
    #[test]
    fn certifier_never_prunes_unsealed_nodes() {
        let mut cert = IncrementalCertifier::new();
        cert.observe(0, t(1), Step::write(e(0)));
        cert.observe(1, t(2), Step::write(e(1)));
        cert.seal(t(2));
        cert.truncate();
        let stats = cert.stats();
        // T2 (sealed, watermarked, no preds) goes; T1 stays.
        assert_eq!(stats.truncations, 1);
        assert_eq!(stats.live_nodes, 1);
    }

    #[test]
    fn empty_schedule_graph() {
        let g = SerializationGraph::of(&Schedule::empty());
        assert_eq!(g.node_count(), 0);
        assert!(g.is_acyclic());
        assert_eq!(g.topological_sort(), Some(vec![]));
        assert_eq!(g.find_cycle(), None);
        assert!(!g.is_simple_path_with_back_edge());
    }

    /// Offline versioned-read edges: a snapshot read is ordered by the
    /// version it observed — `X → R` for the observed writer, `R → W` for
    /// writers past the pivot, nothing for older writers.
    #[test]
    fn snapshot_read_edges_follow_observed_version() {
        let s = Schedule::from_steps(vec![
            ScheduledStep::new(t(1), Step::write(e(0))),
            ScheduledStep::snapshot_read(t(3), e(0), Some(t(1))),
            ScheduledStep::new(t(2), Step::write(e(0))),
        ]);
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(t(1), t(3)), "observed writer precedes reader");
        assert!(g.has_edge(t(3), t(2)), "reader precedes missed writer");
        assert!(!g.has_edge(t(3), t(1)));
        assert!(
            !g.has_edge(t(2), t(3)),
            "snapshot reads take no stamp-order edge"
        );
        assert!(g.is_acyclic());
    }

    /// A dirty-read anomaly is a cycle offline — unless the missed writer
    /// aborted, in which case its versions are invisible phantoms and the
    /// anti-dependency dissolves.
    #[test]
    fn aborted_writer_dissolves_snapshot_anti_dependency() {
        // W2 writes e0 and e1 first; W1 then writes e0 (so W2 -> W1); the
        // reader observes W1 on e0 but the *initial* version on e1 —
        // missing W2's e1 write, hence R -> W2, closing the cycle
        // W2 -> W1 -> R -> W2.
        let s = Schedule::from_steps(vec![
            ScheduledStep::new(t(2), Step::write(e(0))),
            ScheduledStep::new(t(2), Step::write(e(1))),
            ScheduledStep::new(t(1), Step::write(e(0))),
            ScheduledStep::snapshot_read(t(3), e(0), Some(t(1))),
            ScheduledStep::snapshot_read(t(3), e(1), None),
        ]);
        assert!(!SerializationGraph::of(&s).is_acyclic());
        assert!(SerializationGraph::of_with_aborts(&s, &[t(2)]).is_acyclic());
        // The incremental certifier agrees when the writer aborted. (On
        // the cyclic variant it returns no violation: W2 committed and
        // truncated before the reader's steps arrive, and anti-
        // dependencies into committed-truncated writers are dropped —
        // sound for runtime feeds, where a capture after a writer's
        // commit flip observes that writer, so this trace is
        // unproducible; the batch graph above stays the trusted model.)
        assert!(IncrementalCertifier::certify_schedule_with_aborts(&s, &[t(2)]).is_none());
    }

    /// Online explicit-pivot feed, arriving out of order: the reader's
    /// snapshot is fed before the writers' steps, as the runtime does.
    #[test]
    fn certifier_versioned_reads_with_explicit_pivots() {
        let mut cert = IncrementalCertifier::new();
        // W1 installed e0 at stamp 0 and committed.
        cert.observe(0, t(1), Step::write(e(0)));
        cert.seal(t(1));
        // R's snapshot observed W1's version (install stamp 0).
        cert.observe_snapshot_reads(&[VersionedRead {
            stamp: 1,
            tx: t(3),
            entity: e(0),
            observed: Some(t(1)),
            pivot: Some(0),
        }]);
        cert.seal(t(3));
        // W2 writes e0 after the capture: R -> W2 parks, then lands at
        // W2's commit. All acyclic; everything truncates away.
        cert.observe(2, t(2), Step::write(e(0)));
        cert.seal_with(t(2), false);
        assert!(cert.violation().is_none());
        assert_eq!(cert.stats().live_nodes, 0, "all nodes truncated");
    }

    /// The scripted broken-visibility control: R dirty-observes X's
    /// uncommitted version on e1 while missing X's e0 write. If X
    /// commits, the parked R -> X edge lands against the read-time
    /// X -> R edge — a cycle; retracting the victim clears the latch.
    #[test]
    fn certifier_catches_broken_visibility_and_recovers_by_retraction() {
        let mut cert = IncrementalCertifier::new();
        cert.observe_snapshot_reads(&[
            VersionedRead {
                stamp: 0,
                tx: t(2),
                entity: e(0),
                observed: None,
                pivot: None,
            },
            VersionedRead {
                stamp: 1,
                tx: t(2),
                entity: e(1),
                observed: Some(t(1)), // in-progress: a dirty read
                pivot: Some(3),
            },
        ]);
        cert.seal(t(2));
        cert.observe_trace(&[
            (2, ScheduledStep::new(t(1), Step::write(e(0)))),
            (3, ScheduledStep::new(t(1), Step::write(e(1)))),
        ]);
        assert!(cert.violation().is_none(), "edge parked until X's outcome");
        cert.seal_with(t(1), false);
        let v = cert
            .violation()
            .expect("dirty read becomes a cycle at commit");
        assert!(v.cycle.contains(&t(1)) && v.cycle.contains(&t(2)));
        assert!(cert.retract(t(1)), "victim is resident");
        assert!(cert.violation().is_none(), "retraction clears the latch");
        assert_eq!(cert.stats().retractions, 1);
        // The certifier keeps running: an unrelated committed write is fine.
        cert.observe(4, t(4), Step::write(e(2)));
        cert.seal(t(4));
        assert!(cert.violation().is_none());
    }

    /// Same anomaly, but X aborts: its version was a phantom, the parked
    /// edge dissolves, and the whole graph truncates away.
    #[test]
    fn certifier_parked_edge_dissolves_when_writer_aborts() {
        let mut cert = IncrementalCertifier::new();
        cert.observe_snapshot_reads(&[
            VersionedRead {
                stamp: 0,
                tx: t(2),
                entity: e(0),
                observed: None,
                pivot: None,
            },
            VersionedRead {
                stamp: 1,
                tx: t(2),
                entity: e(1),
                observed: Some(t(1)),
                pivot: Some(3),
            },
        ]);
        cert.seal(t(2));
        cert.observe_trace(&[
            (2, ScheduledStep::new(t(1), Step::write(e(0)))),
            (3, ScheduledStep::new(t(1), Step::write(e(1)))),
        ]);
        cert.seal_with(t(1), true);
        assert!(cert.violation().is_none());
        assert_eq!(cert.stats().live_nodes, 0, "all nodes truncated");
    }
}
