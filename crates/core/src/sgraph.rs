//! The serializability graph `D(S)` of a schedule (Section 2).
//!
//! `D(S)` has a node per transaction in `S` and an edge `(Ti, Tj)` if a step
//! of `Ti` precedes a conflicting step of `Tj` in `S`. A schedule is
//! (conflict-)serializable iff `D(S)` is acyclic \[EGLT76\]. Each edge keeps
//! a *witness* — the earliest pair of conflicting schedule positions — so
//! counterexamples can be explained.

use crate::entity::EntityId;
use crate::schedule::Schedule;
use crate::step::Step;
use crate::txn::TxId;
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::fmt;

/// An edge of the serializability graph, with its witnessing conflict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConflictEdge {
    /// The transaction whose step comes first.
    pub from: TxId,
    /// The transaction whose conflicting step comes later.
    pub to: TxId,
    /// Schedule positions `(i, j)`, `i < j`, of the earliest witnessing
    /// conflicting step pair.
    pub witness: (usize, usize),
}

impl fmt::Display for ConflictEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} (steps {} < {})",
            self.from, self.to, self.witness.0, self.witness.1
        )
    }
}

/// The serializability graph `D(S)`.
#[derive(Clone, Debug)]
pub struct SerializationGraph {
    /// Nodes in first-appearance order (this makes topological sorts and
    /// cycle reports deterministic).
    nodes: Vec<TxId>,
    /// Edge map with earliest witness per ordered pair.
    edges: BTreeMap<(TxId, TxId), (usize, usize)>,
}

/// Graph equality is *structural*: same node set (regardless of
/// first-appearance order) and same edge set. Witness positions are
/// ignored — Lemmas 1–2 conclude `D(S) = D(S̄)` even though the schedules
/// permute positions.
///
/// Comparison is allocation-free: nodes are unique per graph (they come
/// from [`Schedule::participants`]), so equal lengths plus membership of
/// every `self` node in `other` imply set equality.
impl PartialEq for SerializationGraph {
    fn eq(&self, other: &Self) -> bool {
        self.nodes.len() == other.nodes.len()
            && self.nodes.iter().all(|n| other.nodes.contains(n))
            && self.edges.len() == other.edges.len()
            && self.edges.keys().all(|k| other.edges.contains_key(k))
    }
}

impl Eq for SerializationGraph {}

impl SerializationGraph {
    /// Builds `D(S)` for a schedule.
    ///
    /// Steps conflict only when they touch the same entity, so the builder
    /// buckets steps per entity and compares within buckets.
    pub fn of(schedule: &Schedule) -> Self {
        let nodes = schedule.participants();
        let mut edges: BTreeMap<(TxId, TxId), (usize, usize)> = BTreeMap::new();
        let mut by_entity: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        let steps = schedule.steps();
        for (i, s) in steps.iter().enumerate() {
            by_entity.entry(s.step.entity.0).or_default().push(i);
        }
        for positions in by_entity.values() {
            for (a, &i) in positions.iter().enumerate() {
                for &j in &positions[a + 1..] {
                    let (si, sj) = (&steps[i], &steps[j]);
                    if si.tx != sj.tx && si.step.conflicts_with(&sj.step) {
                        // Keep the globally earliest witness pair so the
                        // result is independent of bucket iteration order.
                        edges
                            .entry((si.tx, sj.tx))
                            .and_modify(|w| {
                                if (i, j) < *w {
                                    *w = (i, j);
                                }
                            })
                            .or_insert((i, j));
                    }
                }
            }
        }
        SerializationGraph { nodes, edges }
    }

    /// Builds a graph from explicit parts (used by tests and by figure
    /// renderers that construct expected shapes).
    pub fn from_parts(nodes: Vec<TxId>, edges: Vec<ConflictEdge>) -> Self {
        let edges = edges
            .into_iter()
            .map(|e| ((e.from, e.to), e.witness))
            .collect();
        SerializationGraph { nodes, edges }
    }

    /// The nodes, in first-appearance order.
    pub fn nodes(&self) -> &[TxId] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all edges with witnesses.
    pub fn edges(&self) -> impl Iterator<Item = ConflictEdge> + '_ {
        self.edges
            .iter()
            .map(|(&(from, to), &witness)| ConflictEdge { from, to, witness })
    }

    /// Whether the edge `(from, to)` is present.
    pub fn has_edge(&self, from: TxId, to: TxId) -> bool {
        self.edges.contains_key(&(from, to))
    }

    /// The witness of edge `(from, to)`, if present.
    pub fn witness(&self, from: TxId, to: TxId) -> Option<(usize, usize)> {
        self.edges.get(&(from, to)).copied()
    }

    /// Successors of `tx`.
    pub fn successors(&self, tx: TxId) -> Vec<TxId> {
        self.edges
            .keys()
            .filter(|&&(f, _)| f == tx)
            .map(|&(_, t)| t)
            .collect()
    }

    /// Predecessors of `tx`.
    pub fn predecessors(&self, tx: TxId) -> Vec<TxId> {
        self.edges
            .keys()
            .filter(|&&(_, t)| t == tx)
            .map(|&(f, _)| f)
            .collect()
    }

    /// Nodes with no outgoing edge. An isolated node is both a source and a
    /// sink — this matters for Theorem 1's condition (2a), which quantifies
    /// over *all* sinks of `D(S')`.
    pub fn sinks(&self) -> Vec<TxId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| !self.edges.keys().any(|&(f, _)| f == n))
            .collect()
    }

    /// Nodes with no incoming edge.
    pub fn sources(&self) -> Vec<TxId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| !self.edges.keys().any(|&(_, t)| t == n))
            .collect()
    }

    /// Whether the graph is acyclic, i.e. the schedule is serializable.
    pub fn is_acyclic(&self) -> bool {
        self.topological_sort().is_some()
    }

    /// A topological sort of the nodes, or `None` if the graph has a cycle.
    ///
    /// Deterministic: among ready nodes, the one earliest in
    /// first-appearance order is emitted first (Kahn's algorithm with a
    /// stable ready list).
    pub fn topological_sort(&self) -> Option<Vec<TxId>> {
        let mut indegree: BTreeMap<TxId, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for &(_, to) in self.edges.keys() {
            *indegree.get_mut(&to).expect("edge endpoint is a node") += 1;
        }
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut remaining: Vec<TxId> = self.nodes.clone();
        while !remaining.is_empty() {
            let pick = remaining.iter().position(|n| indegree[n] == 0)?;
            let n = remaining.remove(pick);
            order.push(n);
            for (&(f, t), _) in self.edges.iter() {
                if f == n {
                    *indegree.get_mut(&t).expect("edge endpoint is a node") -= 1;
                }
            }
        }
        Some(order)
    }

    /// A cycle through the graph, as a node sequence `v0 -> v1 -> … -> v0`
    /// (first node repeated at the end), or `None` if acyclic.
    pub fn find_cycle(&self) -> Option<Vec<TxId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: FxHashMap<TxId, Color> =
            self.nodes.iter().map(|&n| (n, Color::White)).collect();
        let mut stack: Vec<TxId> = Vec::new();

        fn dfs(
            g: &SerializationGraph,
            n: TxId,
            color: &mut FxHashMap<TxId, Color>,
            stack: &mut Vec<TxId>,
        ) -> Option<Vec<TxId>> {
            color.insert(n, Color::Gray);
            stack.push(n);
            for m in g.successors(n) {
                match color[&m] {
                    Color::Gray => {
                        let start = stack.iter().position(|&x| x == m).expect("gray on stack");
                        let mut cycle = stack[start..].to_vec();
                        cycle.push(m);
                        return Some(cycle);
                    }
                    Color::White => {
                        if let Some(c) = dfs(g, m, color, stack) {
                            return Some(c);
                        }
                    }
                    Color::Black => {}
                }
            }
            stack.pop();
            color.insert(n, Color::Black);
            None
        }

        for &n in &self.nodes {
            if color[&n] == Color::White {
                if let Some(c) = dfs(self, n, &mut color, &mut stack) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Whether the graph is a single simple path `v0 -> v1 -> … -> vk` with
    /// no extra edges except possibly the closing back edge `vk -> v0`.
    /// This is the *static-database* canonical shape (Fig. 1a): Yannakakis'
    /// theorem yields a simple path closed by one back edge.
    pub fn is_simple_path_with_back_edge(&self) -> bool {
        let n = self.nodes.len();
        if n == 0 {
            return false;
        }
        // A simple path has exactly one source; follow unique successors.
        let sources = self.sources();
        let start =
            match sources.as_slice() {
                [s] => *s,
                [] if n >= 2 => {
                    // Fully closed cycle: every node has in/out degree 1.
                    return self.nodes.iter().all(|&v| {
                        self.successors(v).len() == 1 && self.predecessors(v).len() == 1
                    }) && self.find_cycle().is_some_and(|c| c.len() == n + 1);
                }
                _ => return false,
            };
        let mut seen = vec![start];
        let mut cur = start;
        loop {
            let succ = self.successors(cur);
            match succ.as_slice() {
                [] => break,
                [next] => {
                    if seen.contains(next) {
                        return false;
                    }
                    seen.push(*next);
                    cur = *next;
                }
                [a, b] => {
                    // Allowed only for the node that also closes back to start.
                    let next = if *a == start {
                        *b
                    } else if *b == start {
                        *a
                    } else {
                        return false;
                    };
                    if seen.contains(&next) {
                        return false;
                    }
                    seen.push(next);
                    cur = next;
                }
                _ => return false,
            }
        }
        seen.len() == n
    }
}

/// An incremental conflict index over a *growing-and-shrinking* schedule:
/// the engine of the verifier's apply/undo DFS.
///
/// Transactions are addressed by **dense indices** `0..k` (the caller fixes
/// the numbering, typically first-appearance order of the system's ids).
/// The index maintains, per entity, the list of steps pushed so far that
/// touched it — so the `D(S)`-edge delta of a candidate step is computed by
/// scanning only that entity's accessors, `O(accessors)`, instead of
/// rescanning the whole schedule, `O(|S|)`. Pushes and pops are `O(1)`.
///
/// Edge sets are represented as `u128` bitmasks with bit `from * k + to`
/// encoding the edge `from -> to`, which bounds `k` at
/// [`ConflictIndex::MAX_TXS`] transactions — ample for exhaustive safety
/// search, whose state space is the real limit.
#[derive(Clone, Debug, Default)]
pub struct ConflictIndex {
    k: usize,
    /// Accessor lists indexed by dense entity id (entity ids come from the
    /// `Universe` interner, so the table stays small); grown on demand.
    by_entity: Vec<Vec<(u32, Step)>>,
    /// Entities of pushed steps, in push order, so `pop` knows which
    /// per-entity list to shrink.
    trail: Vec<EntityId>,
}

impl ConflictIndex {
    /// Maximum number of transactions an edge bitmask can address
    /// (`k * k <= 128`).
    pub const MAX_TXS: usize = 11;

    /// An empty index over `k` dense transaction indices.
    pub fn new(k: usize) -> Self {
        assert!(
            k <= Self::MAX_TXS,
            "ConflictIndex supports at most {} transactions, got {k}",
            Self::MAX_TXS
        );
        ConflictIndex {
            k,
            by_entity: Vec::new(),
            trail: Vec::new(),
        }
    }

    /// The dense-index capacity this index was built for.
    pub fn width(&self) -> usize {
        self.k
    }

    /// Number of steps currently pushed.
    pub fn len(&self) -> usize {
        self.trail.len()
    }

    /// Whether no step is pushed.
    pub fn is_empty(&self) -> bool {
        self.trail.is_empty()
    }

    /// The `D(S)`-edge delta of appending `step` for dense transaction
    /// `to`: a mask with bit `from * k + to` set for every pushed step of a
    /// different transaction `from` that conflicts with `step`. Only the
    /// accessors of `step.entity` are scanned.
    #[inline]
    pub fn edge_delta(&self, to: usize, step: &Step) -> u128 {
        debug_assert!(to < self.k);
        let mut mask = 0u128;
        if let Some(accessors) = self.by_entity.get(step.entity.index()) {
            for &(from, ref prior) in accessors {
                if from as usize != to && prior.conflicts_with(step) {
                    mask |= 1u128 << (from as usize * self.k + to);
                }
            }
        }
        mask
    }

    /// Records that dense transaction `tx` appended `step`.
    #[inline]
    pub fn push(&mut self, tx: usize, step: Step) {
        debug_assert!(tx < self.k);
        let slot = step.entity.index();
        if slot >= self.by_entity.len() {
            self.by_entity.resize_with(slot + 1, Vec::new);
        }
        self.by_entity[slot].push((tx as u32, step));
        self.trail.push(step.entity);
    }

    /// Unrecords the most recently pushed step (LIFO).
    #[inline]
    pub fn pop(&mut self) {
        let entity = self.trail.pop().expect("ConflictIndex::pop on empty index");
        let accessors = &mut self.by_entity[entity.index()];
        accessors.pop().expect("accessor list nonempty");
    }
}

impl fmt::Display for SerializationGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D(S): nodes {{")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}, edges {{")?;
        for (i, e) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} -> {}", e.from, e.to)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;
    use crate::schedule::ScheduledStep;
    use crate::step::Step;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn sched(steps: Vec<(u32, Step)>) -> Schedule {
        Schedule::from_steps(
            steps
                .into_iter()
                .map(|(i, s)| ScheduledStep::new(t(i), s))
                .collect(),
        )
    }

    #[test]
    fn conflicting_steps_create_edge_with_witness() {
        let s = sched(vec![(1, Step::write(e(0))), (2, Step::read(e(0)))]);
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(t(1), t(2)));
        assert!(!g.has_edge(t(2), t(1)));
        assert_eq!(g.witness(t(1), t(2)), Some((0, 1)));
    }

    #[test]
    fn non_conflicting_steps_create_no_edge() {
        let s = sched(vec![(1, Step::read(e(0))), (2, Step::read(e(0)))]);
        let g = SerializationGraph::of(&s);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 2);
        // Both isolated nodes are sources and sinks.
        assert_eq!(g.sinks(), vec![t(1), t(2)]);
        assert_eq!(g.sources(), vec![t(1), t(2)]);
    }

    #[test]
    fn classic_two_transaction_cycle() {
        // T1 writes a then b; T2 writes b then a, interleaved to cross.
        let s = sched(vec![
            (1, Step::write(e(0))),
            (2, Step::write(e(1))),
            (1, Step::write(e(1))),
            (2, Step::write(e(0))),
        ]);
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(t(1), t(2)));
        assert!(g.has_edge(t(2), t(1)));
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 3); // a -> b -> a
    }

    #[test]
    fn earliest_witness_is_kept() {
        let s = sched(vec![
            (1, Step::write(e(0))),
            (2, Step::write(e(0))),
            (1, Step::write(e(1))), // note: also 1->2? no, position 2 is after 1's? t1 again
            (2, Step::write(e(1))),
        ]);
        let g = SerializationGraph::of(&s);
        assert_eq!(g.witness(t(1), t(2)), Some((0, 1)));
    }

    #[test]
    fn topological_sort_respects_edges_and_is_stable() {
        let s = sched(vec![
            (3, Step::write(e(0))),
            (1, Step::write(e(0))),
            (1, Step::write(e(1))),
            (2, Step::write(e(1))),
        ]);
        let g = SerializationGraph::of(&s);
        let order = g.topological_sort().unwrap();
        assert_eq!(order, vec![t(3), t(1), t(2)]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn sinks_and_sources_of_a_path() {
        let g = SerializationGraph::from_parts(
            vec![t(1), t(2), t(3)],
            vec![
                ConflictEdge {
                    from: t(1),
                    to: t(2),
                    witness: (0, 1),
                },
                ConflictEdge {
                    from: t(2),
                    to: t(3),
                    witness: (1, 2),
                },
            ],
        );
        assert_eq!(g.sources(), vec![t(1)]);
        assert_eq!(g.sinks(), vec![t(3)]);
        assert!(g.is_simple_path_with_back_edge());
    }

    #[test]
    fn path_closed_by_back_edge_is_recognized() {
        let g = SerializationGraph::from_parts(
            vec![t(1), t(2), t(3)],
            vec![
                ConflictEdge {
                    from: t(1),
                    to: t(2),
                    witness: (0, 1),
                },
                ConflictEdge {
                    from: t(2),
                    to: t(3),
                    witness: (1, 2),
                },
                ConflictEdge {
                    from: t(3),
                    to: t(1),
                    witness: (2, 3),
                },
            ],
        );
        assert!(!g.is_acyclic());
        assert!(g.is_simple_path_with_back_edge());
    }

    #[test]
    fn branching_graph_is_not_a_simple_path() {
        let g = SerializationGraph::from_parts(
            vec![t(1), t(2), t(3)],
            vec![
                ConflictEdge {
                    from: t(1),
                    to: t(2),
                    witness: (0, 1),
                },
                ConflictEdge {
                    from: t(1),
                    to: t(3),
                    witness: (0, 2),
                },
            ],
        );
        assert!(!g.is_simple_path_with_back_edge());
        assert_eq!(g.sinks(), vec![t(2), t(3)]);
    }

    #[test]
    fn lock_steps_participate_in_conflicts() {
        // Two exclusive locks on the same entity by different transactions
        // conflict; this is what closes the cycle in canonical schedules.
        let s = sched(vec![
            (1, Step::lock_exclusive(e(0))),
            (1, Step::unlock_exclusive(e(0))),
            (2, Step::lock_exclusive(e(0))),
        ]);
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(t(1), t(2)));
    }

    /// The incremental index must agree with `SerializationGraph::of` on
    /// the edge set of every prefix of a schedule, through pushes and pops.
    #[test]
    fn conflict_index_matches_batch_graph() {
        let ids = [t(1), t(2), t(3)];
        let steps = vec![
            (1, Step::write(e(0))),
            (2, Step::read(e(0))),
            (3, Step::lock_exclusive(e(1))),
            (3, Step::write(e(1))),
            (3, Step::unlock_exclusive(e(1))),
            (1, Step::lock_exclusive(e(1))),
            (2, Step::write(e(0))),
            (1, Step::write(e(1))),
        ];
        let k = ids.len();
        let dense = |tx: TxId| ids.iter().position(|&x| x == tx).unwrap();
        let mask_of = |s: &Schedule| {
            let g = SerializationGraph::of(s);
            let mut mask = 0u128;
            for edge in g.edges() {
                mask |= 1u128 << (dense(edge.from) * k + dense(edge.to));
            }
            mask
        };
        let mut index = ConflictIndex::new(k);
        let mut schedule = Schedule::empty();
        let mut mask = 0u128;
        let mut mask_trail = vec![0u128];
        for &(tx, step) in &steps {
            let to = dense(t(tx));
            mask |= index.edge_delta(to, &step);
            index.push(to, step);
            schedule.push(ScheduledStep::new(t(tx), step));
            assert_eq!(mask, mask_of(&schedule), "prefix {}", schedule.len());
            mask_trail.push(mask);
        }
        // Pop everything back; edge_delta must keep agreeing with the
        // batch graph of the shrunk schedule.
        while schedule.pop().is_some() {
            index.pop();
            mask_trail.pop();
            let expect = *mask_trail.last().unwrap();
            assert_eq!(
                expect,
                mask_of(&schedule),
                "after pop to {}",
                schedule.len()
            );
            assert_eq!(index.len(), schedule.len());
        }
        assert!(index.is_empty());
    }

    #[test]
    fn conflict_index_delta_ignores_same_transaction_and_other_entities() {
        let mut index = ConflictIndex::new(2);
        index.push(0, Step::write(e(0)));
        // Same transaction: no edge.
        assert_eq!(index.edge_delta(0, &Step::write(e(0))), 0);
        // Different entity: no edge.
        assert_eq!(index.edge_delta(1, &Step::write(e(1))), 0);
        // Conflicting access by the other transaction: edge 0 -> 1.
        assert_eq!(index.edge_delta(1, &Step::read(e(0))), 1u128 << 1);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn conflict_index_rejects_oversized_k() {
        let _ = ConflictIndex::new(ConflictIndex::MAX_TXS + 1);
    }

    #[test]
    fn empty_schedule_graph() {
        let g = SerializationGraph::of(&Schedule::empty());
        assert_eq!(g.node_count(), 0);
        assert!(g.is_acyclic());
        assert_eq!(g.topological_sort(), Some(vec![]));
        assert_eq!(g.find_cycle(), None);
        assert!(!g.is_simple_path_with_back_edge());
    }
}
