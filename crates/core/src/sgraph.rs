//! The serializability graph `D(S)` of a schedule (Section 2).
//!
//! `D(S)` has a node per transaction in `S` and an edge `(Ti, Tj)` if a step
//! of `Ti` precedes a conflicting step of `Tj` in `S`. A schedule is
//! (conflict-)serializable iff `D(S)` is acyclic \[EGLT76\]. Each edge keeps
//! a *witness* — the earliest pair of conflicting schedule positions — so
//! counterexamples can be explained.
//!
//! Two faces of the same graph live here:
//!
//! * [`SerializationGraph`] — the retained, witness-carrying batch form,
//!   built from a whole schedule; the trusted model everything else is
//!   tested against.
//! * [`EdgeSet`] + [`ConflictIndex`] — the incremental form the safety
//!   verifiers drive: dense-index edge *sets* with a `u128` fast path
//!   (k ≤ [`EdgeSet::MAX_SMALL_TXS`]) and a fixed-stride `[u64]`-words
//!   fallback for arbitrary k, maintained through an apply/undo trail and
//!   shared (by value) between the sequential explorer's memo keys and the
//!   parallel explorer's sharded memo. Before the words fallback,
//!   exhaustive safety search was hard-capped at 11 transactions.

use crate::entity::EntityId;
use crate::schedule::Schedule;
use crate::step::Step;
use crate::txn::TxId;
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::fmt;

/// An edge of the serializability graph, with its witnessing conflict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConflictEdge {
    /// The transaction whose step comes first.
    pub from: TxId,
    /// The transaction whose conflicting step comes later.
    pub to: TxId,
    /// Schedule positions `(i, j)`, `i < j`, of the earliest witnessing
    /// conflicting step pair.
    pub witness: (usize, usize),
}

impl fmt::Display for ConflictEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} (steps {} < {})",
            self.from, self.to, self.witness.0, self.witness.1
        )
    }
}

/// The serializability graph `D(S)`.
#[derive(Clone, Debug)]
pub struct SerializationGraph {
    /// Nodes in first-appearance order (this makes topological sorts and
    /// cycle reports deterministic).
    nodes: Vec<TxId>,
    /// Edge map with earliest witness per ordered pair.
    edges: BTreeMap<(TxId, TxId), (usize, usize)>,
}

/// Graph equality is *structural*: same node set (regardless of
/// first-appearance order) and same edge set. Witness positions are
/// ignored — Lemmas 1–2 conclude `D(S) = D(S̄)` even though the schedules
/// permute positions.
///
/// Comparison is allocation-free: nodes are unique per graph (they come
/// from [`Schedule::participants`]), so equal lengths plus membership of
/// every `self` node in `other` imply set equality.
impl PartialEq for SerializationGraph {
    fn eq(&self, other: &Self) -> bool {
        self.nodes.len() == other.nodes.len()
            && self.nodes.iter().all(|n| other.nodes.contains(n))
            && self.edges.len() == other.edges.len()
            && self.edges.keys().all(|k| other.edges.contains_key(k))
    }
}

impl Eq for SerializationGraph {}

impl SerializationGraph {
    /// Builds `D(S)` for a schedule.
    ///
    /// Steps conflict only when they touch the same entity, so the builder
    /// buckets steps per entity and compares within buckets.
    pub fn of(schedule: &Schedule) -> Self {
        let nodes = schedule.participants();
        let mut edges: BTreeMap<(TxId, TxId), (usize, usize)> = BTreeMap::new();
        let mut by_entity: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        let steps = schedule.steps();
        for (i, s) in steps.iter().enumerate() {
            by_entity.entry(s.step.entity.0).or_default().push(i);
        }
        for positions in by_entity.values() {
            for (a, &i) in positions.iter().enumerate() {
                for &j in &positions[a + 1..] {
                    let (si, sj) = (&steps[i], &steps[j]);
                    if si.tx != sj.tx && si.step.conflicts_with(&sj.step) {
                        // Keep the globally earliest witness pair so the
                        // result is independent of bucket iteration order.
                        edges
                            .entry((si.tx, sj.tx))
                            .and_modify(|w| {
                                if (i, j) < *w {
                                    *w = (i, j);
                                }
                            })
                            .or_insert((i, j));
                    }
                }
            }
        }
        SerializationGraph { nodes, edges }
    }

    /// Builds a graph from explicit parts (used by tests and by figure
    /// renderers that construct expected shapes).
    pub fn from_parts(nodes: Vec<TxId>, edges: Vec<ConflictEdge>) -> Self {
        let edges = edges
            .into_iter()
            .map(|e| ((e.from, e.to), e.witness))
            .collect();
        SerializationGraph { nodes, edges }
    }

    /// The nodes, in first-appearance order.
    pub fn nodes(&self) -> &[TxId] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all edges with witnesses.
    pub fn edges(&self) -> impl Iterator<Item = ConflictEdge> + '_ {
        self.edges
            .iter()
            .map(|(&(from, to), &witness)| ConflictEdge { from, to, witness })
    }

    /// Whether the edge `(from, to)` is present.
    pub fn has_edge(&self, from: TxId, to: TxId) -> bool {
        self.edges.contains_key(&(from, to))
    }

    /// The witness of edge `(from, to)`, if present.
    pub fn witness(&self, from: TxId, to: TxId) -> Option<(usize, usize)> {
        self.edges.get(&(from, to)).copied()
    }

    /// Successors of `tx`.
    pub fn successors(&self, tx: TxId) -> Vec<TxId> {
        self.edges
            .keys()
            .filter(|&&(f, _)| f == tx)
            .map(|&(_, t)| t)
            .collect()
    }

    /// Predecessors of `tx`.
    pub fn predecessors(&self, tx: TxId) -> Vec<TxId> {
        self.edges
            .keys()
            .filter(|&&(_, t)| t == tx)
            .map(|&(f, _)| f)
            .collect()
    }

    /// Nodes with no outgoing edge. An isolated node is both a source and a
    /// sink — this matters for Theorem 1's condition (2a), which quantifies
    /// over *all* sinks of `D(S')`.
    pub fn sinks(&self) -> Vec<TxId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| !self.edges.keys().any(|&(f, _)| f == n))
            .collect()
    }

    /// Nodes with no incoming edge.
    pub fn sources(&self) -> Vec<TxId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| !self.edges.keys().any(|&(_, t)| t == n))
            .collect()
    }

    /// Whether the graph is acyclic, i.e. the schedule is serializable.
    pub fn is_acyclic(&self) -> bool {
        self.topological_sort().is_some()
    }

    /// A topological sort of the nodes, or `None` if the graph has a cycle.
    ///
    /// Deterministic: among ready nodes, the one earliest in
    /// first-appearance order is emitted first (Kahn's algorithm with a
    /// stable ready list).
    pub fn topological_sort(&self) -> Option<Vec<TxId>> {
        let mut indegree: BTreeMap<TxId, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for &(_, to) in self.edges.keys() {
            *indegree.get_mut(&to).expect("edge endpoint is a node") += 1;
        }
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut remaining: Vec<TxId> = self.nodes.clone();
        while !remaining.is_empty() {
            let pick = remaining.iter().position(|n| indegree[n] == 0)?;
            let n = remaining.remove(pick);
            order.push(n);
            for (&(f, t), _) in self.edges.iter() {
                if f == n {
                    *indegree.get_mut(&t).expect("edge endpoint is a node") -= 1;
                }
            }
        }
        Some(order)
    }

    /// A cycle through the graph, as a node sequence `v0 -> v1 -> … -> v0`
    /// (first node repeated at the end), or `None` if acyclic.
    pub fn find_cycle(&self) -> Option<Vec<TxId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: FxHashMap<TxId, Color> =
            self.nodes.iter().map(|&n| (n, Color::White)).collect();
        let mut stack: Vec<TxId> = Vec::new();

        fn dfs(
            g: &SerializationGraph,
            n: TxId,
            color: &mut FxHashMap<TxId, Color>,
            stack: &mut Vec<TxId>,
        ) -> Option<Vec<TxId>> {
            color.insert(n, Color::Gray);
            stack.push(n);
            for m in g.successors(n) {
                match color[&m] {
                    Color::Gray => {
                        let start = stack.iter().position(|&x| x == m).expect("gray on stack");
                        let mut cycle = stack[start..].to_vec();
                        cycle.push(m);
                        return Some(cycle);
                    }
                    Color::White => {
                        if let Some(c) = dfs(g, m, color, stack) {
                            return Some(c);
                        }
                    }
                    Color::Black => {}
                }
            }
            stack.pop();
            color.insert(n, Color::Black);
            None
        }

        for &n in &self.nodes {
            if color[&n] == Color::White {
                if let Some(c) = dfs(self, n, &mut color, &mut stack) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Whether the graph is a single simple path `v0 -> v1 -> … -> vk` with
    /// no extra edges except possibly the closing back edge `vk -> v0`.
    /// This is the *static-database* canonical shape (Fig. 1a): Yannakakis'
    /// theorem yields a simple path closed by one back edge.
    pub fn is_simple_path_with_back_edge(&self) -> bool {
        let n = self.nodes.len();
        if n == 0 {
            return false;
        }
        // A simple path has exactly one source; follow unique successors.
        let sources = self.sources();
        let start =
            match sources.as_slice() {
                [s] => *s,
                [] if n >= 2 => {
                    // Fully closed cycle: every node has in/out degree 1.
                    return self.nodes.iter().all(|&v| {
                        self.successors(v).len() == 1 && self.predecessors(v).len() == 1
                    }) && self.find_cycle().is_some_and(|c| c.len() == n + 1);
                }
                _ => return false,
            };
        let mut seen = vec![start];
        let mut cur = start;
        loop {
            let succ = self.successors(cur);
            match succ.as_slice() {
                [] => break,
                [next] => {
                    if seen.contains(next) {
                        return false;
                    }
                    seen.push(*next);
                    cur = *next;
                }
                [a, b] => {
                    // Allowed only for the node that also closes back to start.
                    let next = if *a == start {
                        *b
                    } else if *b == start {
                        *a
                    } else {
                        return false;
                    };
                    if seen.contains(&next) {
                        return false;
                    }
                    seen.push(next);
                    cur = next;
                }
                _ => return false,
            }
        }
        seen.len() == n
    }
}

/// Whether the `u128` edge bitmask over `k` nodes (bit `i * k + j` encodes
/// edge `i -> j`) contains a cycle, by Floyd–Warshall transitive closure on
/// bits. This is the [`EdgeSet`] fast path, exposed directly for callers
/// that keep raw masks (the verifier's retained reference explorer).
///
/// # Panics
///
/// If `k >` [`EdgeSet::MAX_SMALL_TXS`]: bit `k * k - 1` must exist, and a
/// silently wrapped shift would alias rows and corrupt the verdict. Wider
/// graphs belong in an [`EdgeSet`].
pub fn mask_has_cycle(mask: u128, k: usize) -> bool {
    assert!(
        k <= EdgeSet::MAX_SMALL_TXS,
        "mask_has_cycle addresses at most {} nodes, got {k}",
        EdgeSet::MAX_SMALL_TXS
    );
    let mut reach = mask;
    for via in 0..k {
        for i in 0..k {
            if reach & (1u128 << (i * k + via)) != 0 {
                for j in 0..k {
                    if reach & (1u128 << (via * k + j)) != 0 {
                        reach |= 1u128 << (i * k + j);
                    }
                }
            }
        }
    }
    (0..k).any(|i| reach & (1u128 << (i * k + i)) != 0)
}

/// A growable set of `D(S)` edges over `k` dense transaction indices.
///
/// Two representations behind one interface:
///
/// * **small** — a single `u128` with bit `from * k + to`, for
///   `k <=` [`EdgeSet::MAX_SMALL_TXS`] (11, since `k * k <= 128`). All
///   operations are branch-light word arithmetic and nothing allocates;
///   this is the representation on the exhaustive verifier's hot path.
/// * **wide** — a boxed `[u64]` with a fixed per-row stride of
///   `ceil(k / 64)` words, row `from` at words
///   `from * stride .. (from + 1) * stride`, bit `to` within the row. This
///   lifts the old hard `k <= 11` cap on exhaustive safety search: any `k`
///   works, at the cost of allocating edge sets.
///
/// The representation is chosen by [`EdgeSet::empty`] from `k` alone, so
/// all edge sets of one search agree and the mixed-representation
/// operations below can simply panic (that would be a construction bug,
/// not a data-dependent condition).
///
/// # Apply/undo
///
/// The verifier's DFS keeps **one** edge set and mutates it in place,
/// mirroring its simulator discipline: [`EdgeSet::apply`] ORs a delta in
/// and returns the bits that were actually new, and [`EdgeSet::undo`]
/// clears exactly those, restoring the set bit-for-bit (LIFO order).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EdgeSet {
    repr: Repr,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Repr {
    Small {
        k: u8,
        mask: u128,
    },
    Wide {
        k: u16,
        stride: u16,
        words: Box<[u64]>,
    },
}

impl EdgeSet {
    /// Maximum `k` the `u128` fast path can address (`k * k <= 128`).
    pub const MAX_SMALL_TXS: usize = 11;

    /// The empty edge set over `k` nodes, in the representation `k` calls
    /// for (`u128` up to [`EdgeSet::MAX_SMALL_TXS`], words above).
    pub fn empty(k: usize) -> Self {
        if k <= Self::MAX_SMALL_TXS {
            EdgeSet {
                repr: Repr::Small {
                    k: k as u8,
                    mask: 0,
                },
            }
        } else {
            Self::empty_wide(k)
        }
    }

    /// The empty edge set over `k` nodes in the **words** representation
    /// regardless of `k` — the differential arm of the property tests,
    /// which cross-check the two representations on small `k`.
    pub fn empty_wide(k: usize) -> Self {
        assert!(
            k <= u16::MAX as usize,
            "EdgeSet supports at most {} nodes",
            u16::MAX
        );
        let stride = k.div_ceil(64);
        EdgeSet {
            repr: Repr::Wide {
                k: k as u16,
                stride: stride as u16,
                words: vec![0u64; k * stride].into_boxed_slice(),
            },
        }
    }

    /// The node-index capacity `k` this set was built for.
    pub fn width(&self) -> usize {
        match &self.repr {
            Repr::Small { k, .. } => *k as usize,
            Repr::Wide { k, .. } => *k as usize,
        }
    }

    /// Inserts the edge `from -> to`.
    #[inline]
    pub fn insert(&mut self, from: usize, to: usize) {
        debug_assert!(from < self.width() && to < self.width());
        match &mut self.repr {
            Repr::Small { k, mask } => *mask |= 1u128 << (from * *k as usize + to),
            Repr::Wide { stride, words, .. } => {
                words[from * *stride as usize + to / 64] |= 1u64 << (to % 64);
            }
        }
    }

    /// Whether the edge `from -> to` is present.
    #[inline]
    pub fn contains(&self, from: usize, to: usize) -> bool {
        debug_assert!(from < self.width() && to < self.width());
        match &self.repr {
            Repr::Small { k, mask } => mask & (1u128 << (from * *k as usize + to)) != 0,
            Repr::Wide { stride, words, .. } => {
                words[from * *stride as usize + to / 64] & (1u64 << (to % 64)) != 0
            }
        }
    }

    /// Whether the set has no edges.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Small { mask, .. } => *mask == 0,
            Repr::Wide { words, .. } => words.iter().all(|&w| w == 0),
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small { mask, .. } => mask.count_ones() as usize,
            Repr::Wide { words, .. } => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// ORs `other` into `self`. Panics on mismatched width or
    /// representation (a construction bug — see the type docs).
    pub fn union_with(&mut self, other: &EdgeSet) {
        match (&mut self.repr, &other.repr) {
            (Repr::Small { k, mask }, Repr::Small { k: ok, mask: om }) if k == ok => *mask |= om,
            (
                Repr::Wide { k, words, .. },
                Repr::Wide {
                    k: ok, words: ow, ..
                },
            ) if k == ok => {
                for (w, o) in words.iter_mut().zip(ow.iter()) {
                    *w |= o;
                }
            }
            _ => panic!("EdgeSet::union_with on mismatched representations"),
        }
    }

    /// ORs `delta` in and returns the edges that were **actually added**
    /// (`delta & !self`) — the undo record for [`EdgeSet::undo`].
    #[inline]
    pub fn apply(&mut self, delta: &EdgeSet) -> EdgeSet {
        match (&mut self.repr, &delta.repr) {
            (Repr::Small { k, mask }, Repr::Small { k: dk, mask: dm }) if k == dk => {
                let added = dm & !*mask;
                *mask |= dm;
                EdgeSet {
                    repr: Repr::Small { k: *k, mask: added },
                }
            }
            (
                Repr::Wide { k, stride, words },
                Repr::Wide {
                    k: dk, words: dw, ..
                },
            ) if k == dk => {
                let mut added = vec![0u64; words.len()].into_boxed_slice();
                for i in 0..words.len() {
                    added[i] = dw[i] & !words[i];
                    words[i] |= dw[i];
                }
                EdgeSet {
                    repr: Repr::Wide {
                        k: *k,
                        stride: *stride,
                        words: added,
                    },
                }
            }
            _ => panic!("EdgeSet::apply on mismatched representations"),
        }
    }

    /// Clears the edges in `added`, reversing the [`EdgeSet::apply`] that
    /// returned it. Undo records must be replayed in reverse apply order
    /// (LIFO), exactly like the simulator's `UndoToken`s.
    #[inline]
    pub fn undo(&mut self, added: &EdgeSet) {
        match (&mut self.repr, &added.repr) {
            (Repr::Small { k, mask }, Repr::Small { k: ak, mask: am }) if k == ak => {
                debug_assert_eq!(*mask & am, *am, "EdgeSet::undo of edges not present");
                *mask &= !am;
            }
            (
                Repr::Wide { k, words, .. },
                Repr::Wide {
                    k: ak, words: aw, ..
                },
            ) if k == ak => {
                for (w, a) in words.iter_mut().zip(aw.iter()) {
                    debug_assert_eq!(*w & a, *a, "EdgeSet::undo of edges not present");
                    *w &= !a;
                }
            }
            _ => panic!("EdgeSet::undo on mismatched representations"),
        }
    }

    /// Whether node `from` has any outgoing edge.
    pub fn has_out_edges(&self, from: usize) -> bool {
        debug_assert!(from < self.width());
        match &self.repr {
            Repr::Small { k, mask } => {
                let row = (mask >> (from * *k as usize)) & ((1u128 << *k) - 1);
                row != 0
            }
            Repr::Wide { stride, words, .. } => {
                let s = *stride as usize;
                words[from * s..(from + 1) * s].iter().any(|&w| w != 0)
            }
        }
    }

    /// Whether the edge set contains a cycle — the serializability test of
    /// the accumulated `D(S)`, by Floyd–Warshall transitive closure (on the
    /// `u128` directly for the small representation, row-word OR for the
    /// wide one).
    pub fn has_cycle(&self) -> bool {
        match &self.repr {
            Repr::Small { k, mask } => mask_has_cycle(*mask, *k as usize),
            Repr::Wide { k, stride, words } => {
                let (k, stride) = (*k as usize, *stride as usize);
                let mut reach = words.to_vec();
                for via in 0..k {
                    for i in 0..k {
                        if i != via && reach[i * stride + via / 64] & (1u64 << (via % 64)) != 0 {
                            for w in 0..stride {
                                let v = reach[via * stride + w];
                                reach[i * stride + w] |= v;
                            }
                        }
                    }
                }
                (0..k).any(|i| reach[i * stride + i / 64] & (1u64 << (i % 64)) != 0)
            }
        }
    }

    /// Number of `u64` words [`EdgeSet::store_words`] emits for a set over
    /// `k` nodes: 2 for the small (`u128`) representation, `stride * k` for
    /// the words one. Memo tables size their fixed-width keys off this.
    pub fn encoded_len(k: usize) -> usize {
        if k <= Self::MAX_SMALL_TXS {
            2
        } else {
            k.div_ceil(64) * k
        }
    }

    /// Writes this set's canonical `u64`-word encoding into `out` (whose
    /// length must be exactly [`EdgeSet::encoded_len`] for this set's
    /// width): the `u128` mask as (low, high) for the small
    /// representation, the raw row words for the wide one. Injective per
    /// representation — the verifier's memo tables hash and compare these
    /// words instead of the `EdgeSet` itself, so one codec serves every
    /// memo-key shape. Taking a slice (not a `Vec`) keeps the verifier's
    /// per-probe encode free of length bookkeeping and capacity checks.
    #[inline]
    pub fn store_words(&self, out: &mut [u64]) {
        match &self.repr {
            Repr::Small { mask, .. } => {
                out[0] = *mask as u64;
                out[1] = (*mask >> 64) as u64;
            }
            Repr::Wide { words, .. } => out.copy_from_slice(words),
        }
    }

    /// The raw `u128` mask, if this is the small representation — the
    /// verifier packs it into its fast-path memo keys.
    pub fn as_small_mask(&self) -> Option<u128> {
        match &self.repr {
            Repr::Small { mask, .. } => Some(*mask),
            Repr::Wide { .. } => None,
        }
    }

    /// All edges `(from, to)`, in row-major order (tests and diagnostics;
    /// not a hot path).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let k = self.width();
        let mut out = Vec::new();
        for from in 0..k {
            for to in 0..k {
                if self.contains(from, to) {
                    out.push((from, to));
                }
            }
        }
        out
    }
}

/// An incremental conflict index over a *growing-and-shrinking* schedule:
/// the engine of the verifier's apply/undo DFS.
///
/// Transactions are addressed by **dense indices** `0..k` (the caller fixes
/// the numbering, typically first-appearance order of the system's ids).
/// The index maintains, per entity, the list of steps pushed so far that
/// touched it — so the `D(S)`-edge delta of a candidate step is computed by
/// scanning only that entity's accessors, `O(accessors)`, instead of
/// rescanning the whole schedule, `O(|S|)`. Pushes and pops are `O(1)`.
///
/// Edge deltas are returned as [`EdgeSet`]s, whose representation is chosen
/// from `k`: `u128` bitmask up to [`ConflictIndex::MAX_TXS`] transactions
/// (allocation-free), fixed-stride `u64` words above — so any `k`
/// constructs and indexes; only the state space bounds the search.
#[derive(Clone, Debug, Default)]
pub struct ConflictIndex {
    k: usize,
    /// Accessor lists indexed by dense entity id (entity ids come from the
    /// `Universe` interner, so the table stays small); grown on demand.
    by_entity: Vec<Vec<(u32, Step)>>,
    /// Entities of pushed steps, in push order, so `pop` knows which
    /// per-entity list to shrink.
    trail: Vec<EntityId>,
}

impl ConflictIndex {
    /// Widest `k` addressed by the allocation-free `u128` edge
    /// representation (`k * k <= 128`). Wider systems are fully supported;
    /// their edge sets fall back to [`EdgeSet`]'s words representation.
    pub const MAX_TXS: usize = EdgeSet::MAX_SMALL_TXS;

    /// An empty index over `k` dense transaction indices — any `k`.
    pub fn new(k: usize) -> Self {
        ConflictIndex {
            k,
            by_entity: Vec::new(),
            trail: Vec::new(),
        }
    }

    /// The dense-index capacity this index was built for.
    pub fn width(&self) -> usize {
        self.k
    }

    /// Number of steps currently pushed.
    pub fn len(&self) -> usize {
        self.trail.len()
    }

    /// Whether no step is pushed.
    pub fn is_empty(&self) -> bool {
        self.trail.is_empty()
    }

    /// The `D(S)`-edge delta of appending `step` for dense transaction
    /// `to`: the edge `from -> to` for every pushed step of a different
    /// transaction `from` that conflicts with `step`. Only the accessors of
    /// `step.entity` are scanned.
    ///
    /// `None` means the delta is empty — the common case, which this way
    /// stays allocation-free even in the words representation (the set is
    /// built lazily on the first conflicting accessor).
    #[inline]
    pub fn edge_delta(&self, to: usize, step: &Step) -> Option<EdgeSet> {
        debug_assert!(to < self.k);
        let mut out: Option<EdgeSet> = None;
        if let Some(accessors) = self.by_entity.get(step.entity.index()) {
            for &(from, ref prior) in accessors {
                if from as usize != to && prior.conflicts_with(step) {
                    out.get_or_insert_with(|| EdgeSet::empty(self.k))
                        .insert(from as usize, to);
                }
            }
        }
        out
    }

    /// Records that dense transaction `tx` appended `step`.
    #[inline]
    pub fn push(&mut self, tx: usize, step: Step) {
        debug_assert!(tx < self.k);
        let slot = step.entity.index();
        if slot >= self.by_entity.len() {
            self.by_entity.resize_with(slot + 1, Vec::new);
        }
        self.by_entity[slot].push((tx as u32, step));
        self.trail.push(step.entity);
    }

    /// Unrecords the most recently pushed step (LIFO).
    #[inline]
    pub fn pop(&mut self) {
        let entity = self.trail.pop().expect("ConflictIndex::pop on empty index");
        let accessors = &mut self.by_entity[entity.index()];
        accessors.pop().expect("accessor list nonempty");
    }
}

impl fmt::Display for SerializationGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D(S): nodes {{")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}, edges {{")?;
        for (i, e) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} -> {}", e.from, e.to)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;
    use crate::schedule::ScheduledStep;
    use crate::step::Step;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn sched(steps: Vec<(u32, Step)>) -> Schedule {
        Schedule::from_steps(
            steps
                .into_iter()
                .map(|(i, s)| ScheduledStep::new(t(i), s))
                .collect(),
        )
    }

    #[test]
    fn conflicting_steps_create_edge_with_witness() {
        let s = sched(vec![(1, Step::write(e(0))), (2, Step::read(e(0)))]);
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(t(1), t(2)));
        assert!(!g.has_edge(t(2), t(1)));
        assert_eq!(g.witness(t(1), t(2)), Some((0, 1)));
    }

    #[test]
    fn non_conflicting_steps_create_no_edge() {
        let s = sched(vec![(1, Step::read(e(0))), (2, Step::read(e(0)))]);
        let g = SerializationGraph::of(&s);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 2);
        // Both isolated nodes are sources and sinks.
        assert_eq!(g.sinks(), vec![t(1), t(2)]);
        assert_eq!(g.sources(), vec![t(1), t(2)]);
    }

    #[test]
    fn classic_two_transaction_cycle() {
        // T1 writes a then b; T2 writes b then a, interleaved to cross.
        let s = sched(vec![
            (1, Step::write(e(0))),
            (2, Step::write(e(1))),
            (1, Step::write(e(1))),
            (2, Step::write(e(0))),
        ]);
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(t(1), t(2)));
        assert!(g.has_edge(t(2), t(1)));
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 3); // a -> b -> a
    }

    #[test]
    fn earliest_witness_is_kept() {
        let s = sched(vec![
            (1, Step::write(e(0))),
            (2, Step::write(e(0))),
            (1, Step::write(e(1))), // note: also 1->2? no, position 2 is after 1's? t1 again
            (2, Step::write(e(1))),
        ]);
        let g = SerializationGraph::of(&s);
        assert_eq!(g.witness(t(1), t(2)), Some((0, 1)));
    }

    #[test]
    fn topological_sort_respects_edges_and_is_stable() {
        let s = sched(vec![
            (3, Step::write(e(0))),
            (1, Step::write(e(0))),
            (1, Step::write(e(1))),
            (2, Step::write(e(1))),
        ]);
        let g = SerializationGraph::of(&s);
        let order = g.topological_sort().unwrap();
        assert_eq!(order, vec![t(3), t(1), t(2)]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn sinks_and_sources_of_a_path() {
        let g = SerializationGraph::from_parts(
            vec![t(1), t(2), t(3)],
            vec![
                ConflictEdge {
                    from: t(1),
                    to: t(2),
                    witness: (0, 1),
                },
                ConflictEdge {
                    from: t(2),
                    to: t(3),
                    witness: (1, 2),
                },
            ],
        );
        assert_eq!(g.sources(), vec![t(1)]);
        assert_eq!(g.sinks(), vec![t(3)]);
        assert!(g.is_simple_path_with_back_edge());
    }

    #[test]
    fn path_closed_by_back_edge_is_recognized() {
        let g = SerializationGraph::from_parts(
            vec![t(1), t(2), t(3)],
            vec![
                ConflictEdge {
                    from: t(1),
                    to: t(2),
                    witness: (0, 1),
                },
                ConflictEdge {
                    from: t(2),
                    to: t(3),
                    witness: (1, 2),
                },
                ConflictEdge {
                    from: t(3),
                    to: t(1),
                    witness: (2, 3),
                },
            ],
        );
        assert!(!g.is_acyclic());
        assert!(g.is_simple_path_with_back_edge());
    }

    #[test]
    fn branching_graph_is_not_a_simple_path() {
        let g = SerializationGraph::from_parts(
            vec![t(1), t(2), t(3)],
            vec![
                ConflictEdge {
                    from: t(1),
                    to: t(2),
                    witness: (0, 1),
                },
                ConflictEdge {
                    from: t(1),
                    to: t(3),
                    witness: (0, 2),
                },
            ],
        );
        assert!(!g.is_simple_path_with_back_edge());
        assert_eq!(g.sinks(), vec![t(2), t(3)]);
    }

    #[test]
    fn lock_steps_participate_in_conflicts() {
        // Two exclusive locks on the same entity by different transactions
        // conflict; this is what closes the cycle in canonical schedules.
        let s = sched(vec![
            (1, Step::lock_exclusive(e(0))),
            (1, Step::unlock_exclusive(e(0))),
            (2, Step::lock_exclusive(e(0))),
        ]);
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(t(1), t(2)));
    }

    /// The incremental index must agree with `SerializationGraph::of` on
    /// the edge set of every prefix of a schedule, through pushes and pops.
    #[test]
    fn conflict_index_matches_batch_graph() {
        let ids = [t(1), t(2), t(3)];
        let steps = vec![
            (1, Step::write(e(0))),
            (2, Step::read(e(0))),
            (3, Step::lock_exclusive(e(1))),
            (3, Step::write(e(1))),
            (3, Step::unlock_exclusive(e(1))),
            (1, Step::lock_exclusive(e(1))),
            (2, Step::write(e(0))),
            (1, Step::write(e(1))),
        ];
        let k = ids.len();
        let dense = |tx: TxId| ids.iter().position(|&x| x == tx).unwrap();
        let set_of = |s: &Schedule| {
            let g = SerializationGraph::of(s);
            let mut set = EdgeSet::empty(k);
            for edge in g.edges() {
                set.insert(dense(edge.from), dense(edge.to));
            }
            set
        };
        let mut index = ConflictIndex::new(k);
        let mut schedule = Schedule::empty();
        let mut set = EdgeSet::empty(k);
        let mut set_trail = vec![set.clone()];
        for &(tx, step) in &steps {
            let to = dense(t(tx));
            if let Some(d) = index.edge_delta(to, &step) {
                set.union_with(&d);
            }
            index.push(to, step);
            schedule.push(ScheduledStep::new(t(tx), step));
            assert_eq!(set, set_of(&schedule), "prefix {}", schedule.len());
            set_trail.push(set.clone());
        }
        // Pop everything back; edge_delta must keep agreeing with the
        // batch graph of the shrunk schedule.
        while schedule.pop().is_some() {
            index.pop();
            set_trail.pop();
            let expect = set_trail.last().unwrap();
            assert_eq!(
                expect,
                &set_of(&schedule),
                "after pop to {}",
                schedule.len()
            );
            assert_eq!(index.len(), schedule.len());
        }
        assert!(index.is_empty());
    }

    #[test]
    fn conflict_index_delta_ignores_same_transaction_and_other_entities() {
        let mut index = ConflictIndex::new(2);
        index.push(0, Step::write(e(0)));
        // Same transaction: no edge (and no allocation — None).
        assert!(index.edge_delta(0, &Step::write(e(0))).is_none());
        // Different entity: no edge.
        assert!(index.edge_delta(1, &Step::write(e(1))).is_none());
        // Conflicting access by the other transaction: edge 0 -> 1.
        let delta = index.edge_delta(1, &Step::read(e(0))).expect("conflict");
        assert_eq!(delta.edges(), vec![(0, 1)]);
    }

    /// Wide-`k` construction is a first-class path: indices above the
    /// `u128` bound build, produce words-backed deltas, and agree with the
    /// batch graph (regression: `ConflictIndex::new` used to panic here).
    #[test]
    fn conflict_index_supports_wide_k() {
        let k = ConflictIndex::MAX_TXS + 5; // 16
        let mut index = ConflictIndex::new(k);
        assert_eq!(index.width(), k);
        for i in 0..k {
            index.push(i, Step::write(e(0)));
        }
        // A write by a fresh view of transaction 0: conflicts with every
        // *other* transaction's write.
        let delta = index.edge_delta(0, &Step::write(e(0))).expect("conflicts");
        assert!(delta.as_small_mask().is_none(), "k > 11 must use words");
        assert_eq!(delta.len(), k - 1);
        for from in 1..k {
            assert!(delta.contains(from, 0));
        }
    }

    #[test]
    fn edgeset_apply_undo_round_trip_both_reprs() {
        for k in [3usize, 13] {
            let mut set = if k <= EdgeSet::MAX_SMALL_TXS {
                EdgeSet::empty(k)
            } else {
                EdgeSet::empty_wide(k)
            };
            let mut d1 = EdgeSet::empty(k);
            d1.insert(0, 1);
            d1.insert(1, 2);
            let mut d2 = EdgeSet::empty(k);
            d2.insert(1, 2); // overlaps d1: must not be double-counted
            d2.insert(2, 0);
            let empty = set.clone();
            let a1 = set.apply(&d1);
            let after_d1 = set.clone();
            assert_eq!(a1.len(), 2);
            let a2 = set.apply(&d2);
            assert_eq!(a2.len(), 1, "overlap with d1 must not re-add (1,2)");
            assert!(set.has_cycle(), "0->1->2->0 closes a cycle (k = {k})");
            set.undo(&a2);
            assert_eq!(set, after_d1);
            assert!(!set.has_cycle());
            set.undo(&a1);
            assert_eq!(set, empty);
            assert!(set.is_empty());
        }
    }

    #[test]
    fn edgeset_wide_cycle_detection_spans_word_boundaries() {
        // k = 70 forces a 2-word stride; route a cycle through node 69 so
        // both words of a row carry bits.
        let k = 70;
        let mut set = EdgeSet::empty(k);
        assert!(set.as_small_mask().is_none());
        set.insert(0, 69);
        set.insert(69, 5);
        assert!(!set.has_cycle());
        assert!(set.has_out_edges(69));
        assert!(!set.has_out_edges(5));
        set.insert(5, 0);
        assert!(set.has_cycle());
        assert_eq!(set.edges(), vec![(0, 69), (5, 0), (69, 5)]);
    }

    #[test]
    fn empty_schedule_graph() {
        let g = SerializationGraph::of(&Schedule::empty());
        assert_eq!(g.node_count(), 0);
        assert!(g.is_acyclic());
        assert_eq!(g.topological_sort(), Some(vec![]));
        assert_eq!(g.find_cycle(), None);
        assert!(!g.is_simple_path_with_back_edge());
    }
}
