//! Entities and the universe of entities.
//!
//! The paper's model (Section 2) posits a universe `U` of all entities that
//! may exist in the database over its lifetime. A *structural state* is a
//! selection of entities from `U`. Entities are interned: the library works
//! with compact [`EntityId`]s, and a [`Universe`] maps ids to human-readable
//! names for display and for building systems from textual descriptions.

use std::collections::HashMap;
use std::fmt;

/// A compact identifier for an entity in the universe `U`.
///
/// Ids are dense (`0..universe.len()`), which lets structural states be
/// represented as bitsets and lets per-entity tables be plain vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The universe of entities: an interner from names to [`EntityId`]s.
///
/// Every entity that a transaction may ever read, write, insert, or delete
/// must be registered here first. Registration is idempotent: interning the
/// same name twice yields the same id.
///
/// # Examples
///
/// ```
/// use slp_core::Universe;
///
/// let mut u = Universe::new();
/// let a = u.entity("a");
/// let b = u.entity("b");
/// assert_ne!(a, b);
/// assert_eq!(u.entity("a"), a);
/// assert_eq!(u.name(a), "a");
/// assert_eq!(u.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Universe {
    names: Vec<String>,
    index: HashMap<String, EntityId>,
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Idempotent.
    pub fn entity(&mut self, name: &str) -> EntityId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = EntityId(u32::try_from(self.names.len()).expect("universe overflow"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Interns a batch of names, returning their ids in order.
    pub fn entities<'a>(&mut self, names: impl IntoIterator<Item = &'a str>) -> Vec<EntityId> {
        names.into_iter().map(|n| self.entity(n)).collect()
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<EntityId> {
        self.index.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this universe.
    pub fn name(&self, id: EntityId) -> &str {
        &self.names[id.index()]
    }

    /// Number of entities interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all entity ids in the universe.
    pub fn iter(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.names.len() as u32).map(EntityId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut u = Universe::new();
        let a1 = u.entity("a");
        let a2 = u.entity("a");
        assert_eq!(a1, a2);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut u = Universe::new();
        let ids = u.entities(["x", "y", "z"]);
        assert_eq!(ids, vec![EntityId(0), EntityId(1), EntityId(2)]);
        assert_eq!(u.iter().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn lookup_and_name_round_trip() {
        let mut u = Universe::new();
        let a = u.entity("node-7");
        assert_eq!(u.lookup("node-7"), Some(a));
        assert_eq!(u.lookup("absent"), None);
        assert_eq!(u.name(a), "node-7");
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(EntityId(3).to_string(), "e3");
        assert_eq!(format!("{:?}", EntityId(3)), "e3");
    }
}
