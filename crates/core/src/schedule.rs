//! Schedules: interleavings of the steps of a transaction system that
//! preserve each transaction's program order (Section 2), together with the
//! two key predicates on them — **properness** (every step is defined in
//! the structural state it executes in) and **legality** (no two distinct
//! transactions simultaneously hold conflicting locks).

use crate::entity::EntityId;
use crate::ops::{LockMode, Operation};
use crate::state::{StructuralState, UndefinedStep};
use crate::step::Step;
use crate::txn::{LockedTransaction, TxId};
use std::collections::HashMap;
use std::fmt;

/// How a scheduled step reached the database: through the lock service
/// (the paper's model — every access covered by a lock), or as an MVCC
/// snapshot read that bypassed locking entirely and observed a specific
/// committed version.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Access {
    /// The step executed under the policy engine's locks (the default; the
    /// legality predicate governs it).
    #[default]
    Locked,
    /// The step is a read against a versioned store: it took no lock and
    /// observed the version installed by `observed` — `None` when it
    /// observed the initial, never-written value. Serializability for
    /// these steps is judged *against the version they observed*, not
    /// against lock coverage (see `slp_core::sgraph`).
    Snapshot {
        /// The writer whose version the read observed (`None` = initial).
        observed: Option<TxId>,
    },
}

/// A step attributed to the transaction that issued it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScheduledStep {
    /// The issuing transaction.
    pub tx: TxId,
    /// The step itself.
    pub step: Step,
    /// How the step reached the database ([`Access::Locked`] unless the
    /// step came through an MVCC snapshot).
    pub via: Access,
}

impl ScheduledStep {
    /// Creates a scheduled step (locked access, the paper's model).
    pub fn new(tx: TxId, step: Step) -> Self {
        ScheduledStep {
            tx,
            step,
            via: Access::Locked,
        }
    }

    /// Creates a lock-free snapshot read of `entity` by `tx` that observed
    /// the version installed by `observed` (`None` = the initial value).
    pub fn snapshot_read(tx: TxId, entity: EntityId, observed: Option<TxId>) -> Self {
        ScheduledStep {
            tx,
            step: Step::read(entity),
            via: Access::Snapshot { observed },
        }
    }

    /// Whether this step is a lock-free snapshot read.
    pub fn is_snapshot(&self) -> bool {
        matches!(self.via, Access::Snapshot { .. })
    }
}

impl fmt::Display for ScheduledStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.via {
            Access::Locked => write!(f, "{}:{}", self.tx, self.step),
            Access::Snapshot { observed: Some(w) } => {
                write!(f, "{}:{}@snap[{}]", self.tx, self.step, w)
            }
            Access::Snapshot { observed: None } => {
                write!(f, "{}:{}@snap[init]", self.tx, self.step)
            }
        }
    }
}

/// Why a schedule failed the properness check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProperViolation {
    /// Position of the undefined step in the schedule.
    pub pos: usize,
    /// The undefined step.
    pub step: ScheduledStep,
    /// The reason it was undefined.
    pub cause: UndefinedStep,
}

impl fmt::Display for ProperViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {} at position {}: {}",
            self.step, self.pos, self.cause
        )
    }
}

impl std::error::Error for ProperViolation {}

/// Why a schedule failed the legality check: at `pos`, `requester` acquired
/// a lock on `entity` conflicting with a lock held by `holder`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LegalViolation {
    /// Position of the offending lock step.
    pub pos: usize,
    /// The entity under contention.
    pub entity: EntityId,
    /// The transaction acquiring the conflicting lock.
    pub requester: TxId,
    /// A transaction already holding an incompatible lock.
    pub holder: TxId,
}

impl fmt::Display for LegalViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "at position {}, {} locks {} while {} holds a conflicting lock",
            self.pos, self.requester, self.entity, self.holder
        )
    }
}

impl std::error::Error for LegalViolation {}

/// Why [`Schedule::from_sequenced`] rejected its input.
///
/// A sequence-stamped trace is only an unambiguous total order when the
/// stamps are **distinct** and **contiguous**: the runtime stamps every
/// granted step from one atomic counter, so a duplicate means the recorder
/// double-stamped and a gap means recorded steps were lost (e.g. a torn
/// write-ahead-log tail) — either way the reconstruction would silently
/// misorder or skip execution history, so both are rejected loudly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SequenceError {
    /// The input was empty. An empty trace is not an ordering problem, but
    /// accepting it here would let callers conflate "nothing recorded"
    /// with "nothing happened"; callers that know the trace is legitimately
    /// empty use [`Schedule::empty`] directly.
    Empty,
    /// Two entries carried the same stamp.
    Duplicate(u64),
    /// Stamps are not contiguous: after `after`, the next stamp present
    /// was `found` (> `after + 1`).
    Gap {
        /// The last stamp before the hole.
        after: u64,
        /// The next stamp actually present.
        found: u64,
    },
}

impl fmt::Display for SequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceError::Empty => write!(f, "no sequence-stamped entries"),
            SequenceError::Duplicate(s) => write!(f, "duplicate sequence stamp {s}"),
            SequenceError::Gap { after, found } => {
                write!(f, "sequence gap: stamp {after} is followed by {found}")
            }
        }
    }
}

impl std::error::Error for SequenceError {}

/// A schedule: an ordering of steps of some transactions that preserves each
/// transaction's program order.
///
/// The type itself does not enforce properness or legality — those are
/// *predicates* checked by [`check_proper`](Schedule::check_proper) and
/// [`check_legal`](Schedule::check_legal), mirroring the paper where
/// schedules exist independently of being proper/legal.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Schedule {
    steps: Vec<ScheduledStep>,
}

impl Schedule {
    /// The empty schedule.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A schedule from raw scheduled steps.
    pub fn from_steps(steps: Vec<ScheduledStep>) -> Self {
        Schedule { steps }
    }

    /// The serial schedule executing the given transactions (possibly
    /// truncated prefixes of them) back-to-back in the given order.
    pub fn serial<'a>(txs: impl IntoIterator<Item = &'a LockedTransaction>) -> Self {
        let mut steps = Vec::new();
        for t in txs {
            steps.extend(t.steps.iter().map(|&s| ScheduledStep::new(t.id, s)));
        }
        Schedule { steps }
    }

    /// Builds a schedule by interleaving `txs` according to `order`: each
    /// entry of `order` names the transaction whose next unconsumed step is
    /// appended. Fails if a named transaction has no steps left or is
    /// unknown, or if `order` does not consume exactly all steps of every
    /// transaction it mentions at least once — callers wanting partial
    /// schedules simply list fewer entries.
    pub fn interleave(txs: &[LockedTransaction], order: &[TxId]) -> Result<Self, String> {
        let mut cursors: HashMap<TxId, usize> = HashMap::new();
        let by_id: HashMap<TxId, &LockedTransaction> = txs.iter().map(|t| (t.id, t)).collect();
        let mut steps = Vec::with_capacity(order.len());
        for &tx in order {
            let t = by_id
                .get(&tx)
                .ok_or_else(|| format!("unknown transaction {tx}"))?;
            let cursor = cursors.entry(tx).or_insert(0);
            let step = t
                .steps
                .get(*cursor)
                .ok_or_else(|| format!("{tx} has no step left at position {cursor}"))?;
            steps.push(ScheduledStep::new(tx, *step));
            *cursor += 1;
        }
        Ok(Schedule { steps })
    }

    /// Reconstructs a schedule from sequence-stamped steps, e.g. the
    /// per-worker trace buffers of a concurrent runtime: each granted step
    /// carries the globally unique sequence number it was stamped with at
    /// grant time, and sorting by that stamp recovers the one total order
    /// the lock service actually executed.
    ///
    /// The stamps must be **distinct** and **contiguous** (the base is
    /// arbitrary — a recovered write-ahead-log tail starts at its
    /// checkpoint watermark, not at zero). Duplicates, gaps, and empty
    /// input each return the matching [`SequenceError`]; none of them
    /// panic. A duplicate means the recorder double-stamped; a gap means
    /// recorded history was lost in between; both would make the
    /// reconstruction a lie, so they are rejected rather than papered
    /// over.
    pub fn from_sequenced(
        mut entries: Vec<(u64, ScheduledStep)>,
    ) -> Result<Schedule, SequenceError> {
        if entries.is_empty() {
            return Err(SequenceError::Empty);
        }
        entries.sort_unstable_by_key(|&(seq, _)| seq);
        if let Some(w) = entries.windows(2).find(|w| w[0].0 >= w[1].0) {
            // sort_unstable guarantees w[0].0 <= w[1].0, so >= means ==.
            return Err(SequenceError::Duplicate(w[0].0));
        }
        if let Some(w) = entries.windows(2).find(|w| w[0].0 + 1 != w[1].0) {
            return Err(SequenceError::Gap {
                after: w[0].0,
                found: w[1].0,
            });
        }
        Ok(Schedule {
            steps: entries.into_iter().map(|(_, s)| s).collect(),
        })
    }

    /// The locks still held after the last step: `(entity, holder, mode)`
    /// per outstanding grant, in acquisition order. Empty iff every lock
    /// acquired in the schedule was released — the trace-level statement
    /// that a runtime's lock table reached quiescence. Assumes the
    /// schedule is legal (release steps are matched textually against
    /// grants, the way [`check_legal`](Schedule::check_legal)'s table
    /// does).
    pub fn locks_held_at_end(&self) -> Vec<(EntityId, TxId, LockMode)> {
        let mut held: Vec<(EntityId, TxId, LockMode)> = Vec::new();
        for s in &self.steps {
            match s.step.op {
                Operation::Lock(mode) => held.push((s.step.entity, s.tx, mode)),
                Operation::Unlock(mode) => {
                    if let Some(i) = held
                        .iter()
                        .position(|&(e, t, m)| e == s.step.entity && t == s.tx && m == mode)
                    {
                        held.remove(i);
                    }
                }
                Operation::Data(_) => {}
            }
        }
        held
    }

    /// The steps, in schedule order.
    pub fn steps(&self) -> &[ScheduledStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step.
    #[inline]
    pub fn push(&mut self, s: ScheduledStep) {
        self.steps.push(s);
    }

    /// Removes and returns the last step in O(1). The safety verifier's
    /// apply/undo DFS backtracks through this on every node.
    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledStep> {
        self.steps.pop()
    }

    /// The prefix consisting of the first `n` steps.
    pub fn prefix(&self, n: usize) -> Schedule {
        Schedule {
            steps: self.steps[..n.min(self.steps.len())].to_vec(),
        }
    }

    /// Whether `prefix` is a prefix of this schedule.
    pub fn has_prefix(&self, prefix: &Schedule) -> bool {
        self.steps.len() >= prefix.steps.len()
            && self.steps[..prefix.steps.len()] == prefix.steps[..]
    }

    /// The projection of the schedule onto one transaction's steps.
    pub fn projection(&self, tx: TxId) -> Vec<Step> {
        self.steps
            .iter()
            .filter(|s| s.tx == tx)
            .map(|s| s.step)
            .collect()
    }

    /// Positions (schedule indices) of one transaction's steps.
    pub fn positions_of(&self, tx: TxId) -> Vec<usize> {
        (0..self.steps.len())
            .filter(|&i| self.steps[i].tx == tx)
            .collect()
    }

    /// The transactions appearing in the schedule, in first-step order.
    pub fn participants(&self) -> Vec<TxId> {
        let mut seen = Vec::new();
        for s in &self.steps {
            if !seen.contains(&s.tx) {
                seen.push(s.tx);
            }
        }
        seen
    }

    /// Whether this is a *complete* schedule of `txs`: the projection onto
    /// every transaction equals that transaction's full step sequence, and
    /// no other transaction appears.
    pub fn is_complete_schedule_of(&self, txs: &[LockedTransaction]) -> bool {
        let ids: Vec<TxId> = txs.iter().map(|t| t.id).collect();
        if self.steps.iter().any(|s| !ids.contains(&s.tx)) {
            return false;
        }
        txs.iter().all(|t| self.projection(t.id) == t.steps)
    }

    /// Whether this is a *partial* schedule of `txs` (a prefix of some
    /// schedule of them): every projection is a prefix of the corresponding
    /// transaction, and no other transaction appears.
    pub fn is_partial_schedule_of(&self, txs: &[LockedTransaction]) -> bool {
        let by_id: HashMap<TxId, &LockedTransaction> = txs.iter().map(|t| (t.id, t)).collect();
        let mut cursors: HashMap<TxId, usize> = HashMap::new();
        for s in &self.steps {
            let Some(t) = by_id.get(&s.tx) else {
                return false;
            };
            let cursor = cursors.entry(s.tx).or_insert(0);
            if t.steps.get(*cursor) != Some(&s.step) {
                return false;
            }
            *cursor += 1;
        }
        true
    }

    /// Checks properness for initial structural state `g0`; on success
    /// returns the resulting structural state `S(G)`.
    pub fn check_proper(&self, g0: &StructuralState) -> Result<StructuralState, ProperViolation> {
        let mut g = g0.clone();
        for (pos, s) in self.steps.iter().enumerate() {
            g.apply_step(&s.step).map_err(|cause| ProperViolation {
                pos,
                step: *s,
                cause,
            })?;
        }
        Ok(g)
    }

    /// Whether the schedule is proper for `g0`.
    pub fn is_proper(&self, g0: &StructuralState) -> bool {
        self.check_proper(g0).is_ok()
    }

    /// Checks legality: no prefix in which two distinct transactions hold
    /// conflicting locks on the same entity.
    pub fn check_legal(&self) -> Result<(), LegalViolation> {
        let mut table = LockTable::new();
        for (pos, s) in self.steps.iter().enumerate() {
            match s.step.op {
                Operation::Lock(mode) => {
                    if let Some(holder) = table.conflicting_holder(s.tx, s.step.entity, mode) {
                        return Err(LegalViolation {
                            pos,
                            entity: s.step.entity,
                            requester: s.tx,
                            holder,
                        });
                    }
                    table.grant(s.tx, s.step.entity, mode);
                }
                Operation::Unlock(mode) => {
                    table.release(s.tx, s.step.entity, mode);
                }
                Operation::Data(_) => {}
            }
        }
        Ok(())
    }

    /// Whether the schedule is legal.
    pub fn is_legal(&self) -> bool {
        self.check_legal().is_ok()
    }

    /// Concatenates two schedules.
    pub fn concat(&self, suffix: &Schedule) -> Schedule {
        let mut steps = self.steps.clone();
        steps.extend_from_slice(&suffix.steps);
        Schedule { steps }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.steps {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<ScheduledStep> for Schedule {
    fn from_iter<I: IntoIterator<Item = ScheduledStep>>(iter: I) -> Self {
        Schedule {
            steps: iter.into_iter().collect(),
        }
    }
}

/// Packs per-transaction step counts into a `u128` memo key, 8 bits per
/// transaction — the position half of the safety verifiers' fast-path memo
/// keys (the edge half is an `EdgeSet` mask). `None` when the positions do
/// not fit: more than 16 transactions or a count above 255; callers fall
/// back to `Vec<u16>` keys.
///
/// Both the sequential and the parallel verifier maintain this key
/// incrementally during search; this helper is the from-scratch definition
/// they cross-check against (and use when seeding a search mid-schedule).
pub fn pack_positions(positions: &[u16]) -> Option<u128> {
    if positions.len() > 16 {
        return None;
    }
    let mut packed = 0u128;
    for (i, &p) in positions.iter().enumerate() {
        if p > u8::MAX as u16 {
            return None;
        }
        packed |= (p as u128) << (8 * i);
    }
    Some(packed)
}

/// A lock table tracking, per entity, the current holders and mode.
///
/// Invariant (when driven only through legal grants): an entity is held
/// either by any number of transactions in shared mode or by exactly one in
/// exclusive mode.
///
/// Storage is a dense vector indexed by entity id (entity ids come from
/// the `Universe` interner, so the table stays small): the verifier's DFS
/// probes the table on every candidate step, and a direct index beats a
/// hash lookup there. Equality ignores empty holder slots, so tables that
/// held locks on different entities at some point still compare equal once
/// those locks are gone; holder *order* within an entity is significant,
/// which is what lets [`undo_release`](LockTable::undo_release) restore a
/// table to exact equality.
#[derive(Clone, Eq, Debug, Default)]
pub struct LockTable {
    held: Vec<Vec<(TxId, LockMode)>>,
}

impl PartialEq for LockTable {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.held.len() <= other.held.len() {
            (&self.held, &other.held)
        } else {
            (&other.held, &self.held)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(Vec::is_empty)
    }
}

impl LockTable {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn slot(&self, entity: EntityId) -> &[(TxId, LockMode)] {
        self.held.get(entity.index()).map_or(&[], Vec::as_slice)
    }

    /// A transaction (≠ `tx`) holding a lock on `entity` incompatible with
    /// `mode`, if any. Granting while such a holder exists makes the
    /// schedule illegal.
    #[inline]
    pub fn conflicting_holder(&self, tx: TxId, entity: EntityId, mode: LockMode) -> Option<TxId> {
        self.slot(entity)
            .iter()
            .find(|(h, m)| *h != tx && !m.compatible_with(mode))
            .map(|(h, _)| *h)
    }

    /// Records a grant (does not re-check compatibility).
    #[inline]
    pub fn grant(&mut self, tx: TxId, entity: EntityId, mode: LockMode) {
        let i = entity.index();
        if i >= self.held.len() {
            self.held.resize_with(i + 1, Vec::new);
        }
        self.held[i].push((tx, mode));
    }

    /// Records a release of one `(tx, mode)` lock on `entity`.
    pub fn release(&mut self, tx: TxId, entity: EntityId, mode: LockMode) -> bool {
        self.release_tracked(tx, entity, mode).is_some()
    }

    /// Like [`release`](LockTable::release), but returns the holder-vector
    /// slot the lock was removed from (`swap_remove` semantics), which
    /// [`undo_release`](LockTable::undo_release) needs to restore the table
    /// bit-for-bit. `None` if `(tx, mode)` held no lock on `entity`.
    #[inline]
    pub fn release_tracked(&mut self, tx: TxId, entity: EntityId, mode: LockMode) -> Option<u32> {
        let holders = self.held.get_mut(entity.index())?;
        let i = holders.iter().position(|&(h, m)| h == tx && m == mode)?;
        holders.swap_remove(i);
        Some(i as u32)
    }

    /// Reverses the most recent [`grant`](LockTable::grant) of `(tx, mode)`
    /// on `entity`. Part of the verifier's apply/undo machinery; only valid
    /// under LIFO discipline (no intervening un-undone operation on
    /// `entity`), where the grant is necessarily the last holder.
    #[inline]
    pub fn undo_grant(&mut self, tx: TxId, entity: EntityId, mode: LockMode) {
        let holders = self
            .held
            .get_mut(entity.index())
            .expect("undo_grant: entity has holders");
        let last = holders.pop().expect("undo_grant: holder vector nonempty");
        debug_assert_eq!(last, (tx, mode), "undo_grant out of LIFO order");
    }

    /// Reverses a [`release_tracked`](LockTable::release_tracked) of
    /// `(tx, mode)` on `entity` that removed the holder from `slot`,
    /// restoring the exact holder-vector layout (so `LockTable` equality
    /// holds after undo). Only valid under LIFO discipline.
    #[inline]
    pub fn undo_release(&mut self, tx: TxId, entity: EntityId, mode: LockMode, slot: u32) {
        let i = entity.index();
        if i >= self.held.len() {
            self.held.resize_with(i + 1, Vec::new);
        }
        let holders = &mut self.held[i];
        let slot = slot as usize;
        debug_assert!(slot <= holders.len(), "undo_release: slot out of range");
        if slot == holders.len() {
            // The released holder was the last element: swap_remove popped.
            holders.push((tx, mode));
        } else {
            // swap_remove moved the then-last holder into `slot`; put it
            // back at the end and reinstate the released holder.
            let moved = holders[slot];
            holders.push(moved);
            holders[slot] = (tx, mode);
        }
    }

    /// The mode in which `tx` holds `entity`, if any.
    pub fn mode_of(&self, tx: TxId, entity: EntityId) -> Option<LockMode> {
        self.slot(entity)
            .iter()
            .find(|&&(h, _)| h == tx)
            .map(|&(_, m)| m)
    }

    /// All holders of `entity`.
    pub fn holders(&self, entity: EntityId) -> &[(TxId, LockMode)] {
        self.slot(entity)
    }

    /// Whether any lock is held on `entity`.
    pub fn is_locked(&self, entity: EntityId) -> bool {
        !self.slot(entity).is_empty()
    }

    /// All entities locked by `tx`.
    pub fn entities_held_by(&self, tx: TxId) -> Vec<EntityId> {
        // Slots are id-ordered, so the output is sorted by construction.
        self.held
            .iter()
            .enumerate()
            .filter(|(_, holders)| holders.iter().any(|&(h, _)| h == tx))
            .map(|(i, _)| EntityId(i as u32))
            .collect()
    }
}

/// Why a step could not be applied by the [`ScheduleSimulator`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepError {
    /// The step is undefined in the current structural state (would make
    /// the schedule improper).
    Undefined(UndefinedStep),
    /// The step acquires a lock conflicting with one held by `holder`
    /// (would make the schedule illegal).
    LockConflict {
        /// The transaction already holding an incompatible lock.
        holder: TxId,
    },
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::Undefined(u) => write!(f, "improper: {u}"),
            StepError::LockConflict { holder } => {
                write!(f, "illegal: conflicting lock held by {holder}")
            }
        }
    }
}

impl std::error::Error for StepError {}

/// A compact record of one applied step, sufficient to reverse it exactly.
///
/// Returned by [`ScheduleSimulator::apply_undoable`] and consumed by
/// [`ScheduleSimulator::undo`]. Tokens must be undone in **reverse apply
/// order** (LIFO): the verifier's DFS applies a step on the way down and
/// undoes it on the way back up, so at undo time the simulator is in
/// exactly the state the apply left it in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UndoToken {
    tx: TxId,
    step: Step,
    /// For unlock steps: the holder-vector slot the released lock was
    /// `swap_remove`d from, or [`UndoToken::NO_SLOT`] if the unlock matched
    /// no held lock (and therefore changed nothing).
    slot: u32,
}

impl UndoToken {
    const NO_SLOT: u32 = u32::MAX;

    /// The transaction whose step this token reverses.
    pub fn tx(&self) -> TxId {
        self.tx
    }

    /// The step this token reverses.
    pub fn step(&self) -> Step {
        self.step
    }
}

/// An incremental cursor over schedule execution: maintains the structural
/// state and lock table, and accepts one step at a time, rejecting steps
/// that would make the schedule so far improper or illegal.
///
/// This is the machinery the safety verifier drives: instead of re-checking
/// a whole candidate schedule after each extension (O(n) per step), the
/// simulator validates each extension in O(1)–O(holders). Steps applied
/// through [`apply_undoable`](ScheduleSimulator::apply_undoable) can be
/// reversed exactly with [`undo`](ScheduleSimulator::undo), so a
/// backtracking search mutates **one** simulator in place instead of
/// cloning it at every branch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduleSimulator {
    state: StructuralState,
    table: LockTable,
    applied: usize,
}

impl ScheduleSimulator {
    /// A simulator starting from structural state `g0`.
    pub fn new(g0: StructuralState) -> Self {
        ScheduleSimulator {
            state: g0,
            table: LockTable::new(),
            applied: 0,
        }
    }

    /// Whether `tx` could take `step` next without violating properness or
    /// legality.
    #[inline]
    pub fn check(&self, tx: TxId, step: &Step) -> Result<(), StepError> {
        self.state
            .step_defined(step)
            .map_err(StepError::Undefined)?;
        if let Operation::Lock(mode) = step.op {
            if let Some(holder) = self.table.conflicting_holder(tx, step.entity, mode) {
                return Err(StepError::LockConflict { holder });
            }
        }
        Ok(())
    }

    /// Applies `step` for `tx`, or reports why it cannot be applied.
    pub fn apply(&mut self, tx: TxId, step: &Step) -> Result<(), StepError> {
        self.apply_undoable(tx, step).map(|_| ())
    }

    /// Applies `step` for `tx` and returns a token that
    /// [`undo`](ScheduleSimulator::undo) can use to reverse it exactly.
    #[inline]
    pub fn apply_undoable(&mut self, tx: TxId, step: &Step) -> Result<UndoToken, StepError> {
        self.check(tx, step)?;
        let mut slot = UndoToken::NO_SLOT;
        match step.op {
            Operation::Lock(mode) => self.table.grant(tx, step.entity, mode),
            Operation::Unlock(mode) => {
                if let Some(s) = self.table.release_tracked(tx, step.entity, mode) {
                    slot = s;
                }
            }
            Operation::Data(_) => {
                self.state
                    .apply_step(step)
                    .expect("checked by step_defined above");
            }
        }
        self.applied += 1;
        Ok(UndoToken {
            tx,
            step: *step,
            slot,
        })
    }

    /// Reverses the step recorded by `token`, restoring the simulator to
    /// exactly the state before the corresponding
    /// [`apply_undoable`](ScheduleSimulator::apply_undoable) — including
    /// `Eq`-visible representation details of the lock table.
    ///
    /// Tokens must be undone in reverse apply order (LIFO). Undoing in any
    /// other order is a logic error; debug builds assert on the patterns it
    /// would produce.
    #[inline]
    pub fn undo(&mut self, token: UndoToken) {
        match token.step.op {
            Operation::Lock(mode) => {
                self.table.undo_grant(token.tx, token.step.entity, mode);
            }
            Operation::Unlock(mode) => {
                if token.slot != UndoToken::NO_SLOT {
                    self.table
                        .undo_release(token.tx, token.step.entity, mode, token.slot);
                }
            }
            Operation::Data(_) => {
                self.state.unapply_step(&token.step);
            }
        }
        self.applied -= 1;
    }

    /// Applies every step of `schedule`, reporting the first failure.
    pub fn apply_schedule(&mut self, schedule: &Schedule) -> Result<(), (usize, StepError)> {
        for (i, s) in schedule.steps().iter().enumerate() {
            self.apply(s.tx, &s.step).map_err(|e| (i, e))?;
        }
        Ok(())
    }

    /// The current structural state.
    pub fn structural_state(&self) -> &StructuralState {
        &self.state
    }

    /// The current lock table.
    pub fn lock_table(&self) -> &LockTable {
        &self.table
    }

    /// Number of steps applied so far.
    pub fn applied(&self) -> usize {
        self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    /// The paper's Section 2 transactions:
    /// `T1 = (I a)(I b)(W c)(I d)`, `T2 = (R a)(D b)(I c)` — *without* lock
    /// steps, since properness is independent of locks.
    fn section2_txs() -> Vec<LockedTransaction> {
        let (a, b, c, d) = (e(0), e(1), e(2), e(3));
        vec![
            LockedTransaction::new(
                t(1),
                vec![
                    Step::insert(a),
                    Step::insert(b),
                    Step::write(c),
                    Step::insert(d),
                ],
            ),
            LockedTransaction::new(t(2), vec![Step::read(a), Step::delete(b), Step::insert(c)]),
        ]
    }

    #[test]
    fn from_sequenced_recovers_grant_order() {
        // Buffers arrive per-worker (out of global order); the stamps
        // recover the interleaving.
        let entries = vec![
            (2, ScheduledStep::new(t(1), Step::write(e(0)))),
            (0, ScheduledStep::new(t(1), Step::lock_exclusive(e(0)))),
            (3, ScheduledStep::new(t(2), Step::lock_exclusive(e(1)))),
            (1, ScheduledStep::new(t(1), Step::read(e(0)))),
        ];
        let s = Schedule::from_sequenced(entries).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.steps()[0].step, Step::lock_exclusive(e(0)));
        assert_eq!(s.steps()[3].tx, t(2));
    }

    #[test]
    fn from_sequenced_rejects_duplicate_stamps() {
        // Duplicate stamps are a recorder bug, rejected loudly.
        let dup = vec![
            (7, ScheduledStep::new(t(1), Step::read(e(0)))),
            (7, ScheduledStep::new(t(2), Step::read(e(0)))),
        ];
        assert_eq!(
            Schedule::from_sequenced(dup),
            Err(SequenceError::Duplicate(7))
        );
    }

    #[test]
    fn from_sequenced_rejects_gapped_stamps() {
        // A hole in the stamp sequence means recorded history was lost
        // (e.g. a torn log tail) — the reconstruction must refuse, not
        // silently splice the two sides together.
        let gapped = vec![
            (3, ScheduledStep::new(t(1), Step::read(e(0)))),
            (4, ScheduledStep::new(t(1), Step::write(e(0)))),
            (6, ScheduledStep::new(t(2), Step::read(e(0)))),
        ];
        assert_eq!(
            Schedule::from_sequenced(gapped),
            Err(SequenceError::Gap { after: 4, found: 6 })
        );
        // The base is arbitrary: a contiguous run starting past zero (a
        // recovered log tail) is fine.
        let tail = vec![
            (41, ScheduledStep::new(t(1), Step::read(e(0)))),
            (40, ScheduledStep::new(t(1), Step::lock_shared(e(0)))),
            (42, ScheduledStep::new(t(1), Step::unlock_shared(e(0)))),
        ];
        assert_eq!(Schedule::from_sequenced(tail).unwrap().len(), 3);
    }

    #[test]
    fn from_sequenced_rejects_empty_input() {
        assert_eq!(
            Schedule::from_sequenced(Vec::new()),
            Err(SequenceError::Empty)
        );
    }

    #[test]
    fn locks_held_at_end_tracks_outstanding_grants() {
        let mut s = Schedule::empty();
        s.push(ScheduledStep::new(t(1), Step::lock_exclusive(e(0))));
        s.push(ScheduledStep::new(t(2), Step::lock_shared(e(1))));
        s.push(ScheduledStep::new(t(1), Step::lock_shared(e(1))));
        assert_eq!(s.locks_held_at_end().len(), 3);
        s.push(ScheduledStep::new(t(1), Step::unlock_exclusive(e(0))));
        s.push(ScheduledStep::new(t(1), Step::unlock_shared(e(1))));
        assert_eq!(
            s.locks_held_at_end(),
            vec![(e(1), t(2), LockMode::Shared)],
            "only T2's shared lock remains"
        );
        s.push(ScheduledStep::new(t(2), Step::unlock_shared(e(1))));
        assert!(s.locks_held_at_end().is_empty(), "quiescent");
    }

    #[test]
    fn paper_proper_interleaving_is_proper() {
        // T1: (I a) (I b)             (W c) (I d)
        // T2:             (R a) (D b)       (I c)   — wait, the paper's
        // proper interleaving runs (I c) *before* (W c):
        // (I a)(I b)(R a)(D b)(I c)(W c)(I d).
        let txs = section2_txs();
        let s = Schedule::interleave(&txs, &[t(1), t(1), t(2), t(2), t(2), t(1), t(1)]).unwrap();
        assert!(s.is_proper(&StructuralState::empty()));
        assert!(s.is_complete_schedule_of(&txs));
    }

    #[test]
    fn paper_improper_interleaving_is_improper() {
        // (I a)(R a)(D b)... — (D b) before (I b)? No: the paper's improper
        // interleaving is (I a)(I b)(W c)... with (W c) before (I c).
        let txs = section2_txs();
        let s = Schedule::interleave(&txs, &[t(1), t(1), t(1), t(2), t(2), t(2), t(1)]).unwrap();
        let err = s.check_proper(&StructuralState::empty()).unwrap_err();
        assert_eq!(err.pos, 2); // (W c) with c absent
        assert_eq!(err.cause, UndefinedStep::EntityAbsent(e(2)));
    }

    #[test]
    fn neither_section2_transaction_is_proper_alone() {
        let txs = section2_txs();
        let t1_alone = Schedule::serial([&txs[0]]);
        let t2_alone = Schedule::serial([&txs[1]]);
        assert!(!t1_alone.is_proper(&StructuralState::empty()));
        assert!(!t2_alone.is_proper(&StructuralState::empty()));
    }

    #[test]
    fn interleave_rejects_unknown_and_exhausted_transactions() {
        let txs = section2_txs();
        assert!(Schedule::interleave(&txs, &[t(9)]).is_err());
        assert!(Schedule::interleave(&txs, &[t(2), t(2), t(2), t(2)]).is_err());
    }

    #[test]
    fn legality_rejects_conflicting_concurrent_locks() {
        let s = Schedule::from_steps(vec![
            ScheduledStep::new(t(1), Step::lock_exclusive(e(0))),
            ScheduledStep::new(t(2), Step::lock_shared(e(0))),
        ]);
        let err = s.check_legal().unwrap_err();
        assert_eq!(err.pos, 1);
        assert_eq!(err.requester, t(2));
        assert_eq!(err.holder, t(1));
    }

    #[test]
    fn legality_allows_shared_coexistence_and_handover() {
        let s = Schedule::from_steps(vec![
            ScheduledStep::new(t(1), Step::lock_shared(e(0))),
            ScheduledStep::new(t(2), Step::lock_shared(e(0))),
            ScheduledStep::new(t(1), Step::unlock_shared(e(0))),
            ScheduledStep::new(t(2), Step::unlock_shared(e(0))),
            ScheduledStep::new(t(3), Step::lock_exclusive(e(0))),
            ScheduledStep::new(t(3), Step::unlock_exclusive(e(0))),
        ]);
        assert!(s.is_legal());
    }

    #[test]
    fn projection_and_partial_schedule_checks() {
        let txs = section2_txs();
        let s = Schedule::interleave(&txs, &[t(1), t(1), t(2)]).unwrap();
        assert_eq!(
            s.projection(t(1)),
            vec![Step::insert(e(0)), Step::insert(e(1))]
        );
        assert!(s.is_partial_schedule_of(&txs));
        assert!(!s.is_complete_schedule_of(&txs));
        // Reordering T2's steps is not a partial schedule.
        let bad = Schedule::from_steps(vec![ScheduledStep::new(
            t(2),
            Step::delete(e(1)), // T2's first step is (R a), not (D b)
        )]);
        assert!(!bad.is_partial_schedule_of(&txs));
    }

    #[test]
    fn participants_in_first_step_order() {
        let txs = section2_txs();
        let s = Schedule::interleave(&txs, &[t(2), t(1), t(2)]).unwrap();
        assert_eq!(s.participants(), vec![t(2), t(1)]);
    }

    #[test]
    fn simulator_agrees_with_one_shot_checks() {
        let txs = section2_txs();
        let proper =
            Schedule::interleave(&txs, &[t(1), t(1), t(2), t(2), t(2), t(1), t(1)]).unwrap();
        let mut sim = ScheduleSimulator::new(StructuralState::empty());
        assert!(sim.apply_schedule(&proper).is_ok());
        assert_eq!(sim.applied(), 7);

        let improper = Schedule::interleave(&txs, &[t(1), t(1), t(1)]).unwrap();
        let mut sim = ScheduleSimulator::new(StructuralState::empty());
        let (pos, err) = sim.apply_schedule(&improper).unwrap_err();
        assert_eq!(pos, 2);
        assert!(matches!(err, StepError::Undefined(_)));
    }

    #[test]
    fn simulator_rejects_illegal_lock() {
        let mut sim = ScheduleSimulator::new(StructuralState::empty());
        sim.apply(t(1), &Step::lock_exclusive(e(0))).unwrap();
        let err = sim.apply(t(2), &Step::lock_exclusive(e(0))).unwrap_err();
        assert_eq!(err, StepError::LockConflict { holder: t(1) });
        // Relock by the same transaction is not a *legality* issue (it is a
        // transaction-discipline issue caught by LockedTransaction::validate).
        assert!(sim.check(t(1), &Step::lock_exclusive(e(0))).is_ok());
    }

    #[test]
    fn lock_table_bookkeeping() {
        let mut table = LockTable::new();
        table.grant(t(1), e(0), LockMode::Shared);
        table.grant(t(2), e(0), LockMode::Shared);
        assert_eq!(table.mode_of(t(1), e(0)), Some(LockMode::Shared));
        assert_eq!(
            table.conflicting_holder(t(3), e(0), LockMode::Exclusive),
            Some(t(1))
        );
        assert_eq!(table.conflicting_holder(t(3), e(0), LockMode::Shared), None);
        assert!(table.release(t(1), e(0), LockMode::Shared));
        assert!(!table.release(t(1), e(0), LockMode::Shared));
        assert_eq!(table.entities_held_by(t(2)), vec![e(0)]);
        assert!(table.is_locked(e(0)));
        assert!(table.release(t(2), e(0), LockMode::Shared));
        assert!(!table.is_locked(e(0)));
    }

    #[test]
    fn push_pop_round_trip() {
        let mut s = Schedule::empty();
        assert_eq!(s.pop(), None);
        let a = ScheduledStep::new(t(1), Step::insert(e(0)));
        let b = ScheduledStep::new(t(2), Step::read(e(0)));
        s.push(a);
        s.push(b);
        assert_eq!(s.pop(), Some(b));
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop(), Some(a));
        assert!(s.is_empty());
    }

    #[test]
    fn apply_undo_restores_simulator_exactly() {
        // Mixed locks, shared coexistence, structural ops — applied then
        // undone in reverse; the simulator must compare equal at every
        // unwind depth, not just at the end.
        let steps = [
            (t(1), Step::lock_exclusive(e(0))),
            (t(1), Step::insert(e(0))),
            (t(1), Step::unlock_exclusive(e(0))),
            (t(2), Step::lock_shared(e(0))),
            (t(3), Step::lock_shared(e(0))),
            (t(2), Step::read(e(0))),
            (t(2), Step::unlock_shared(e(0))),
            (t(3), Step::unlock_shared(e(0))),
            (t(3), Step::lock_exclusive(e(0))),
            (t(3), Step::delete(e(0))),
            (t(3), Step::unlock_exclusive(e(0))),
        ];
        let mut sim = ScheduleSimulator::new(StructuralState::empty());
        let mut snapshots = vec![sim.clone()];
        let mut tokens = Vec::new();
        for (tx, step) in steps {
            tokens.push(sim.apply_undoable(tx, &step).unwrap());
            snapshots.push(sim.clone());
        }
        while let Some(token) = tokens.pop() {
            snapshots.pop();
            sim.undo(token);
            assert_eq!(
                &sim,
                snapshots.last().unwrap(),
                "undo of {token:?} diverged"
            );
        }
        assert_eq!(sim.applied(), 0);
    }

    #[test]
    fn undo_release_restores_holder_order_after_swap_remove() {
        // Three shared holders; releasing the *first* swap_removes, moving
        // the last holder into slot 0. Undo must restore the original
        // layout so LockTable equality (order-sensitive Vec) holds.
        let mut sim = ScheduleSimulator::new(StructuralState::empty());
        for i in 1..=3 {
            sim.apply(t(i), &Step::lock_shared(e(0))).unwrap();
        }
        let before = sim.clone();
        let token = sim
            .apply_undoable(t(1), &Step::unlock_shared(e(0)))
            .unwrap();
        assert_ne!(sim, before);
        sim.undo(token);
        assert_eq!(sim, before);
        assert_eq!(
            sim.lock_table().holders(e(0)),
            &[
                (t(1), LockMode::Shared),
                (t(2), LockMode::Shared),
                (t(3), LockMode::Shared)
            ]
        );
    }

    #[test]
    fn undo_of_unmatched_unlock_is_a_no_op() {
        // Unlocking a never-held lock applies as a no-op (legality treats
        // it as vacuous); its undo must also be a no-op.
        let mut sim = ScheduleSimulator::new(StructuralState::empty());
        let before = sim.clone();
        let token = sim
            .apply_undoable(t(1), &Step::unlock_exclusive(e(0)))
            .unwrap();
        assert_eq!(sim.applied(), 1);
        sim.undo(token);
        assert_eq!(sim, before);
    }

    #[test]
    fn prefix_and_concat_round_trip() {
        let txs = section2_txs();
        let s = Schedule::interleave(&txs, &[t(1), t(1), t(2), t(2), t(2), t(1), t(1)]).unwrap();
        let p = s.prefix(3);
        assert_eq!(p.len(), 3);
        assert!(s.has_prefix(&p));
        let suffix = Schedule::from_steps(s.steps()[3..].to_vec());
        assert_eq!(p.concat(&suffix), s);
    }
}
