//! # slp-core — the model of *Safe Locking Policies for Dynamic Databases*
//!
//! This crate implements the formal model of Chaudhri & Hadzilacos
//! (PODS 1995 / JCSS 1998): dynamic databases whose *structural state*
//! changes under `INSERT`/`DELETE`, transactions and locked transactions
//! over the operations `{R, W, I, D, LS, LX, US, UX}`, schedules with the
//! **properness** and **legality** predicates, conflict serializability via
//! the serializability graph `D(S)`, the schedule transformations of
//! Lemmas 1–2, and the canonical-schedule certificates of **Theorem 1**.
//!
//! ## Layout
//!
//! | module | contents |
//! |--------|----------|
//! | [`entity`] | [`EntityId`], [`Universe`] interner |
//! | [`ops`] | [`DataOp`], [`LockMode`], [`Operation`] |
//! | [`step`] | [`Step`] = (operation, entity) |
//! | [`txn`] | [`Transaction`], [`LockedTransaction`], well-formedness |
//! | [`state`] | [`StructuralState`], [`ValueState`], step definedness |
//! | [`schedule`] | [`Schedule`], properness/legality, [`ScheduleSimulator`] |
//! | [`sgraph`] | [`SerializationGraph`] `D(S)` with witnesses |
//! | [`serializability`] | conflict-serializability tests and witnesses |
//! | [`interaction`] | interaction multigraph + chordless cycles (Fig. 2) |
//! | [`transform`] | Lemma 1 [`transpose`], Lemma 2 [`move_to_back`] |
//! | [`canonical`] | [`CanonicalWitness`] — Theorem 1 certificates |
//! | [`system`] | [`TransactionSystem`], [`SystemBuilder`] |
//! | [`display`] | paper-style schedule rendering |
//!
//! ## Quick start
//!
//! ```
//! use slp_core::{Schedule, StructuralState, SystemBuilder, TxId};
//! use slp_core::serializability::is_serializable;
//!
//! // The paper's Section 2 example: T1 and T2 on an initially empty DB.
//! let mut b = SystemBuilder::new();
//! b.tx(1).insert("a").insert("b").write("c").insert("d").finish();
//! b.tx(2).read("a").delete("b").insert("c").finish();
//! let system = b.build();
//!
//! // The proper interleaving: (I a)(I b)(R a)(D b)(I c)(W c)(I d).
//! let order = [TxId(1), TxId(1), TxId(2), TxId(2), TxId(2), TxId(1), TxId(1)];
//! let s = Schedule::interleave(system.transactions(), &order).unwrap();
//! assert!(s.is_proper(&StructuralState::empty()));
//!
//! // Proper does not mean serializable: T1 precedes T2 on a and b, but T2
//! // precedes T1 on c, so D(S) has a cycle. (These transactions carry no
//! // locks — locking policies exist precisely to exclude such schedules.)
//! assert!(!is_serializable(&s));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod display;
pub mod entity;
pub mod explain;
pub mod interaction;
pub mod ops;
pub mod schedule;
pub mod serializability;
pub mod sgraph;
pub mod state;
pub mod step;
pub mod system;
pub mod transform;
pub mod txn;
pub mod wire;

pub use canonical::{CanonicalViolation, CanonicalWitness};
pub use entity::{EntityId, Universe};
pub use explain::{explain, explain_nonserializable, Explanation};
pub use interaction::InteractionGraph;
pub use ops::{DataOp, LockMode, Operation};
pub use schedule::{
    pack_positions, Access, LegalViolation, LockTable, ProperViolation, Schedule,
    ScheduleSimulator, ScheduledStep, SequenceError, StepError, UndoToken,
};
pub use serializability::{
    are_conflict_equivalent, equivalent_serial_schedule, is_serializable,
    is_serializable_with_aborts,
};
pub use sgraph::{
    mask_has_cycle, CertStats, CertViolation, ConflictEdge, ConflictIndex, EdgeSet,
    IncrementalCertifier, SerializationGraph, VersionedRead,
};
pub use state::{StructuralState, UndefinedStep, ValueState};
pub use step::Step;
pub use system::{SystemBuilder, TransactionSystem, TxBuilder};
pub use transform::{move_to_back, transpose, TransposeError};
pub use txn::{LockedTransaction, Transaction, TxId, TxnViolation};
