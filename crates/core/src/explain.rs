//! Human-readable explanations of (non)serializability verdicts.
//!
//! A counterexample schedule is only useful if a person can see *why* it
//! is nonserializable. [`explain_nonserializable`] names the conflict
//! cycle in `D(S)` edge by edge, resolving entities through the universe
//! and quoting the witnessing steps — the textual analogue of the arrows
//! the paper draws in its figures.

use crate::display::render_step;
use crate::entity::Universe;
use crate::schedule::Schedule;
use crate::serializability::serialization_order;
use crate::sgraph::SerializationGraph;
use std::fmt::Write;

/// An explanation of why a schedule is or is not serializable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Explanation {
    /// The schedule is serializable; an equivalent serial order is given.
    Serializable {
        /// One equivalent serial order of the participants.
        order: Vec<crate::txn::TxId>,
    },
    /// The schedule is nonserializable; the cycle is spelled out.
    Nonserializable {
        /// The cycle through `D(S)` (first node repeated at the end).
        cycle: Vec<crate::txn::TxId>,
        /// One line per cycle edge, quoting the witnessing steps.
        reasons: Vec<String>,
    },
}

impl Explanation {
    /// Whether the schedule was serializable.
    pub fn is_serializable(&self) -> bool {
        matches!(self, Explanation::Serializable { .. })
    }

    /// Renders the explanation as display text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self {
            Explanation::Serializable { order } => {
                write!(out, "serializable; equivalent serial order:").unwrap();
                for t in order {
                    write!(out, " {t}").unwrap();
                }
            }
            Explanation::Nonserializable { cycle, reasons } => {
                write!(out, "NOT serializable; D(S) has the cycle").unwrap();
                for (i, t) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(out, " ->").unwrap();
                    }
                    write!(out, " {t}").unwrap();
                }
                for r in reasons {
                    write!(out, "\n  {r}").unwrap();
                }
            }
        }
        out
    }
}

/// Explains the serializability verdict of `schedule`.
pub fn explain(schedule: &Schedule, universe: &Universe) -> Explanation {
    let graph = SerializationGraph::of(schedule);
    match graph.find_cycle() {
        None => Explanation::Serializable {
            order: serialization_order(schedule).expect("acyclic graphs sort"),
        },
        Some(cycle) => {
            let mut reasons = Vec::new();
            for pair in cycle.windows(2) {
                let (from, to) = (pair[0], pair[1]);
                let (i, j) = graph.witness(from, to).expect("cycle edge exists");
                let si = &schedule.steps()[i];
                let sj = &schedule.steps()[j];
                reasons.push(format!(
                    "{from} -> {to}: {from}'s {} (step {i}) precedes {to}'s conflicting {} (step {j})",
                    render_step(&si.step, universe),
                    render_step(&sj.step, universe),
                ));
            }
            Explanation::Nonserializable { cycle, reasons }
        }
    }
}

/// Shorthand: the rendered explanation text.
pub fn explain_nonserializable(schedule: &Schedule, universe: &Universe) -> String {
    explain(schedule, universe).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduledStep;
    use crate::step::Step;
    use crate::system::SystemBuilder;
    use crate::txn::TxId;

    fn crossed_schedule() -> (Schedule, Universe) {
        let mut b = SystemBuilder::new();
        let x = b.exists("x");
        let y = b.exists("y");
        let sys = b.build();
        let s = Schedule::from_steps(vec![
            ScheduledStep::new(TxId(1), Step::write(x)),
            ScheduledStep::new(TxId(2), Step::write(x)),
            ScheduledStep::new(TxId(2), Step::write(y)),
            ScheduledStep::new(TxId(1), Step::write(y)),
        ]);
        (s, sys.universe().clone())
    }

    #[test]
    fn nonserializable_explanation_names_the_cycle() {
        let (s, u) = crossed_schedule();
        let e = explain(&s, &u);
        assert!(!e.is_serializable());
        let text = e.render();
        assert!(text.contains("NOT serializable"));
        assert!(text.contains("T1 -> T2"));
        assert!(text.contains("T2 -> T1"));
        assert!(text.contains("(W x)"));
        assert!(text.contains("(W y)"));
    }

    #[test]
    fn serializable_explanation_gives_an_order() {
        let mut b = SystemBuilder::new();
        let x = b.exists("x");
        let sys = b.build();
        let s = Schedule::from_steps(vec![
            ScheduledStep::new(TxId(1), Step::write(x)),
            ScheduledStep::new(TxId(2), Step::write(x)),
        ]);
        let e = explain(&s, sys.universe());
        assert!(e.is_serializable());
        assert!(e.render().contains("T1 T2"));
    }

    #[test]
    fn cycle_reasons_reference_real_positions() {
        let (s, u) = crossed_schedule();
        if let Explanation::Nonserializable { reasons, cycle } = explain(&s, &u) {
            assert_eq!(cycle.len(), 3); // T -> T' -> T
            assert_eq!(reasons.len(), 2);
            for r in reasons {
                assert!(r.contains("step"));
            }
        } else {
            panic!("expected nonserializable");
        }
    }
}
