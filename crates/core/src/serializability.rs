//! Conflict serializability (Section 2).
//!
//! A schedule `S` is serializable if there is a serial schedule `S'` of the
//! same locked transactions such that all conflicting steps appear in the
//! same order in `S` as in `S'`; equivalently, `D(S)` is acyclic \[EGLT76\].

use crate::schedule::{Schedule, ScheduledStep};
use crate::sgraph::SerializationGraph;
use crate::txn::TxId;
use std::collections::HashMap;

/// Whether `schedule` is conflict serializable.
///
/// Snapshot reads in the schedule, if any, are judged against the version
/// they observed assuming every writer committed; traces from a runtime
/// that aborts transactions should use [`is_serializable_with_aborts`].
pub fn is_serializable(schedule: &Schedule) -> bool {
    SerializationGraph::of(schedule).is_acyclic()
}

/// [`is_serializable`] for a mixed snapshot-read + locked-write trace from
/// an aborting runtime: snapshot reads take no edge against `aborted`
/// writers (their versions are invisible phantoms — see
/// [`SerializationGraph::of_with_aborts`]).
pub fn is_serializable_with_aborts(schedule: &Schedule, aborted: &[TxId]) -> bool {
    SerializationGraph::of_with_aborts(schedule, aborted).is_acyclic()
}

/// An equivalent serial order of the schedule's transactions, if one exists.
pub fn serialization_order(schedule: &Schedule) -> Option<Vec<TxId>> {
    SerializationGraph::of(schedule).topological_sort()
}

/// The serial schedule witnessing serializability: the transactions'
/// projections executed back-to-back in an equivalent serial order.
/// Returns `None` if the schedule is not serializable.
pub fn equivalent_serial_schedule(schedule: &Schedule) -> Option<Schedule> {
    let order = serialization_order(schedule)?;
    let mut steps = Vec::with_capacity(schedule.len());
    for tx in order {
        steps.extend(
            schedule
                .projection(tx)
                .into_iter()
                .map(|s| ScheduledStep::new(tx, s)),
        );
    }
    Some(Schedule::from_steps(steps))
}

/// Whether two schedules are conflict equivalent: they are schedules of the
/// same transaction steps (identical per-transaction projections) and order
/// every pair of conflicting steps identically.
pub fn are_conflict_equivalent(a: &Schedule, b: &Schedule) -> bool {
    let mut parts_a = a.participants();
    let mut parts_b = b.participants();
    parts_a.sort_unstable();
    parts_b.sort_unstable();
    if parts_a != parts_b {
        return false;
    }
    for &tx in &parts_a {
        if a.projection(tx) != b.projection(tx) {
            return false;
        }
    }
    // Both schedules contain the same steps; compare the order of every
    // conflicting pair. Identify a step by (tx, occurrence-index-within-tx)
    // so repeated identical steps are distinguished.
    let key_positions = |s: &Schedule| -> HashMap<(TxId, usize), usize> {
        let mut counts: HashMap<TxId, usize> = HashMap::new();
        let mut map = HashMap::new();
        for (pos, step) in s.steps().iter().enumerate() {
            let k = counts.entry(step.tx).or_insert(0);
            map.insert((step.tx, *k), pos);
            *k += 1;
        }
        map
    };
    let pos_b = key_positions(b);
    let mut counts: HashMap<TxId, usize> = HashMap::new();
    let steps_a = a.steps();
    let mut keys_a = Vec::with_capacity(steps_a.len());
    for step in steps_a {
        let k = counts.entry(step.tx).or_insert(0);
        keys_a.push((step.tx, *k));
        *k += 1;
    }
    for i in 0..steps_a.len() {
        for j in (i + 1)..steps_a.len() {
            let (si, sj) = (&steps_a[i], &steps_a[j]);
            if si.tx != sj.tx && si.step.conflicts_with(&sj.step) {
                let (bi, bj) = (pos_b[&keys_a[i]], pos_b[&keys_a[j]]);
                if bi > bj {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;
    use crate::step::Step;
    use crate::txn::{LockedTransaction, TxId};

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn two_writers() -> Vec<LockedTransaction> {
        vec![
            LockedTransaction::new(t(1), vec![Step::write(e(0)), Step::write(e(1))]),
            LockedTransaction::new(t(2), vec![Step::write(e(0)), Step::write(e(1))]),
        ]
    }

    #[test]
    fn serial_schedules_are_serializable() {
        let txs = two_writers();
        let s = Schedule::serial(&txs);
        assert!(is_serializable(&s));
        assert_eq!(serialization_order(&s), Some(vec![t(1), t(2)]));
    }

    #[test]
    fn crossed_writes_are_not_serializable() {
        let txs = two_writers();
        let s = Schedule::interleave(&txs, &[t(1), t(2), t(2), t(1)]).unwrap();
        assert!(!is_serializable(&s));
        assert_eq!(equivalent_serial_schedule(&s), None);
    }

    #[test]
    fn interleaved_but_serializable() {
        let txs = two_writers();
        // T1 fully precedes T2 on every entity even though steps interleave.
        let s = Schedule::interleave(&txs, &[t(1), t(1), t(2), t(2)]).unwrap();
        assert!(is_serializable(&s));
        let serial = equivalent_serial_schedule(&s).unwrap();
        assert!(are_conflict_equivalent(&s, &serial));
        assert_eq!(serial, Schedule::serial(&txs));
    }

    #[test]
    fn equivalent_serial_schedule_is_conflict_equivalent() {
        let txs = vec![
            LockedTransaction::new(t(1), vec![Step::write(e(0)), Step::read(e(1))]),
            LockedTransaction::new(t(2), vec![Step::write(e(1)), Step::read(e(2))]),
            LockedTransaction::new(t(3), vec![Step::write(e(2))]),
        ];
        let s = Schedule::interleave(&txs, &[t(3), t(2), t(1), t(2), t(1), t(3)]);
        // t3 has only one step; that order is invalid (t3 twice), fix below.
        assert!(s.is_err());
        let s = Schedule::interleave(&txs, &[t(2), t(1), t(2), t(3), t(1)]).unwrap();
        if let Some(serial) = equivalent_serial_schedule(&s) {
            assert!(are_conflict_equivalent(&s, &serial));
        }
    }

    #[test]
    fn conflict_equivalence_distinguishes_reordered_conflicts() {
        let txs = two_writers();
        let s1 = Schedule::interleave(&txs, &[t(1), t(1), t(2), t(2)]).unwrap();
        let s2 = Schedule::interleave(&txs, &[t(2), t(2), t(1), t(1)]).unwrap();
        assert!(!are_conflict_equivalent(&s1, &s2));
        assert!(are_conflict_equivalent(&s1, &s1));
    }

    #[test]
    fn conflict_equivalence_requires_same_transactions() {
        let txs = two_writers();
        let s1 = Schedule::serial(&txs);
        let s2 = Schedule::serial(&txs[..1]);
        assert!(!are_conflict_equivalent(&s1, &s2));
    }

    #[test]
    fn nonconflicting_reorder_is_equivalent() {
        let txs = vec![
            LockedTransaction::new(t(1), vec![Step::read(e(0))]),
            LockedTransaction::new(t(2), vec![Step::read(e(0))]),
        ];
        let s1 = Schedule::interleave(&txs, &[t(1), t(2)]).unwrap();
        let s2 = Schedule::interleave(&txs, &[t(2), t(1)]).unwrap();
        assert!(are_conflict_equivalent(&s1, &s2));
    }
}
