//! Paper-style rendering of schedules.
//!
//! The paper prints a schedule as a table: one row per transaction, one
//! column per schedule position, each cell holding that transaction's step
//! if it owns the position:
//!
//! ```text
//! T1: (I a) (I b)             (W c) (I d)
//! T2:             (R a) (D b)
//! ```

use crate::entity::Universe;
use crate::schedule::Schedule;
use crate::step::Step;
use crate::txn::TxId;

/// Renders a step with entity names resolved through the universe, e.g.
/// `(LX a)`.
pub fn render_step(step: &Step, universe: &Universe) -> String {
    format!("({} {})", step.op, universe.name(step.entity))
}

/// Renders a schedule in the paper's row-per-transaction layout.
///
/// Rows appear in first-step order; columns are schedule positions.
pub fn render_schedule(schedule: &Schedule, universe: &Universe) -> String {
    render_schedule_rows(schedule, universe, &schedule.participants())
}

/// Renders a schedule with an explicit row order (transactions with no
/// steps in the schedule still get an empty row).
pub fn render_schedule_rows(schedule: &Schedule, universe: &Universe, rows: &[TxId]) -> String {
    let cells: Vec<String> = schedule
        .steps()
        .iter()
        .map(|s| render_step(&s.step, universe))
        .collect();
    let label_width = rows.iter().map(|t| t.to_string().len()).max().unwrap_or(0);
    let mut out = String::new();
    for &tx in rows {
        let label = tx.to_string();
        out.push_str(&label);
        out.push_str(&" ".repeat(label_width - label.len()));
        out.push_str(": ");
        for (i, s) in schedule.steps().iter().enumerate() {
            let cell = &cells[i];
            if s.tx == tx {
                out.push_str(cell);
            } else {
                out.push_str(&" ".repeat(cell.len()));
            }
            if i + 1 < cells.len() {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Renders a schedule as a single line, e.g. `T1:(I a) T2:(R a) …`.
pub fn render_schedule_line(schedule: &Schedule, universe: &Universe) -> String {
    schedule
        .steps()
        .iter()
        .map(|s| format!("{}:{}", s.tx, render_step(&s.step, universe)))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduledStep;
    use crate::system::SystemBuilder;

    #[test]
    fn renders_paper_layout() {
        let mut b = SystemBuilder::new();
        b.tx(1)
            .insert("a")
            .insert("b")
            .write("c")
            .insert("d")
            .finish();
        b.tx(2).read("a").delete("b").insert("c").finish();
        let sys = b.build();
        let txs = sys.transactions().to_vec();
        let s = Schedule::interleave(
            &txs,
            &[
                TxId(1),
                TxId(1),
                TxId(2),
                TxId(2),
                TxId(2),
                TxId(1),
                TxId(1),
            ],
        )
        .unwrap();
        let rendered = render_schedule(&s, sys.universe());
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("T1: (I a) (I b)"));
        assert!(lines[0].contains("(W c) (I d)"));
        assert!(lines[1].starts_with("T2:"));
        assert!(lines[1].contains("(R a) (D b) (I c)"));
        // Columns line up: both lines have equal total cell budget.
        assert!(lines[0].len() >= lines[1].len());
    }

    #[test]
    fn single_line_rendering() {
        let mut b = SystemBuilder::new();
        let a = b.exists("a");
        let sys = b.build();
        let s = Schedule::from_steps(vec![ScheduledStep::new(TxId(3), Step::read(a))]);
        assert_eq!(render_schedule_line(&s, sys.universe()), "T3:(R a)");
    }

    #[test]
    fn empty_rows_for_absent_transactions() {
        let mut b = SystemBuilder::new();
        let a = b.exists("a");
        let sys = b.build();
        let s = Schedule::from_steps(vec![ScheduledStep::new(TxId(1), Step::read(a))]);
        let rendered = render_schedule_rows(&s, sys.universe(), &[TxId(1), TxId(2)]);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].trim_end(), "T2:");
    }
}
