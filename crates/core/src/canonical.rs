//! Canonical nonserializable schedules — Theorem 1 (Section 3).
//!
//! A locked transaction system `τ` is **not safe** iff there are
//! transactions `T1, …, Tk` (k > 1) in `τ`, a distinguished `Tc`, and an
//! entity `A*` such that:
//!
//! 1. `Tc` locks `A*` after it has unlocked some entity (a two-phase
//!    violation), and
//! 2. letting `T'c` be `Tc`'s prefix up to (excluding) the `(L A*)` step,
//!    there are prefixes `T'i` of the other transactions such that the
//!    partial schedule `S'` executing `T'1, …, T'k` serially satisfies:
//!    * (2a) every sink of `D(S')` unlocks `A*` having previously locked
//!      it in a mode conflicting with the mode of `Tc`'s `(L A*)`, and
//!    * (2b) `S'` extends to a complete legal and proper schedule.
//!
//! [`CanonicalWitness`] packages such a certificate; [`CanonicalWitness::verify`]
//! checks every condition against a transaction system and reports the
//! first violation. With exclusive locks only, (2a) degenerates to "`D(S')`
//! has a unique sink which unlocks `A*`" (Section 3.3) — see
//! [`CanonicalWitness::has_unique_sink`].

use crate::entity::EntityId;
use crate::ops::{LockMode, Operation};
use crate::schedule::Schedule;
use crate::sgraph::SerializationGraph;
use crate::system::TransactionSystem;
use crate::txn::{LockedTransaction, TxId};
use std::fmt;

/// A certificate that a locked transaction system is unsafe, in the
/// canonical form of Theorem 1.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CanonicalWitness {
    /// The distinguished transaction `Tc` that closes the cycle.
    pub tc: TxId,
    /// The entity `A*` whose locking by `Tc` closes the cycle.
    pub a_star: EntityId,
    /// Index within `Tc`'s steps of the `(L A*)` step; `T'c` is the prefix
    /// up to (excluding) this index.
    pub lock_pos: usize,
    /// The serial order `T'1, …, T'k` with each transaction's prefix
    /// length. `tc` must appear with prefix length `lock_pos`.
    pub order: Vec<(TxId, usize)>,
    /// A complete, legal, proper schedule with `S'` as a prefix
    /// (condition 2b's witness).
    pub extension: Schedule,
}

/// Which condition of Theorem 1 a purported witness violates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CanonicalViolation {
    /// Fewer than two transactions are involved.
    TooFewTransactions,
    /// A transaction named in `order` is not in the system, or appears
    /// twice, or its prefix length exceeds its length.
    MalformedOrder,
    /// `tc` does not appear in `order` with prefix length `lock_pos`.
    TcPrefixMismatch,
    /// The step of `Tc` at `lock_pos` is not a lock step on `a_star`.
    NotALockStep,
    /// Condition 1: `Tc` does not unlock any entity before `lock_pos`.
    NoEarlierUnlock,
    /// `Tc` already locked `a_star` in its prefix (transactions lock an
    /// entity at most once).
    TcRelocksAStar,
    /// The serial prefix schedule `S'` is illegal (it could then never be a
    /// prefix of a legal schedule).
    PrefixIllegal,
    /// Condition 2a fails: the named sink of `D(S')` does not unlock `a_star`
    /// after locking it in a conflicting mode.
    SinkDoesNotReleaseAStar {
        /// The offending sink.
        sink: TxId,
    },
    /// Condition 2b fails: the extension is not a complete schedule of the
    /// involved transactions.
    ExtensionIncomplete,
    /// Condition 2b fails: the extension does not have `S'` as a prefix.
    ExtensionDoesNotExtendPrefix,
    /// Condition 2b fails: the extension is illegal.
    ExtensionIllegal,
    /// Condition 2b fails: the extension is improper.
    ExtensionImproper,
}

impl fmt::Display for CanonicalViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use CanonicalViolation::*;
        match self {
            TooFewTransactions => write!(f, "a canonical schedule needs k > 1 transactions"),
            MalformedOrder => write!(f, "order names unknown/duplicate transactions or oversized prefixes"),
            TcPrefixMismatch => write!(f, "Tc must appear in the order with prefix length lock_pos"),
            NotALockStep => write!(f, "Tc's step at lock_pos is not a lock of A*"),
            NoEarlierUnlock => write!(f, "condition 1: Tc must unlock some entity before locking A*"),
            TcRelocksAStar => write!(f, "Tc locks A* twice"),
            PrefixIllegal => write!(f, "the serial prefix schedule S' is illegal"),
            SinkDoesNotReleaseAStar { sink } => write!(
                f,
                "condition 2a: sink {sink} of D(S') does not unlock A* after locking it in a conflicting mode"
            ),
            ExtensionIncomplete => write!(f, "condition 2b: extension is not a complete schedule"),
            ExtensionDoesNotExtendPrefix => write!(f, "condition 2b: extension does not extend S'"),
            ExtensionIllegal => write!(f, "condition 2b: extension is illegal"),
            ExtensionImproper => write!(f, "condition 2b: extension is improper"),
        }
    }
}

impl std::error::Error for CanonicalViolation {}

impl CanonicalWitness {
    /// The serial partial schedule `S'` described by the witness: the
    /// prefixes executed back-to-back in `order`.
    pub fn serial_prefix(&self, system: &TransactionSystem) -> Schedule {
        let prefixes: Vec<LockedTransaction> = self
            .order
            .iter()
            .filter_map(|&(id, len)| {
                system
                    .get(id)
                    .map(|t| LockedTransaction::new(id, t.steps[..len.min(t.steps.len())].to_vec()))
            })
            .collect();
        Schedule::serial(&prefixes)
    }

    /// The lock mode in which `Tc` locks `A*`.
    pub fn tc_lock_mode(&self, system: &TransactionSystem) -> Option<LockMode> {
        let tc = system.get(self.tc)?;
        match tc.steps.get(self.lock_pos)?.op {
            Operation::Lock(m) => Some(m),
            _ => None,
        }
    }

    /// Whether `D(S')` has a unique sink — the simplified condition (2a) of
    /// Section 3.3, which must hold when only exclusive locks are used.
    pub fn has_unique_sink(&self, system: &TransactionSystem) -> bool {
        SerializationGraph::of(&self.serial_prefix(system))
            .sinks()
            .len()
            == 1
    }

    /// Verifies every condition of Theorem 1 against `system`, returning
    /// the first violation found.
    pub fn verify(&self, system: &TransactionSystem) -> Result<(), CanonicalViolation> {
        if self.order.len() < 2 {
            return Err(CanonicalViolation::TooFewTransactions);
        }
        // Order must name distinct known transactions with valid prefixes.
        let mut seen = Vec::new();
        for &(id, len) in &self.order {
            let Some(t) = system.get(id) else {
                return Err(CanonicalViolation::MalformedOrder);
            };
            if seen.contains(&id) || len > t.steps.len() {
                return Err(CanonicalViolation::MalformedOrder);
            }
            seen.push(id);
        }
        if !self.order.contains(&(self.tc, self.lock_pos)) {
            return Err(CanonicalViolation::TcPrefixMismatch);
        }
        let tc = system.get(self.tc).expect("checked in order");
        let lock_mode = match tc.steps.get(self.lock_pos).map(|s| s.op) {
            Some(Operation::Lock(m)) if tc.steps[self.lock_pos].entity == self.a_star => m,
            _ => return Err(CanonicalViolation::NotALockStep),
        };
        // Condition 1.
        if !tc.unlocked_anything_by(self.lock_pos) {
            return Err(CanonicalViolation::NoEarlierUnlock);
        }
        // At-most-once locking of A* by Tc.
        if tc.steps[..self.lock_pos]
            .iter()
            .any(|s| s.is_lock() && s.entity == self.a_star)
        {
            return Err(CanonicalViolation::TcRelocksAStar);
        }
        // The serial prefix S'.
        let s_prime = self.serial_prefix(system);
        if !s_prime.is_legal() {
            return Err(CanonicalViolation::PrefixIllegal);
        }
        // Condition 2a: every sink of D(S') unlocks A* having previously
        // locked it in a conflicting mode.
        let d = SerializationGraph::of(&s_prime);
        for sink in d.sinks() {
            let t = system.get(sink).expect("participant");
            let plen = self
                .order
                .iter()
                .find(|&&(id, _)| id == sink)
                .map(|&(_, len)| len)
                .expect("sink is in order");
            let prefix = &t.steps[..plen];
            let locked_conflicting = prefix.iter().any(|s| {
                matches!(s.op, Operation::Lock(m) if s.entity == self.a_star && !m.compatible_with(lock_mode))
            });
            let unlocked = prefix
                .iter()
                .any(|s| s.is_unlock() && s.entity == self.a_star);
            let still_held = t.holds_lock_at(plen, self.a_star).is_some();
            if !(locked_conflicting && unlocked && !still_held) {
                return Err(CanonicalViolation::SinkDoesNotReleaseAStar { sink });
            }
        }
        // Condition 2b: the extension completes S' legally and properly.
        if !self.extension.has_prefix(&s_prime) {
            return Err(CanonicalViolation::ExtensionDoesNotExtendPrefix);
        }
        let participants = self.extension.participants();
        let involved: Vec<LockedTransaction> = participants
            .iter()
            .filter_map(|&id| system.get(id).cloned())
            .collect();
        if involved.len() != participants.len()
            || !self.extension.is_complete_schedule_of(&involved)
            || !self.order.iter().all(|&(id, _)| participants.contains(&id))
        {
            return Err(CanonicalViolation::ExtensionIncomplete);
        }
        if !self.extension.is_legal() {
            return Err(CanonicalViolation::ExtensionIllegal);
        }
        if !self.extension.is_proper(system.initial_state()) {
            return Err(CanonicalViolation::ExtensionImproper);
        }
        Ok(())
    }
}

impl fmt::Display for CanonicalWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "canonical witness: Tc = {}, A* = {}, (L A*) at step {}; serial order ",
            self.tc, self.a_star, self.lock_pos
        )?;
        for (i, (id, len)) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}[..{len}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serializability::is_serializable;
    use crate::system::SystemBuilder;

    /// The classic non-2PL counterexample, phrased in the dynamic model:
    ///
    /// * `T1 = (LX a)(W a)(UX a)(LX b)(W b)(UX b)` — releases `a` before
    ///   locking `b` (the 2PL violation),
    /// * `T2 = (LX a)(W a)(LX b)(W b)(UX a)(UX b)`.
    ///
    /// Canonical witness: `Tc = T1`, `A* = b`; serial order `T1' T2'` where
    /// `T1' = T1[..3]` (through `(UX a)`) and `T2'` is all of... `T2`
    /// releases `b` only at the end, so `T2'` must be the *whole* of `T2`
    /// so that it has unlocked `b`.
    fn unsafe_system() -> (TransactionSystem, CanonicalWitness) {
        let mut b = SystemBuilder::new();
        b.exists("a");
        b.exists("b");
        b.tx(1)
            .lx("a")
            .write("a")
            .ux("a")
            .lx("b")
            .write("b")
            .ux("b")
            .finish();
        b.tx(2)
            .lx("a")
            .write("a")
            .lx("b")
            .write("b")
            .ux("b")
            .ux("a")
            .finish();
        let system = b.build();
        let a = system.universe().lookup("a").unwrap();
        let b_ent = system.universe().lookup("b").unwrap();
        let _ = a;
        let t1 = system.get(TxId(1)).unwrap().clone();
        let t2 = system.get(TxId(2)).unwrap().clone();
        // Extension: T1' (3 steps), then all of T2, then the rest of T1.
        let mut ext = Schedule::serial([&LockedTransaction::new(TxId(1), t1.steps[..3].to_vec())]);
        for s in &t2.steps {
            ext.push(crate::schedule::ScheduledStep::new(TxId(2), *s));
        }
        for s in &t1.steps[3..] {
            ext.push(crate::schedule::ScheduledStep::new(TxId(1), *s));
        }
        let witness = CanonicalWitness {
            tc: TxId(1),
            a_star: b_ent,
            lock_pos: 3,
            order: vec![(TxId(1), 3), (TxId(2), t2.steps.len())],
            extension: ext,
        };
        (system, witness)
    }

    #[test]
    fn valid_witness_verifies() {
        let (system, witness) = unsafe_system();
        assert_eq!(witness.verify(&system), Ok(()));
    }

    #[test]
    fn witness_extension_is_nonserializable() {
        // Theorem 1 "if" direction: any complete legal proper extension of
        // S' is nonserializable.
        let (system, witness) = unsafe_system();
        assert!(witness.verify(&system).is_ok());
        assert!(!is_serializable(&witness.extension));
    }

    #[test]
    fn exclusive_only_witness_has_unique_sink() {
        let (system, witness) = unsafe_system();
        assert!(witness.has_unique_sink(&system));
    }

    #[test]
    fn condition1_requires_earlier_unlock() {
        let (system, mut witness) = unsafe_system();
        // Point lock_pos at T1's first lock (position 0): no earlier unlock.
        witness.lock_pos = 0;
        witness.order[0] = (TxId(1), 0);
        let a = system.universe().lookup("a").unwrap();
        witness.a_star = a;
        assert!(matches!(
            witness.verify(&system),
            Err(CanonicalViolation::NoEarlierUnlock)
                | Err(CanonicalViolation::ExtensionDoesNotExtendPrefix)
        ));
    }

    #[test]
    fn sink_must_release_a_star() {
        let (system, mut witness) = unsafe_system();
        // Truncate T2's prefix before it unlocks b: sink no longer releases A*.
        witness.order[1] = (TxId(2), 4);
        assert!(matches!(
            witness.verify(&system),
            Err(CanonicalViolation::SinkDoesNotReleaseAStar { .. })
                | Err(CanonicalViolation::ExtensionDoesNotExtendPrefix)
        ));
    }

    #[test]
    fn order_must_reference_known_transactions() {
        let (system, mut witness) = unsafe_system();
        witness.order.push((TxId(9), 0));
        assert_eq!(
            witness.verify(&system),
            Err(CanonicalViolation::MalformedOrder)
        );
    }

    #[test]
    fn k_must_exceed_one() {
        let (system, mut witness) = unsafe_system();
        witness.order.truncate(1);
        assert_eq!(
            witness.verify(&system),
            Err(CanonicalViolation::TooFewTransactions)
        );
    }

    #[test]
    fn lock_pos_must_point_at_lock_of_a_star() {
        let (system, mut witness) = unsafe_system();
        witness.lock_pos = 4; // (W b), not a lock
        witness.order[0] = (TxId(1), 4);
        assert_eq!(
            witness.verify(&system),
            Err(CanonicalViolation::NotALockStep)
        );
    }

    #[test]
    fn serial_prefix_matches_hand_construction() {
        let (system, witness) = unsafe_system();
        let s_prime = witness.serial_prefix(&system);
        assert_eq!(s_prime.len(), 3 + 6);
        let t1 = system.get(TxId(1)).unwrap();
        assert_eq!(s_prime.projection(TxId(1)), t1.steps[..3].to_vec());
        // S' itself is serial, hence serializable.
        assert!(is_serializable(&s_prime));
    }

    #[test]
    fn tc_lock_mode_reports_exclusive() {
        let (system, witness) = unsafe_system();
        assert_eq!(witness.tc_lock_mode(&system), Some(LockMode::Exclusive));
    }

    #[test]
    fn shared_mode_sinks_satisfy_2a_only_with_conflicting_mode() {
        // Tc locks A* in *shared* mode; a sink that locked A* in shared
        // mode does not conflict and must be rejected.
        let mut b = SystemBuilder::new();
        b.exists("a");
        b.exists("b");
        // T1: LS a, R a, US a, LS b ... locks b shared after unlocking a.
        b.tx(1)
            .ls("a")
            .read("a")
            .us("a")
            .ls("b")
            .read("b")
            .us("b")
            .finish();
        // T2: locks b shared (no conflict with T1's shared lock).
        b.tx(2)
            .ls("b")
            .read("b")
            .us("b")
            .lx("a")
            .write("a")
            .ux("a")
            .finish();
        let system = b.build();
        let b_ent = system.universe().lookup("b").unwrap();
        let t2_len = system.get(TxId(2)).unwrap().steps.len();
        let t1 = system.get(TxId(1)).unwrap().clone();
        let t2 = system.get(TxId(2)).unwrap().clone();
        let mut ext = Schedule::serial([&LockedTransaction::new(TxId(1), t1.steps[..3].to_vec())]);
        for s in &t2.steps {
            ext.push(crate::schedule::ScheduledStep::new(TxId(2), *s));
        }
        for s in &t1.steps[3..] {
            ext.push(crate::schedule::ScheduledStep::new(TxId(1), *s));
        }
        let witness = CanonicalWitness {
            tc: TxId(1),
            a_star: b_ent,
            lock_pos: 3,
            order: vec![(TxId(1), 3), (TxId(2), t2_len)],
            extension: ext,
        };
        // T2 locked b in shared mode; T1's (LS b) does not conflict with it,
        // so 2a must fail on sink T2.
        assert!(matches!(
            witness.verify(&system),
            Err(CanonicalViolation::SinkDoesNotReleaseAStar { .. })
        ));
    }
}
