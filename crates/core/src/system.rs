//! Transaction systems: a universe, an initial structural state, and a
//! collection of (locked) transactions — the unit the safety question is
//! asked about.

use crate::entity::{EntityId, Universe};
use crate::state::StructuralState;
use crate::step::Step;
use crate::txn::{LockedTransaction, TxId, TxnViolation};

/// A locked transaction system `τ̄` together with the universe its entities
/// come from and the structural state the database starts in.
#[derive(Clone, Debug)]
pub struct TransactionSystem {
    universe: Universe,
    initial: StructuralState,
    transactions: Vec<LockedTransaction>,
}

impl TransactionSystem {
    /// Creates a system from parts.
    pub fn new(
        universe: Universe,
        initial: StructuralState,
        transactions: Vec<LockedTransaction>,
    ) -> Self {
        TransactionSystem {
            universe,
            initial,
            transactions,
        }
    }

    /// The universe of entities.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The initial structural state.
    pub fn initial_state(&self) -> &StructuralState {
        &self.initial
    }

    /// The transactions.
    pub fn transactions(&self) -> &[LockedTransaction] {
        &self.transactions
    }

    /// The transaction with the given id, if present.
    pub fn get(&self, id: TxId) -> Option<&LockedTransaction> {
        self.transactions.iter().find(|t| t.id == id)
    }

    /// All transaction ids, in declaration order.
    pub fn ids(&self) -> Vec<TxId> {
        self.transactions.iter().map(|t| t.id).collect()
    }

    /// Validates lock discipline of every transaction (well-formedness,
    /// at-most-once locking, unlock-held). Returns the first violation with
    /// the offending transaction.
    pub fn validate(&self) -> Result<(), (TxId, TxnViolation)> {
        for t in &self.transactions {
            t.validate().map_err(|v| (t.id, v))?;
        }
        Ok(())
    }

    /// Total number of steps across all transactions.
    pub fn total_steps(&self) -> usize {
        self.transactions.iter().map(LockedTransaction::len).sum()
    }
}

/// Fluent builder for [`TransactionSystem`]s; the unit tests, examples, and
/// figure reproductions all use it.
///
/// # Examples
///
/// ```
/// use slp_core::SystemBuilder;
///
/// let mut b = SystemBuilder::new();
/// b.exists("a"); // entity `a` exists initially
/// b.tx(1).lx("a").read("a").write("a").ux("a").finish();
/// b.tx(2).lx("b").insert("b").ux("b").finish();
/// let system = b.build();
/// assert_eq!(system.transactions().len(), 2);
/// assert!(system.validate().is_ok());
/// ```
#[derive(Default, Debug)]
pub struct SystemBuilder {
    universe: Universe,
    initial: Vec<EntityId>,
    transactions: Vec<LockedTransaction>,
}

impl SystemBuilder {
    /// A builder over an empty universe and empty initial state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares that `name` exists in the initial structural state.
    pub fn exists(&mut self, name: &str) -> EntityId {
        let id = self.universe.entity(name);
        if !self.initial.contains(&id) {
            self.initial.push(id);
        }
        id
    }

    /// Interns `name` without adding it to the initial state.
    pub fn entity(&mut self, name: &str) -> EntityId {
        self.universe.entity(name)
    }

    /// Starts building transaction `id`; finish with [`TxBuilder::finish`].
    pub fn tx(&mut self, id: u32) -> TxBuilder<'_> {
        TxBuilder {
            sys: self,
            id: TxId(id),
            steps: Vec::new(),
        }
    }

    /// Adds an already-built locked transaction.
    pub fn add_transaction(&mut self, t: LockedTransaction) {
        self.transactions.push(t);
    }

    /// Finishes the system.
    pub fn build(self) -> TransactionSystem {
        TransactionSystem {
            universe: self.universe,
            initial: StructuralState::from_entities(self.initial),
            transactions: self.transactions,
        }
    }
}

/// Per-transaction fluent builder; created by [`SystemBuilder::tx`].
#[derive(Debug)]
pub struct TxBuilder<'a> {
    sys: &'a mut SystemBuilder,
    id: TxId,
    steps: Vec<Step>,
}

impl TxBuilder<'_> {
    fn step(mut self, make: impl FnOnce(EntityId) -> Step, name: &str) -> Self {
        let e = self.sys.universe.entity(name);
        self.steps.push(make(e));
        self
    }

    /// `(R name)`
    pub fn read(self, name: &str) -> Self {
        self.step(Step::read, name)
    }

    /// `(W name)`
    pub fn write(self, name: &str) -> Self {
        self.step(Step::write, name)
    }

    /// `(I name)`
    pub fn insert(self, name: &str) -> Self {
        self.step(Step::insert, name)
    }

    /// `(D name)`
    pub fn delete(self, name: &str) -> Self {
        self.step(Step::delete, name)
    }

    /// `(LS name)`
    pub fn ls(self, name: &str) -> Self {
        self.step(Step::lock_shared, name)
    }

    /// `(LX name)`
    pub fn lx(self, name: &str) -> Self {
        self.step(Step::lock_exclusive, name)
    }

    /// `(US name)`
    pub fn us(self, name: &str) -> Self {
        self.step(Step::unlock_shared, name)
    }

    /// `(UX name)`
    pub fn ux(self, name: &str) -> Self {
        self.step(Step::unlock_exclusive, name)
    }

    /// Shorthand: `(LX name)(R name)(W name)` — the paper's ACCESS
    /// operation (a READ immediately followed by a WRITE) under its lock.
    pub fn access_locked(self, name: &str) -> Self {
        self.lx(name).read(name).write(name)
    }

    /// Completes the transaction and registers it with the system builder.
    pub fn finish(self) -> TxId {
        let TxBuilder { sys, id, steps } = self;
        sys.transactions.push(LockedTransaction::new(id, steps));
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_entities_across_transactions() {
        let mut b = SystemBuilder::new();
        b.tx(1).lx("x").insert("x").ux("x").finish();
        b.tx(2).lx("x").delete("x").ux("x").finish();
        let sys = b.build();
        assert_eq!(sys.universe().len(), 1);
        assert_eq!(sys.transactions().len(), 2);
    }

    #[test]
    fn exists_populates_initial_state() {
        let mut b = SystemBuilder::new();
        let a = b.exists("a");
        let a2 = b.exists("a");
        assert_eq!(a, a2);
        let sys = b.build();
        assert!(sys.initial_state().contains(a));
        assert_eq!(sys.initial_state().len(), 1);
    }

    #[test]
    fn validate_reports_offending_transaction() {
        let mut b = SystemBuilder::new();
        b.exists("a");
        b.tx(1).lx("a").write("a").ux("a").finish();
        b.tx(2).write("a").finish(); // not well formed
        let sys = b.build();
        let (id, v) = sys.validate().unwrap_err();
        assert_eq!(id, TxId(2));
        assert!(matches!(v, TxnViolation::NotWellFormed { .. }));
    }

    #[test]
    fn get_and_ids() {
        let mut b = SystemBuilder::new();
        b.tx(7).lx("a").insert("a").ux("a").finish();
        let sys = b.build();
        assert_eq!(sys.ids(), vec![TxId(7)]);
        assert!(sys.get(TxId(7)).is_some());
        assert!(sys.get(TxId(8)).is_none());
        assert_eq!(sys.total_steps(), 3);
    }

    #[test]
    fn access_locked_expands_to_read_write_under_lock() {
        let mut b = SystemBuilder::new();
        b.exists("n");
        b.tx(1).access_locked("n").ux("n").finish();
        let sys = b.build();
        let t = sys.get(TxId(1)).unwrap();
        assert_eq!(t.steps.len(), 4);
        assert!(t.validate().is_ok());
    }
}
