//! The interaction (multi)graph of a transaction system (Section 3.1).
//!
//! Each transaction is a node, and there is one edge **per pair of
//! conflicting steps** between two transactions — so two transactions with
//! two or more conflicting step pairs form a cycle of length 2. In static
//! databases, Yannakakis' characterization lets one restrict attention to
//! canonical schedules of transactions lying on a *chordless cycle* of this
//! graph. The paper's Fig. 2 example shows this restriction is unsound for
//! dynamic databases; this module exists to regenerate that analysis.

use crate::txn::{LockedTransaction, TxId};
use std::collections::BTreeMap;
use std::fmt;

/// The interaction multigraph of a set of locked transactions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InteractionGraph {
    nodes: Vec<TxId>,
    /// Unordered pair (smaller id first) -> number of conflicting step pairs.
    edge_counts: BTreeMap<(TxId, TxId), usize>,
}

impl InteractionGraph {
    /// Builds the interaction graph of `txs`.
    pub fn of(txs: &[LockedTransaction]) -> Self {
        let nodes = txs.iter().map(|t| t.id).collect();
        let mut edge_counts = BTreeMap::new();
        for (i, a) in txs.iter().enumerate() {
            for b in &txs[i + 1..] {
                let mut count = 0usize;
                for sa in &a.steps {
                    for sb in &b.steps {
                        if sa.conflicts_with(sb) {
                            count += 1;
                        }
                    }
                }
                if count > 0 {
                    let key = if a.id <= b.id {
                        (a.id, b.id)
                    } else {
                        (b.id, a.id)
                    };
                    edge_counts.insert(key, count);
                }
            }
        }
        InteractionGraph { nodes, edge_counts }
    }

    /// The nodes.
    pub fn nodes(&self) -> &[TxId] {
        &self.nodes
    }

    /// Number of conflicting step pairs between `a` and `b`.
    pub fn multiplicity(&self, a: TxId, b: TxId) -> usize {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.edge_counts.get(&key).copied().unwrap_or(0)
    }

    /// Whether `a` and `b` are adjacent (at least one conflicting pair).
    pub fn adjacent(&self, a: TxId, b: TxId) -> bool {
        self.multiplicity(a, b) > 0
    }

    /// All adjacent pairs with their multiplicities.
    pub fn edges(&self) -> impl Iterator<Item = (TxId, TxId, usize)> + '_ {
        self.edge_counts.iter().map(|(&(a, b), &c)| (a, b, c))
    }

    /// All chordless cycles of the multigraph, as sorted node sets.
    ///
    /// * A pair `{a, b}` with multiplicity ≥ 2 is a cycle of length 2
    ///   (two parallel edges), and it is always chordless.
    /// * A simple cycle `v0 – v1 – … – vk – v0` (k ≥ 2) is chordless if no
    ///   two non-consecutive cycle nodes are adjacent **and** every
    ///   consecutive pair has multiplicity exactly 1 — a parallel edge
    ///   between consecutive nodes is itself a chord. This is how the
    ///   paper's Fig. 2 discussion concludes that when every pair of
    ///   transactions has two or more conflicting step pairs, "the only
    ///   chordless cycles are those involving two nodes".
    ///
    /// Suitable for the small systems the theory deals with (the
    /// enumeration is exponential in general).
    pub fn chordless_cycles(&self) -> Vec<Vec<TxId>> {
        let mut cycles: Vec<Vec<TxId>> = Vec::new();
        // Length-2 cycles: parallel edges.
        for (&(a, b), &count) in &self.edge_counts {
            if count >= 2 {
                cycles.push(vec![a, b]);
            }
        }
        // Longer chordless cycles via DFS from each start node. To avoid
        // duplicates, only keep cycles whose smallest node is the start and
        // whose second node is smaller than the last.
        let n = self.nodes.len();
        for start_idx in 0..n {
            let start = self.nodes[start_idx];
            let mut path = vec![start];
            self.extend_cycle(start, &mut path, &mut cycles);
        }
        cycles.sort();
        cycles.dedup();
        cycles
    }

    fn extend_cycle(&self, start: TxId, path: &mut Vec<TxId>, out: &mut Vec<Vec<TxId>>) {
        let last = *path.last().expect("path non-empty");
        for &next in &self.nodes {
            if next == last || !self.adjacent(last, next) {
                continue;
            }
            if next == start {
                if path.len() >= 3 && path[1] < *path.last().expect("non-empty") {
                    let k = path.len();
                    let mut chordless = true;
                    // Non-consecutive pairs must not be adjacent.
                    'outer: for i in 0..k {
                        for j in (i + 2)..k {
                            if i == 0 && j == k - 1 {
                                continue; // consecutive around the cycle
                            }
                            if self.adjacent(path[i], path[j]) {
                                chordless = false;
                                break 'outer;
                            }
                        }
                    }
                    // Consecutive pairs must not carry a parallel edge
                    // (a parallel edge is a chord of the cycle).
                    if chordless {
                        chordless =
                            (0..k).all(|i| self.multiplicity(path[i], path[(i + 1) % k]) == 1);
                    }
                    if chordless {
                        let mut cycle = path.clone();
                        cycle.sort_unstable();
                        out.push(cycle);
                    }
                }
                continue;
            }
            if next < start || path.contains(&next) {
                continue;
            }
            path.push(next);
            self.extend_cycle(start, path, out);
            path.pop();
        }
    }
}

impl fmt::Display for InteractionGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interaction graph: ")?;
        let mut first = true;
        for (a, b, count) in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a} -- {b} (x{count})")?;
            first = false;
        }
        if first {
            write!(f, "(no edges)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;
    use crate::step::Step;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    #[test]
    fn no_conflicts_no_edges() {
        let txs = vec![
            LockedTransaction::new(t(1), vec![Step::read(e(0))]),
            LockedTransaction::new(t(2), vec![Step::read(e(0))]),
        ];
        let g = InteractionGraph::of(&txs);
        assert!(!g.adjacent(t(1), t(2)));
        assert!(g.chordless_cycles().is_empty());
    }

    #[test]
    fn multiplicity_counts_conflicting_pairs() {
        let txs = vec![
            LockedTransaction::new(t(1), vec![Step::write(e(0)), Step::write(e(1))]),
            LockedTransaction::new(t(2), vec![Step::write(e(0)), Step::write(e(1))]),
        ];
        let g = InteractionGraph::of(&txs);
        assert_eq!(g.multiplicity(t(1), t(2)), 2);
        assert_eq!(g.multiplicity(t(2), t(1)), 2);
        // Two parallel edges form a 2-cycle.
        assert_eq!(g.chordless_cycles(), vec![vec![t(1), t(2)]]);
    }

    #[test]
    fn triangle_is_not_chordless_free_but_is_a_cycle() {
        // Three transactions conflicting pairwise on three distinct
        // entities: single edges forming a triangle (one chordless 3-cycle).
        let txs = vec![
            LockedTransaction::new(t(1), vec![Step::write(e(0)), Step::read(e(2))]),
            LockedTransaction::new(t(2), vec![Step::write(e(1)), Step::read(e(0))]),
            LockedTransaction::new(t(3), vec![Step::write(e(2)), Step::read(e(1))]),
        ];
        let g = InteractionGraph::of(&txs);
        assert_eq!(g.multiplicity(t(1), t(2)), 1);
        assert_eq!(g.multiplicity(t(2), t(3)), 1);
        assert_eq!(g.multiplicity(t(1), t(3)), 1);
        assert_eq!(g.chordless_cycles(), vec![vec![t(1), t(2), t(3)]]);
    }

    #[test]
    fn four_cycle_with_chord_is_excluded() {
        // Square 1-2-3-4 plus chord 1-3: the 4-cycle has a chord, so only
        // the two triangles are chordless.
        let txs = vec![
            LockedTransaction::new(
                t(1),
                vec![Step::write(e(0)), Step::write(e(3)), Step::write(e(4))],
            ),
            LockedTransaction::new(t(2), vec![Step::read(e(0)), Step::write(e(1))]),
            LockedTransaction::new(
                t(3),
                vec![Step::read(e(1)), Step::write(e(2)), Step::read(e(4))],
            ),
            LockedTransaction::new(t(4), vec![Step::read(e(2)), Step::read(e(3))]),
        ];
        let g = InteractionGraph::of(&txs);
        // edges: 1-2 (e0), 2-3 (e1), 3-4 (e2), 4-1 (e3), 1-3 (e4 chord)
        let cycles = g.chordless_cycles();
        assert!(cycles.contains(&vec![t(1), t(2), t(3)]));
        assert!(cycles.contains(&vec![t(1), t(3), t(4)]));
        assert!(!cycles.contains(&vec![t(1), t(2), t(3), t(4)]));
    }

    #[test]
    fn fig2_shape_only_two_node_chordless_cycles() {
        // Mimics the structure of the paper's Fig. 2 discussion: every pair
        // of transactions has >= 2 conflicting step pairs, so all chordless
        // cycles have exactly two nodes.
        let txs = vec![
            LockedTransaction::new(t(1), vec![Step::write(e(0)), Step::write(e(1))]),
            LockedTransaction::new(
                t(2),
                vec![Step::write(e(0)), Step::write(e(1)), Step::write(e(2))],
            ),
            LockedTransaction::new(
                t(3),
                vec![Step::write(e(1)), Step::write(e(2)), Step::write(e(0))],
            ),
        ];
        let g = InteractionGraph::of(&txs);
        let cycles = g.chordless_cycles();
        assert!(cycles.iter().all(|c| c.len() == 2), "{cycles:?}");
        assert_eq!(cycles.len(), 3);
    }
}
