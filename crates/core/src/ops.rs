//! Operations: the data operations `O = {R, W, I, D}` and the lock
//! operations `{LS, LX, US, UX}` that extend them to `O_L` (Section 2).

use std::fmt;

/// A data operation from the set `O = {READ, WRITE, INSERT, DELETE}`.
///
/// `INSERT` and `DELETE` change the *structural* state of the database;
/// `WRITE` changes the *value* state; `READ` changes nothing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DataOp {
    /// `R` — read an entity that exists in the current structural state.
    Read,
    /// `W` — write an entity that exists in the current structural state.
    Write,
    /// `I` — insert an entity absent from the current structural state.
    Insert,
    /// `D` — delete an entity present in the current structural state.
    Delete,
}

impl DataOp {
    /// Whether this operation requires the entity to be *present* in the
    /// structural state for the step to be defined. (`INSERT` instead
    /// requires absence.)
    #[inline]
    pub fn requires_present(self) -> bool {
        !matches!(self, DataOp::Insert)
    }

    /// Whether this operation changes the structural state.
    #[inline]
    pub fn is_structural(self) -> bool {
        matches!(self, DataOp::Insert | DataOp::Delete)
    }

    /// The lock mode a well-formed transaction must hold to perform this
    /// operation: `READ` needs at least a shared lock, everything else an
    /// exclusive lock.
    #[inline]
    pub fn required_mode(self) -> LockMode {
        match self {
            DataOp::Read => LockMode::Shared,
            _ => LockMode::Exclusive,
        }
    }

    /// The conflict relation restricted to data operations: two data
    /// operations on a common entity conflict iff they are *not both*
    /// `READ` — the data-op projection of the benign set `{R, LS, US}`
    /// (Section 2). This is the classification an admission-stage
    /// scheduler applies to declared access sets: a pair of transactions
    /// needs an ordering edge exactly when some common entity carries a
    /// conflicting pair of declared operations.
    #[inline]
    pub fn conflicts_with(self, other: DataOp) -> bool {
        !(self == DataOp::Read && other == DataOp::Read)
    }

    /// The paper's one-letter abbreviation.
    pub fn letter(self) -> char {
        match self {
            DataOp::Read => 'R',
            DataOp::Write => 'W',
            DataOp::Insert => 'I',
            DataOp::Delete => 'D',
        }
    }

    /// All four data operations.
    pub const ALL: [DataOp; 4] = [DataOp::Read, DataOp::Write, DataOp::Insert, DataOp::Delete];
}

impl fmt::Display for DataOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A lock mode: shared (`S`) or exclusive (`X`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LockMode {
    /// Shared mode — compatible with other shared locks.
    Shared,
    /// Exclusive mode — incompatible with every other lock.
    Exclusive,
}

impl LockMode {
    /// Lock-compatibility: two locks on the same entity held by *distinct*
    /// transactions are compatible iff both are shared.
    #[inline]
    pub fn compatible_with(self, other: LockMode) -> bool {
        self == LockMode::Shared && other == LockMode::Shared
    }

    /// Whether `self` suffices where `required` is demanded (`X` covers `S`).
    #[inline]
    pub fn covers(self, required: LockMode) -> bool {
        self == LockMode::Exclusive || required == LockMode::Shared
    }

    /// The paper's abbreviation suffix (`S`/`X`).
    pub fn letter(self) -> char {
        match self {
            LockMode::Shared => 'S',
            LockMode::Exclusive => 'X',
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// An operation from `O_L = {R, W, I, D, LS, LX, US, UX}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Operation {
    /// A data operation.
    Data(DataOp),
    /// `LS`/`LX` — acquire a lock in the given mode.
    Lock(LockMode),
    /// `US`/`UX` — release a lock of the given mode.
    Unlock(LockMode),
}

impl Operation {
    /// Whether this operation is "benign" for the conflict relation.
    ///
    /// Two steps conflict iff they operate on a common entity and the
    /// operations are *not both* in `{R, LS, US}` (Section 2).
    #[inline]
    pub fn is_benign(self) -> bool {
        matches!(
            self,
            Operation::Data(DataOp::Read)
                | Operation::Lock(LockMode::Shared)
                | Operation::Unlock(LockMode::Shared)
        )
    }

    /// Whether this operation *mutates* the entity — changes its value
    /// (`W`) or structural (`I`, `D`) state, i.e. installs a version in an
    /// MVCC store. Exclusive lock traffic is non-benign but not a
    /// mutation: a transaction that merely locks through an entity leaves
    /// nothing for a snapshot read to miss.
    #[inline]
    pub fn is_mutation(self) -> bool {
        matches!(self, Operation::Data(d) if d != DataOp::Read)
    }

    /// The data operation, if this is one.
    #[inline]
    pub fn data(self) -> Option<DataOp> {
        match self {
            Operation::Data(d) => Some(d),
            _ => None,
        }
    }

    /// Whether this is a `LOCK` step (of either mode).
    #[inline]
    pub fn is_lock(self) -> bool {
        matches!(self, Operation::Lock(_))
    }

    /// Whether this is an `UNLOCK` step (of either mode).
    #[inline]
    pub fn is_unlock(self) -> bool {
        matches!(self, Operation::Unlock(_))
    }

    /// The paper's abbreviation (`R`, `W`, `I`, `D`, `LS`, `LX`, `US`, `UX`).
    pub fn abbrev(self) -> &'static str {
        match self {
            Operation::Data(DataOp::Read) => "R",
            Operation::Data(DataOp::Write) => "W",
            Operation::Data(DataOp::Insert) => "I",
            Operation::Data(DataOp::Delete) => "D",
            Operation::Lock(LockMode::Shared) => "LS",
            Operation::Lock(LockMode::Exclusive) => "LX",
            Operation::Unlock(LockMode::Shared) => "US",
            Operation::Unlock(LockMode::Exclusive) => "UX",
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

impl From<DataOp> for Operation {
    fn from(d: DataOp) -> Self {
        Operation::Data(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible_with(Shared));
        assert!(!Shared.compatible_with(Exclusive));
        assert!(!Exclusive.compatible_with(Shared));
        assert!(!Exclusive.compatible_with(Exclusive));
    }

    #[test]
    fn exclusive_covers_shared() {
        use LockMode::*;
        assert!(Exclusive.covers(Shared));
        assert!(Exclusive.covers(Exclusive));
        assert!(Shared.covers(Shared));
        assert!(!Shared.covers(Exclusive));
    }

    #[test]
    fn required_modes_match_well_formedness_rules() {
        assert_eq!(DataOp::Read.required_mode(), LockMode::Shared);
        assert_eq!(DataOp::Write.required_mode(), LockMode::Exclusive);
        assert_eq!(DataOp::Insert.required_mode(), LockMode::Exclusive);
        assert_eq!(DataOp::Delete.required_mode(), LockMode::Exclusive);
    }

    #[test]
    fn benign_set_is_r_ls_us() {
        use Operation as Op;
        let benign: Vec<Op> = [
            Op::Data(DataOp::Read),
            Op::Lock(LockMode::Shared),
            Op::Unlock(LockMode::Shared),
        ]
        .to_vec();
        for op in &benign {
            assert!(op.is_benign(), "{op} should be benign");
        }
        let hostile = [
            Op::Data(DataOp::Write),
            Op::Data(DataOp::Insert),
            Op::Data(DataOp::Delete),
            Op::Lock(LockMode::Exclusive),
            Op::Unlock(LockMode::Exclusive),
        ];
        for op in hostile {
            assert!(!op.is_benign(), "{op} should not be benign");
        }
    }

    #[test]
    fn abbreviations_round_trip_the_paper_notation() {
        assert_eq!(Operation::Lock(LockMode::Shared).abbrev(), "LS");
        assert_eq!(Operation::Lock(LockMode::Exclusive).abbrev(), "LX");
        assert_eq!(Operation::Unlock(LockMode::Shared).abbrev(), "US");
        assert_eq!(Operation::Unlock(LockMode::Exclusive).abbrev(), "UX");
        assert_eq!(Operation::Data(DataOp::Insert).abbrev(), "I");
    }

    #[test]
    fn data_op_conflicts_mirror_the_benign_set() {
        assert!(!DataOp::Read.conflicts_with(DataOp::Read));
        for hostile in [DataOp::Write, DataOp::Insert, DataOp::Delete] {
            assert!(DataOp::Read.conflicts_with(hostile));
            assert!(hostile.conflicts_with(DataOp::Read));
            assert!(hostile.conflicts_with(hostile));
        }
    }

    #[test]
    fn structural_ops() {
        assert!(DataOp::Insert.is_structural());
        assert!(DataOp::Delete.is_structural());
        assert!(!DataOp::Read.is_structural());
        assert!(!DataOp::Write.is_structural());
    }
}
