//! Schedule transformations used in the proof of Theorem 1.
//!
//! * [`transpose`] — Lemma 1: transposing two adjacent steps of different
//!   transactions that do not conflict preserves legality, properness, and
//!   the serializability graph.
//! * [`move_to_back`] — the `move(S, S', T')` operation: moving the steps
//!   of a transaction prefix `T'` (a subsequence of the prefix `S'`) so they
//!   follow all other steps of `S'`. Lemma 2: if `T'` is a sink of `D(S')`
//!   and `S` is legal and proper, the result is legal and proper with the
//!   same `D(S)`.
//!
//! These are executable proof steps: the property tests in this module and
//! in `tests/` check the lemmas' conclusions on randomized schedules.

use crate::schedule::Schedule;
use crate::txn::TxId;
use std::fmt;

/// Why a transposition was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransposeError {
    /// `pos + 1` is out of bounds.
    OutOfBounds {
        /// The requested position.
        pos: usize,
        /// The schedule length.
        len: usize,
    },
    /// The two steps belong to the same transaction (transposing would
    /// violate program order).
    SameTransaction,
    /// The two steps conflict (Lemma 1 does not apply).
    ConflictingSteps,
}

impl fmt::Display for TransposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransposeError::OutOfBounds { pos, len } => {
                write!(f, "cannot transpose at {pos}: schedule has {len} steps")
            }
            TransposeError::SameTransaction => {
                write!(f, "adjacent steps belong to the same transaction")
            }
            TransposeError::ConflictingSteps => write!(f, "adjacent steps conflict"),
        }
    }
}

impl std::error::Error for TransposeError {}

/// Transposes the adjacent steps at positions `pos` and `pos + 1`,
/// enforcing Lemma 1's preconditions: the steps belong to different
/// transactions and do not conflict.
pub fn transpose(schedule: &Schedule, pos: usize) -> Result<Schedule, TransposeError> {
    let steps = schedule.steps();
    if pos + 1 >= steps.len() {
        return Err(TransposeError::OutOfBounds {
            pos,
            len: steps.len(),
        });
    }
    let (a, b) = (steps[pos], steps[pos + 1]);
    if a.tx == b.tx {
        return Err(TransposeError::SameTransaction);
    }
    if a.step.conflicts_with(&b.step) {
        return Err(TransposeError::ConflictingSteps);
    }
    let mut out = steps.to_vec();
    out.swap(pos, pos + 1);
    Ok(Schedule::from_steps(out))
}

/// The `move(S, S', T')` operation of Section 3.2.
///
/// `prefix_len` identifies the prefix `S'` of `schedule`, and `tx`
/// identifies the transaction whose steps within `S'` form `T'`. The result
/// is the permutation of `schedule` in which:
///
/// * the relative order of any two `T'` steps is unchanged;
/// * the relative order of any two non-`T'` steps is unchanged;
/// * every non-`T'` step *inside* `S'` precedes every `T'` step, and every
///   step *outside* `S'` follows them.
pub fn move_to_back(schedule: &Schedule, prefix_len: usize, tx: TxId) -> Schedule {
    let steps = schedule.steps();
    let prefix_len = prefix_len.min(steps.len());
    let mut out = Vec::with_capacity(steps.len());
    out.extend(steps[..prefix_len].iter().copied().filter(|s| s.tx != tx));
    out.extend(steps[..prefix_len].iter().copied().filter(|s| s.tx == tx));
    out.extend_from_slice(&steps[prefix_len..]);
    Schedule::from_steps(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;
    use crate::schedule::ScheduledStep;
    use crate::sgraph::SerializationGraph;
    use crate::state::StructuralState;
    use crate::step::Step;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn sched(steps: Vec<(u32, Step)>) -> Schedule {
        Schedule::from_steps(
            steps
                .into_iter()
                .map(|(i, s)| ScheduledStep::new(t(i), s))
                .collect(),
        )
    }

    #[test]
    fn transpose_swaps_nonconflicting_neighbors() {
        let s = sched(vec![(1, Step::read(e(0))), (2, Step::read(e(0)))]);
        let swapped = transpose(&s, 0).unwrap();
        assert_eq!(swapped.steps()[0].tx, t(2));
        assert_eq!(swapped.steps()[1].tx, t(1));
    }

    #[test]
    fn transpose_rejects_same_transaction() {
        let s = sched(vec![(1, Step::read(e(0))), (1, Step::read(e(1)))]);
        assert_eq!(transpose(&s, 0), Err(TransposeError::SameTransaction));
    }

    #[test]
    fn transpose_rejects_conflicting_steps() {
        let s = sched(vec![(1, Step::write(e(0))), (2, Step::read(e(0)))]);
        assert_eq!(transpose(&s, 0), Err(TransposeError::ConflictingSteps));
    }

    #[test]
    fn transpose_out_of_bounds() {
        let s = sched(vec![(1, Step::read(e(0)))]);
        assert_eq!(
            transpose(&s, 0),
            Err(TransposeError::OutOfBounds { pos: 0, len: 1 })
        );
    }

    #[test]
    fn lemma1_preserves_legality_properness_and_graph() {
        // A legal proper schedule with two adjacent non-conflicting steps of
        // different transactions on *different* entities.
        let s = sched(vec![
            (1, Step::lock_exclusive(e(0))),
            (2, Step::lock_exclusive(e(1))),
            (1, Step::insert(e(0))),
            (2, Step::insert(e(1))),
            (1, Step::unlock_exclusive(e(0))),
            (2, Step::unlock_exclusive(e(1))),
        ]);
        let g0 = StructuralState::empty();
        assert!(s.is_legal() && s.is_proper(&g0));
        let before = SerializationGraph::of(&s);
        for pos in [0, 2, 4] {
            let swapped = transpose(&s, pos).unwrap();
            assert!(swapped.is_legal(), "swap at {pos} stays legal");
            assert!(swapped.is_proper(&g0), "swap at {pos} stays proper");
            assert_eq!(
                SerializationGraph::of(&swapped),
                before,
                "swap at {pos} keeps D(S)"
            );
        }
    }

    #[test]
    fn move_to_back_partitions_prefix() {
        let s = sched(vec![
            (1, Step::read(e(0))),
            (2, Step::read(e(1))),
            (1, Step::read(e(2))),
            (2, Step::read(e(3))),
            (3, Step::read(e(4))),
        ]);
        let moved = move_to_back(&s, 4, t(1));
        let txs: Vec<u32> = moved.steps().iter().map(|s| s.tx.0).collect();
        assert_eq!(txs, vec![2, 2, 1, 1, 3]);
        // Entities confirm relative orders were preserved.
        let ents: Vec<u32> = moved.steps().iter().map(|s| s.step.entity.0).collect();
        assert_eq!(ents, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn move_with_zero_prefix_is_identity() {
        let s = sched(vec![(1, Step::read(e(0))), (2, Step::read(e(1)))]);
        assert_eq!(move_to_back(&s, 0, t(1)), s);
    }

    #[test]
    fn move_of_absent_transaction_is_identity() {
        let s = sched(vec![(1, Step::read(e(0))), (2, Step::read(e(1)))]);
        assert_eq!(move_to_back(&s, 2, t(9)), s);
    }

    #[test]
    fn lemma2_on_a_sink_preserves_everything() {
        // S = T1 and T2 interleaved; T2 is a sink of D(S') for the prefix
        // S' = first 4 steps (T1 -> T2 edge would make T2 a sink only if no
        // outgoing edge from T2; here they touch disjoint entities inside
        // the prefix, so both are sinks).
        let s = sched(vec![
            (1, Step::lock_exclusive(e(0))),
            (2, Step::lock_exclusive(e(1))),
            (2, Step::insert(e(1))),
            (1, Step::insert(e(0))),
            (1, Step::unlock_exclusive(e(0))),
            (2, Step::unlock_exclusive(e(1))),
        ]);
        let g0 = StructuralState::empty();
        assert!(s.is_legal() && s.is_proper(&g0));
        let prefix = s.prefix(4);
        let d_prefix = SerializationGraph::of(&prefix);
        assert!(d_prefix.sinks().contains(&t(2)));
        let moved = move_to_back(&s, 4, t(2));
        assert!(moved.is_legal());
        assert!(moved.is_proper(&g0));
        assert_eq!(SerializationGraph::of(&moved), SerializationGraph::of(&s));
    }
}
