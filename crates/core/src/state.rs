//! Database states.
//!
//! The paper distinguishes the *structural state* (which entities from the
//! universe currently exist — changed by `INSERT`/`DELETE`) from the *value
//! state* (the values assigned to existing entities — changed by `WRITE`).
//! Serializability arguments only depend on the structural state, so
//! [`StructuralState`] is the workhorse type; [`ValueState`] is provided for
//! completeness and for the examples.

use crate::entity::EntityId;
use crate::ops::DataOp;
use crate::step::Step;
use std::collections::HashMap;
use std::fmt;

/// Why a step was undefined in the structural state it executed in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UndefinedStep {
    /// `R`/`W`/`D` applied to an entity absent from the state.
    EntityAbsent(EntityId),
    /// `I` applied to an entity already present in the state.
    EntityPresent(EntityId),
}

impl fmt::Display for UndefinedStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UndefinedStep::EntityAbsent(e) => {
                write!(
                    f,
                    "entity {e} does not exist in the current structural state"
                )
            }
            UndefinedStep::EntityPresent(e) => {
                write!(
                    f,
                    "entity {e} already exists in the current structural state"
                )
            }
        }
    }
}

impl std::error::Error for UndefinedStep {}

/// A structural database state: the set of entities that currently exist.
///
/// Backed by a growable bitset indexed by [`EntityId`], so membership tests
/// and snapshots (clones) are cheap — the safety verifier clones states at
/// every branch of its search.
///
/// # Examples
///
/// ```
/// use slp_core::{StructuralState, Universe, Step};
///
/// let mut u = Universe::new();
/// let a = u.entity("a");
/// let mut g = StructuralState::empty();
/// assert!(g.apply_step(&Step::insert(a)).is_ok());
/// assert!(g.contains(a));
/// assert!(g.apply_step(&Step::insert(a)).is_err()); // already present
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct StructuralState {
    words: Vec<u64>,
    len: usize,
}

impl StructuralState {
    /// The empty structural state (no entities exist).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A state containing exactly the given entities.
    pub fn from_entities(entities: impl IntoIterator<Item = EntityId>) -> Self {
        let mut s = Self::empty();
        for e in entities {
            s.insert(e);
        }
        s
    }

    /// Whether `e` exists in this state.
    #[inline]
    pub fn contains(&self, e: EntityId) -> bool {
        let (w, b) = (e.index() / 64, e.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Adds `e`; returns `true` if it was absent.
    #[inline]
    pub fn insert(&mut self, e: EntityId) -> bool {
        let (w, b) = (e.index() / 64, e.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `e`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, e: EntityId) -> bool {
        let (w, b) = (e.index() / 64, e.index() % 64);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        self.len -= usize::from(present);
        if present && self.words.last() == Some(&0) {
            // Keep the representation canonical so Eq/Hash treat states with
            // trailing zero words as equal.
            while self.words.last() == Some(&0) {
                self.words.pop();
            }
        }
        present
    }

    /// Number of existing entities.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entity exists.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over existing entities in id order.
    pub fn iter(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| EntityId((w * 64 + b) as u32))
        })
    }

    /// Whether a *data* step is defined in this state (Section 2):
    /// `R`/`W`/`D` need the entity present, `I` needs it absent. Lock and
    /// unlock steps are always defined (a transaction locks an entity it is
    /// about to insert *before* the entity exists).
    #[inline]
    pub fn step_defined(&self, step: &Step) -> Result<(), UndefinedStep> {
        let Some(data) = step.op.data() else {
            return Ok(());
        };
        match (data.requires_present(), self.contains(step.entity)) {
            (true, false) => Err(UndefinedStep::EntityAbsent(step.entity)),
            (false, true) => Err(UndefinedStep::EntityPresent(step.entity)),
            _ => Ok(()),
        }
    }

    /// Applies a step, mutating the state if it is an `INSERT` or `DELETE`.
    /// Fails (leaving the state unchanged) if the step is undefined.
    #[inline]
    pub fn apply_step(&mut self, step: &Step) -> Result<(), UndefinedStep> {
        self.step_defined(step)?;
        match step.op.data() {
            Some(DataOp::Insert) => {
                self.insert(step.entity);
            }
            Some(DataOp::Delete) => {
                self.remove(step.entity);
            }
            _ => {}
        }
        Ok(())
    }

    /// Reverses a previously applied step: an `INSERT` is undone by
    /// removal, a `DELETE` by re-insertion; all other steps left the state
    /// unchanged. Only meaningful for a step that actually applied last
    /// (LIFO discipline) — the verifier's apply/undo DFS guarantees this.
    #[inline]
    pub fn unapply_step(&mut self, step: &Step) {
        match step.op.data() {
            Some(DataOp::Insert) => {
                let was_present = self.remove(step.entity);
                debug_assert!(was_present, "unapply of INSERT found entity absent");
            }
            Some(DataOp::Delete) => {
                let was_absent = self.insert(step.entity);
                debug_assert!(was_absent, "unapply of DELETE found entity present");
            }
            _ => {}
        }
    }

    /// Applies a sequence of steps; on failure reports the failing index.
    /// This computes `S(G)` from the paper: the state resulting from
    /// applying sequence `S` to state `G`, undefined if any step is
    /// undefined in the state it executes in.
    pub fn apply_all<'a>(
        &mut self,
        steps: impl IntoIterator<Item = &'a Step>,
    ) -> Result<(), (usize, UndefinedStep)> {
        for (i, step) in steps.into_iter().enumerate() {
            self.apply_step(step).map_err(|e| (i, e))?;
        }
        Ok(())
    }
}

impl fmt::Debug for StructuralState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<EntityId> for StructuralState {
    fn from_iter<I: IntoIterator<Item = EntityId>>(iter: I) -> Self {
        Self::from_entities(iter)
    }
}

/// A value state: an assignment of values to (existing) entities.
///
/// The paper's results are independent of values; this type exists so that
/// examples can show *observable* effects of nonserializable executions.
/// Values are plain `i64`s; a fresh entity starts at `0`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ValueState {
    values: HashMap<EntityId, i64>,
}

impl ValueState {
    /// The empty value state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the value of `e` (0 if never written).
    pub fn read(&self, e: EntityId) -> i64 {
        self.values.get(&e).copied().unwrap_or(0)
    }

    /// Writes `v` to `e`.
    pub fn write(&mut self, e: EntityId, v: i64) {
        self.values.insert(e, v);
    }

    /// Removes `e`'s value (on delete).
    pub fn clear(&mut self, e: EntityId) {
        self.values.remove(&e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn empty_state_contains_nothing() {
        let g = StructuralState::empty();
        assert!(!g.contains(e(0)));
        assert!(!g.contains(e(1000)));
        assert_eq!(g.len(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut g = StructuralState::empty();
        assert!(g.insert(e(5)));
        assert!(!g.insert(e(5)));
        assert!(g.contains(e(5)));
        assert_eq!(g.len(), 1);
        assert!(g.remove(e(5)));
        assert!(!g.remove(e(5)));
        assert!(g.is_empty());
    }

    #[test]
    fn states_with_same_entities_are_equal_regardless_of_history() {
        let mut a = StructuralState::empty();
        a.insert(e(70)); // forces a second word
        a.insert(e(1));
        a.remove(e(70)); // trailing word becomes zero and must be trimmed
        let b = StructuralState::from_entities([e(1)]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |s: &StructuralState| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn iter_yields_sorted_ids() {
        let g = StructuralState::from_entities([e(64), e(3), e(0), e(127)]);
        let ids: Vec<u32> = g.iter().map(|x| x.0).collect();
        assert_eq!(ids, vec![0, 3, 64, 127]);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn read_write_delete_need_presence_insert_needs_absence() {
        let mut g = StructuralState::empty();
        assert_eq!(
            g.step_defined(&Step::read(e(0))),
            Err(UndefinedStep::EntityAbsent(e(0)))
        );
        assert_eq!(
            g.step_defined(&Step::delete(e(0))),
            Err(UndefinedStep::EntityAbsent(e(0)))
        );
        assert!(g.step_defined(&Step::insert(e(0))).is_ok());
        g.insert(e(0));
        assert!(g.step_defined(&Step::read(e(0))).is_ok());
        assert!(g.step_defined(&Step::write(e(0))).is_ok());
        assert_eq!(
            g.step_defined(&Step::insert(e(0))),
            Err(UndefinedStep::EntityPresent(e(0)))
        );
    }

    #[test]
    fn lock_steps_are_always_defined() {
        let g = StructuralState::empty();
        assert!(g.step_defined(&Step::lock_exclusive(e(9))).is_ok());
        assert!(g.step_defined(&Step::unlock_shared(e(9))).is_ok());
    }

    #[test]
    fn apply_all_reports_failing_index() {
        let mut g = StructuralState::empty();
        let steps = [Step::insert(e(0)), Step::read(e(0)), Step::write(e(1))];
        let err = g.apply_all(&steps).unwrap_err();
        assert_eq!(err.0, 2);
        assert_eq!(err.1, UndefinedStep::EntityAbsent(e(1)));
    }

    #[test]
    fn apply_failure_leaves_state_unchanged() {
        let mut g = StructuralState::from_entities([e(0)]);
        let before = g.clone();
        assert!(g.apply_step(&Step::insert(e(0))).is_err());
        assert_eq!(g, before);
    }

    #[test]
    fn section2_example_sequence_is_defined_from_empty() {
        // T1 = (I a)(I b)(W c)(I d), T2 = (R a)(D b)(I c), interleaved as the
        // paper's *proper* schedule: Ia Ib Ra Db Ic Wc Id.
        let (a, b, c, d) = (e(0), e(1), e(2), e(3));
        let steps = [
            Step::insert(a),
            Step::insert(b),
            Step::read(a),
            Step::delete(b),
            Step::insert(c),
            Step::write(c),
            Step::insert(d),
        ];
        let mut g = StructuralState::empty();
        assert!(g.apply_all(&steps).is_ok());
        assert_eq!(g, StructuralState::from_entities([a, c, d]));
    }

    #[test]
    fn value_state_reads_zero_until_written() {
        let mut v = ValueState::new();
        assert_eq!(v.read(e(0)), 0);
        v.write(e(0), 42);
        assert_eq!(v.read(e(0)), 42);
        v.clear(e(0));
        assert_eq!(v.read(e(0)), 0);
    }
}
