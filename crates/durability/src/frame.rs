//! Log records and their on-disk framing.
//!
//! Every record is written as one frame:
//!
//! ```text
//! frame   := [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload := [kind: u8] [body]
//! ```
//!
//! and every segment file starts with the 8-byte [`SEGMENT_MAGIC`]. The
//! length field bounds the read, the checksum vouches for the payload, and
//! the kind byte dispatches the body codec (the body codecs themselves
//! live in [`slp_core::wire`]). Decoding is *total*: any byte sequence
//! decodes to either a record or a typed [`TornReason`] — crash recovery
//! feeds arbitrary truncations and corruptions through this path, so there
//! is no input on which it may panic.

use crate::crc::crc32;
use slp_core::wire::{
    get_lock_entry, get_stamped_step, get_state, get_u32, get_u64, put_lock_entry,
    put_stamped_step, put_state, put_u32, put_u64,
};
use slp_core::{EntityId, LockMode, ScheduledStep, StructuralState, TxId};
use std::fmt;

/// First bytes of every segment file. The trailing newline makes a
/// truncated-magic file obviously non-binary garbage in a hex dump.
pub const SEGMENT_MAGIC: &[u8; 8] = b"SLPWAL1\n";

/// Frames larger than this are rejected as torn/corrupt: no writer
/// produces them (a steps batch is bounded by the group-commit flush), so
/// a bigger length field is a corrupted length field, and trusting it
/// would make recovery attempt an absurd allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// One durable log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Record {
    /// A batch of sequence-stamped granted steps (one group-commit unit).
    Steps(Vec<(u64, ScheduledStep)>),
    /// Transaction `tx` committed; it is durably committed once the
    /// contiguous-stamp watermark reaches `required_watermark` (one past
    /// its last stamped step — all of its effects are then in the durable
    /// prefix).
    Commit {
        /// The committed transaction.
        tx: TxId,
        /// Watermark at which the commit becomes durable.
        required_watermark: u64,
    },
    /// A fuzzy checkpoint: the replayed state at a contiguous-stamp
    /// watermark. Recovery restarts from the newest surviving checkpoint
    /// and replays only the stamped tail past it.
    Checkpoint(Checkpoint),
}

/// The body of a [`Record::Checkpoint`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Checkpoint {
    /// Next expected stamp: every step with a smaller stamp is folded in.
    pub watermark: u64,
    /// Number of commit records durable at `watermark` when the
    /// checkpoint was written (the committed-transaction watermark; exact
    /// commit identities before this point may live in pruned segments).
    pub committed: u64,
    /// Structural state after applying all steps below `watermark`.
    pub state: StructuralState,
    /// Locks held at `watermark`, in acquisition order.
    pub locks: Vec<(EntityId, TxId, LockMode)>,
}

/// Why a frame could not be decoded — i.e. where the durable log ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TornReason {
    /// Fewer than 8 bytes left: the len+crc header itself is torn.
    TruncatedHeader,
    /// The length field promises more bytes than the segment has.
    TruncatedPayload,
    /// The length field exceeds [`MAX_FRAME_BYTES`] (corrupt length).
    OversizeLength,
    /// The payload checksum does not match (torn or corrupted payload).
    BadChecksum,
    /// Checksum-valid payload that does not decode (unknown kind byte or
    /// malformed body) — a writer from the future or a logic bug; either
    /// way the tail is untrusted.
    BadPayload,
    /// The segment file is shorter than the magic, or the magic differs.
    BadMagic,
    /// A segment index is missing from the directory: everything after
    /// the hole is untrusted.
    MissingSegment,
}

impl fmt::Display for TornReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TornReason::TruncatedHeader => "torn frame header",
            TornReason::TruncatedPayload => "frame length exceeds remaining bytes",
            TornReason::OversizeLength => "frame length field corrupt (oversize)",
            TornReason::BadChecksum => "frame checksum mismatch",
            TornReason::BadPayload => "frame payload undecodable",
            TornReason::BadMagic => "bad segment magic",
            TornReason::MissingSegment => "segment missing from sequence",
        };
        f.write_str(s)
    }
}

const KIND_STEPS: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;

/// Appends `record` to `out` as one frame; returns the frame's size.
pub fn encode_frame(out: &mut Vec<u8>, record: &Record) -> usize {
    let mut payload = Vec::new();
    match record {
        Record::Steps(entries) => {
            payload.push(KIND_STEPS);
            put_u32(&mut payload, entries.len() as u32);
            for (stamp, step) in entries {
                put_stamped_step(&mut payload, *stamp, step);
            }
        }
        Record::Commit {
            tx,
            required_watermark,
        } => {
            payload.push(KIND_COMMIT);
            put_u32(&mut payload, tx.0);
            put_u64(&mut payload, *required_watermark);
        }
        Record::Checkpoint(c) => {
            payload.push(KIND_CHECKPOINT);
            put_u64(&mut payload, c.watermark);
            put_u64(&mut payload, c.committed);
            put_state(&mut payload, &c.state);
            put_u32(&mut payload, c.locks.len() as u32);
            for entry in &c.locks {
                put_lock_entry(&mut payload, entry);
            }
        }
    }
    debug_assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "frame exceeds writer bound"
    );
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
    8 + payload.len()
}

/// The outcome of decoding one frame off the front of `buf`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrameOutcome<'a> {
    /// A record, plus the rest of the buffer.
    Record(Record, &'a [u8]),
    /// The buffer is exhausted — a clean segment end.
    End,
    /// The bytes from here on are torn or corrupt; recovery truncates.
    Torn(TornReason),
}

/// Decodes the frame at the start of `buf`. Total: never panics.
pub fn decode_frame(buf: &[u8]) -> FrameOutcome<'_> {
    if buf.is_empty() {
        return FrameOutcome::End;
    }
    if buf.len() < 8 {
        return FrameOutcome::Torn(TornReason::TruncatedHeader);
    }
    let (len, rest) = get_u32(buf).expect("8 bytes checked");
    let (crc, rest) = get_u32(rest).expect("8 bytes checked");
    let len = len as usize;
    if len > MAX_FRAME_BYTES {
        return FrameOutcome::Torn(TornReason::OversizeLength);
    }
    if rest.len() < len {
        return FrameOutcome::Torn(TornReason::TruncatedPayload);
    }
    let (payload, rest) = rest.split_at(len);
    if crc32(payload) != crc {
        return FrameOutcome::Torn(TornReason::BadChecksum);
    }
    match decode_payload(payload) {
        Some(record) => FrameOutcome::Record(record, rest),
        None => FrameOutcome::Torn(TornReason::BadPayload),
    }
}

/// Decodes a checksum-valid payload; `None` on any malformation.
fn decode_payload(payload: &[u8]) -> Option<Record> {
    let (&kind, body) = payload.split_first()?;
    match kind {
        KIND_STEPS => {
            let (count, mut body) = get_u32(body).ok()?;
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (entry, rest) = get_stamped_step(body).ok()?;
                entries.push(entry);
                body = rest;
            }
            body.is_empty().then_some(Record::Steps(entries))
        }
        KIND_COMMIT => {
            let (tx, body) = get_u32(body).ok()?;
            let (required_watermark, body) = get_u64(body).ok()?;
            body.is_empty().then_some(Record::Commit {
                tx: TxId(tx),
                required_watermark,
            })
        }
        KIND_CHECKPOINT => {
            let (watermark, body) = get_u64(body).ok()?;
            let (committed, body) = get_u64(body).ok()?;
            let (state, body) = get_state(body).ok()?;
            let (count, mut body) = get_u32(body).ok()?;
            let mut locks = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (entry, rest) = get_lock_entry(body).ok()?;
                locks.push(entry);
                body = rest;
            }
            body.is_empty().then_some(Record::Checkpoint(Checkpoint {
                watermark,
                committed,
                state,
                locks,
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::Step;

    fn steps_record() -> Record {
        Record::Steps(vec![
            (
                0,
                ScheduledStep::new(TxId(1), Step::lock_exclusive(EntityId(3))),
            ),
            (1, ScheduledStep::new(TxId(1), Step::insert(EntityId(3)))),
            (
                2,
                ScheduledStep::new(TxId(1), Step::unlock_exclusive(EntityId(3))),
            ),
        ])
    }

    fn checkpoint_record() -> Record {
        Record::Checkpoint(Checkpoint {
            watermark: 3,
            committed: 1,
            state: StructuralState::from_entities([EntityId(3), EntityId(9)]),
            locks: vec![(EntityId(9), TxId(4), LockMode::Shared)],
        })
    }

    #[test]
    fn frames_round_trip_back_to_back() {
        let records = [
            steps_record(),
            Record::Commit {
                tx: TxId(1),
                required_watermark: 3,
            },
            checkpoint_record(),
            Record::Steps(vec![]),
        ];
        let mut buf = Vec::new();
        for r in &records {
            encode_frame(&mut buf, r);
        }
        let mut rest: &[u8] = &buf;
        let mut decoded = Vec::new();
        loop {
            match decode_frame(rest) {
                FrameOutcome::Record(r, tail) => {
                    decoded.push(r);
                    rest = tail;
                }
                FrameOutcome::End => break,
                FrameOutcome::Torn(reason) => panic!("torn: {reason}"),
            }
        }
        assert_eq!(decoded, records);
    }

    #[test]
    fn every_truncation_is_torn_never_a_panic() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &steps_record());
        encode_frame(&mut buf, &checkpoint_record());
        let full = {
            let mut n = 0;
            let mut rest: &[u8] = &buf;
            while let FrameOutcome::Record(_, tail) = decode_frame(rest) {
                n += 1;
                rest = tail;
            }
            n
        };
        assert_eq!(full, 2);
        for cut in 0..buf.len() {
            // Walk the truncated prefix to its end: each decode is either a
            // record, a clean end (cut on a frame boundary), or a typed
            // torn verdict — never a panic, never an infinite loop.
            let mut rest = &buf[..cut];
            let mut guard = 0;
            while let FrameOutcome::Record(_, tail) = decode_frame(rest) {
                rest = tail;
                guard += 1;
                assert!(guard <= 2, "more frames than were written");
            }
        }
    }

    #[test]
    fn corruption_is_caught_by_checksum_or_bounds() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &steps_record());
        for i in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x40;
            match decode_frame(&corrupt) {
                FrameOutcome::Torn(_) => {}
                FrameOutcome::Record(r, _) => {
                    panic!("flip at byte {i} decoded as {r:?}")
                }
                FrameOutcome::End => panic!("flip at byte {i} read as end"),
            }
        }
    }

    #[test]
    fn oversize_length_field_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, (MAX_FRAME_BYTES + 1) as u32);
        put_u32(&mut buf, 0);
        buf.extend_from_slice(&[0; 16]);
        assert_eq!(
            decode_frame(&buf),
            FrameOutcome::Torn(TornReason::OversizeLength)
        );
    }

    #[test]
    fn unknown_kind_with_valid_checksum_is_bad_payload() {
        let payload = [99u8, 1, 2, 3];
        let mut buf = Vec::new();
        put_u32(&mut buf, payload.len() as u32);
        put_u32(&mut buf, crc32(&payload));
        buf.extend_from_slice(&payload);
        assert_eq!(
            decode_frame(&buf),
            FrameOutcome::Torn(TornReason::BadPayload)
        );
    }
}
