//! Crash recovery: rebuild a prefix-consistent execution from whatever
//! bytes a crash left behind.
//!
//! Recovery is replay. [`recover`] walks the surviving segments in order,
//! decoding frames until the first torn or corrupt one and **truncating
//! there** — everything after an anomaly is untrusted, and no input makes
//! recovery panic. From the surviving records it seeds state from a
//! checkpoint and replays the contiguous stamped tail past it:
//!
//! 1. stamps are dense by construction, so the recovered steps are sorted
//!    by stamp and cut at the first gap (a gap means a later group-commit
//!    batch survived while an earlier one was lost — the steps past the
//!    gap are not a prefix of the original run and are discarded);
//! 2. a transaction counts as committed only if its commit record
//!    survived *and* the recovered watermark covers its last step;
//! 3. conflict-serializability is prefix-closed — the serialization graph
//!    of a prefix is a subgraph of the full (acyclic) graph — so the
//!    replayed prefix is itself a legal, proper, serializable execution.
//!    [`Recovered::certify`] re-checks exactly that from first principles.

use crate::frame::{decode_frame, Checkpoint, FrameOutcome, Record, TornReason};
use crate::store::Store;
use crate::{WalError, SEGMENT_MAGIC};
use slp_core::{
    is_serializable, DataOp, EntityId, LegalViolation, LockMode, Operation, ProperViolation,
    Schedule, ScheduledStep, StructuralState, TxId,
};
use std::fmt;

/// Applies one granted step to a recovered run replica: `INSERT`/`DELETE`
/// mutate the structural state, `LOCK`/`UNLOCK` maintain the held-locks
/// list (in acquisition order), `READ`/`WRITE` change neither.
///
/// This is deliberately *not* a validity checker — the steps come from a
/// run the engine already validated (and [`Recovered::certify`] re-checks
/// full replays independently); replay just folds them in.
pub fn replay_step(
    state: &mut StructuralState,
    locks: &mut Vec<(EntityId, TxId, LockMode)>,
    s: &ScheduledStep,
) {
    match s.step.op {
        Operation::Data(DataOp::Insert) => {
            state.insert(s.step.entity);
        }
        Operation::Data(DataOp::Delete) => {
            state.remove(s.step.entity);
        }
        Operation::Data(_) => {}
        Operation::Lock(mode) => locks.push((s.step.entity, s.tx, mode)),
        Operation::Unlock(mode) => {
            if let Some(i) = locks
                .iter()
                .position(|&(e, t, m)| e == s.step.entity && t == s.tx && m == mode)
            {
                locks.remove(i);
            }
        }
    }
}

/// Which surviving checkpoint to seed recovery from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryMode {
    /// The newest checkpoint — the production choice: shortest replay.
    Newest,
    /// The oldest checkpoint — replays the longest surviving tail; with
    /// an unpruned log this is the creation-time base checkpoint, which
    /// makes the whole run re-certifiable ([`Recovered::certify`]).
    Oldest,
}

/// Where and why the log was cut during recovery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Truncation {
    /// Segment in which the anomaly was found.
    pub segment: u64,
    /// Byte offset of the anomaly within that segment.
    pub offset: usize,
    /// What was wrong there.
    pub reason: TornReason,
}

/// Why recovery could not produce a state at all (torn tails and corrupt
/// suffixes do *not* land here — they truncate and recovery proceeds).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RecoverError {
    /// The store holds no segments: the log never became durable.
    EmptyStore,
    /// No checkpoint survived, so there is no state to seed from. With
    /// the creation-time base checkpoint synced before any steps, this
    /// means the crash beat the very first fsync — the run never durably
    /// started.
    NoCheckpoint,
    /// The store itself failed while being read.
    Store(WalError),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::EmptyStore => f.write_str("no segments: log never became durable"),
            RecoverError::NoCheckpoint => f.write_str("no surviving checkpoint to seed from"),
            RecoverError::Store(e) => write!(f, "store failed during recovery: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<WalError> for RecoverError {
    fn from(e: WalError) -> Self {
        RecoverError::Store(e)
    }
}

/// The result of replaying a crashed log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Recovered {
    /// Watermark of the checkpoint recovery seeded from (0 = full replay).
    pub base_stamp: u64,
    /// Structural state at `base_stamp`.
    pub base_state: StructuralState,
    /// Locks held at `base_stamp`.
    pub base_locks: Vec<(EntityId, TxId, LockMode)>,
    /// The contiguous stamped tail replayed on top of the base, stamps
    /// `base_stamp..base_stamp + tail.len()`.
    pub tail: Vec<(u64, ScheduledStep)>,
    /// Structural state after replaying the tail — the recovered state.
    pub state: StructuralState,
    /// Locks held after replaying the tail (in-flight transactions).
    pub locks: Vec<(EntityId, TxId, LockMode)>,
    /// One past the last recovered stamp: `base_stamp + tail.len()`.
    pub watermark: u64,
    /// Transactions whose commit record survived *and* whose steps are
    /// all within the watermark — the durably committed set.
    pub committed: Vec<TxId>,
    /// Lower bound on total durable commits: surviving commit records may
    /// undercount when pruning dropped old segments, so this folds in the
    /// seed checkpoint's commit counter. Exact when nothing was pruned.
    pub committed_floor: u64,
    /// Where the log was cut, if an anomaly was found (`None` = the log
    /// ended cleanly on a frame boundary).
    pub truncation: Option<Truncation>,
    /// Steps discarded because they lay past a stamp gap (an earlier
    /// unsynced batch was lost while a later one survived).
    pub dropped_after_gap: usize,
}

/// Why a recovered prefix failed re-certification. Any of these indicates
/// a bug (in the engine, the log, or recovery) — a surviving prefix of a
/// safe run always certifies.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CertifyError {
    /// Certification needs a full replay (`base_stamp == 0`); recovery
    /// seeded from a mid-run checkpoint instead (use
    /// [`RecoveryMode::Oldest`] on an unpruned log).
    PartialBase,
    /// The tail's stamps did not form a contiguous sequence (recovery
    /// should have made this impossible).
    BadSequence,
    /// The recovered schedule acquires conflicting locks.
    Illegal(LegalViolation),
    /// The recovered schedule takes a step undefined in its state.
    Improper(ProperViolation),
    /// The recovered schedule is not conflict-serializable.
    NotSerializable,
    /// Independent replay of the schedule disagrees with the recovered
    /// state or lock set.
    StateMismatch,
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::PartialBase => {
                f.write_str("certification requires a full replay from stamp 0")
            }
            CertifyError::BadSequence => f.write_str("recovered tail stamps not contiguous"),
            CertifyError::Illegal(v) => write!(f, "recovered schedule illegal: {v}"),
            CertifyError::Improper(v) => write!(f, "recovered schedule improper: {v}"),
            CertifyError::NotSerializable => {
                f.write_str("recovered schedule not conflict-serializable")
            }
            CertifyError::StateMismatch => {
                f.write_str("replay of recovered schedule disagrees with recovered state")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

impl Recovered {
    /// The recovered tail as a [`Schedule`] (empty if no steps survived).
    pub fn schedule(&self) -> Result<Schedule, CertifyError> {
        if self.tail.is_empty() {
            return Ok(Schedule::empty());
        }
        Schedule::from_sequenced(self.tail.clone()).map_err(|_| CertifyError::BadSequence)
    }

    /// Re-certifies a full replay from first principles: the recovered
    /// schedule must be legal, proper from the base state, and
    /// conflict-serializable, and independently replaying it must land on
    /// exactly the recovered state and lock set.
    ///
    /// Only full replays can be certified — a mid-run checkpoint base
    /// would require trusting the checkpoint, which is what is being
    /// checked. (Checkpoint fidelity is instead pinned by comparing
    /// [`RecoveryMode::Newest`] against [`RecoveryMode::Oldest`]: both
    /// must land on the same state.)
    pub fn certify(&self) -> Result<(), CertifyError> {
        if self.base_stamp != 0 || !self.base_locks.is_empty() {
            return Err(CertifyError::PartialBase);
        }
        let schedule = self.schedule()?;
        schedule.check_legal().map_err(CertifyError::Illegal)?;
        let final_state = schedule
            .check_proper(&self.base_state)
            .map_err(CertifyError::Improper)?;
        if !is_serializable(&schedule) {
            return Err(CertifyError::NotSerializable);
        }
        if final_state != self.state || schedule.locks_held_at_end() != self.locks {
            return Err(CertifyError::StateMismatch);
        }
        Ok(())
    }
}

/// Replays the log in `store` into a recovered execution. See the module
/// docs for the algorithm; the short form: parse until the first anomaly,
/// truncate, seed from a checkpoint, replay the contiguous stamped tail.
pub fn recover(store: &dyn Store, mode: RecoveryMode) -> Result<Recovered, RecoverError> {
    let segments = store.list()?;
    if segments.is_empty() {
        return Err(RecoverError::EmptyStore);
    }

    // Phase 1: decode records until the first anomaly.
    let mut records = Vec::new();
    let mut truncation = None;
    'segments: for (expected, &index) in (segments[0]..).zip(segments.iter()) {
        if index != expected {
            // A hole in the sequence: segments past it postdate bytes we
            // do not have, so nothing after the hole can be trusted.
            truncation = Some(Truncation {
                segment: expected,
                offset: 0,
                reason: TornReason::MissingSegment,
            });
            break;
        }
        let data = store.read(index)?;
        if data.len() < SEGMENT_MAGIC.len() || &data[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            truncation = Some(Truncation {
                segment: index,
                offset: 0,
                reason: TornReason::BadMagic,
            });
            break;
        }
        let mut offset = SEGMENT_MAGIC.len();
        loop {
            match decode_frame(&data[offset..]) {
                FrameOutcome::Record(record, rest) => {
                    offset = data.len() - rest.len();
                    records.push(record);
                }
                FrameOutcome::End => break,
                FrameOutcome::Torn(reason) => {
                    // First bad frame: cut here. Even if later segments
                    // would parse, they postdate the damage.
                    truncation = Some(Truncation {
                        segment: index,
                        offset,
                        reason,
                    });
                    break 'segments;
                }
            }
        }
    }

    // Phase 2: seed from a surviving checkpoint.
    let base: &Checkpoint = {
        let mut found = None;
        for r in &records {
            if let Record::Checkpoint(c) = r {
                found = Some(c);
                if mode == RecoveryMode::Oldest {
                    break;
                }
            }
        }
        found.ok_or(RecoverError::NoCheckpoint)?
    };

    // Phase 3: the contiguous stamped tail past the base watermark.
    // Stamps order the steps; byte order across workers is arbitrary.
    let mut steps: Vec<(u64, ScheduledStep)> = records
        .iter()
        .filter_map(|r| match r {
            Record::Steps(entries) => Some(entries.iter().copied()),
            _ => None,
        })
        .flatten()
        .filter(|&(stamp, _)| stamp >= base.watermark)
        .collect();
    steps.sort_unstable_by_key(|&(stamp, _)| stamp);
    let contiguous = steps
        .iter()
        .enumerate()
        .take_while(|&(i, &(stamp, _))| stamp == base.watermark + i as u64)
        .count();
    let dropped_after_gap = steps.len() - contiguous;
    steps.truncate(contiguous);
    let watermark = base.watermark + steps.len() as u64;

    // Phase 4: replay the tail onto the base.
    let mut state = base.state.clone();
    let mut locks = base.locks.clone();
    for (_, step) in &steps {
        replay_step(&mut state, &mut locks, step);
    }

    // Phase 5: the durably committed set.
    let committed: Vec<TxId> = records
        .iter()
        .filter_map(|r| match *r {
            Record::Commit {
                tx,
                required_watermark,
            } if required_watermark <= watermark => Some(tx),
            _ => None,
        })
        .collect();
    let committed_floor = base.committed.max(committed.len() as u64);

    Ok(Recovered {
        base_stamp: base.watermark,
        base_state: base.state.clone(),
        base_locks: base.locks.clone(),
        tail: steps,
        state,
        locks,
        watermark,
        committed,
        committed_floor,
        truncation,
        dropped_after_gap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{MemStore, SharedMemStore};
    use crate::wal::{Wal, WalConfig};
    use slp_core::Step;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn step(tx: u32, s: Step) -> ScheduledStep {
        ScheduledStep::new(TxId(tx), s)
    }

    /// A small fully-synced run: T1 inserts e0 and commits, T2 locks e1
    /// and is still in flight at the end.
    fn logged_run(config: WalConfig) -> SharedMemStore {
        let handle = SharedMemStore::new();
        let wal = Wal::create(Box::new(handle.clone()), config, &StructuralState::empty()).unwrap();
        wal.append_steps(&[
            (0, step(1, Step::lock_exclusive(e(0)))),
            (1, step(1, Step::insert(e(0)))),
        ])
        .unwrap();
        wal.append_steps(&[(2, step(2, Step::lock_shared(e(1))))])
            .unwrap();
        wal.append_steps(&[(3, step(1, Step::unlock_exclusive(e(0))))])
            .unwrap();
        wal.append_commit(t(1), 4).unwrap();
        wal.flush().unwrap();
        handle
    }

    fn tight() -> WalConfig {
        WalConfig {
            group_commit: 1,
            checkpoint_every: 0,
            ..WalConfig::default()
        }
    }

    #[test]
    fn clean_log_recovers_and_certifies() {
        let store = logged_run(tight()).snapshot();
        let r = recover(&store, RecoveryMode::Oldest).unwrap();
        assert_eq!(r.base_stamp, 0);
        assert_eq!(r.watermark, 4);
        assert_eq!(r.truncation, None);
        assert_eq!(r.dropped_after_gap, 0);
        assert_eq!(r.state, StructuralState::from_entities([e(0)]));
        assert_eq!(r.locks, vec![(e(1), t(2), LockMode::Shared)]);
        assert_eq!(r.committed, vec![t(1)]);
        assert_eq!(r.committed_floor, 1);
        r.certify().unwrap();
    }

    #[test]
    fn every_byte_prefix_recovers_without_panic_and_certifies() {
        let full = logged_run(tight()).snapshot();
        let total = full.total_bytes();
        let complete = recover(&full, RecoveryMode::Oldest).unwrap();
        let mut watermarks = Vec::new();
        for cut in 0..=total {
            let store = full.prefix(cut);
            match recover(&store, RecoveryMode::Oldest) {
                Ok(r) => {
                    // The recovered tail is a stamp-prefix of the full run...
                    assert!(r.watermark <= complete.watermark);
                    assert_eq!(r.tail[..], complete.tail[..r.watermark as usize]);
                    // ...and certifies as a safe execution on its own.
                    r.certify().unwrap();
                    // Commit durability never outruns the watermark.
                    assert!(r.committed.len() <= complete.committed.len());
                    watermarks.push(r.watermark);
                }
                Err(RecoverError::EmptyStore) | Err(RecoverError::NoCheckpoint) => {
                    // Legitimate only before the base checkpoint's bytes
                    // are complete.
                    assert!(
                        cut < 100,
                        "late cut at {cut}/{total} lost the base checkpoint"
                    );
                }
                Err(e) => panic!("cut at {cut}: {e}"),
            }
        }
        // Watermarks grow monotonically with the surviving prefix and
        // reach the full run.
        assert!(watermarks.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(watermarks.last(), Some(&4));
    }

    #[test]
    fn unsynced_tail_is_lost_but_the_synced_prefix_survives() {
        let handle = SharedMemStore::new();
        let wal = Wal::create(
            Box::new(handle.clone()),
            WalConfig {
                group_commit: 100, // nothing syncs until flush
                checkpoint_every: 0,
                ..WalConfig::default()
            },
            &StructuralState::empty(),
        )
        .unwrap();
        wal.append_steps(&[(0, step(1, Step::insert(e(0))))])
            .unwrap();
        // Crash before any sync: only the (synced) base checkpoint survives.
        let crashed = handle.snapshot().crashed(false);
        let r = recover(&crashed, RecoveryMode::Oldest).unwrap();
        assert_eq!(r.watermark, 0);
        assert_eq!(r.state, StructuralState::empty());
        r.certify().unwrap();
        // The lucky crash (OS flushed anyway) keeps the step.
        let lucky = handle.snapshot().crashed(true);
        let r = recover(&lucky, RecoveryMode::Oldest).unwrap();
        assert_eq!(r.watermark, 1);
        assert_eq!(r.state, StructuralState::from_entities([e(0)]));
    }

    #[test]
    fn corruption_truncates_at_the_damaged_frame() {
        let full = logged_run(tight()).snapshot();
        // Corrupt a byte somewhere after the base checkpoint.
        let mut store = full.clone();
        store.corrupt(full.total_bytes() - 10, 0x01);
        let r = recover(&store, RecoveryMode::Oldest).unwrap();
        let truncation = r.truncation.expect("corruption must be detected");
        assert!(matches!(
            truncation.reason,
            TornReason::BadChecksum | TornReason::TruncatedPayload | TornReason::OversizeLength
        ));
        assert!(r.watermark <= 4);
        r.certify().unwrap();
    }

    #[test]
    fn every_single_byte_corruption_recovers_a_certified_prefix() {
        let full = logged_run(tight()).snapshot();
        let complete = recover(&full, RecoveryMode::Oldest).unwrap();
        for offset in 0..full.total_bytes() {
            let mut store = full.clone();
            store.corrupt(offset, 0x80);
            match recover(&store, RecoveryMode::Oldest) {
                Ok(r) => {
                    assert!(r.truncation.is_some(), "flip at {offset} undetected");
                    assert_eq!(r.tail[..], complete.tail[..r.tail.len()]);
                    r.certify().unwrap();
                }
                Err(RecoverError::EmptyStore) | Err(RecoverError::NoCheckpoint) => {
                    // The flip hit the base checkpoint's frame or magic.
                }
                Err(e) => panic!("flip at {offset}: {e}"),
            }
        }
    }

    #[test]
    fn stamp_gap_drops_the_unanchored_suffix() {
        // Build a log where a middle batch is missing: worker A's batch
        // (stamp 1) was never synced but worker B's later batch (stamp 2)
        // was — simulated by writing the frames directly.
        let mut store = MemStore::new();
        store.open_segment(0).unwrap();
        store.append(SEGMENT_MAGIC).unwrap();
        let mut buf = Vec::new();
        crate::frame::encode_frame(
            &mut buf,
            &Record::Checkpoint(Checkpoint {
                watermark: 0,
                committed: 0,
                state: StructuralState::empty(),
                locks: Vec::new(),
            }),
        );
        crate::frame::encode_frame(
            &mut buf,
            &Record::Steps(vec![(0, step(1, Step::insert(e(0))))]),
        );
        // stamp 1 missing
        crate::frame::encode_frame(
            &mut buf,
            &Record::Steps(vec![(2, step(2, Step::insert(e(2))))]),
        );
        crate::frame::encode_frame(
            &mut buf,
            &Record::Commit {
                tx: t(2),
                required_watermark: 3,
            },
        );
        store.append(&buf).unwrap();
        store.sync().unwrap();
        let r = recover(&store, RecoveryMode::Oldest).unwrap();
        assert_eq!(r.watermark, 1, "stops at the gap");
        assert_eq!(r.dropped_after_gap, 1);
        assert_eq!(r.state, StructuralState::from_entities([e(0)]));
        // T2's commit required watermark 3; only 1 was recovered.
        assert!(r.committed.is_empty());
        r.certify().unwrap();
    }

    #[test]
    fn newest_checkpoint_recovery_matches_full_replay() {
        let handle = SharedMemStore::new();
        let wal = Wal::create(
            Box::new(handle.clone()),
            WalConfig {
                group_commit: 1,
                checkpoint_every: 2,
                ..WalConfig::default()
            },
            &StructuralState::empty(),
        )
        .unwrap();
        let mut stamp = 0;
        for i in 0..6u32 {
            wal.append_steps(&[
                (stamp, step(i, Step::lock_exclusive(e(i)))),
                (stamp + 1, step(i, Step::insert(e(i)))),
                (stamp + 2, step(i, Step::unlock_exclusive(e(i)))),
            ])
            .unwrap();
            stamp += 3;
            wal.append_commit(t(i), stamp).unwrap();
        }
        wal.flush().unwrap();
        let store = handle.snapshot();
        let fast = recover(&store, RecoveryMode::Newest).unwrap();
        let full = recover(&store, RecoveryMode::Oldest).unwrap();
        assert!(fast.base_stamp > 0, "an automatic checkpoint must exist");
        assert_eq!(fast.watermark, full.watermark);
        assert_eq!(fast.state, full.state);
        assert_eq!(fast.locks, full.locks);
        assert_eq!(fast.committed_floor, full.committed_floor);
        full.certify().unwrap();
        // The fast path replays strictly fewer steps.
        assert!(fast.tail.len() < full.tail.len());
    }

    #[test]
    fn pruned_log_still_recovers_from_the_newest_checkpoint() {
        let handle = SharedMemStore::new();
        let wal = Wal::create(
            Box::new(handle.clone()),
            WalConfig {
                segment_bytes: 128,
                group_commit: 1,
                checkpoint_every: 4,
                ..WalConfig::default()
            },
            &StructuralState::empty(),
        )
        .unwrap();
        for i in 0..20u64 {
            wal.append_steps(&[(i, step(1, Step::insert(e(i as u32))))])
                .unwrap();
        }
        wal.flush().unwrap();
        let unpruned = recover(&handle.snapshot(), RecoveryMode::Oldest).unwrap();
        let removed = wal.prune().unwrap();
        assert!(removed > 0, "log must actually shrink");
        let pruned = recover(&handle.snapshot(), RecoveryMode::Newest).unwrap();
        assert_eq!(pruned.watermark, unpruned.watermark);
        assert_eq!(pruned.state, unpruned.state);
        assert!(pruned.committed_floor >= unpruned.committed_floor);
        // Full certification is no longer possible (base is mid-run)...
        assert_eq!(pruned.certify(), Err(CertifyError::PartialBase));
        // ...and recovery from the pruned log seeded past stamp 0.
        assert!(pruned.base_stamp > 0);
    }

    #[test]
    fn missing_segment_truncates_at_the_hole() {
        let handle = SharedMemStore::new();
        let wal = Wal::create(
            Box::new(handle.clone()),
            WalConfig {
                segment_bytes: 96,
                group_commit: 1,
                checkpoint_every: 0,
                ..WalConfig::default()
            },
            &StructuralState::empty(),
        )
        .unwrap();
        for i in 0..30u64 {
            wal.append_steps(&[(i, step(1, Step::insert(e(i as u32))))])
                .unwrap();
        }
        wal.flush().unwrap();
        let mut store = handle.snapshot();
        let segments = store.list().unwrap();
        assert!(segments.len() >= 3, "need a middle segment to delete");
        let hole = segments[1];
        store.remove(hole).unwrap();
        let r = recover(&store, RecoveryMode::Oldest).unwrap();
        assert_eq!(
            r.truncation,
            Some(Truncation {
                segment: hole,
                offset: 0,
                reason: TornReason::MissingSegment
            })
        );
        r.certify().unwrap();
        let full = recover(&handle.snapshot(), RecoveryMode::Oldest).unwrap();
        assert!(r.watermark < full.watermark);
    }

    #[test]
    fn garbage_and_empty_stores_fail_gracefully() {
        assert_eq!(
            recover(&MemStore::new(), RecoveryMode::Oldest),
            Err(RecoverError::EmptyStore)
        );
        // A segment of pure garbage: bad magic, no checkpoint, no panic.
        let mut store = MemStore::new();
        store.open_segment(0).unwrap();
        store.append(&[0xAB; 256]).unwrap();
        let err = recover(&store, RecoveryMode::Oldest).unwrap_err();
        assert_eq!(err, RecoverError::NoCheckpoint);
        // Valid magic followed by garbage: still no checkpoint.
        let mut store = MemStore::new();
        store.open_segment(0).unwrap();
        store.append(SEGMENT_MAGIC).unwrap();
        store.append(&[0xAB; 256]).unwrap();
        assert_eq!(
            recover(&store, RecoveryMode::Oldest),
            Err(RecoverError::NoCheckpoint)
        );
    }
}
